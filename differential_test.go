package dynhl

import (
	"testing"

	"repro/internal/exper"
	"repro/internal/fulldyn"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/pll"
	"repro/internal/testutil"
)

// TestDifferentialThreeOracles drives the same insertion stream through the
// three independently-implemented distance oracles — IncHL+, IncFD and
// IncPLL — and requires all of them to agree with each other and with BFS
// on every query. Three implementations sharing no query or update code
// agreeing on random workloads is the strongest cross-check in the suite.
func TestDifferentialThreeOracles(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		base := testutil.RandomGraph(60, 110, 500+seed)
		lm := landmark.ByDegree(base, 5)

		gHL := base.Clone()
		idxHL, err := hcl.Build(gHL, lm)
		if err != nil {
			t.Fatal(err)
		}
		updHL := inchl.New(idxHL)

		gFD := base.Clone()
		idxFD, err := fulldyn.Build(gFD, lm)
		if err != nil {
			t.Fatal(err)
		}

		gPLL := base.Clone()
		idxPLL := pll.Build(gPLL)

		inserts := exper.SampleInsertions(base, 25, seed*11+3)
		for i, e := range inserts {
			if _, err := updHL.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if err := idxFD.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if err := idxPLL.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if i%5 != 4 {
				continue
			}
			oracle := testutil.AllPairsOracle(gHL)
			for u := uint32(0); u < 60; u++ {
				for v := uint32(0); v < 60; v++ {
					want := oracle[u][v]
					if got := idxHL.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncHL+(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
					if got := idxFD.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncFD(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
					if got := idxPLL.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncPLL(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
				}
			}
		}
	}
}

// TestDifferentialUpperBounds pins the relationship between the two
// landmark upper bounds: IncFD's full-tree bound can never be worse than
// IncHL+'s label bound is exact-or-above, and both dominate the true
// distance.
func TestDifferentialUpperBounds(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 90, 77)
	lm := landmark.ByDegree(g, 5)
	idxHL, err := hcl.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	idxFD, err := fulldyn.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	oracle := testutil.AllPairsOracle(g)
	for u := uint32(0); u < 50; u++ {
		for v := uint32(0); v < 50; v++ {
			d := oracle[u][v]
			hb := idxHL.UpperBound(u, v)
			fb := idxFD.UpperBound(u, v)
			if hb < d || fb < d {
				t.Fatalf("upper bound below true distance at (%d,%d): HL %d FD %d true %d", u, v, hb, fb, d)
			}
			// Both bounds route through landmarks; HL's minimal labels must
			// not lose exactness relative to FD's complete trees.
			// HL's bound dominates FD's: for the landmark r achieving FD's
			// d(u,r)+d(r,v), decomposing both legs through u's and v's best
			// entries and the highway triangle inequality gives a pair term
			// no larger, so hb ≤ fb always.
			if hb > fb {
				t.Fatalf("HL bound %d above FD bound %d at (%d,%d)", hb, fb, u, v)
			}
		}
	}
}
