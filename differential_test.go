package dynhl

import (
	"math/rand"
	"testing"

	"repro/internal/exper"
	"repro/internal/fulldyn"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/pll"
	"repro/internal/testutil"
)

// TestDifferentialThreeOracles drives the same insertion stream through the
// three independently-implemented distance oracles — IncHL+, IncFD and
// IncPLL — and requires all of them to agree with each other and with BFS
// on every query. Three implementations sharing no query or update code
// agreeing on random workloads is the strongest cross-check in the suite.
func TestDifferentialThreeOracles(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		base := testutil.RandomGraph(60, 110, 500+seed)
		lm := landmark.ByDegree(base, 5)

		gHL := base.Clone()
		idxHL, err := hcl.Build(gHL, lm)
		if err != nil {
			t.Fatal(err)
		}
		updHL := inchl.New(idxHL)

		gFD := base.Clone()
		idxFD, err := fulldyn.Build(gFD, lm)
		if err != nil {
			t.Fatal(err)
		}

		gPLL := base.Clone()
		idxPLL := pll.Build(gPLL)

		inserts := exper.SampleInsertions(base, 25, seed*11+3)
		for i, e := range inserts {
			if _, err := updHL.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if err := idxFD.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if err := idxPLL.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if i%5 != 4 {
				continue
			}
			oracle := testutil.AllPairsOracle(gHL)
			for u := uint32(0); u < 60; u++ {
				for v := uint32(0); v < 60; v++ {
					want := oracle[u][v]
					if got := idxHL.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncHL+(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
					if got := idxFD.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncFD(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
					if got := idxPLL.Query(u, v); got != want {
						t.Fatalf("seed %d step %d: IncPLL(%d,%d)=%d want %d", seed, i, u, v, got, want)
					}
				}
			}
		}
	}
}

// TestDifferentialFullyDynamic drives the same mixed insert/delete stream
// through IncHL+/DecHL and the fully dynamic IncFD baseline — the system
// the paper compares against, reproduced here complete with its deletion
// path — and requires both to agree with the all-pairs BFS oracle on every
// query, including Inf for pairs the deletions disconnected. IncPLL is
// append-only and sits this one out.
func TestDifferentialFullyDynamic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed*19 + 7))
		base := testutil.RandomGraph(55, 100, 700+seed)
		lm := landmark.ByDegree(base, 5)

		gHL := base.Clone()
		idxHL, err := hcl.Build(gHL, lm)
		if err != nil {
			t.Fatal(err)
		}
		updHL := inchl.New(idxHL)

		gFD := base.Clone()
		idxFD, err := fulldyn.Build(gFD, lm)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 60; step++ {
			u := uint32(rng.Intn(55))
			v := uint32(rng.Intn(55))
			if u == v {
				continue
			}
			if gHL.HasEdge(u, v) {
				if _, err := updHL.DeleteEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: DecHL delete: %v", seed, step, err)
				}
				if err := idxFD.DeleteEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: IncFD delete: %v", seed, step, err)
				}
			} else {
				if _, err := updHL.InsertEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: IncHL+ insert: %v", seed, step, err)
				}
				if err := idxFD.InsertEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: IncFD insert: %v", seed, step, err)
				}
			}
			if step%6 != 5 {
				continue
			}
			oracle := testutil.AllPairsOracle(gHL)
			for a := uint32(0); a < 55; a++ {
				for b := uint32(0); b < 55; b++ {
					want := oracle[a][b]
					if got := idxHL.Query(a, b); got != want {
						t.Fatalf("seed %d step %d: IncHL+(%d,%d)=%d want %d", seed, step, a, b, got, want)
					}
					if got := idxFD.Query(a, b); got != want {
						t.Fatalf("seed %d step %d: IncFD(%d,%d)=%d want %d", seed, step, a, b, got, want)
					}
				}
			}
		}
		if err := idxHL.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := idxFD.VerifyTrees(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialUpperBounds pins the relationship between the two
// landmark upper bounds: IncFD's full-tree bound can never be worse than
// IncHL+'s label bound is exact-or-above, and both dominate the true
// distance.
func TestDifferentialUpperBounds(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 90, 77)
	lm := landmark.ByDegree(g, 5)
	idxHL, err := hcl.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	idxFD, err := fulldyn.Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	oracle := testutil.AllPairsOracle(g)
	for u := uint32(0); u < 50; u++ {
		for v := uint32(0); v < 50; v++ {
			d := oracle[u][v]
			hb := idxHL.UpperBound(u, v)
			fb := idxFD.UpperBound(u, v)
			if hb < d || fb < d {
				t.Fatalf("upper bound below true distance at (%d,%d): HL %d FD %d true %d", u, v, hb, fb, d)
			}
			// Both bounds route through landmarks; HL's minimal labels must
			// not lose exactness relative to FD's complete trees.
			// HL's bound dominates FD's: for the landmark r achieving FD's
			// d(u,r)+d(r,v), decomposing both legs through u's and v's best
			// entries and the highway triangle inequality gives a pair term
			// no larger, so hb ≤ fb always.
			if hb > fb {
				t.Fatalf("HL bound %d above FD bound %d at (%d,%d)", hb, fb, u, v)
			}
		}
	}
}
