package dynhl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	dynhl "repro"
	"repro/internal/bfs"
	"repro/internal/testutil"
)

// storeVariants builds one small oracle per variant for Store tests.
func storeVariants(t *testing.T) map[string]dynhl.Oracle {
	t.Helper()
	und, err := dynhl.Build(testutil.RandomConnectedGraph(50, 100, 7), dynhl.Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	dg := dynhl.NewDigraph(40)
	for i := 0; i < 40; i++ {
		dg.AddVertex()
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 140; i++ {
		u, v := uint32(rng.Intn(40)), uint32(rng.Intn(40))
		if u != v {
			dg.MustAddEdge(u, v)
		}
	}
	dir, err := dynhl.BuildDirected(dg, dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	wg := dynhl.NewWeightedGraph(40)
	for i := 0; i < 40; i++ {
		wg.AddVertex()
	}
	for i := 0; i < 140; i++ {
		u, v := uint32(rng.Intn(40)), uint32(rng.Intn(40))
		if u != v {
			wg.MustAddEdge(u, v, dynhl.Dist(1+rng.Intn(9)))
		}
	}
	wei, err := dynhl.BuildWeighted(wg, dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]dynhl.Oracle{"undirected": und, "directed": dir, "weighted": wei}
}

// sampleAll captures every pairwise distance of a snapshot for later
// comparison (the graphs here are small).
func sampleAll(v dynhl.View) []dynhl.Dist {
	n := v.NumVertices()
	pairs := make([]dynhl.Pair, 0, n*n)
	for u := 0; u < n; u++ {
		for w := 0; w < n; w++ {
			pairs = append(pairs, dynhl.Pair{U: uint32(u), V: uint32(w)})
		}
	}
	return v.QueryBatch(pairs)
}

// TestSnapshotIsolation pins the core snapshot contract on all variants: a
// View taken before an Apply keeps answering the old epoch's distances
// bit-for-bit, while the store serves the new epoch.
func TestSnapshotIsolation(t *testing.T) {
	for name, o := range storeVariants(t) {
		t.Run(name, func(t *testing.T) {
			st := dynhl.NewStore(o)
			if st.Epoch() != 0 {
				t.Fatalf("fresh store epoch: %d", st.Epoch())
			}
			v0 := st.Snapshot()
			before := sampleAll(v0)

			// Find two non-adjacent vertices to connect.
			var ops []dynhl.Op
			found := false
			for u := uint32(0); int(u) < v0.NumVertices() && !found; u++ {
				for w := u + 1; int(w) < v0.NumVertices() && !found; w++ {
					if v0.Query(u, w) > 1 {
						ops = append(ops, dynhl.InsertEdgeOp(u, w, 0))
						found = true
					}
				}
			}
			if !found {
				t.Fatal("no insertable pair")
			}
			ops = append(ops, dynhl.InsertVertexOp(dynhl.Arc{To: 0}))

			sums, err := st.Apply(ops)
			if err != nil {
				t.Fatal(err)
			}
			if len(sums) != len(ops) {
				t.Fatalf("summaries: %d for %d ops", len(sums), len(ops))
			}
			if sums[1].NewVertex == nil {
				t.Fatal("insert_vertex summary missing NewVertex")
			}
			if st.Epoch() != 1 {
				t.Fatalf("epoch after Apply: %d", st.Epoch())
			}
			if v0.Epoch() != 0 {
				t.Fatalf("old view's epoch changed: %d", v0.Epoch())
			}
			after := sampleAll(v0)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("old view answer %d changed: %d -> %d", i, before[i], after[i])
				}
			}
			v1 := st.Snapshot()
			if v1.Epoch() != 1 {
				t.Fatalf("new view epoch: %d", v1.Epoch())
			}
			if v1.NumVertices() != v0.NumVertices()+1 {
				t.Fatalf("new view vertices: %d, old %d", v1.NumVertices(), v0.NumVertices())
			}
			if v1.Query(ops[0].U, ops[0].V) != 1 {
				t.Fatalf("new view misses the inserted edge")
			}
			if err := st.Verify(); err != nil {
				t.Fatal(err)
			}

			// An empty batch publishes nothing.
			if sums, err := st.Apply(nil); err != nil || sums != nil {
				t.Fatalf("empty Apply: %v %v", sums, err)
			}
			if st.Epoch() != 1 {
				t.Fatalf("empty Apply bumped the epoch: %d", st.Epoch())
			}
		})
	}
}

// TestApplyAllOrNothing pins the transactional contract: a batch that fails
// mid-way publishes nothing — the epoch is unchanged and (for the
// serialisable variant) the labelling is byte-identical.
func TestApplyAllOrNothing(t *testing.T) {
	for name, o := range storeVariants(t) {
		t.Run(name, func(t *testing.T) {
			st := dynhl.NewStore(o)
			// A first successful batch, so we are not failing off epoch 0.
			if _, err := st.Apply([]dynhl.Op{dynhl.InsertVertexOp(dynhl.Arc{To: 1})}); err != nil {
				t.Fatal(err)
			}
			epoch := st.Epoch()
			v := st.Snapshot()
			before := sampleAll(v)
			var savedBefore bytes.Buffer
			canSave := st.Save(&savedBefore) == nil

			// insert a valid edge, then delete a missing one: fails on op 1.
			var goodU, goodV uint32
			found := false
			for u := uint32(0); int(u) < v.NumVertices() && !found; u++ {
				for w := u + 1; int(w) < v.NumVertices() && !found; w++ {
					if v.Query(u, w) > 1 {
						goodU, goodV = u, w
						found = true
					}
				}
			}
			if !found {
				t.Fatal("no insertable pair")
			}
			_, err := st.Apply([]dynhl.Op{
				dynhl.InsertEdgeOp(goodU, goodV, 0),
				dynhl.DeleteEdgeOp(goodU, goodV+1000), // unknown vertex
			})
			if err == nil {
				t.Fatal("mixed batch must fail")
			}
			if !errors.Is(err, dynhl.ErrNoSuchVertex) {
				t.Fatalf("error must wrap the sentinel: %v", err)
			}
			if st.Epoch() != epoch {
				t.Fatalf("failed batch bumped the epoch: %d -> %d", epoch, st.Epoch())
			}
			cur := st.Snapshot()
			if cur.Query(goodU, goodV) == 1 {
				t.Fatal("half-applied batch is visible")
			}
			after := sampleAll(cur)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("distance %d changed across a failed batch", i)
				}
			}
			if canSave {
				var savedAfter bytes.Buffer
				if err := st.Save(&savedAfter); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(savedBefore.Bytes(), savedAfter.Bytes()) {
					t.Fatal("labelling not byte-identical after a failed batch")
				}
			}
			if err := st.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestApplyAllOrNothingHammer races concurrent batch readers against a
// writer that interleaves succeeding batches with batches engineered to
// fail after their first op. Readers assert two things under -race: the
// failed batches' first op is never visible (all-or-nothing), and every
// batch they run is internally consistent with a single epoch.
func TestApplyAllOrNothingHammer(t *testing.T) {
	const n = 100
	g := testutil.RandomConnectedGraph(n, 220, 13)
	// Reserve a marker pair: never connected by the generator or the
	// writer's successful batches.
	marker := testutil.NonEdges(g, 1, 99)[0]
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(5))
		for step := 0; step < 120; step++ {
			if step%3 == 0 {
				// Failing batch: its first op inserts the marker edge, its
				// second deletes a non-existent edge. The fork must be
				// discarded whole — no reader may ever see the marker.
				_, err := st.Apply([]dynhl.Op{
					dynhl.InsertEdgeOp(marker[0], marker[1], 0),
					dynhl.DeleteEdgeOp(0, 9999),
				})
				if err == nil {
					errs <- fmt.Errorf("engineered batch did not fail")
					return
				}
				continue
			}
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u == v || (u == marker[0] && v == marker[1]) || (u == marker[1] && v == marker[0]) {
				continue
			}
			cur := st.Unwrap().(*dynhl.Index).Graph()
			var ops []dynhl.Op
			if cur.HasEdge(u, v) {
				ops = append(ops, dynhl.DeleteEdgeOp(u, v))
			} else {
				ops = append(ops, dynhl.InsertEdgeOp(u, v, 0))
			}
			if _, err := st.Apply(ops); err != nil {
				errs <- err
				return
			}
		}
	}()

	readers := 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				v := st.Snapshot()
				if d := v.Query(marker[0], marker[1]); d == 1 {
					errs <- fmt.Errorf("epoch %d: marker edge of a failed batch is visible", v.Epoch())
					return
				}
				pairs := make([]dynhl.Pair, 40)
				for i := range pairs {
					pairs[i] = dynhl.Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
				}
				// The same batch against the same View twice must agree
				// exactly: a View never mixes epochs.
				a := v.QueryBatch(pairs)
				b := v.QueryBatch(pairs)
				for i := range a {
					if a[i] != b[i] {
						errs <- fmt.Errorf("epoch %d: view answered pair %d differently twice: %d vs %d",
							v.Epoch(), i, a[i], b[i])
						return
					}
				}
			}
		}(int64(300 + r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialEpochConsistency interleaves Apply batches with
// concurrent batch queries and checks every batch against BFS ground truth
// for the exact epoch the reader's snapshot carries — the differential
// proof that QueryBatch answers are always consistent with a single epoch.
func TestDifferentialEpochConsistency(t *testing.T) {
	const n = 80
	g := testutil.RandomConnectedGraph(n, 170, 17)
	idx, err := dynhl.Build(g.Clone(), dynhl.Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)

	// truth maps epoch -> frozen ground-truth graph. Epoch 0 is the build.
	var truth sync.Map
	truth.Store(uint64(0), g.Clone())

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(23))
		shadow := g.Clone()
		for step := 0; step < 40; step++ {
			// Build a random mixed batch against the shadow graph.
			var ops []dynhl.Op
			for len(ops) < 4 {
				u := uint32(rng.Intn(n))
				v := uint32(rng.Intn(n))
				if u == v {
					continue
				}
				if shadow.HasEdge(u, v) {
					shadow.RemoveEdge(u, v)
					ops = append(ops, dynhl.DeleteEdgeOp(u, v))
				} else {
					shadow.MustAddEdge(u, v)
					ops = append(ops, dynhl.InsertEdgeOp(u, v, 0))
				}
			}
			if _, err := st.Apply(ops); err != nil {
				errs <- err
				return
			}
			truth.Store(st.Epoch(), shadow.Clone())
		}
	}()

	readers := 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			checked := 0
			for !done.Load() || checked == 0 {
				v := st.Snapshot()
				pairs := make([]dynhl.Pair, 32)
				for i := range pairs {
					pairs[i] = dynhl.Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
				}
				ds := v.QueryBatch(pairs)
				gt, ok := truth.Load(v.Epoch())
				if !ok {
					continue // writer has not recorded this epoch yet
				}
				tg := gt.(*dynhl.Graph)
				for i, p := range pairs {
					if want := bfs.Dist(tg, p.U, p.V); ds[i] != want {
						errs <- fmt.Errorf("epoch %d: d(%d,%d) = %d, ground truth %d",
							v.Epoch(), p.U, p.V, ds[i], want)
						return
					}
				}
				checked++
			}
		}(int64(400 + r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestQueryBatchCtx pins the context-aware batch path: live contexts answer
// exactly like QueryBatch, cancelled ones fail fast with the context error.
func TestQueryBatchCtx(t *testing.T) {
	idx, err := dynhl.Build(testutil.RandomConnectedGraph(60, 120, 3), dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)
	rng := rand.New(rand.NewSource(1))
	pairs := make([]dynhl.Pair, 500)
	for i := range pairs {
		pairs[i] = dynhl.Pair{U: uint32(rng.Intn(60)), V: uint32(rng.Intn(60))}
	}
	got, err := st.QueryBatchCtx(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := st.QueryBatch(pairs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: ctx batch %d, plain batch %d", i, got[i], want[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.Snapshot().QueryBatchCtx(ctx, pairs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
}

// TestStoreSaveLoad pins capability forwarding through snapshots: Save
// writes the current epoch without blocking, Load publishes a new one, and
// variants without the capability answer errors.ErrUnsupported.
func TestStoreSaveLoad(t *testing.T) {
	idx, err := dynhl.Build(testutil.RandomConnectedGraph(30, 60, 6), dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	epoch := st.Epoch()
	if err := st.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != epoch+1 {
		t.Fatalf("Load must publish a new epoch: %d -> %d", epoch, st.Epoch())
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}

	g := dynhl.NewDigraph(0)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 4; i++ {
		g.MustAddEdge(i, i+1)
	}
	dir, err := dynhl.BuildDirected(g, dynhl.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every variant serialises now; a directed store round-trips through
	// Save/Load and answers identically afterwards.
	ds := dynhl.NewStore(dir)
	var dbuf bytes.Buffer
	if err := ds.Save(&dbuf); err != nil {
		t.Fatalf("directed Save: %v", err)
	}
	before := ds.Query(0, 4)
	dirEpoch := ds.Epoch()
	if err := ds.Load(bytes.NewReader(dbuf.Bytes())); err != nil {
		t.Fatalf("directed Load: %v", err)
	}
	if ds.Epoch() != dirEpoch+1 {
		t.Fatalf("directed Load must publish a new epoch: %d -> %d", dirEpoch, ds.Epoch())
	}
	if got := ds.Query(0, 4); got != before {
		t.Fatalf("directed Load changed answers: %d vs %d", got, before)
	}
	if err := ds.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestOpJSONRoundTrip pins the wire encoding of op batches.
func TestOpJSONRoundTrip(t *testing.T) {
	ops := []dynhl.Op{
		dynhl.InsertEdgeOp(1, 2, 3),
		dynhl.DeleteEdgeOp(4, 5),
		dynhl.InsertVertexOp(dynhl.Arc{To: 6, W: 2}, dynhl.Arc{To: 7, In: true}),
		dynhl.DeleteVertexOp(8),
	}
	b, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"insert_edge"`, `"delete_edge"`, `"insert_vertex"`, `"delete_vertex"`} {
		if !bytes.Contains(b, []byte(want)) {
			t.Fatalf("encoding %s misses %s", b, want)
		}
	}
	var back []dynhl.Op
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip length: %d", len(back))
	}
	for i := range ops {
		if back[i].Kind != ops[i].Kind || back[i].U != ops[i].U || back[i].V != ops[i].V || back[i].W != ops[i].W {
			t.Fatalf("op %d round trip: %+v != %+v", i, back[i], ops[i])
		}
	}
	var bad dynhl.Op
	if err := json.Unmarshal([]byte(`{"op":"explode"}`), &bad); err == nil {
		t.Fatal("unknown op kind must not decode")
	}
}

// opaqueOracle hides the concrete variant from the Store, forcing the
// RWMutex fallback for oracles the package cannot fork.
type opaqueOracle struct{ inner dynhl.Oracle }

func (o *opaqueOracle) Query(u, v uint32) dynhl.Dist           { return o.inner.Query(u, v) }
func (o *opaqueOracle) QueryBatch(p []dynhl.Pair) []dynhl.Dist { return o.inner.QueryBatch(p) }
func (o *opaqueOracle) NumVertices() int                       { return o.inner.NumVertices() }
func (o *opaqueOracle) Stats() dynhl.Stats                     { return o.inner.Stats() }
func (o *opaqueOracle) Verify() error                          { return o.inner.Verify() }
func (o *opaqueOracle) DeleteEdge(u, v uint32) (dynhl.UpdateSummary, error) {
	return o.inner.DeleteEdge(u, v)
}
func (o *opaqueOracle) DeleteVertex(v uint32) (dynhl.UpdateSummary, error) {
	return o.inner.DeleteVertex(v)
}
func (o *opaqueOracle) InsertEdge(u, v uint32, w dynhl.Dist) (dynhl.UpdateSummary, error) {
	return o.inner.InsertEdge(u, v, w)
}
func (o *opaqueOracle) InsertVertex(a []dynhl.Arc) (uint32, dynhl.UpdateSummary, error) {
	return o.inner.InsertVertex(a)
}
func (o *opaqueOracle) Apply(ops []dynhl.Op) ([]dynhl.UpdateSummary, error) {
	return o.inner.Apply(ops)
}

// TestStoreFallback pins the compatibility path for unknown Oracle
// implementations: epochs still advance and queries stay correct, guarded
// by the fallback lock instead of snapshots.
func TestStoreFallback(t *testing.T) {
	idx, err := dynhl.Build(testutil.RandomConnectedGraph(30, 60, 9), dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(&opaqueOracle{inner: idx})
	v := st.Snapshot()
	var u, w uint32
	found := false
	for a := uint32(0); a < 30 && !found; a++ {
		for b := a + 1; b < 30 && !found; b++ {
			if v.Query(a, b) > 1 {
				u, w = a, b
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no insertable pair")
	}
	if _, err := st.Apply([]dynhl.Op{dynhl.InsertEdgeOp(u, w, 0)}); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("fallback epoch: %d", st.Epoch())
	}
	if d := st.Query(u, w); d != 1 {
		t.Fatalf("fallback query after insert: %d", d)
	}
	// Fallback views are live, not pinned: the wrapped oracle mutates in
	// place, so Epoch must track the answers rather than claim a pinned
	// version that no longer exists.
	if v.Epoch() != 1 {
		t.Fatalf("fallback view epoch must be live: %d", v.Epoch())
	}
	if d := v.Query(u, w); d != 1 {
		t.Fatalf("fallback view query: %d", d)
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyEpochAttribution pins that ApplyEpoch reports the epoch each
// batch actually published, even when other publishes land in between.
func TestApplyEpochAttribution(t *testing.T) {
	idx, err := dynhl.Build(testutil.RandomConnectedGraph(30, 60, 21), dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)
	edges := testutil.NonEdges(idx.Graph(), 3, 2)
	for i, e := range edges {
		_, epoch, err := st.ApplyEpoch([]dynhl.Op{dynhl.InsertEdgeOp(e[0], e[1], 0)})
		if err != nil {
			t.Fatal(err)
		}
		if epoch != uint64(i+1) {
			t.Fatalf("batch %d attributed to epoch %d", i, epoch)
		}
	}
	// A failed batch reports the unchanged epoch it saw.
	if _, epoch, err := st.ApplyEpoch([]dynhl.Op{dynhl.DeleteEdgeOp(0, 9999)}); err == nil || epoch != uint64(len(edges)) {
		t.Fatalf("failed batch: epoch %d err %v", epoch, err)
	}
	// LoadEpoch round trip attributes the published epoch.
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	epoch, err := st.LoadEpoch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != uint64(len(edges)+1) {
		t.Fatalf("LoadEpoch attributed %d", epoch)
	}
}

// TestConcurrentShim pins that the compatibility wrapper shares its Store:
// epochs and snapshots are visible through both names.
func TestConcurrentShim(t *testing.T) {
	idx, err := dynhl.Build(testutil.RandomConnectedGraph(30, 60, 11), dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := dynhl.NewStore(idx)
	co := dynhl.Concurrent(st)
	if co.Store != st {
		t.Fatal("Concurrent(Store) must share the store")
	}
	if dynhl.NewStore(co) != st {
		t.Fatal("NewStore(ConcurrentOracle) must unwrap to the same store")
	}
	if dynhl.Concurrent(co) != co {
		t.Fatal("Concurrent(ConcurrentOracle) must be a no-op")
	}
	v := co.Snapshot()
	if v.Epoch() != 0 {
		t.Fatalf("shim snapshot epoch: %d", v.Epoch())
	}
}
