package dynhl

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bfs"
	"repro/internal/testutil"
)

// TestConcurrentHammer races parallel Query/QueryBatch readers against an
// IncHL+ writer through the Concurrent wrapper. Run it under -race. During
// the stream, readers check the one invariant insertions guarantee —
// distances never increase; afterwards the final state is audited against
// BFS ground truth.
func TestConcurrentHammer(t *testing.T) {
	const n = 150
	g := testutil.RandomConnectedGraph(n, 300, 21)
	inserts := testutil.NonEdges(g, 80, 5)
	idx, err := Build(g, Options{Landmarks: 8})
	if err != nil {
		t.Fatal(err)
	}
	co := Concurrent(idx)

	readers := runtime.GOMAXPROCS(0)
	if readers < 4 {
		readers = 4
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: the rare-update side of the workload — edge insertions plus a
	// few vertex insertions, all through the write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i, e := range inserts {
			if _, err := co.InsertEdge(e[0], e[1], 0); err != nil {
				errs <- err
				return
			}
			if i%20 == 19 {
				if _, _, err := co.InsertVertex(Arcs(e[0], e[1])); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	// Readers: single queries and batches over the original vertex set,
	// asserting distances are non-increasing under insertions.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			last := make(map[[2]uint32]Dist)
			check := func(u, v uint32, d Dist) bool {
				key := [2]uint32{u, v}
				if prev, ok := last[key]; ok && d > prev {
					errs <- fmt.Errorf("distance d(%d,%d) increased %d -> %d under insertions", u, v, prev, d)
					return false
				}
				last[key] = d
				return true
			}
			for !done.Load() {
				u := uint32(rng.Intn(n))
				v := uint32(rng.Intn(n))
				if !check(u, v, co.Query(u, v)) {
					return
				}
				pairs := make([]Pair, 64)
				for i := range pairs {
					pairs[i] = Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
				}
				for i, d := range co.QueryBatch(pairs) {
					if !check(pairs[i].U, pairs[i].V, d) {
						return
					}
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Quiesced: audit the labelling and spot-check against BFS. The
	// original idx is frozen at epoch 0 — the published snapshot holds the
	// post-update state.
	if err := co.Verify(); err != nil {
		t.Fatal(err)
	}
	final := co.Unwrap().(*Index).Graph()
	rng := rand.New(rand.NewSource(77))
	pairs := make([]Pair, 200)
	for i := range pairs {
		pairs[i] = Pair{U: uint32(rng.Intn(final.NumVertices())), V: uint32(rng.Intn(final.NumVertices()))}
	}
	ds := co.QueryBatch(pairs)
	for i, p := range pairs {
		if want := bfs.Dist(final, p.U, p.V); ds[i] != want {
			t.Fatalf("QueryBatch pair (%d,%d): got %d, want %d", p.U, p.V, ds[i], want)
		}
	}
}

// TestConcurrentHammerFullyDynamic races parallel readers against a writer
// issuing a mixed insert/delete stream — the fully dynamic workload. With
// deletions in play distances move both ways, so readers only assert cheap
// invariants (d(u,u) = 0, and d(u,v) ≥ 1 for u ≠ v); the real check is the
// race detector during the stream plus the full BFS audit once quiesced,
// which also covers disconnections (Inf answers) the deletions caused.
func TestConcurrentHammerFullyDynamic(t *testing.T) {
	const n = 120
	g := testutil.RandomConnectedGraph(n, 260, 33)
	idx, err := Build(g, Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	co := Concurrent(idx)

	readers := runtime.GOMAXPROCS(0)
	if readers < 4 {
		readers = 4
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: inserts and deletes interleaved, including delete-then-
	// reinsert round trips and deletions of long-standing (bridge-capable)
	// edges that can disconnect regions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(55))
		for step := 0; step < 150; step++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u == v {
				continue
			}
			if co.Unwrap().(*Index).Graph().HasEdge(u, v) {
				if _, err := co.DeleteEdge(u, v); err != nil {
					errs <- err
					return
				}
				if step%3 == 0 { // reinsert a third of the deletions
					if _, err := co.InsertEdge(u, v, 0); err != nil {
						errs <- err
						return
					}
				}
			} else {
				if _, err := co.InsertEdge(u, v, 0); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				u := uint32(rng.Intn(n))
				if d := co.Query(u, u); d != 0 {
					errs <- fmt.Errorf("d(%d,%d) = %d, want 0", u, u, d)
					return
				}
				pairs := make([]Pair, 48)
				for i := range pairs {
					pairs[i] = Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
				}
				for i, d := range co.QueryBatch(pairs) {
					if pairs[i].U != pairs[i].V && d == 0 {
						errs <- fmt.Errorf("d(%d,%d) = 0 for distinct vertices", pairs[i].U, pairs[i].V)
						return
					}
				}
			}
		}(int64(200 + r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := co.Verify(); err != nil {
		t.Fatal(err)
	}
	final := co.Unwrap().(*Index).Graph()
	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 300; i++ {
		u := uint32(rng.Intn(final.NumVertices()))
		v := uint32(rng.Intn(final.NumVertices()))
		want := bfs.Dist(final, u, v) // Inf for pairs the deletions disconnected
		if got := co.Query(u, v); got != want {
			t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, want)
		}
	}
}

// TestConcurrentAllVariants drives the three variants through the same
// Oracle-typed harness, pinning that the wrapper works for each.
func TestConcurrentAllVariants(t *testing.T) {
	build := map[string]func(t *testing.T) Oracle{
		"undirected": func(t *testing.T) Oracle {
			idx, err := Build(testutil.RandomConnectedGraph(40, 80, 2), Options{Landmarks: 4})
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"directed": func(t *testing.T) Oracle {
			g := NewDigraph(40)
			for i := 0; i < 40; i++ {
				g.AddVertex()
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 120; i++ {
				u, v := uint32(rng.Intn(40)), uint32(rng.Intn(40))
				if u != v {
					g.MustAddEdge(u, v)
				}
			}
			idx, err := BuildDirected(g, Options{Landmarks: 4})
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"weighted": func(t *testing.T) Oracle {
			g := NewWeightedGraph(40)
			for i := 0; i < 40; i++ {
				g.AddVertex()
			}
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 120; i++ {
				u, v := uint32(rng.Intn(40)), uint32(rng.Intn(40))
				if u != v {
					g.MustAddEdge(u, v, Dist(1+rng.Intn(9)))
				}
			}
			idx, err := BuildWeighted(g, Options{Landmarks: 4})
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			co := Concurrent(mk(t))
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 200; i++ {
						co.Query(uint32(rng.Intn(40)), uint32(rng.Intn(40)))
					}
				}(int64(r))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(9))
				for i := 0; i < 20; i++ {
					u, v := uint32(rng.Intn(40)), uint32(rng.Intn(40))
					if u == v {
						continue
					}
					if i%2 == 0 {
						_, _ = co.InsertEdge(u, v, 0) // duplicates just error
					} else {
						_, _ = co.DeleteEdge(u, v) // missing edges just error
					}
				}
			}()
			wg.Wait()
			if err := co.Verify(); err != nil {
				t.Fatal(err)
			}
			// Batch answers must agree with single queries once quiet.
			pairs := []Pair{{U: 0, V: 1}, {U: 5, V: 30}, {U: 12, V: 12}}
			ds := co.QueryBatch(pairs)
			for i, p := range pairs {
				if got := co.Query(p.U, p.V); got != ds[i] {
					t.Fatalf("batch/single mismatch on %+v: %d vs %d", p, ds[i], got)
				}
			}
		})
	}
}

// TestConcurrentCapabilities pins the wrapper's Saver/Loader forwarding and
// idempotent wrapping.
func TestConcurrentCapabilities(t *testing.T) {
	idx, err := Build(testutil.RandomConnectedGraph(30, 60, 6), Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	co := Concurrent(idx)
	if Concurrent(co) != co {
		t.Error("wrapping a ConcurrentOracle must be a no-op")
	}
	var buf bytes.Buffer
	if err := co.Save(&buf); err != nil {
		t.Fatalf("Save through wrapper: %v", err)
	}
	if err := co.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load through wrapper: %v", err)
	}
	if err := co.Verify(); err != nil {
		t.Fatal(err)
	}

	g := NewDigraph(0)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 4; i++ {
		g.MustAddEdge(i, i+1)
	}
	dir, err := BuildDirected(g, Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var dbuf bytes.Buffer
	if err := Concurrent(dir).Save(&dbuf); err != nil {
		t.Errorf("directed Save through the shim: %v", err)
	}
	if dbuf.Len() == 0 {
		t.Error("directed Save wrote nothing")
	}
}
