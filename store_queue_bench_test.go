package dynhl_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
	"repro/internal/wal"
)

// localPairs returns n distinct non-adjacent vertex pairs whose
// endpoints are equidistant from every landmark. An edge between
// same-level endpoints changes no landmark's distances and joins no
// landmark's shortest-path DAG, so both the IncHL+ insert repair and
// the DecHL delete repair skip every landmark (O(landmarks) lookups,
// zero rebuilds) — the benchmark's per-op cost is then purely the
// commit path (fork, pack, WAL append, fsync), which is exactly the
// cost group commit amortises.
func localPairs(b *testing.B, idx *dynhl.Index, n int) [][2]uint32 {
	b.Helper()
	g := idx.Graph()
	rng := rand.New(rand.NewSource(19))
	used := map[[2]uint32]bool{}
	var out [][2]uint32
	// Nearby vertices have correlated landmark-distance profiles, so
	// 2-hop candidates hit the level condition far more often than
	// random pairs.
	for tries := 0; len(out) < n && tries < 5_000_000; tries++ {
		u := uint32(rng.Intn(g.NumVertices()))
		nbrs := g.Neighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		w := nbrs[rng.Intn(len(nbrs))]
		nbrs2 := g.Neighbors(w)
		v := nbrs2[rng.Intn(len(nbrs2))]
		if u > v {
			u, v = v, u
		}
		if u == v || g.HasEdge(u, v) || used[[2]uint32{u, v}] {
			continue
		}
		level := true
		for _, l := range idx.Landmarks() {
			if idx.Query(l, u) != idx.Query(l, v) {
				level = false
				break
			}
		}
		if !level {
			continue
		}
		used[[2]uint32{u, v}] = true
		out = append(out, [2]uint32{u, v})
	}
	if len(out) < n {
		b.Fatalf("found only %d/%d level pairs", len(out), n)
	}
	return out
}

// BenchmarkApplyConcurrent measures sustained multi-writer throughput
// through the group-commit pipeline: W goroutines each alternate
// insert/delete of their own private edge, so every Apply is a valid
// single-op batch and the only contention is the commit path itself.
// The serialized-16 variants route the same 16 writers through an
// external mutex, which defeats coalescing (the queue never holds more
// than one request) and reproduces the pre-pipeline behaviour of one
// fork + one pack + one fsync per caller — the baseline the group commit
// is measured against. fsyncs/op is reported from the WAL's own counter;
// under coalescing it drops below 1 because one fsync covers every
// caller in the group, and epochs/op shows the coalescing factor
// directly (1/epochs-per-op callers shared each published epoch).
//
// Each writer's edge joins two vertices at distance 2 — the local
// shortcut typical of a live workload — so the IncHL+/DecHL repair per
// op is small and the benchmark isolates the commit overhead (fork,
// pack, WAL append, fsync) that group commit amortises. With random
// long-range pairs the repair itself dominates every variant and the
// pipeline's gain disappears into it.
func BenchmarkApplyConcurrent(b *testing.B) {
	g := testutil.RandomConnectedGraph(20000, 60000, 17)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 8, Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	pairs := localPairs(b, idx, 16)

	for _, fsync := range []struct {
		name   string
		policy wal.Policy
	}{
		{"fsync-always", wal.SyncAlways},
		{"fsync-interval", wal.SyncInterval},
	} {
		for _, w := range []struct {
			name       string
			writers    int
			serialized bool
		}{
			{"w1", 1, false},
			{"w4", 4, false},
			{"w16", 16, false},
			{"serialized-16", 16, true},
		} {
			b.Run(fmt.Sprintf("%s/%s", w.name, fsync.name), func(b *testing.B) {
				d, err := wal.Create(b.TempDir(), idx, wal.Options{Fsync: fsync.policy, Logf: b.Logf})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				store := d.Store()
				syncs0 := d.DurabilityStats().Syncs

				var serial sync.Mutex
				var wg sync.WaitGroup
				b.ResetTimer()
				for wi := 0; wi < w.writers; wi++ {
					wi := wi
					n := b.N / w.writers
					if wi < b.N%w.writers {
						n++
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						p := pairs[wi]
						ins := []dynhl.Op{dynhl.InsertEdgeOp(p[0], p[1], 0)}
						del := []dynhl.Op{dynhl.DeleteEdgeOp(p[0], p[1])}
						for i := 0; i < n; i++ {
							ops := ins
							if i%2 == 1 {
								ops = del
							}
							if w.serialized {
								serial.Lock()
							}
							_, err := store.Apply(ops)
							if w.serialized {
								serial.Unlock()
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				syncs := d.DurabilityStats().Syncs - syncs0
				b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/op")
				b.ReportMetric(float64(store.Epoch())/float64(b.N), "epochs/op")
			})
		}
	}
}
