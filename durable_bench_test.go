package dynhl_test

import (
	"os"
	"path/filepath"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
	"repro/internal/wal"
)

// benchOps returns alternating insert/delete ops over one initially missing
// edge, so every iteration publishes exactly one epoch and the graph ends
// where it started.
func benchEdge(b *testing.B, idx *dynhl.Index) (uint32, uint32) {
	b.Helper()
	g := idx.Graph()
	n := uint32(g.NumVertices())
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	b.Fatal("graph is complete")
	return 0, 0
}

// BenchmarkApplyDurable measures the single-op publish path with the
// write-ahead log attached, one sub-benchmark per fsync policy, against the
// plain in-memory store — the durability latency trade-off: fsync=always
// pays one fsync per publish, fsync=interval amortises it, fsync=off rides
// the page cache.
func BenchmarkApplyDurable(b *testing.B) {
	for _, tc := range []struct {
		name    string
		durable bool
		policy  wal.Policy
	}{
		{"store-only", false, 0},
		{"fsync-always", true, wal.SyncAlways},
		{"fsync-interval", true, wal.SyncInterval},
		{"fsync-off", true, wal.SyncOff},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := testutil.RandomConnectedGraph(5000, 15000, 7)
			idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 16})
			if err != nil {
				b.Fatal(err)
			}
			var store *dynhl.Store
			if tc.durable {
				d, err := wal.Create(b.TempDir(), idx, wal.Options{Fsync: tc.policy, Logf: b.Logf})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				store = d.Store()
			} else {
				store = dynhl.NewStore(idx)
			}
			u, v := benchEdge(b, idx)
			ins := []dynhl.Op{dynhl.InsertEdgeOp(u, v, 0)}
			del := []dynhl.Op{dynhl.DeleteEdgeOp(u, v)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops := ins
				if i%2 == 1 {
					ops = del
				}
				if _, err := store.Apply(ops); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N%2 == 1 { // leave the graph as found for the deferred Close
				if _, err := store.Apply(del); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoverVsRebuild is the subsystem's reason to exist: restoring a
// serving node from checkpoint plus log tail versus reconstructing the
// labelling from the raw graph — the full-construction cost the paper's
// incremental maintenance is designed to avoid.
func BenchmarkRecoverVsRebuild(b *testing.B) {
	const (
		vertices  = 50000
		extra     = 150000
		landmarks = 16
		tail      = 20 // log records left unreplayed, as after a crash
	)
	g := testutil.RandomConnectedGraph(vertices, extra, 11)
	final := g.Clone()
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: landmarks})
	if err != nil {
		b.Fatal(err)
	}

	// A durable directory with a crash-shaped state: base checkpoint plus a
	// tail of logged batches nothing checkpointed. The Durable stays open
	// (as a crashed process's files would) and every recovery works on a
	// private copy.
	fixture := b.TempDir()
	d, err := wal.Create(fixture, idx, wal.Options{Fsync: wal.SyncAlways, Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	store := d.Store()
	for i := 0; i < tail; i++ {
		// The store forks per publish, so re-resolve the current snapshot's
		// index to find an edge that is still missing.
		u, v := benchEdge(b, store.Unwrap().(*dynhl.Index))
		if _, err := store.Apply([]dynhl.Op{dynhl.InsertEdgeOp(u, v, 0)}); err != nil {
			b.Fatal(err)
		}
		final.MustAddEdge(u, v)
	}

	// A second fixture shut down gracefully: its final checkpoint makes the
	// log tail empty, the common restart case.
	clean := b.TempDir()
	copyDir(b, fixture, clean)
	dc, err := wal.Recover(clean, wal.Options{Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			copyDir(b, fixture, dir)
			b.StartTimer()
			r, err := wal.Recover(dir, wal.Options{Logf: b.Logf})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if r.Epoch() != uint64(tail) || r.Replayed() != tail {
				b.Fatalf("recovered epoch %d (replayed %d), want %d", r.Epoch(), r.Replayed(), tail)
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("recover-clean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			copyDir(b, clean, dir)
			b.StartTimer()
			r, err := wal.Recover(dir, wal.Options{Logf: b.Logf})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if r.Epoch() != uint64(tail) || r.Replayed() != 0 {
				b.Fatalf("recovered epoch %d (replayed %d), want %d replaying nothing", r.Epoch(), r.Replayed(), tail)
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := final.Clone()
			b.StartTimer()
			if _, err := dynhl.Build(work, dynhl.Options{Landmarks: landmarks}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// copyDir copies the fixture state so a recovery can own (and truncate) it.
func copyDir(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
	if err != nil {
		b.Fatal(err)
	}
}
