// Package dynhl answers exact shortest-path distance queries on large
// dynamic graphs and keeps its index up to date under edge and vertex
// insertions and deletions, implementing "Efficient Maintenance of Distance
// Labelling for Incremental Updates in Large Dynamic Graphs" (Farhan &
// Wang, EDBT 2021) and extending it to the fully dynamic setting.
//
// The index is a highway cover labelling: a small set of landmark vertices,
// the exact landmark-to-landmark distance matrix (the highway), and one
// compact distance label per vertex. Queries combine a highway upper bound
// with a bounded bidirectional search; insertions are absorbed by IncHL+,
// which finds the affected vertices with a jumped BFS and repairs exactly
// their labels while preserving labelling minimality — outdated and
// redundant entries are removed, so the index does not grow stale or bloated
// as the graph evolves.
//
// Deletions — which the paper leaves to its IncFD baseline — are absorbed
// by the decremental counterpart DecHL: the removed edge is tested against
// each landmark's labelled distances (it lies on a landmark's shortest-path
// DAG iff the endpoint distances differ by exactly the edge weight), and
// only the affected landmarks re-run their covered search to patch labels
// and highway entries, resetting to Inf whatever the deletion disconnected.
// The repaired labelling is identical to a fresh build, so minimality is
// preserved in both directions of churn.
//
// # The Oracle interface
//
// All three index variants present one API, the Oracle interface: Index
// over undirected unweighted graphs (the paper's main setting), and the
// Section 5 extensions DirectedIndex (forward and backward labels per
// vertex) and WeightedIndex (Dijkstra replaces BFS). Each is built by an
// Options-driven constructor — Build, BuildDirected, BuildWeighted — with
// the same landmark-count, selection-strategy and seed knobs. Code written
// against Oracle, like the HTTP service in internal/httpapi, serves any
// variant:
//
//	g := dynhl.NewGraph(0)
//	// ... add vertices and edges ...
//	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 20})
//	d := idx.Query(u, v)              // exact distance, Inf if disconnected
//	ds := idx.QueryBatch(pairs)       // many pairs at once
//	idx.InsertEdge(a, b, 0)           // graph + index updated together
//	idx.InsertVertex(dynhl.Arcs(a))   // new vertex with initial neighbours
//	idx.DeleteEdge(a, b)              // DecHL repair; ErrNoSuchEdge if absent
//	idx.DeleteVertex(v)               // isolate v (id survives, queries Inf)
//
// The weight argument of InsertEdge and the Arc fields W/In exist for the
// weighted and directed variants; unweighted oracles reject weights > 1
// rather than silently dropping them. Mutations report failures through the
// sentinel errors ErrNoSuchVertex, ErrNoSuchEdge and ErrEdgeExists, which
// wrap through every layer up to the HTTP service. Capability interfaces
// cover what not every variant can do: Saver and Loader (labelling
// serialisation, currently the undirected Index).
//
// # Concurrency
//
// Queries on every variant are safe for any number of concurrent readers —
// each in-flight query draws its own scratch from a pool — but readers must
// not race insertions. The Concurrent wrapper packages that contract for
// the paper's target workloads (microsecond read-only lookups, rare
// repairs): an RWMutex lets queries from any number of goroutines run in
// parallel across cores while IncHL+ writes are serialised, and its
// QueryBatch fans one batch across workers:
//
//	co := dynhl.Concurrent(idx)
//	go co.InsertEdge(a, b, 0)          // exclusive
//	d := co.Query(u, v)                // parallel with other readers
//	ds := co.QueryBatch(pairs)         // fanned across GOMAXPROCS workers
//
// The internal packages hold the substrates and baselines used by the
// reproduction study: internal/hcl (static labelling), internal/inchl (the
// IncHL+ algorithm), internal/pll and internal/fulldyn (the IncPLL and
// IncFD baselines), internal/gen and internal/dataset (synthetic proxies of
// the paper's 12 networks) and internal/exper (the harness regenerating
// every table and figure of the paper; see EXPERIMENTS.md).
package dynhl
