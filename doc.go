// Package dynhl answers exact shortest-path distance queries on large
// dynamic graphs and keeps its index up to date under edge and vertex
// insertions and deletions, implementing "Efficient Maintenance of Distance
// Labelling for Incremental Updates in Large Dynamic Graphs" (Farhan &
// Wang, EDBT 2021) and extending it to the fully dynamic setting.
//
// The index is a highway cover labelling: a small set of landmark vertices,
// the exact landmark-to-landmark distance matrix (the highway), and one
// compact distance label per vertex. Queries combine a highway upper bound
// with a bounded bidirectional search; insertions are absorbed by IncHL+,
// which finds the affected vertices with a jumped BFS and repairs exactly
// their labels while preserving labelling minimality — outdated and
// redundant entries are removed, so the index does not grow stale or bloated
// as the graph evolves.
//
// Deletions — which the paper leaves to its IncFD baseline — are absorbed
// by the decremental counterpart DecHL: the removed edge is tested against
// each landmark's labelled distances (it lies on a landmark's shortest-path
// DAG iff the endpoint distances differ by exactly the edge weight), and
// only the affected landmarks re-run their covered search to patch labels
// and highway entries, resetting to Inf whatever the deletion disconnected.
// The repaired labelling is identical to a fresh build, so minimality is
// preserved in both directions of churn.
//
// # The Oracle interface
//
// All three index variants present one API, the Oracle interface: Index
// over undirected unweighted graphs (the paper's main setting), and the
// Section 5 extensions DirectedIndex (forward and backward labels per
// vertex) and WeightedIndex (Dijkstra replaces BFS). Each is built by an
// Options-driven constructor — Build, BuildDirected, BuildWeighted — with
// the same landmark-count, selection-strategy and seed knobs. Code written
// against Oracle, like the HTTP service in internal/httpapi, serves any
// variant:
//
//	g := dynhl.NewGraph(0)
//	// ... add vertices and edges ...
//	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 20})
//	d := idx.Query(u, v)              // exact distance, Inf if disconnected
//	ds := idx.QueryBatch(pairs)       // many pairs at once
//	idx.InsertEdge(a, b, 0)           // graph + index updated together
//	idx.InsertVertex(dynhl.Arcs(a))   // new vertex with initial neighbours
//	idx.DeleteEdge(a, b)              // DecHL repair; ErrNoSuchEdge if absent
//	idx.DeleteVertex(v)               // isolate v (id survives, queries Inf)
//
// The weight argument of InsertEdge and the Arc fields W/In exist for the
// weighted and directed variants; unweighted oracles reject weights > 1
// rather than silently dropping them. Mutations report failures through the
// sentinel errors ErrNoSuchVertex, ErrNoSuchEdge and ErrEdgeExists, which
// wrap through every layer up to the HTTP service. Capability interfaces
// cover what not every variant can do: Saver and Loader (labelling
// serialisation, currently the undirected Index). Batches of mutations are
// expressed as []Op (InsertEdgeOp, DeleteEdgeOp, InsertVertexOp,
// DeleteVertexOp) and applied with Oracle.Apply.
//
// # Concurrency: versioned snapshots
//
// Queries on every variant are safe for any number of concurrent readers —
// each in-flight query draws its own scratch from a pool — but readers must
// not race mutations. The Store packages that contract for the paper's
// target workloads (microsecond read-only lookups, rare repairs) around
// immutable published snapshots instead of locks:
//
//   - Readers load the current snapshot with one atomic pointer load and
//     run entirely lock-free. No repair — however long — ever stalls a
//     query, and a batch of queries is always answered by a single version.
//
//   - The writer applies a batch of ops to a private copy-on-write fork of
//     the index (only the adjacency lists and per-vertex label slices the
//     repairs actually touch are copied; everything else is shared
//     structurally with the published snapshot) and then publishes the fork
//     atomically as the next epoch. One fork amortises across the batch.
//
//   - A batch that fails mid-way is discarded whole: the epoch does not
//     advance and readers never observe a half-applied batch.
//
// In code:
//
//	st := dynhl.NewStore(idx)
//	res, err := st.ApplyCtx(ctx, ops)  // canonical write call, see below
//	d := st.Query(u, v)                // lock-free, current epoch
//	v := st.Snapshot()                 // pin one immutable version
//	ds := v.QueryBatch(pairs)          // all answers from v.Epoch()
//	ds, err := v.QueryBatchCtx(ctx, pairs) // honours cancellation mid-batch
//
// A View stays valid indefinitely — holding one only pins the memory it
// shares with newer snapshots — and Epoch names the version it serves, the
// same number the HTTP service returns in its X-Oracle-Epoch header. The
// ConcurrentOracle type and the Concurrent constructor remain only as a
// deprecated compatibility shim over Store; new code should use NewStore
// and write through ApplyCtx.
//
// # Group commit: the coalescing apply queue
//
// Concurrent writers do not take turns paying the full commit cost.
// ApplyCtx — the canonical write call, which Apply, ApplyEpoch and the
// convenience mutators wrap — enqueues the caller's batch on an apply
// queue and parks the caller on a promised-epoch future. A committer
// goroutine (spawned on demand, retired when the queue drains) claims
// every batch waiting at that moment as one commit group and pays one
// copy-on-write fork, one repair pass, one pack, one WAL append — a
// single log record, hence a single fsync, covering every caller in the
// group — and one atomic publish for all of them. Each caller's future
// then resolves with its own per-op summaries and the shared epoch;
// ApplyResult.Coalesced reports whether the epoch was shared. Commit work
// is pipelined: while one group packs, appends and publishes, the
// committer already repairs the next group on a fork of the unpublished
// tip, so the queue keeps moving at the speed of the slower stage rather
// than their sum. Under contention the group size grows with the backlog
// and the commit overhead per op shrinks accordingly (BenchmarkApplyConcurrent
// measures the effect; see EXPERIMENTS.md).
//
// Coalescing never weakens the per-batch contract. Each caller's ops are
// validated as their own segment of the group against the group's fork:
// if a segment fails, that caller alone is rejected with the error
// attributed to its failing op (OpError carries the op index and kind) and
// the group is redone without it — co-batched callers are never poisoned
// by a neighbour's invalid batch, and a rejected caller observes the same
// all-or-nothing outcome as if it had applied alone. A caller whose
// context is cancelled while its batch still waits on the queue is
// excised without side effects and gets the context error; once the
// committer has claimed the batch, the commit proceeds and the caller is
// handed its published epoch. Callers that mutate through an attached
// durability layer keep the WAL ordering guarantee: the group's single
// record is durable before its epoch becomes visible, and recovery replays
// one record per epoch exactly as a follower does.
//
// # The parallel repair engine
//
// Inside one repair, the per-landmark work is independent by construction:
// landmark r's repair writes only rank-r label entries and highway row r,
// and its affected-vertex classification reads only rank-r entries of
// other vertices. The repair engine exploits that by fanning the
// per-landmark find+repair tasks (per label direction for the directed
// variant) across Options.RepairWorkers cores (0 = GOMAXPROCS): every
// task runs against the frozen pre-repair labelling and buffers its edits
// as a delta, a barrier separates the fan from the merge, and a
// single-threaded merge applies the deltas in rank order. Because the
// serial path runs the identical task-then-merge code with one worker,
// the labelling and the update summaries are byte-identical for every
// worker count — the knob trades repair latency against cores, never
// results. Construction fans the same way (Options.Parallel/Workers), and
// the pack-on-publish delta repack fills its rebuilt chunks concurrently
// under the same bound. Store.SetRepairWorkers retunes a live store; each
// worker draws pooled per-task scratch, so the fan-out allocates nothing
// per update beyond the deltas it buffers.
//
// # Two label representations: mutable slices, packed arena
//
// The labelling lives in two forms, split along the same read/write line as
// the snapshots. The mutable build/update representation is one entry slice
// per vertex: IncHL+ and DecHL repair it in place, copy-on-write forks
// share untouched slices with their parent, and it remains the source of
// truth. The packed read representation (hcl.Packed and its directed and
// weighted counterparts) flattens those labels into a single contiguous
// entry arena indexed by a CSR offset table: a published snapshot answers a
// query by slicing the arena — no per-vertex pointer chase, no slice-header
// traffic, a handful of large arrays for the garbage collector to scan
// instead of millions of tiny ones — and the query kernels (Equations 1 and
// 2) stream at most two contiguous entry spans plus one highway row per
// outer entry, allocation-free.
//
// The Store converts between the two at exactly one point: pack-on-publish.
// After a batch's repairs succeed on the private fork, the labelling is
// frozen into the packed form before the epoch becomes visible, so readers
// only ever see packed snapshots while the updater only ever touches
// slices. The pack is delta-aware — the arena is chunked by vertex range,
// and a fork reuses by reference every chunk of its parent's arena whose
// labels the batch did not touch — so an epoch touching k vertices repacks
// O(k) labels, not O(|V|). Any label write drops the packed form (the two
// can never disagree); plain unwrapped indexes simply stay on the slice
// path. Stats reports the arena's footprint as PackedBytes, and the binary
// codecs of all three variants write the arena as one length-prefixed CSR
// block, which is what makes a checkpoint load (and PUT /labels) a bulk
// copy that arrives already packed.
//
// # Durability: write-ahead log and checkpoints
//
// The whole point of maintaining a labelling incrementally is not paying
// the full construction cost again — yet an in-memory index pays exactly
// that on every process restart. The durability subsystem (internal/wal)
// closes the gap: a Store with a durability layer attached appends every
// applied op batch to a write-ahead log, tagged with the epoch it
// publishes, before readers can see that epoch. Versioned snapshots make
// the epoch a natural log sequence number: the record for epoch N is
// durable first, then N becomes visible, so under the fsync=always policy
// a kill -9 at any moment loses nothing that was ever served. Periodic
// checkpoints write the full graph and labelling of one immutable snapshot
// (never blocking writers) and truncate the log segments they supersede;
// recovery loads the newest valid checkpoint and replays the log tail —
// restart cost proportional to the churn since the last checkpoint, not to
// a rebuild. A torn final record (a crash mid-append) is truncated with a
// warning; corruption anywhere else refuses recovery rather than serving
// wrong distances.
//
// The Store side of the contract is the Durability interface and
// AttachDurability; Stats carries the epoch and the WAL counters
// (DurabilityStats). Ops encode to a compact binary form for the log
// (Op.AppendBinary, AppendOps, DecodeOps) while their JSON kinds stay the
// HTTP wire format. cmd/hlserver exposes the subsystem as -data-dir,
// -fsync and -checkpoint-every flags with recovery on boot and a clean
// checkpoint on graceful shutdown; the HTTP service adds POST /checkpoint
// and GET /wal/stats. Durability requires an oracle whose labelling and
// graph both serialise — currently the undirected Index.
//
// # Zero-copy checkpoints: the mapped label arena
//
// Checkpoint formats are versioned, and every reader keeps decoding every
// older version forever. The label codecs are HCL1 (per-vertex streams,
// read-only legacy), HCL2/DHL1/WHL1 (the packed CSR block with u32
// offsets, still what Save writes at ordinary sizes) and HCL3/DHL2/WHL2
// (u64 offsets, entry block page-aligned relative to the stream start,
// entries padded to their in-memory stride); checkpoint images are
// HLWCKPT1 (whole-file CRC32) and HLWCKPT2, which embeds an HCL3-family
// labelling at its real file offset, records the entry-block spans in a
// trailer, and excludes exactly those spans from its CRC32. That CRC
// shape is the point of v2: recovery can mmap the checkpoint file,
// validate everything except the entry arenas — headers, graph, offset
// tables are fully checked — and attach the entries in place
// (LoadIndexMapped, MapIndexFile, Store.LoadMappedFile), so boot cost
// stops scaling with labelling size and entry pages fault in on first
// use. The WAL tail then replays onto the mapped index directly: the
// mapping is private (MAP_PRIVATE), so in-place repairs dirty anonymous
// copies and never the file. Followers bootstrap the same way by
// spilling the shipped image to an unlinked temp file
// (wal.RebuildImageMapped). Stats.MappedBytes reports the region still
// backing a labelling, next to PackedBytes.
//
// The lifecycle rule is reachability, not reference counting: an
// internal/arena.Mapping is pinned by every index, packed arena chunk and
// snapshot that still aliases its bytes — forks inherit the pin — and is
// unmapped by a garbage-collector finalizer once the last such holder is
// gone. Checkpoint pruning therefore only ever unlinks files, never
// truncates them: a pinned View keeps serving pages of a checkpoint the
// pruner deleted minutes ago, and the kernel reclaims the blocks when
// the mapping drops. Delta repacks migrate only the chunks a batch
// touched from the mapping to the heap; untouched chunks stay
// file-backed indefinitely. Everything falls back to the copy-in heap
// load — identical answers, identical Save bytes — when the platform has
// no mmap (a build-tagged stub gates syscall use; ErrNotMappable is the
// quiet sentinel), when the checkpoint is a v1 image, when a stream's
// layout or alignment cannot be mapped, or when -mmap off (wal.MapOff)
// asks for it; -mmap auto probes support and is the default.
//
// # Replication: WAL shipping to read-scaling followers
//
// One process answers queries on one machine's cores; the replication
// subsystem (internal/repl) turns the same write-ahead log into a read
// fleet. A durable server started as the leader listens on a replication
// port; each follower connects, names the epoch it already holds, and the
// leader either resumes the record stream from there or — when the
// follower is fresh, or its epoch fell behind the newest checkpoint's
// resume floor — ships the whole checkpoint image and streams onward from
// that. Followers rebuild the shipped image through the same codec path as
// crash recovery, replay each op batch with the leader's own epoch number,
// and publish exactly the leader's timeline: at every shared epoch the
// follower's serialised labelling is byte-identical to the leader's, which
// the differential test in internal/repl enforces round by round against
// BFS ground truth. A follower that loses the link reconnects with backoff
// and resumes from its own epoch; a follower that falls further behind
// than the leader's bounded per-session queue is dropped and re-bootstraps
// itself the same way. Epoch-less Load publishes (PUT /labels) ship as
// fresh checkpoint images mid-stream.
//
// The Store side is deliberately thin: AttachReplication registers a
// Replication layer whose ReplicationStats — role, link state, follower
// count, epoch and byte lag — ride Stats, /stats and GET /healthz;
// WaitEpoch parks a reader until a given epoch publishes, which is what
// lets a client that wrote through the leader read its own write on a
// follower by echoing the leader's X-Oracle-Epoch response header into a
// request header; Reset swaps a re-bootstrapped image into the same Store
// identity so long-lived Views and waiters survive. cmd/hlserver wires the
// whole stack as -role leader|follower, -replicate-addr and -leader-addr:
// followers need no graph, labels or data directory, serve the full read
// API, and answer writes with 503 plus an X-Oracle-Leader hint.
//
// # Observability: histograms, stage timings and /metrics
//
// Every Store carries an always-on metrics core (internal/obs): atomic
// counters, gauges and fixed-bucket log2 latency histograms where one
// observation is two atomic adds — no locks, no allocations — so the
// instrumented query path still passes the CI zero-alloc gate. Series
// follow the Prometheus naming idiom under a dynhl_ prefix, labelled by
// index variant: dynhl_query_seconds and dynhl_query_batch_seconds time
// the read path, dynhl_snapshot_pins_total counts epoch pins, and
// dynhl_apply_stage_seconds breaks every published epoch into the five
// pipeline stages a write crosses — coalesce_wait (enqueue to claim),
// repair (fork + IncHL+/DecHL), pack (CSR freeze), wal_commit (append +
// fsync via the durability hook) and publish (snapshot swap) — with
// dynhl_apply_group_callers/_ops recording how much each group coalesced.
// The repair engine reports dynhl_repair_workers (the resolved fan-out)
// and dynhl_repair_landmark_seconds (per-landmark task latency, observed
// from the worker goroutines).
// Attached layers register their own series in their own registries —
// dynhl_wal_* (append/fsync/checkpoint timings, durable and checkpoint
// epochs, torn tails and recoveries), dynhl_repl_* (lag gauges and ship/
// ack/reconnect counters, role-labelled) and dynhl_arena_* (mapped
// bytes) — and Store.MetricsRegistries gathers them all, so GET /metrics
// on internal/httpapi serves one hand-rolled Prometheus text exposition
// covering whatever the process actually runs, plus go_* runtime basics.
// SetSlowQueryLog adds a threshold-gated, rate-bounded structured log of
// outlier queries, and cmd/hlserver's -debug-addr opens a second listener
// with net/http/pprof and /metrics so profilers stay off the public port.
//
// The internal packages hold the substrates and baselines used by the
// reproduction study: internal/hcl (static labelling), internal/inchl (the
// IncHL+ algorithm), internal/pll and internal/fulldyn (the IncPLL and
// IncFD baselines), internal/gen and internal/dataset (synthetic proxies of
// the paper's 12 networks) and internal/exper (the harness regenerating
// every table and figure of the paper; see EXPERIMENTS.md).
package dynhl
