// Package dynhl answers exact shortest-path distance queries on large
// dynamic graphs and keeps its index up to date under edge and vertex
// insertions, implementing "Efficient Maintenance of Distance Labelling for
// Incremental Updates in Large Dynamic Graphs" (Farhan & Wang, EDBT 2021).
//
// The index is a highway cover labelling: a small set of landmark vertices,
// the exact landmark-to-landmark distance matrix (the highway), and one
// compact distance label per vertex. Queries combine a highway upper bound
// with a bounded bidirectional search; insertions are absorbed by IncHL+,
// which finds the affected vertices with a jumped BFS and repairs exactly
// their labels while preserving labelling minimality — outdated and
// redundant entries are removed, so the index does not grow stale or bloated
// as the graph evolves.
//
// Basic use:
//
//	g := dynhl.NewGraph(0)
//	// ... add vertices and edges ...
//	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 20})
//	d := idx.Query(u, v)          // exact distance, Inf if disconnected
//	idx.InsertEdge(a, b)          // graph + index updated together
//	idx.InsertVertex([]uint32{a}) // new vertex with initial neighbours
//
// The internal packages hold the substrates and baselines used by the
// reproduction study: internal/hcl (static labelling), internal/inchl (the
// IncHL+ algorithm), internal/pll and internal/fulldyn (the IncPLL and
// IncFD baselines), internal/gen and internal/dataset (synthetic proxies of
// the paper's 12 networks) and internal/exper (the harness regenerating
// every table and figure of the paper; see EXPERIMENTS.md).
package dynhl
