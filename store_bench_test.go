package dynhl

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// BenchmarkQueryBatchCrossover compares the serial and worker-fanned batch
// paths across sizes around the serialBatchMax threshold (2·batchChunk).
// It demonstrates the crossover motivating the serial fast path: at and
// below ~2 chunks the goroutine hand-off costs more than the queries save,
// while large batches win by roughly the core count.
func BenchmarkQueryBatchCrossover(b *testing.B) {
	g := testutil.RandomConnectedGraph(2000, 6000, 19)
	idx, err := Build(g, Options{Landmarks: 10})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	all := make([]Pair, 1<<12)
	for i := range all {
		all[i] = Pair{U: uint32(rng.Intn(2000)), V: uint32(rng.Intn(2000))}
	}
	var sink Dist
	for _, size := range []int{batchChunk, serialBatchMax, 2 * serialBatchMax, 8 * serialBatchMax, 32 * serialBatchMax} {
		pairs := all[:size]
		b.Run(fmt.Sprintf("serial/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink ^= serialQueryBatch(idx, pairs)[0]
			}
		})
		b.Run(fmt.Sprintf("fanned/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink ^= fannedQueryBatch(idx, pairs, batchWorkers())[0]
			}
		})
	}
	benchCrossoverSink = sink
}

var benchCrossoverSink Dist
