package dynhl

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// OpKind identifies one kind of graph mutation in an Op. The JSON encoding
// is the snake_case name ("insert_edge", …), so op batches round-trip
// through the HTTP API without a translation layer.
type OpKind uint8

const (
	// OpInsertEdge inserts edge (U,V) with weight W (0 means 1).
	OpInsertEdge OpKind = iota + 1
	// OpDeleteEdge deletes edge (U,V).
	OpDeleteEdge
	// OpInsertVertex adds a new vertex with the initial Arcs.
	OpInsertVertex
	// OpDeleteVertex disconnects vertex V (all incident edges).
	OpDeleteVertex
)

var opKindNames = map[OpKind]string{
	OpInsertEdge:   "insert_edge",
	OpDeleteEdge:   "delete_edge",
	OpInsertVertex: "insert_vertex",
	OpDeleteVertex: "delete_vertex",
}

// String returns the snake_case operation name.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its snake_case name.
func (k OpKind) MarshalJSON() ([]byte, error) {
	s, ok := opKindNames[k]
	if !ok {
		return nil, fmt.Errorf("dynhl: cannot encode unknown op kind %d", uint8(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a snake_case operation name.
func (k *OpKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range opKindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("dynhl: unknown op kind %q", s)
}

// Op is one graph mutation of a batched update. A batch of ops is applied
// by Oracle.Apply; through a Store the whole batch becomes visible to
// readers atomically, as a single new epoch. Construct ops with the
// InsertEdgeOp/DeleteEdgeOp/InsertVertexOp/DeleteVertexOp helpers.
type Op struct {
	Kind OpKind `json:"op"`
	// U, V are the edge endpoints (Kind Insert/DeleteEdge) or V the vertex
	// (Kind DeleteVertex).
	U uint32 `json:"u,omitempty"`
	V uint32 `json:"v,omitempty"`
	// W is the edge weight for OpInsertEdge; 0 means 1.
	W Dist `json:"w,omitempty"`
	// Arcs are the initial connections for OpInsertVertex.
	Arcs []Arc `json:"arcs,omitempty"`
}

// InsertEdgeOp returns the op inserting edge (u,v) with weight w (0 = 1).
func InsertEdgeOp(u, v uint32, w Dist) Op { return Op{Kind: OpInsertEdge, U: u, V: v, W: w} }

// DeleteEdgeOp returns the op deleting edge (u,v).
func DeleteEdgeOp(u, v uint32) Op { return Op{Kind: OpDeleteEdge, U: u, V: v} }

// InsertVertexOp returns the op adding a new vertex with the given arcs.
func InsertVertexOp(arcs ...Arc) Op { return Op{Kind: OpInsertVertex, Arcs: arcs} }

// DeleteVertexOp returns the op disconnecting vertex v.
func DeleteVertexOp(v uint32) Op { return Op{Kind: OpDeleteVertex, V: v} }

// Binary op codec
//
// The write-ahead log (internal/wal) persists every applied batch, so ops
// need an encoding that is compact and fast to decode on recovery; the JSON
// kinds above stay the HTTP wire format. The binary form is one kind byte
// followed by the kind's fields as unsigned varints (insert_vertex arcs are
// a count, then per arc: to, w, and an in flag byte). A batch is a varint
// op count followed by the ops.

// AppendBinary appends op's binary encoding to buf and returns the extended
// slice. Unknown kinds are an error.
func (op Op) AppendBinary(buf []byte) ([]byte, error) {
	switch op.Kind {
	case OpInsertEdge:
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(op.U))
		buf = binary.AppendUvarint(buf, uint64(op.V))
		buf = binary.AppendUvarint(buf, uint64(op.W))
	case OpDeleteEdge:
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(op.U))
		buf = binary.AppendUvarint(buf, uint64(op.V))
	case OpInsertVertex:
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Arcs)))
		for _, a := range op.Arcs {
			buf = binary.AppendUvarint(buf, uint64(a.To))
			buf = binary.AppendUvarint(buf, uint64(a.W))
			in := byte(0)
			if a.In {
				in = 1
			}
			buf = append(buf, in)
		}
	case OpDeleteVertex:
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(op.V))
	default:
		return nil, fmt.Errorf("dynhl: cannot encode unknown op kind %d", uint8(op.Kind))
	}
	return buf, nil
}

// AppendOps appends the binary encoding of a whole batch (varint count,
// then each op) to buf, the inverse of DecodeOps.
func AppendOps(buf []byte, ops []Op) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	var err error
	for _, op := range ops {
		if buf, err = op.AppendBinary(buf); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeOp decodes one op from the front of buf, returning the number of
// bytes consumed. It never panics on malformed input and bounds every
// allocation by the input size, so it is safe on untrusted bytes.
func DecodeOp(buf []byte) (Op, int, error) {
	if len(buf) == 0 {
		return Op{}, 0, fmt.Errorf("dynhl: decoding op: %w", io.ErrUnexpectedEOF)
	}
	op := Op{Kind: OpKind(buf[0])}
	n := 1
	field := func(name string) (uint32, error) {
		v, w := binary.Uvarint(buf[n:])
		if w <= 0 || v > uint64(^uint32(0)) {
			return 0, fmt.Errorf("dynhl: decoding op %s: bad varint", name)
		}
		n += w
		return uint32(v), nil
	}
	var err error
	switch op.Kind {
	case OpInsertEdge:
		if op.U, err = field("u"); err != nil {
			return Op{}, 0, err
		}
		if op.V, err = field("v"); err != nil {
			return Op{}, 0, err
		}
		var w uint32
		if w, err = field("w"); err != nil {
			return Op{}, 0, err
		}
		op.W = Dist(w)
	case OpDeleteEdge:
		if op.U, err = field("u"); err != nil {
			return Op{}, 0, err
		}
		if op.V, err = field("v"); err != nil {
			return Op{}, 0, err
		}
	case OpInsertVertex:
		cnt, w := binary.Uvarint(buf[n:])
		if w <= 0 {
			return Op{}, 0, fmt.Errorf("dynhl: decoding op arcs: bad varint")
		}
		n += w
		// Every arc costs at least three bytes (two varints and a flag), so
		// an arc count beyond that is malformed — reject before allocating.
		if cnt > uint64(len(buf)-n)/3 {
			return Op{}, 0, fmt.Errorf("dynhl: decoding op: arc count %d exceeds input", cnt)
		}
		if cnt > 0 {
			op.Arcs = make([]Arc, cnt)
		}
		for i := range op.Arcs {
			if op.Arcs[i].To, err = field("arc to"); err != nil {
				return Op{}, 0, err
			}
			var aw uint32
			if aw, err = field("arc w"); err != nil {
				return Op{}, 0, err
			}
			op.Arcs[i].W = Dist(aw)
			if n >= len(buf) || buf[n] > 1 {
				return Op{}, 0, fmt.Errorf("dynhl: decoding op: bad arc flag")
			}
			op.Arcs[i].In = buf[n] == 1
			n++
		}
	case OpDeleteVertex:
		if op.V, err = field("v"); err != nil {
			return Op{}, 0, err
		}
	default:
		return Op{}, 0, fmt.Errorf("dynhl: decoding op: unknown kind %d", buf[0])
	}
	return op, n, nil
}

// DecodeOps decodes a batch written by AppendOps from the front of buf,
// returning the ops and the number of bytes consumed. Like DecodeOp it is
// safe on untrusted bytes.
func DecodeOps(buf []byte) ([]Op, int, error) {
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("dynhl: decoding op batch: bad count varint")
	}
	// Every op costs at least two bytes (kind plus one varint), so a count
	// beyond that is malformed — reject before allocating.
	if cnt > uint64(len(buf)-n)/2 {
		return nil, 0, fmt.Errorf("dynhl: decoding op batch: op count %d exceeds input", cnt)
	}
	ops := make([]Op, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		op, w, err := DecodeOp(buf[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("dynhl: decoding op %d of %d: %w", i, cnt, err)
		}
		n += w
		ops = append(ops, op)
	}
	return ops, n, nil
}

// OpError reports which op of a batch failed and why: Index is the op's
// position within the caller's own batch (coalescing with other writers
// never shifts it) and Err is the underlying failure, typically one of the
// sentinel errors, reachable through errors.Is/errors.As.
type OpError struct {
	Index int
	Kind  OpKind
	Err   error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("dynhl: op %d (%s): %v", e.Index, e.Kind, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// applyOps applies ops to o in order, stopping at the first failure. The
// returned summaries cover the ops that succeeded; the error is an *OpError
// wrapping the op index and kind around the oracle's sentinel. Plain
// variants expose this directly (a mid-batch failure leaves the earlier ops
// applied); the Store turns it into an all-or-nothing publish by applying
// to a discardable fork.
func applyOps(o Oracle, ops []Op) ([]UpdateSummary, error) {
	out := make([]UpdateSummary, 0, len(ops))
	for i, op := range ops {
		var s UpdateSummary
		var err error
		switch op.Kind {
		case OpInsertEdge:
			s, err = o.InsertEdge(op.U, op.V, op.W)
		case OpDeleteEdge:
			s, err = o.DeleteEdge(op.U, op.V)
		case OpInsertVertex:
			var id uint32
			id, s, err = o.InsertVertex(op.Arcs)
			if err == nil {
				v := id
				s.NewVertex = &v
			}
		case OpDeleteVertex:
			s, err = o.DeleteVertex(op.V)
		default:
			err = fmt.Errorf("dynhl: unknown op kind %d", uint8(op.Kind))
		}
		if err != nil {
			return out, &OpError{Index: i, Kind: op.Kind, Err: err}
		}
		out = append(out, s)
	}
	return out, nil
}
