package dynhl

import (
	"encoding/json"
	"fmt"
)

// OpKind identifies one kind of graph mutation in an Op. The JSON encoding
// is the snake_case name ("insert_edge", …), so op batches round-trip
// through the HTTP API without a translation layer.
type OpKind uint8

const (
	// OpInsertEdge inserts edge (U,V) with weight W (0 means 1).
	OpInsertEdge OpKind = iota + 1
	// OpDeleteEdge deletes edge (U,V).
	OpDeleteEdge
	// OpInsertVertex adds a new vertex with the initial Arcs.
	OpInsertVertex
	// OpDeleteVertex disconnects vertex V (all incident edges).
	OpDeleteVertex
)

var opKindNames = map[OpKind]string{
	OpInsertEdge:   "insert_edge",
	OpDeleteEdge:   "delete_edge",
	OpInsertVertex: "insert_vertex",
	OpDeleteVertex: "delete_vertex",
}

// String returns the snake_case operation name.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its snake_case name.
func (k OpKind) MarshalJSON() ([]byte, error) {
	s, ok := opKindNames[k]
	if !ok {
		return nil, fmt.Errorf("dynhl: cannot encode unknown op kind %d", uint8(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a snake_case operation name.
func (k *OpKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range opKindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("dynhl: unknown op kind %q", s)
}

// Op is one graph mutation of a batched update. A batch of ops is applied
// by Oracle.Apply; through a Store the whole batch becomes visible to
// readers atomically, as a single new epoch. Construct ops with the
// InsertEdgeOp/DeleteEdgeOp/InsertVertexOp/DeleteVertexOp helpers.
type Op struct {
	Kind OpKind `json:"op"`
	// U, V are the edge endpoints (Kind Insert/DeleteEdge) or V the vertex
	// (Kind DeleteVertex).
	U uint32 `json:"u,omitempty"`
	V uint32 `json:"v,omitempty"`
	// W is the edge weight for OpInsertEdge; 0 means 1.
	W Dist `json:"w,omitempty"`
	// Arcs are the initial connections for OpInsertVertex.
	Arcs []Arc `json:"arcs,omitempty"`
}

// InsertEdgeOp returns the op inserting edge (u,v) with weight w (0 = 1).
func InsertEdgeOp(u, v uint32, w Dist) Op { return Op{Kind: OpInsertEdge, U: u, V: v, W: w} }

// DeleteEdgeOp returns the op deleting edge (u,v).
func DeleteEdgeOp(u, v uint32) Op { return Op{Kind: OpDeleteEdge, U: u, V: v} }

// InsertVertexOp returns the op adding a new vertex with the given arcs.
func InsertVertexOp(arcs ...Arc) Op { return Op{Kind: OpInsertVertex, Arcs: arcs} }

// DeleteVertexOp returns the op disconnecting vertex v.
func DeleteVertexOp(v uint32) Op { return Op{Kind: OpDeleteVertex, V: v} }

// applyOps applies ops to o in order, stopping at the first failure. The
// returned summaries cover the ops that succeeded; the error wraps the op
// index and kind around the oracle's sentinel. Plain variants expose this
// directly (a mid-batch failure leaves the earlier ops applied); the Store
// turns it into an all-or-nothing publish by applying to a discardable
// fork.
func applyOps(o Oracle, ops []Op) ([]UpdateSummary, error) {
	out := make([]UpdateSummary, 0, len(ops))
	for i, op := range ops {
		var s UpdateSummary
		var err error
		switch op.Kind {
		case OpInsertEdge:
			s, err = o.InsertEdge(op.U, op.V, op.W)
		case OpDeleteEdge:
			s, err = o.DeleteEdge(op.U, op.V)
		case OpInsertVertex:
			var id uint32
			id, s, err = o.InsertVertex(op.Arcs)
			if err == nil {
				v := id
				s.NewVertex = &v
			}
		case OpDeleteVertex:
			s, err = o.DeleteVertex(op.V)
		default:
			err = fmt.Errorf("dynhl: unknown op kind %d", uint8(op.Kind))
		}
		if err != nil {
			return out, fmt.Errorf("dynhl: op %d (%s): %w", i, op.Kind, err)
		}
		out = append(out, s)
	}
	return out, nil
}
