// Roadnet demonstrates the weighted extension (Section 5 of the paper): a
// grid-like road network with travel-time weights, where new road segments
// open over time and a dispatcher needs exact travel times between
// locations. Dijkstra replaces BFS throughout the index.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dynhl "repro"
)

func main() {
	const (
		side     = 70 // 70×70 grid of intersections
		newRoads = 150
		seed     = 8
	)
	rng := rand.New(rand.NewSource(seed))
	n := side * side

	// Build the road grid: orthogonal neighbours connected with travel
	// times 1..9 minutes; a few diagonal shortcuts exist from the start.
	g := dynhl.NewWeightedGraph(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	at := func(r, c int) uint32 { return uint32(r*side + c) }
	w := func() dynhl.Dist { return dynhl.Dist(1 + rng.Intn(9)) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddEdge(at(r, c), at(r, c+1), w())
			}
			if r+1 < side {
				g.MustAddEdge(at(r, c), at(r+1, c), w())
			}
		}
	}
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx, err := dynhl.BuildWeighted(g, dynhl.Options{Landmarks: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted index built in %v (%d label entries)\n",
		time.Since(start).Round(time.Millisecond), idx.Stats().LabelEntries)

	// Dispatcher queries before the bypass opens.
	depot := at(0, 0)
	hospital := at(side-1, side-1)
	before := idx.Query(depot, hospital)
	fmt.Printf("travel time depot→hospital: %d min\n", before)

	// City keeps opening new road segments (diagonals and bypasses).
	var updTotal time.Duration
	opened := 0
	for opened < newRoads {
		r := rng.Intn(side - 1)
		c := rng.Intn(side - 1)
		u, v := at(r, c), at(r+1, c+1)
		if g.HasEdge(u, v) {
			continue
		}
		t0 := time.Now()
		if _, err := idx.InsertEdge(u, v, w()); err != nil {
			log.Fatal(err)
		}
		updTotal += time.Since(t0)
		opened++
	}
	fmt.Printf("opened %d new segments, %.3f ms mean per segment\n",
		opened, float64(updTotal.Microseconds())/1000/float64(opened))

	after := idx.Query(depot, hospital)
	fmt.Printf("travel time depot→hospital now: %d min (was %d)\n", after, before)
	if after > before {
		log.Fatal("new roads can never increase travel time")
	}

	if err := idx.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("weighted index verified exact")
}
