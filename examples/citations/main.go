// Citations demonstrates the directed extension (Section 5 of the paper):
// a citation graph where edges point from citing to cited papers, grown one
// publication at a time. Queries are asymmetric — "how many citation hops
// from paper X to the foundational paper F" is finite, the reverse is not —
// so the index keeps forward and backward labels per vertex.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dynhl "repro"
)

func main() {
	const (
		papers    = 6000
		citesEach = 8
		newPapers = 200
		seed      = 3
	)
	rng := rand.New(rand.NewSource(seed))

	// Bootstrap corpus: papers cite earlier papers, preferring recent and
	// foundational (low-id) work — the classic citation-network shape.
	g := dynhl.NewDigraph(papers)
	for i := 0; i < papers; i++ {
		g.AddVertex()
	}
	for p := 1; p < papers; p++ {
		for c := 0; c < citesEach && c < p; c++ {
			var target int
			if rng.Float64() < 0.3 {
				target = rng.Intn(min(p, 50)) // foundational papers
			} else {
				target = p - 1 - rng.Intn(min(p, 400)) // recent work
			}
			_, _ = g.AddEdge(uint32(p), uint32(target))
		}
	}
	fmt.Printf("citation graph: %d papers, %d citations\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx, err := dynhl.BuildDirected(g, dynhl.Options{Landmarks: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directed index built in %v (%d forward+backward entries)\n",
		time.Since(start).Round(time.Millisecond), idx.Stats().LabelEntries)

	foundational := uint32(0)

	// New publications arrive: each is a vertex insertion with outgoing
	// citations only (nothing cites a brand-new paper yet).
	var updTotal time.Duration
	for i := 0; i < newPapers; i++ {
		n := idx.Landmarks() // keep the call pattern honest; landmarks are stable
		_ = n
		k := 3 + rng.Intn(5)
		cites := map[uint32]bool{}
		for len(cites) < k {
			cites[uint32(rng.Intn(g.NumVertices()))] = true
		}
		outTo := make([]uint32, 0, k)
		for c := range cites {
			outTo = append(outTo, c)
		}
		t0 := time.Now()
		if _, _, err := idx.InsertVertex(dynhl.Arcs(outTo...)); err != nil {
			log.Fatal(err)
		}
		updTotal += time.Since(t0)
	}
	fmt.Printf("ingested %d new papers, %.3f ms mean per paper\n",
		newPapers, float64(updTotal.Microseconds())/1000/newPapers)

	// Asymmetric queries: citation distance TO the foundational paper
	// versus FROM it.
	latest := uint32(g.NumVertices() - 1)
	to := idx.Query(latest, foundational)
	from := idx.Query(foundational, latest)
	fmt.Printf("citation hops %d → %d: %s\n", latest, foundational, distStr(to))
	fmt.Printf("citation hops %d → %d: %s (citations never point forward in time)\n",
		foundational, latest, distStr(from))

	if err := idx.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("directed index verified exact")
}

func distStr(d dynhl.Dist) string {
	if d == dynhl.Inf {
		return "unreachable"
	}
	return fmt.Sprintf("%d", d)
}
