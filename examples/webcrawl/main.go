// Webcrawl models the paper's web-graph motivation (context-aware search):
// a crawler keeps discovering new pages and links, and the search layer
// needs click-distance from seed pages at query time. Each discovered page
// is a vertex insertion with its outlinks; each newly seen link between
// known pages is an edge insertion.
//
// Web graphs are the hard case for incremental maintenance — their large
// average distance makes single insertions affect many vertices (Figure 1
// of the paper) — so this example also reports affected-vertex counts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dynhl "repro"
	"repro/internal/gen"
)

func main() {
	const (
		pages    = 15000
		degree   = 12
		locality = 600
		newPages = 400
		seed     = 7
	)
	rng := rand.New(rand.NewSource(seed))

	// The already-crawled web: a locality graph with long average distance,
	// like the paper's Indochina/IT/UK crawls.
	g := gen.WebLocality(pages, degree, locality, 0.01, seed)
	fmt.Printf("crawled web: %d pages, %d links\n", g.NumVertices(), g.NumEdges())

	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 20, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	seedPage := idx.Landmarks()[0] // a hub page as search seed

	// Crawl frontier: new pages link mostly to recently crawled ones.
	var affectedMax, affectedSum int
	t0 := time.Now()
	for i := 0; i < newPages; i++ {
		n := idx.Graph().NumVertices()
		k := 1 + rng.Intn(4)
		links := map[uint32]bool{}
		for len(links) < k {
			// Locality: link back into a recent window, occasionally far.
			w := n - 1 - rng.Intn(min(n-1, locality))
			if rng.Float64() < 0.1 {
				w = rng.Intn(n)
			}
			links[uint32(w)] = true
		}
		outlinks := make([]uint32, 0, len(links))
		for w := range links {
			outlinks = append(outlinks, w)
		}
		_, st, err := idx.InsertVertex(dynhl.Arcs(outlinks...))
		if err != nil {
			log.Fatal(err)
		}
		affectedSum += st.Affected
		if st.Affected > affectedMax {
			affectedMax = st.Affected
		}
	}
	crawlDur := time.Since(t0)

	fmt.Printf("crawled %d new pages in %v (%.2f ms/page)\n",
		newPages, crawlDur.Round(time.Millisecond),
		float64(crawlDur.Milliseconds())/newPages)
	// InsertVertex sums the affected counts of its component edge
	// insertions, so a page with several outlinks can repair the same
	// vertex more than once — report repairs, not unique vertices.
	fmt.Printf("affected-vertex repairs per new page: mean %.1f, max %d (graph has %d pages)\n",
		float64(affectedSum)/float64(newPages), affectedMax, idx.Graph().NumVertices())

	// Context-aware search: rank candidate pages by click distance from the
	// seed page.
	fmt.Printf("\nclick distance from seed page %d:\n", seedPage)
	for i := 0; i < 5; i++ {
		p := uint32(rng.Intn(idx.Graph().NumVertices()))
		q0 := time.Now()
		d := idx.Query(seedPage, p)
		fmt.Printf("  page %6d: %2d clicks  [%v]\n", p, d, time.Since(q0).Round(time.Microsecond))
	}

	if err := idx.Verify(); err != nil {
		log.Fatal("index drifted from the graph: ", err)
	}
	fmt.Println("\nindex verified exact after the crawl")
}
