// Netmon models the paper's computer-network motivation (resource
// management): an ISP-style topology where operators keep provisioning new
// links — and where links fail — while monitoring needs hop distances
// between routers, e.g. to pick the closest replica or to bound failover
// path lengths.
//
// The example contrasts IncHL+'s per-link update cost with the cost of
// rebuilding the index from scratch after every change (what a static
// labelling would require), reproducing Figure 4's message at toy scale,
// then takes a burst of provisioned links back down again (DecHL repairs)
// the way a real network sheds capacity during maintenance windows — as a
// single atomic update batch published at one epoch, with the monitoring
// sweep reading an immutable snapshot that repairs can never stall.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	dynhl "repro"
	"repro/internal/gen"
)

func main() {
	const (
		routers  = 8000
		newLinks = 300
		seed     = 11
	)
	rng := rand.New(rand.NewSource(seed))

	// A hierarchical ISP topology: regional rings with long haul structure
	// (Skitter-like, Table 2's "comp" network).
	g := gen.BarabasiAlbert(routers, 6, seed)
	fmt.Printf("topology: %d routers, %d links\n", g.NumVertices(), g.NumEdges())

	buildStart := time.Now()
	idx, err := dynhl.Build(g.Clone(), dynhl.Options{Landmarks: 16})
	if err != nil {
		log.Fatal(err)
	}
	buildCost := time.Since(buildStart)
	fmt.Printf("initial index: %v\n", buildCost.Round(time.Millisecond))

	// Provision links one at a time, maintaining the index incrementally.
	links := make([][2]uint32, 0, newLinks)
	for len(links) < newLinks {
		u := uint32(rng.Intn(routers))
		v := uint32(rng.Intn(routers))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v) // track separately to sample distinct links
			links = append(links, [2]uint32{u, v})
		}
	}

	incStart := time.Now()
	for _, l := range links {
		if _, err := idx.InsertEdge(l[0], l[1], 0); err != nil {
			log.Fatal(err)
		}
	}
	incCost := time.Since(incStart)

	fmt.Printf("provisioned %d links incrementally in %v (%.3f ms/link)\n",
		newLinks, incCost.Round(time.Millisecond),
		float64(incCost.Microseconds())/1000/newLinks)
	fmt.Printf("rebuild-per-change would have cost ≈ %v (%d × build)\n",
		(buildCost * time.Duration(newLinks)).Round(time.Second), newLinks)
	fmt.Printf("incremental maintenance advantage: %.0fx\n",
		float64(buildCost.Nanoseconds()*int64(newLinks))/float64(incCost.Nanoseconds()))

	// From here the index serves live monitoring traffic, so it goes behind
	// the versioned snapshot store: monitoring reads load the current
	// published snapshot lock-free and are never stalled by repairs.
	store := dynhl.NewStore(idx)

	// Maintenance window: a third of the new links fail again (link-down
	// events), shed as ONE batched update — DecHL repairs only the
	// landmarks whose shortest-path DAGs carried a failed link, one
	// copy-on-write fork is amortised across the whole burst, and monitors
	// flip from the before-state to the after-state atomically at a single
	// epoch (no monitor ever sees a half-applied window).
	failures := newLinks / 3
	ops := make([]dynhl.Op, 0, failures)
	for _, l := range links[:failures] {
		ops = append(ops, dynhl.DeleteEdgeOp(l[0], l[1]))
	}
	delStart := time.Now()
	res, err := store.ApplyCtx(context.Background(), ops)
	if err != nil {
		log.Fatal(err)
	}
	sums := res.Summaries
	delCost := time.Since(delStart)
	repaired := 0
	for _, st := range sums {
		repaired += st.Landmarks - st.Skipped
	}
	fmt.Printf("took down %d links as one batch (epoch %d) in %v (%.3f ms/link, %.1f landmarks repaired per failure)\n",
		failures, store.Epoch(), delCost.Round(time.Millisecond),
		float64(delCost.Microseconds())/1000/float64(failures),
		float64(repaired)/float64(failures))

	// Monitoring queries: hop distance from the management station (a hub)
	// to random routers. A monitoring sweep grabs one immutable snapshot —
	// every lookup in the sweep answers the same epoch, however many link
	// events land meanwhile — and large batches fan across workers.
	view := store.Snapshot()
	station := idx.Landmarks()[0]
	const qCount = 1000
	pairs := make([]dynhl.Pair, qCount)
	for i := range pairs {
		pairs[i] = dynhl.Pair{U: station, V: uint32(rng.Intn(view.NumVertices()))}
	}
	q0 := time.Now()
	dists := view.QueryBatch(pairs)
	qTotal := time.Since(q0)
	reachable := 0
	for _, d := range dists {
		if d != dynhl.Inf {
			reachable++
		}
	}
	fmt.Printf("monitoring sweep over epoch %d: %d lookups in %v (%v amortised, %d reachable)\n",
		view.Epoch(), qCount, qTotal.Round(time.Microsecond), (qTotal / qCount).Round(time.Nanosecond), reachable)

	if err := store.Verify(); err != nil {
		log.Fatal("index inconsistent: ", err)
	}
	fmt.Println("index verified exact after provisioning")
}
