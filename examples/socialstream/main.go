// Socialstream simulates the paper's social-network motivation: a
// friendship graph absorbing a stream of new friendships (edge
// insertions), new members (vertex insertions) and unfollows (edge
// deletions, repaired by DecHL) while serving degrees-of-separation
// queries in real time.
//
// It prints the update latency distribution and shows that the labelling
// size stays flat — the minimality preservation that separates IncHL+ from
// the append-only IncPLL baseline, and that DecHL extends to churn in both
// directions.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	dynhl "repro"
	"repro/internal/gen"
)

func main() {
	const (
		members     = 20000
		friendships = 5 // preferential-attachment edges per member
		events      = 2000
		seed        = 42
	)
	rng := rand.New(rand.NewSource(seed))

	// Bootstrap an existing social network (scale-free, like Flickr or
	// LiveJournal in the paper's Table 2).
	g := gen.BarabasiAlbert(members, friendships, seed)
	fmt.Printf("social network: %d members, %d friendships\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 20, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v (%d label entries, %.2f per member)\n",
		time.Since(start).Round(time.Millisecond), idx.Stats().LabelEntries, idx.Stats().AvgLabelSize)
	entriesBefore := idx.Stats().LabelEntries

	// Live event stream: 80% new friendships, 10% unfollows, 10% new
	// members who join and immediately befriend a few existing members.
	// Unfollows target recent friendships — the churny end of a real
	// follower graph — so the deletion path sees realistic edges.
	var updateTotal time.Duration
	var worst time.Duration
	var recent [][2]uint32
	newMembers, newFriendships, unfollows := 0, 0, 0
	for i := 0; i < events; i++ {
		t0 := time.Now()
		if p := rng.Float64(); p < 0.10 && len(recent) > 0 {
			k := rng.Intn(len(recent))
			e := recent[k]
			recent = append(recent[:k], recent[k+1:]...)
			if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
				log.Fatal(err)
			}
			unfollows++
		} else if p < 0.20 {
			k := 1 + rng.Intn(3)
			friends := make([]uint32, 0, k)
			for len(friends) < k {
				f := uint32(rng.Intn(idx.Graph().NumVertices()))
				friends = append(friends, f)
			}
			if _, _, err := idx.InsertVertex(dynhl.Arcs(dedupe(friends)...)); err != nil {
				log.Fatal(err)
			}
			newMembers++
		} else {
			u := uint32(rng.Intn(idx.Graph().NumVertices()))
			v := uint32(rng.Intn(idx.Graph().NumVertices()))
			if u == v || idx.Graph().HasEdge(u, v) {
				continue
			}
			if _, err := idx.InsertEdge(u, v, 0); err != nil {
				log.Fatal(err)
			}
			recent = append(recent, [2]uint32{u, v})
			newFriendships++
		}
		d := time.Since(t0)
		updateTotal += d
		if d > worst {
			worst = d
		}

		// Interleave live queries: degrees of separation between members.
		if i%200 == 0 {
			a := uint32(rng.Intn(idx.Graph().NumVertices()))
			b := uint32(rng.Intn(idx.Graph().NumVertices()))
			q0 := time.Now()
			dist := idx.Query(a, b)
			fmt.Printf("  event %4d: separation(%5d,%5d) = %v  [query %v]\n",
				i, a, b, distString(dist), time.Since(q0).Round(time.Microsecond))
		}
	}

	n := newMembers + newFriendships + unfollows
	fmt.Printf("\nprocessed %d events (%d friendships, %d unfollows, %d new members)\n",
		n, newFriendships, unfollows, newMembers)
	fmt.Printf("mean update latency %v, worst %v\n", (updateTotal / time.Duration(n)).Round(time.Microsecond), worst.Round(time.Microsecond))
	after := idx.Stats()
	fmt.Printf("label entries %d -> %d (%.1f%% change): minimality keeps the index lean\n",
		entriesBefore, after.LabelEntries,
		100*float64(after.LabelEntries-entriesBefore)/float64(entriesBefore))

	// Burst mode: the backfill case. Friendship events arrive in batches
	// (an import job, a partner feed) and are applied through the snapshot
	// store — each batch is one copy-on-write publish, so queries keep
	// reading the previous epoch until the whole batch lands atomically.
	store := dynhl.NewStore(idx)
	const bursts, perBatch = 6, 32
	epoch0 := store.Epoch()
	burstStart := time.Now()
	for b := 0; b < bursts; b++ {
		g := store.Unwrap().(*dynhl.Index).Graph()
		seen := map[[2]uint32]bool{}
		ops := make([]dynhl.Op, 0, perBatch)
		for len(ops) < perBatch {
			u := uint32(rng.Intn(g.NumVertices()))
			v := uint32(rng.Intn(g.NumVertices()))
			if u > v {
				u, v = v, u
			}
			if u == v || g.HasEdge(u, v) || seen[[2]uint32{u, v}] {
				continue
			}
			seen[[2]uint32{u, v}] = true
			ops = append(ops, dynhl.InsertEdgeOp(u, v, 0))
		}
		if _, err := store.ApplyCtx(context.Background(), ops); err != nil {
			log.Fatal(err)
		}
	}
	burstCost := time.Since(burstStart)
	fmt.Printf("burst mode: %d batched friendships in %d epochs (%d..%d), %v total (%v/event amortised)\n",
		bursts*perBatch, store.Epoch()-epoch0, epoch0+1, store.Epoch(),
		burstCost.Round(time.Millisecond), (burstCost / (bursts * perBatch)).Round(time.Microsecond))
}

func dedupe(xs []uint32) []uint32 {
	seen := map[uint32]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func distString(d dynhl.Dist) string {
	if d == dynhl.Inf {
		return "∞"
	}
	return fmt.Sprintf("%d", d)
}
