// Quickstart: build a dynamic distance index over a small graph, query it,
// insert an edge and a vertex, and watch the index stay exact and minimal.
package main

import (
	"context"
	"fmt"
	"log"

	dynhl "repro"
)

func main() {
	// A small road-like network:
	//
	//	0 - 1 - 2 - 3
	//	|           |
	//	4 - 5 - 6 - 7
	g := dynhl.NewGraph(8)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}, {5, 6}, {6, 7}, {3, 7}} {
		g.MustAddEdge(e[0], e[1])
	}

	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("landmarks: %v\n", idx.Landmarks())
	fmt.Printf("d(1,6) = %d\n", idx.Query(1, 6)) // 1-0-4-5-6 → 4

	// Insert a shortcut and query again: the index absorbs the change in
	// microseconds instead of rebuilding.
	st, err := idx.InsertEdge(1, 6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted (1,6): %d vertices affected, %d entries added, %d removed\n",
		st.Affected, st.EntriesAdded, st.EntriesRemoved)
	fmt.Printf("d(1,6) = %d\n", idx.Query(1, 6)) // now 1

	// Insert a brand-new vertex attached to 2 and 5.
	v, _, err := idx.InsertVertex(dynhl.Arcs(2, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new vertex %d: d(%d,0) = %d\n", v, v, idx.Query(v, 0))

	// The labelling stays minimal: Verify audits it against plain BFS.
	if err := idx.Verify(); err != nil {
		log.Fatal(err)
	}
	s := idx.Stats()
	fmt.Printf("index: %d entries over %d vertices (%.2f per vertex), %d bytes\n",
		s.LabelEntries, s.Vertices, s.AvgLabelSize, s.Bytes)

	// Serving concurrent traffic? Put the index behind the snapshot store:
	// readers hold immutable Views that updates can never stall, and a
	// batch of updates publishes atomically as one new epoch. ApplyCtx is
	// the canonical write call — it honours cancellation while the batch
	// is queued, reports the exact epoch the batch published, and under
	// concurrent writers the store group-commits waiting batches into one
	// coalesced epoch (res.Coalesced says when that happened).
	store := dynhl.NewStore(idx)
	before := store.Snapshot()
	res, err := store.ApplyCtx(context.Background(), []dynhl.Op{
		dynhl.DeleteEdgeOp(1, 6),
		dynhl.InsertEdgeOp(2, 5, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: d(1,6) = %d; epoch %d still answers d(1,6) = %d\n",
		res.Epoch, store.Query(1, 6), before.Epoch(), before.Query(1, 6))
}
