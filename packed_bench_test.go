// Benchmarks for the packed label arena: the same labelling queried
// through the mutable per-vertex slice form versus the CSR-flattened read
// representation published snapshots serve from, plus the cost of the
// pack itself (full and delta-aware) and of loading a packed checkpoint.
package dynhl_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
)

const (
	packedBenchN     = 50_000
	packedBenchEdges = 100_000
	packedBenchLand  = 20
)

// packedBenchSetup builds two identical oracles over the same 50k-vertex
// graph: one left on the slice representation, one wrapped in a Store so
// its published snapshot answers from the packed arena.
func packedBenchSetup(b *testing.B) (slice *dynhl.Index, packed dynhl.View, pairs []dynhl.Pair) {
	b.Helper()
	g := testutil.RandomConnectedGraph(packedBenchN, packedBenchEdges, 9)
	slice, err := dynhl.Build(g, dynhl.Options{Landmarks: packedBenchLand})
	if err != nil {
		b.Fatal(err)
	}
	packedIdx, err := dynhl.Build(g.Clone(), dynhl.Options{Landmarks: packedBenchLand})
	if err != nil {
		b.Fatal(err)
	}
	st := dynhl.NewStore(packedIdx)
	if st.Snapshot().Stats().PackedBytes == 0 {
		b.Fatal("store snapshot is not packed")
	}
	rng := rand.New(rand.NewSource(77))
	pairs = make([]dynhl.Pair, 4096)
	for i := range pairs {
		pairs[i] = dynhl.Pair{U: uint32(rng.Intn(packedBenchN)), V: uint32(rng.Intn(packedBenchN))}
	}
	return slice, st.Snapshot(), pairs
}

// BenchmarkQuery compares one exact distance query on the slice layout
// (pointer chase per label) against the packed arena (two contiguous entry
// streams); both paths must run allocation-free in steady state.
func BenchmarkQuery(b *testing.B) {
	slice, packed, pairs := packedBenchSetup(b)
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			slice.Query(p.U, p.V)
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			packed.Query(p.U, p.V)
		}
	})
}

// BenchmarkQueryBatch compares batch queries on both layouts. Batches stay
// at the serial-path size so the numbers measure representation, not
// goroutine fan-out; the only allocation per batch is its result slice.
func BenchmarkQueryBatch(b *testing.B) {
	slice, packed, pairs := packedBenchSetup(b)
	batch := pairs[:64]
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slice.QueryBatch(batch)
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			packed.QueryBatch(batch)
		}
	})
}

// BenchmarkPackPublish measures the complete per-epoch publish cost on a
// 50k-vertex store: each iteration is two Store.Apply calls (insert one
// edge, delete it again), each paying fork + IncHL+/DecHL repair +
// delta-aware repack of only the touched arena chunks + publish. The full
// 50k-label flatten is measured separately by internal/hcl's BenchmarkPack.
func BenchmarkPackPublish(b *testing.B) {
	g := testutil.RandomConnectedGraph(packedBenchN, packedBenchEdges, 9)
	idx, err := dynhl.Build(g.Clone(), dynhl.Options{Landmarks: packedBenchLand})
	if err != nil {
		b.Fatal(err)
	}
	st := dynhl.NewStore(idx)
	u, v := uint32(packedBenchN-2), uint32(packedBenchN-7)
	if g.HasEdge(u, v) {
		b.Fatal("benchmark edge already present")
	}
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply([]dynhl.Op{dynhl.InsertEdgeOp(u, v, 0)}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Apply([]dynhl.Op{dynhl.DeleteEdgeOp(u, v)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadLabels measures restoring a 50k-vertex packed labelling from
// its serialised form — the checkpoint-load path: one bulk arena read
// instead of per-vertex decodes.
func BenchmarkLoadLabels(b *testing.B) {
	g := testutil.RandomConnectedGraph(packedBenchN, packedBenchEdges, 9)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: packedBenchLand})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := dynhl.LoadIndex(bytes.NewReader(buf.Bytes()), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFork measures the copy-on-write fork + publish of an untouched
// oracle — the fixed per-epoch cost a batch pays before its first repair.
func BenchmarkFork(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := testutil.RandomConnectedGraph(n, 2*n, 9)
			idx, err := dynhl.Build(g, dynhl.Options{Landmarks: packedBenchLand})
			if err != nil {
				b.Fatal(err)
			}
			st := dynhl.NewStore(idx)
			for i := 0; i < b.N; i++ {
				// An empty batch short-circuits, so apply the smallest
				// possible real batch: one insert of an existing edge is
				// rejected; instead flip one edge on and off.
				if _, err := st.Apply([]dynhl.Op{dynhl.InsertEdgeOp(uint32(n-1), uint32(n-3), 0)}); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Apply([]dynhl.Op{dynhl.DeleteEdgeOp(uint32(n-1), uint32(n-3))}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
