package dynhl

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// BenchmarkQueryInstrumented isolates the cost of the always-on query
// instrumentation: the same packed snapshot queried through a bare view
// (no metrics — the pre-instrumentation read path) and through the
// instrumented view Snapshot hands out (one time.Now, two atomic adds and
// a threshold load per query). The delta is the observability tax on the
// hot path; EXPERIMENTS.md records it.
func BenchmarkQueryInstrumented(b *testing.B) {
	const n = 50_000
	idx, err := Build(testutil.RandomConnectedGraph(n, 2*n, 9), Options{Landmarks: 20})
	if err != nil {
		b.Fatal(err)
	}
	st := NewStore(idx)
	rng := rand.New(rand.NewSource(77))
	pairs := make([]Pair, 4096)
	for i := range pairs {
		pairs[i] = Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	bare := &view{sn: st.cur.Load()}
	inst := st.Snapshot()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			bare.Query(p.U, p.V)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			inst.Query(p.U, p.V)
		}
	})
}
