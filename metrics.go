package dynhl

import (
	"log"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/obs"
)

// This file is the store's observability surface: every Store owns an
// obs.Registry with per-variant query latency histograms, the five
// write-pipeline stage timings, and the arena gauges, plus a bounded
// threshold-gated slow-query log. Recording is atomic-add only — the
// zero-allocation contract of the packed read path (alloc_test.go, CI
// alloc-gate) holds with instrumentation permanently on.

// slowLogMinInterval bounds the slow-query log to at most one line per
// interval; queries over threshold beyond that budget are counted in
// dynhl_slow_queries_suppressed_total instead of logged, so a latency
// storm cannot turn the log itself into the bottleneck.
const slowLogMinInterval = 100 * time.Millisecond

// variantOf names the wrapped oracle variant for the variant= label.
func variantOf(o Oracle) string {
	switch o.(type) {
	case *Index:
		return "undirected"
	case *DirectedIndex:
		return "directed"
	case *WeightedIndex:
		return "weighted"
	default:
		return "custom"
	}
}

// storeMetrics is one Store's metric set. All fields are registered once
// at store construction; the hot paths touch only the atomics behind
// them.
type storeMetrics struct {
	reg     *obs.Registry
	variant string

	// Read path.
	query      *obs.Histogram // dynhl_query_seconds
	batch      *obs.Histogram // dynhl_query_batch_seconds
	batchPairs *obs.Histogram // dynhl_query_batch_pairs
	pins       *obs.Counter   // dynhl_snapshot_pins_total

	// Repair engine.
	repairLandmark *obs.Histogram // dynhl_repair_landmark_seconds

	// Write pipeline stages (store_queue.go).
	stageWait    *obs.Histogram // coalesce wait: enqueue -> claimed
	stageRepair  *obs.Histogram // fork + applyOps over the group
	stagePack    *obs.Histogram // freeze into the packed read form
	stageCommit  *obs.Histogram // durability hook: WAL append + fsync
	stagePublish *obs.Histogram // snapshot swap + waiter wakeup
	groupCallers *obs.Histogram // dynhl_apply_group_callers
	groupOps     *obs.Histogram // dynhl_apply_group_ops

	groups     *obs.Counter // dynhl_apply_groups_total
	callers    *obs.Counter // dynhl_apply_callers_total
	opsApplied *obs.Counter // dynhl_apply_ops_total
	rejected   *obs.Counter // dynhl_apply_rejected_total
	abandoned  *obs.Counter // dynhl_apply_abandoned_total
	commitErrs *obs.Counter // dynhl_apply_commit_errors_total

	// Slow-query log.
	slowTotal      *obs.Counter
	slowSuppressed *obs.Counter
	slowNanos      atomic.Int64 // threshold in nanoseconds; 0 disables
	slowLast       atomic.Int64 // unix nanos of the last emitted line
	slowLogf       atomic.Value // func(format string, args ...any)
}

func newStoreMetrics(s *Store, variant string) *storeMetrics {
	r := obs.NewRegistry()
	vl := obs.Label{Name: "variant", Value: variant}
	m := &storeMetrics{
		reg:     r,
		variant: variant,

		query: r.Duration("dynhl_query_seconds",
			"Single-pair query latency against a published view.", vl),
		batch: r.Duration("dynhl_query_batch_seconds",
			"Batch query latency (whole batch, one epoch).", vl),
		batchPairs: r.Values("dynhl_query_batch_pairs",
			"Pairs per batch query.", vl),
		pins: r.Counter("dynhl_snapshot_pins_total",
			"Views handed out by Snapshot (epoch pins).", vl),

		repairLandmark: r.Duration("dynhl_repair_landmark_seconds",
			"Per-landmark (per-pass) repair task latency inside the parallel repair engine.", vl),

		stageWait: r.Duration("dynhl_apply_stage_seconds",
			"Write-pipeline stage latency.", obs.Label{Name: "stage", Value: "coalesce_wait"}),
		stageRepair: r.Duration("dynhl_apply_stage_seconds",
			"Write-pipeline stage latency.", obs.Label{Name: "stage", Value: "repair"}),
		stagePack: r.Duration("dynhl_apply_stage_seconds",
			"Write-pipeline stage latency.", obs.Label{Name: "stage", Value: "pack"}),
		stageCommit: r.Duration("dynhl_apply_stage_seconds",
			"Write-pipeline stage latency.", obs.Label{Name: "stage", Value: "wal_commit"}),
		stagePublish: r.Duration("dynhl_apply_stage_seconds",
			"Write-pipeline stage latency.", obs.Label{Name: "stage", Value: "publish"}),
		groupCallers: r.Values("dynhl_apply_group_callers",
			"Callers coalesced per commit group."),
		groupOps: r.Values("dynhl_apply_group_ops",
			"Ops combined per commit group."),

		groups: r.Counter("dynhl_apply_groups_total",
			"Commit groups sent down the pipeline."),
		callers: r.Counter("dynhl_apply_callers_total",
			"Callers whose ops entered a commit group."),
		opsApplied: r.Counter("dynhl_apply_ops_total",
			"Ops repaired into commit groups."),
		rejected: r.Counter("dynhl_apply_rejected_total",
			"Callers rejected by per-segment validation."),
		abandoned: r.Counter("dynhl_apply_abandoned_total",
			"Callers that cancelled before the committer claimed them."),
		commitErrs: r.Counter("dynhl_apply_commit_errors_total",
			"Commit groups refused by the durability layer."),

		slowTotal: r.Counter("dynhl_slow_queries_total",
			"Queries over the slow-query threshold.", vl),
		slowSuppressed: r.Counter("dynhl_slow_queries_suppressed_total",
			"Slow queries not logged because of the rate bound.", vl),
	}
	r.GaugeFunc("dynhl_epoch", "Current published epoch.",
		func() float64 { return float64(s.Epoch()) })
	r.GaugeFunc("dynhl_repair_workers", "Resolved per-landmark repair fan-out (0: no repair engine).",
		func() float64 { return float64(s.RepairWorkers()) })
	r.GaugeFunc("dynhl_arena_mapped_bytes", "Bytes of live mmap'd arenas (process-wide).",
		func() float64 { return float64(arena.TotalMapped()) })
	r.GaugeFunc("dynhl_arena_mappings", "Live mmap'd arenas (process-wide).",
		func() float64 { return float64(arena.Mappings()) })
	r.CounterFunc("dynhl_arena_maps_total", "Arenas ever mapped (process-wide).",
		arena.MapsTotal)
	r.CounterFunc("dynhl_arena_unmaps_total", "Arenas ever unmapped (process-wide).",
		arena.UnmapsTotal)
	r.CounterFunc("dynhl_arena_mapped_bytes_total", "Bytes ever mapped (process-wide).",
		arena.MappedBytesTotal)
	return m
}

// queryDone records one single-pair query and feeds the slow-query log.
// Called on the hot path: the fast case is one time.Since plus two
// atomic adds and one atomic load.
func (m *storeMetrics) queryDone(epoch uint64, u, v uint32, d Dist, start time.Time) {
	el := time.Since(start)
	m.query.ObserveDuration(el)
	if thr := m.slowNanos.Load(); thr > 0 && int64(el) >= thr {
		m.slowQuery(epoch, u, v, d, el)
	}
}

// slowQuery is the cold path behind queryDone: count every over-threshold
// query, log at most one structured line per slowLogMinInterval.
func (m *storeMetrics) slowQuery(epoch uint64, u, v uint32, d Dist, el time.Duration) {
	m.slowTotal.Inc()
	now := time.Now().UnixNano()
	last := m.slowLast.Load()
	if now-last < int64(slowLogMinInterval) || !m.slowLast.CompareAndSwap(last, now) {
		m.slowSuppressed.Inc()
		return
	}
	logf, _ := m.slowLogf.Load().(func(string, ...any))
	if logf == nil {
		logf = log.Printf
	}
	logf("slow query: variant=%s epoch=%d u=%d v=%d dist=%v latency=%s",
		m.variant, epoch, u, v, d, el)
}

// batchDone records one batch query.
func (m *storeMetrics) batchDone(pairs int, start time.Time) {
	m.batch.Since(start)
	m.batchPairs.Observe(uint64(pairs))
}

// SetSlowQueryLog configures the slow-query log: queries slower than
// threshold emit one structured line (epoch, variant, endpoints,
// distance, latency) through logf, bounded to one line per 100ms —
// excess slow queries are only counted. threshold <= 0 disables logging
// (the default); a nil logf keeps the previous sink (initially
// log.Printf).
func (s *Store) SetSlowQueryLog(threshold time.Duration, logf func(format string, args ...any)) {
	if logf != nil {
		s.metrics.slowLogf.Store(logf)
	}
	if threshold < 0 {
		threshold = 0
	}
	s.metrics.slowNanos.Store(int64(threshold))
}

// metricsSource is implemented by attached layers (internal/wal.Durable,
// internal/repl.Leader and Follower) that carry their own registry.
type metricsSource interface {
	MetricsRegistry() *obs.Registry
}

// MetricsRegistries returns every metrics registry this store speaks
// for: its own (query, pipeline, arena) plus the registries of the
// attached durability and replication layers. The HTTP /metrics
// endpoint renders them back to back; the set grows as layers attach.
func (s *Store) MetricsRegistries() []*obs.Registry {
	regs := []*obs.Registry{s.metrics.reg}
	if d := s.durability(); d != nil {
		if ms, ok := d.(metricsSource); ok {
			regs = append(regs, ms.MetricsRegistry())
		}
	}
	if r := s.replication(); r != nil {
		if ms, ok := r.(metricsSource); ok {
			regs = append(regs, ms.MetricsRegistry())
		}
	}
	return regs
}
