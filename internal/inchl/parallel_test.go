package inchl

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/landmark"
	"repro/internal/testutil"
)

// workerSweep is the fan-out values every determinism test runs: the forced
// serial path, a fixed parallel width, and the GOMAXPROCS default.
var workerSweep = []int{1, 2, 0}

// runMixed drives the same insert/delete stream through u and returns the
// per-op stats; every third inserted edge is deleted again so both repair
// paths (classify and rebuild) execute.
func runMixed(t *testing.T, u *Updater, edges [][2]uint32) []Stats {
	t.Helper()
	var log []Stats
	for i, e := range edges {
		st, err := u.InsertEdge(e[0], e[1])
		if err != nil {
			t.Fatalf("insert %d (%d,%d): %v", i, e[0], e[1], err)
		}
		log = append(log, st)
		if i%3 == 2 {
			st, err := u.DeleteEdge(e[0], e[1])
			if err != nil {
				t.Fatalf("delete %d (%d,%d): %v", i, e[0], e[1], err)
			}
			log = append(log, st)
		}
	}
	return log
}

// TestParallelRepairMatchesSerial pins the engine's core contract: for any
// worker count the repaired labelling, the highway and every per-op Stats
// are identical to the serial path's.
func TestParallelRepairMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testutil.RandomConnectedGraph(60, 80, seed)
		lm := landmark.ByDegree(g, 4)
		edges := testutil.NonEdges(g, 18, seed*17+3)

		_, serial := buildPair(t, g, lm)
		serial.Workers = 1
		want := runMixed(t, serial, edges)

		for _, w := range workerSweep[1:] {
			_, par := buildPair(t, g, lm)
			par.Workers = w
			got := runMixed(t, par, edges)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: op %d stats diverged: got %+v, want %+v",
						seed, w, i, got[i], want[i])
				}
			}
			if err := serial.Idx.EqualLabels(par.Idx); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestParallelRebuildStrategyMatchesSerial covers the RepairRebuild
// strategy, whose per-landmark tasks are full BFS rebuilds.
func TestParallelRebuildStrategyMatchesSerial(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 70, 11)
	lm := landmark.ByDegree(g, 4)
	edges := testutil.NonEdges(g, 12, 99)

	_, serial := buildPair(t, g, lm)
	serial.Strategy = RepairRebuild
	serial.Workers = 1
	want := runMixed(t, serial, edges)

	for _, w := range workerSweep[1:] {
		_, par := buildPair(t, g, lm)
		par.Strategy = RepairRebuild
		par.Workers = w
		got := runMixed(t, par, edges)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d: op %d stats diverged: got %+v, want %+v", w, i, got[i], want[i])
			}
		}
		if err := serial.Idx.EqualLabels(par.Idx); err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
	}
}

// TestRepairTimerObservesTasks checks the per-task timer hook fires once
// per landmark task from the fan, for both serial and parallel widths.
func TestRepairTimerObservesTasks(t *testing.T) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		g := testutil.RandomConnectedGraph(40, 60, 7)
		lm := landmark.ByDegree(g, 3)
		_, u := buildPair(t, g, lm)
		u.Workers = w
		var calls atomic.Int64
		u.RepairTimer = func(time.Duration) { calls.Add(1) }
		e := testutil.NonEdges(g, 1, 5)[0]
		if _, err := u.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != int64(len(lm)) {
			t.Fatalf("workers %d: timer observed %d tasks, want %d", w, got, len(lm))
		}
	}
}

// TestParallelRepairQueriesExact spot-checks that a parallel repair leaves
// an exact oracle behind, independent of the serial comparison.
func TestParallelRepairQueriesExact(t *testing.T) {
	g := testutil.RandomConnectedGraph(45, 65, 21)
	lm := landmark.ByDegree(g, 4)
	_, u := buildPair(t, g, lm)
	u.Workers = 0 // GOMAXPROCS
	runMixed(t, u, testutil.NonEdges(g, 10, 77))
	oracle := testutil.AllPairsOracle(u.Idx.G)
	n := u.Idx.G.NumVertices()
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if got := u.Idx.Query(uint32(x), uint32(y)); got != oracle[x][y] {
				t.Fatalf("Query(%d,%d) = %d, BFS %d", x, y, got, oracle[x][y])
			}
		}
	}
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}
