// Package inchl implements IncHL+, the online incremental algorithm of
// Farhan & Wang (EDBT 2021) that maintains a highway cover labelling under
// edge and vertex insertions while preserving labelling minimality.
//
// For an inserted edge (a,b) the algorithm runs, per landmark r:
//
//   - FindAffected (Algorithm 2): a "jumped" BFS that starts directly at b
//     with depth Q(r,a,Γ)+1 (Lemma 4.4) and collects exactly the vertices
//     with a shortest path to r through (a,b) (Lemma 4.3) — the affected set
//     Λ_r. Landmarks with d_G(r,a) = d_G(r,b) are skipped outright since
//     Λ_r = ∅ for them.
//   - RepairAffected (Algorithm 3): a pass over Λ_r in BFS level order that
//     distinguishes covered vertices (some new shortest path to r passes
//     through another landmark — their r-entry is removed, Lemma 4.6) from
//     uncovered ones (their r-entry is set to the new exact distance), and
//     refreshes the highway rows of affected landmarks.
//
// Deviation from the paper's pseudocode, for correctness: Algorithm 1
// interleaves find and repair per landmark, but a repair mutates label
// entries and highway cells that later Q(r,·,Γ) calls consult, which can
// make those queries return mixed old/new-graph distances and miss affected
// vertices. We therefore run the find phase for all landmarks against the
// unmodified labelling, caching the old distances of every scanned vertex
// (the cache the paper alludes to in its complexity analysis), and only then
// repair. The repair pass classifies each affected vertex by scanning its
// shortest-path parents — the ∃-covered-parent test of Lemma 4.6 — which is
// the same classification the paper's two-queue formulation computes.
//
// All per-update state lives in epoch-stamped scratch arrays owned by the
// Updater, so steady-state updates allocate only the small per-landmark
// result slices.
package inchl

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/queue"
)

// RepairStrategy selects how labels of affected vertices are repaired.
type RepairStrategy int

const (
	// RepairPartial is IncHL+'s repair: a pass over the affected vertices
	// only, using the covered/uncovered distinction of Lemma 4.6.
	RepairPartial RepairStrategy = iota
	// RepairRebuild recomputes the full labelling of every landmark with a
	// non-empty affected set by re-running its construction BFS. It is the
	// ablation baseline quantifying what the partial repair saves.
	RepairRebuild
)

// Updater maintains a highway cover labelling under insertions.
// It is not safe for concurrent use.
type Updater struct {
	Idx *hcl.Index

	// Strategy selects the repair implementation (default RepairPartial).
	Strategy RepairStrategy

	// Epoch-stamped scratch: a slot is valid only when its stamp equals the
	// current epoch, so per-landmark resets are O(1).
	epoch    uint32
	oldStamp []uint32     // stamps for oldVal
	oldVal   []graph.Dist // cached pre-update distances d_G(r,·)
	newStamp []uint32     // stamps for newVal (doubles as the visited set)
	newVal   []graph.Dist // new distances of affected vertices
	covStamp []uint32     // stamps for covVal
	covVal   []bool       // covered classification of processed vertices

	q     queue.PairQueue
	finds []findResult

	// rebuild-strategy scratch
	dist   []graph.Dist
	cover  []bool
	plainQ queue.Uint32
}

// findResult carries one landmark's affected set from the find phase to the
// repair phase.
type findResult struct {
	rank     uint16
	affected []queue.Pair // BFS level order, depth = new distance
	oldCache []queue.Pair // (vertex, old distance) for every scanned vertex
}

// Stats reports what a single update did, feeding the paper's Figure 1
// (affected percentages) and Table 1/Figures 3–4 instrumentation.
type Stats struct {
	LandmarksTotal   int // |R|
	LandmarksSkipped int // d_G(r,a) == d_G(r,b), Λ_r = ∅ (Lemma 4.3)
	AffectedSum      int // Σ_r |Λ_r|
	AffectedUnion    int // |Λ| = |∪_r Λ_r|, the paper's affected vertices
	EntriesAdded     int // label entries added or modified
	EntriesRemoved   int // label entries removed (outdated/redundant)
	HighwayUpdates   int // highway cells refreshed
}

// New returns an Updater maintaining idx.
func New(idx *hcl.Index) *Updater {
	return &Updater{Idx: idx}
}

// InsertEdge inserts the undirected edge (a,b) into the graph and repairs
// the labelling so that it is again the minimal highway cover labelling of
// the changed graph. It is Algorithm 1 (IncHL+) of the paper.
//
// Inserting an edge that already exists is an error, matching the paper's
// update model ((a,b) ∉ E); both endpoints must already be vertices (use
// InsertVertex for vertex additions).
func (u *Updater) InsertEdge(a, b uint32) (Stats, error) {
	var st Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if g.HasEdge(a, b) {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrEdgeExists)
	}

	st.LandmarksTotal = idx.NumLandmarks()

	// Find phase: all landmarks, against the pre-update labelling. The
	// queries below read the old labelling, so they see d_G even though the
	// adjacency already contains (a,b) — BFS expansion, not labelled
	// distances, is what needs the new edge.
	if _, err := g.AddEdge(a, b); err != nil {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, err)
	}
	u.ensureScratch(g.NumVertices())
	u.finds = u.finds[:0]
	for r := 0; r < idx.NumLandmarks(); r++ {
		fr, skipped := u.findAffected(uint16(r), a, b)
		if skipped {
			st.LandmarksSkipped++
			continue
		}
		st.AffectedSum += len(fr.affected)
		u.finds = append(u.finds, fr)
	}
	st.AffectedUnion = u.affectedUnion()

	// Repair phase.
	for i := range u.finds {
		fr := &u.finds[i]
		switch u.Strategy {
		case RepairRebuild:
			u.rebuildLandmark(fr.rank, &st)
		default:
			u.repairAffected(fr, &st)
		}
	}
	return st, nil
}

// InsertVertex adds a new vertex connected to the given existing neighbours
// (the paper's node insertion: a new node plus a set of edge insertions,
// processed as sequential edge insertions). It returns the new vertex id
// and statistics aggregated over the component insertions.
func (u *Updater) InsertVertex(neighbors []uint32) (uint32, Stats, error) {
	var agg Stats
	g := u.Idx.G
	for _, w := range neighbors {
		if !g.HasVertex(w) {
			return 0, agg, fmt.Errorf("inchl: insert vertex: neighbour %d: %w", w, graph.ErrVertexUnknown)
		}
	}
	v := g.AddVertex()
	u.Idx.EnsureVertex(v)
	agg.LandmarksTotal = u.Idx.NumLandmarks()
	for _, w := range neighbors {
		st, err := u.InsertEdge(v, w)
		if err != nil {
			return v, agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.AffectedUnion += st.AffectedUnion
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return v, agg, nil
}

// ensureScratch sizes the stamped arrays for n vertices.
func (u *Updater) ensureScratch(n int) {
	if len(u.oldStamp) >= n {
		return
	}
	u.oldStamp = append(u.oldStamp, make([]uint32, n-len(u.oldStamp))...)
	u.oldVal = append(u.oldVal, make([]graph.Dist, n-len(u.oldVal))...)
	u.newStamp = append(u.newStamp, make([]uint32, n-len(u.newStamp))...)
	u.newVal = append(u.newVal, make([]graph.Dist, n-len(u.newVal))...)
	u.covStamp = append(u.covStamp, make([]uint32, n-len(u.covStamp))...)
	u.covVal = append(u.covVal, make([]bool, n-len(u.covVal))...)
}

// bumpEpoch starts a fresh validity epoch, clearing stamps on wraparound.
func (u *Updater) bumpEpoch() {
	if u.epoch == math.MaxUint32 {
		for i := range u.oldStamp {
			u.oldStamp[i] = 0
			u.newStamp[i] = 0
			u.covStamp[i] = 0
		}
		u.epoch = 0
	}
	u.epoch++
}

// affectedUnion counts distinct affected vertices across all landmarks,
// using a fresh epoch of the covered-stamp array as the seen set.
func (u *Updater) affectedUnion() int {
	u.bumpEpoch()
	count := 0
	for i := range u.finds {
		for _, p := range u.finds[i].affected {
			if u.covStamp[p.V] != u.epoch {
				u.covStamp[p.V] = u.epoch
				count++
			}
		}
	}
	return count
}

// findAffected is Algorithm 2: the jumped BFS from b collecting Λ_r. It
// reports skipped=true when the landmark can be eliminated because
// d_G(r,a) = d_G(r,b).
func (u *Updater) findAffected(r uint16, a, b uint32) (findResult, bool) {
	idx := u.Idx
	da := idx.LandmarkDist(r, a)
	db := idx.LandmarkDist(r, b)
	if da == db {
		return findResult{}, true // Λ_r = ∅ (no shortest path can use (a,b))
	}
	if db < da {
		a, b = b, a
		da, db = db, da
	}
	u.bumpEpoch()
	e := u.epoch
	fr := findResult{rank: r}
	u.oldStamp[a], u.oldVal[a] = e, da
	u.oldStamp[b], u.oldVal[b] = e, db
	fr.oldCache = append(fr.oldCache, queue.Pair{V: a, D: da}, queue.Pair{V: b, D: db})
	pi := graph.AddDist(da, 1) // new depth of b (Lemma 4.4 jump)

	u.q.Reset()
	u.q.Push(queue.Pair{V: b, D: pi})
	u.newStamp[b], u.newVal[b] = e, pi
	for !u.q.Empty() {
		p := u.q.Pop()
		fr.affected = append(fr.affected, p)
		next := graph.AddDist(p.D, 1)
		for _, w := range idx.G.Neighbors(p.V) {
			if u.newStamp[w] == e {
				continue // already affected (visited)
			}
			var old graph.Dist
			if u.oldStamp[w] == e {
				old = u.oldVal[w]
			} else {
				old = idx.LandmarkDist(r, w)
				u.oldStamp[w], u.oldVal[w] = e, old
				fr.oldCache = append(fr.oldCache, queue.Pair{V: w, D: old})
			}
			if old >= next {
				u.newStamp[w], u.newVal[w] = e, next
				u.q.Push(queue.Pair{V: w, D: next})
			}
		}
	}
	return fr, false
}

// repairAffected is Algorithm 3: it walks Λ_r in BFS level order and, for
// each affected vertex, decides coverage by Lemma 4.6 — the vertex is
// covered iff it is a landmark, or some shortest-path parent (a neighbour
// at new distance d-1) is a landmark other than r or is itself covered.
// Covered vertices lose their r-entry; uncovered ones get the exact new
// distance.
func (u *Updater) repairAffected(fr *findResult, st *Stats) {
	idx := u.Idx
	r := fr.rank
	root := idx.Landmarks[r]
	u.bumpEpoch()
	e := u.epoch
	// Replay the find phase's knowledge into the current epoch: old
	// distances of scanned vertices and new distances of affected ones.
	for _, p := range fr.oldCache {
		u.oldStamp[p.V], u.oldVal[p.V] = e, p.D
	}
	for _, p := range fr.affected {
		u.newStamp[p.V], u.newVal[p.V] = e, p.D
	}
	for _, p := range fr.affected {
		w, d := p.V, p.D
		if s, isL := idx.Rank(w); isL {
			idx.H.Set(r, s, d)
			st.HighwayUpdates++
			u.covStamp[w], u.covVal[w] = e, true
			continue
		}
		cov := false
		for _, n := range idx.G.Neighbors(w) {
			var nd graph.Dist
			affected := u.newStamp[n] == e
			if affected {
				nd = u.newVal[n]
			} else if u.oldStamp[n] == e {
				nd = u.oldVal[n] // unaffected: old distance = new distance
			} else {
				continue // never scanned — cannot be a shortest-path parent
			}
			if nd != d-1 {
				continue
			}
			if affected {
				if u.covStamp[n] == e && u.covVal[n] {
					cov = true
					break
				}
				continue
			}
			if idx.IsLandmark(n) {
				if n != root {
					cov = true
					break
				}
				continue
			}
			if _, hasEntry := idx.EntryDist(n, r); !hasEntry {
				cov = true // unaffected non-landmark without an r-entry is covered
				break
			}
		}
		u.covStamp[w], u.covVal[w] = e, cov
		if cov {
			if idx.RemoveEntry(w, r) {
				st.EntriesRemoved++
			}
		} else {
			idx.SetEntry(w, r, d)
			st.EntriesAdded++
		}
	}
}

// rebuildLandmark is the RepairRebuild ablation: rerun the construction BFS
// of landmark r over the whole (already updated) graph, replacing every
// r-entry. It produces the same labelling as repairAffected at full-BFS
// cost.
func (u *Updater) rebuildLandmark(r uint16, st *Stats) {
	idx := u.Idx
	g := idx.G
	n := g.NumVertices()
	if len(u.dist) < n {
		u.dist = make([]graph.Dist, n)
		u.cover = make([]bool, n)
	}
	dist, cover := u.dist[:n], u.cover[:n]
	for i := range dist {
		dist[i] = graph.Inf
		cover[i] = false
	}
	root := idx.Landmarks[r]
	dist[root] = 0
	u.plainQ.Reset()
	u.plainQ.Push(root)
	for !u.plainQ.Empty() {
		v := u.plainQ.Pop()
		dv := dist[v]
		cv := cover[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				cover[w] = cv || (idx.IsLandmark(w) && w != root)
				u.plainQ.Push(w)
			case dist[w] == dv+1 && cv:
				cover[w] = true
			}
		}
	}
	// Replace all r-entries: remove everywhere, re-add where uncovered.
	for v := 0; v < n; v++ {
		vv := uint32(v)
		if s, isL := idx.Rank(vv); isL {
			if dist[v] != graph.Inf || vv == root {
				idx.H.Set(r, s, dist[v])
				st.HighwayUpdates++
			}
			continue
		}
		if dist[v] != graph.Inf && !cover[v] {
			if old, had := idx.EntryDist(vv, r); !had || old != dist[v] {
				idx.SetEntry(vv, r, dist[v])
				st.EntriesAdded++
			}
		} else if idx.RemoveEntry(vv, r) {
			st.EntriesRemoved++
		}
	}
}
