// Package inchl implements IncHL+, the online incremental algorithm of
// Farhan & Wang (EDBT 2021) that maintains a highway cover labelling under
// edge and vertex insertions while preserving labelling minimality.
//
// For an inserted edge (a,b) the algorithm runs, per landmark r:
//
//   - FindAffected (Algorithm 2): a "jumped" BFS that starts directly at b
//     with depth Q(r,a,Γ)+1 (Lemma 4.4) and collects exactly the vertices
//     with a shortest path to r through (a,b) (Lemma 4.3) — the affected set
//     Λ_r. Landmarks with d_G(r,a) = d_G(r,b) are skipped outright since
//     Λ_r = ∅ for them.
//   - RepairAffected (Algorithm 3): a pass over Λ_r in BFS level order that
//     distinguishes covered vertices (some new shortest path to r passes
//     through another landmark — their r-entry is removed, Lemma 4.6) from
//     uncovered ones (their r-entry is set to the new exact distance), and
//     refreshes the highway rows of affected landmarks.
//
// Deviation from the paper's pseudocode, for correctness: Algorithm 1
// interleaves find and repair per landmark, but a repair mutates label
// entries and highway cells that later Q(r,·,Γ) calls consult, which can
// make those queries return mixed old/new-graph distances and miss affected
// vertices. We therefore run the find phase for all landmarks against the
// unmodified labelling, caching the old distances of every scanned vertex
// (the cache the paper alludes to in its complexity analysis), and only then
// repair. The repair pass classifies each affected vertex by scanning its
// shortest-path parents — the ∃-covered-parent test of Lemma 4.6 — which is
// the same classification the paper's two-queue formulation computes.
//
// Both phases are landmark-independent, so each update fans per-landmark
// find+repair tasks across Workers cores: tasks read the frozen pre-repair
// labelling and buffer their edits as deltas, and a single-threaded merge
// applies them in rank order — see parallel.go for why the result is
// byte-identical to the serial loop. Per-update state lives in epoch-stamped
// per-worker scratch, so steady-state updates allocate only the small
// per-landmark result slices.
package inchl

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/queue"
)

// RepairStrategy selects how labels of affected vertices are repaired.
type RepairStrategy int

const (
	// RepairPartial is IncHL+'s repair: a pass over the affected vertices
	// only, using the covered/uncovered distinction of Lemma 4.6.
	RepairPartial RepairStrategy = iota
	// RepairRebuild recomputes the full labelling of every landmark with a
	// non-empty affected set by re-running its construction BFS. It is the
	// ablation baseline quantifying what the partial repair saves.
	RepairRebuild
)

// Updater maintains a highway cover labelling under insertions.
// It is not safe for concurrent use: the worker fan-out inside an update is
// internal, and at most one update runs at a time.
type Updater struct {
	Idx *hcl.Index

	// Strategy selects the repair implementation (default RepairPartial).
	Strategy RepairStrategy

	// Workers bounds the per-landmark fan-out of the find/repair phases:
	// 0 (the default) resolves to GOMAXPROCS, 1 forces the serial path,
	// any other value is used as given. Every worker count produces a
	// byte-identical labelling and identical Stats.
	Workers int

	// RepairTimer, when non-nil, observes the wall time of every
	// per-landmark find+repair task. It is called from worker goroutines
	// and must be safe for concurrent use.
	RepairTimer func(time.Duration)

	// sc is worker 0's scratch; it also carries the cross-landmark union
	// accounting (affectedUnion, decremental touch set), which only the
	// single-threaded merge uses. Extra workers draw pooled scratches.
	sc scratch

	finds  []findResult  // per-task find results, reused across updates
	deltas []repairDelta // per-task repair deltas, reused across updates
}

// findResult carries one landmark's affected set from the find phase to the
// repair phase.
type findResult struct {
	rank     uint16
	skipped  bool
	affected []queue.Pair // BFS level order, depth = new distance
	oldCache []queue.Pair // (vertex, old distance) for every scanned vertex
}

// Stats reports what a single update did, feeding the paper's Figure 1
// (affected percentages) and Table 1/Figures 3–4 instrumentation.
type Stats struct {
	LandmarksTotal   int // |R|
	LandmarksSkipped int // d_G(r,a) == d_G(r,b), Λ_r = ∅ (Lemma 4.3)
	AffectedSum      int // Σ_r |Λ_r|
	AffectedUnion    int // |Λ| = |∪_r Λ_r|, the paper's affected vertices
	EntriesAdded     int // label entries added or modified
	EntriesRemoved   int // label entries removed (outdated/redundant)
	HighwayUpdates   int // highway cells refreshed
}

// New returns an Updater maintaining idx.
func New(idx *hcl.Index) *Updater {
	return &Updater{Idx: idx}
}

// InsertEdge inserts the undirected edge (a,b) into the graph and repairs
// the labelling so that it is again the minimal highway cover labelling of
// the changed graph. It is Algorithm 1 (IncHL+) of the paper.
//
// Inserting an edge that already exists is an error, matching the paper's
// update model ((a,b) ∉ E); both endpoints must already be vertices (use
// InsertVertex for vertex additions).
func (u *Updater) InsertEdge(a, b uint32) (Stats, error) {
	var st Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if g.HasEdge(a, b) {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, graph.ErrEdgeExists)
	}

	k := idx.NumLandmarks()
	st.LandmarksTotal = k

	// The find tasks below read the old labelling, so they see d_G even
	// though the adjacency already contains (a,b) — BFS expansion, not
	// labelled distances, is what needs the new edge.
	if _, err := g.AddEdge(a, b); err != nil {
		return st, fmt.Errorf("inchl: insert (%d,%d): %w", a, b, err)
	}
	u.sc.ensure(g.NumVertices())
	u.sizeFinds(k)
	u.sizeDeltas(k)

	// Fan one find+repair task per landmark against the frozen labelling.
	u.fan(k, func(sc *scratch, task int) {
		u.insertTask(sc, uint16(task), a, b)
	})

	// Merge the buffered deltas in rank order — the serial apply order.
	for r := 0; r < k; r++ {
		fr := &u.finds[r]
		if fr.skipped {
			st.LandmarksSkipped++
			continue
		}
		st.AffectedSum += len(fr.affected)
		u.applyDelta(uint16(r), &u.deltas[r], &st)
	}
	st.AffectedUnion = u.affectedUnion()
	return st, nil
}

// insertTask is one landmark's share of an insertion: the jumped find BFS
// and, when the landmark is affected, the repair classification (or the
// rebuild ablation), buffered into the task's delta. It only reads the
// index; every edit waits for the merge.
func (u *Updater) insertTask(sc *scratch, r uint16, a, b uint32) {
	fr := &u.finds[r]
	fr.rank = r
	fr.affected = fr.affected[:0]
	fr.oldCache = fr.oldCache[:0]
	d := &u.deltas[r]
	d.reset()
	if !u.findAffected(sc, fr, a, b) {
		fr.skipped = true
		return
	}
	fr.skipped = false
	if u.Strategy == RepairRebuild {
		u.rebuildLandmark(sc, r, d)
	} else {
		u.classifyAffected(sc, fr, d)
	}
}

// applyDelta applies one insert-path delta: highway cells and label ops are
// definitive (insert repairs never read the highway, and label checks are
// rank-scoped), so the merge writes them through and trusts the worker-side
// counters.
func (u *Updater) applyDelta(r uint16, d *repairDelta, st *Stats) {
	idx := u.Idx
	for _, h := range d.hw {
		idx.H.Set(r, h.s, h.d)
	}
	for _, op := range d.ops {
		if op.set {
			idx.SetEntry(op.v, r, op.d)
		} else {
			idx.RemoveEntry(op.v, r)
		}
	}
	st.EntriesAdded += d.stats.EntriesAdded
	st.EntriesRemoved += d.stats.EntriesRemoved
	st.HighwayUpdates += d.stats.HighwayUpdates
}

// InsertVertex adds a new vertex connected to the given existing neighbours
// (the paper's node insertion: a new node plus a set of edge insertions,
// processed as sequential edge insertions). It returns the new vertex id
// and statistics aggregated over the component insertions.
func (u *Updater) InsertVertex(neighbors []uint32) (uint32, Stats, error) {
	var agg Stats
	g := u.Idx.G
	for _, w := range neighbors {
		if !g.HasVertex(w) {
			return 0, agg, fmt.Errorf("inchl: insert vertex: neighbour %d: %w", w, graph.ErrVertexUnknown)
		}
	}
	v := g.AddVertex()
	u.Idx.EnsureVertex(v)
	agg.LandmarksTotal = u.Idx.NumLandmarks()
	for _, w := range neighbors {
		st, err := u.InsertEdge(v, w)
		if err != nil {
			return v, agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.AffectedUnion += st.AffectedUnion
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return v, agg, nil
}

// affectedUnion counts distinct affected vertices across all landmarks,
// using a fresh epoch of the primary scratch's covered-stamp array as the
// seen set.
func (u *Updater) affectedUnion() int {
	u.sc.bump()
	e := u.sc.epoch
	count := 0
	for i := range u.finds {
		for _, p := range u.finds[i].affected {
			if u.sc.covStamp[p.V] != e {
				u.sc.covStamp[p.V] = e
				count++
			}
		}
	}
	return count
}

// findAffected is Algorithm 2: the jumped BFS from b collecting Λ_r into fr.
// It reports false when the landmark can be eliminated because
// d_G(r,a) = d_G(r,b). The scratch epoch it stamps old/new distances under
// stays current for the fused classifyAffected that follows.
func (u *Updater) findAffected(sc *scratch, fr *findResult, a, b uint32) bool {
	idx := u.Idx
	r := fr.rank
	da := idx.LandmarkDist(r, a)
	db := idx.LandmarkDist(r, b)
	if da == db {
		return false // Λ_r = ∅ (no shortest path can use (a,b))
	}
	if db < da {
		a, b = b, a
		da, db = db, da
	}
	sc.bump()
	e := sc.epoch
	sc.oldStamp[a], sc.oldVal[a] = e, da
	sc.oldStamp[b], sc.oldVal[b] = e, db
	fr.oldCache = append(fr.oldCache, queue.Pair{V: a, D: da}, queue.Pair{V: b, D: db})
	pi := graph.AddDist(da, 1) // new depth of b (Lemma 4.4 jump)

	sc.q.Reset()
	sc.q.Push(queue.Pair{V: b, D: pi})
	sc.newStamp[b], sc.newVal[b] = e, pi
	for !sc.q.Empty() {
		p := sc.q.Pop()
		fr.affected = append(fr.affected, p)
		next := graph.AddDist(p.D, 1)
		for _, w := range idx.G.Neighbors(p.V) {
			if sc.newStamp[w] == e {
				continue // already affected (visited)
			}
			var old graph.Dist
			if sc.oldStamp[w] == e {
				old = sc.oldVal[w]
			} else {
				old = idx.LandmarkDist(r, w)
				sc.oldStamp[w], sc.oldVal[w] = e, old
				fr.oldCache = append(fr.oldCache, queue.Pair{V: w, D: old})
			}
			if old >= next {
				sc.newStamp[w], sc.newVal[w] = e, next
				sc.q.Push(queue.Pair{V: w, D: next})
			}
		}
	}
	return true
}

// classifyAffected is Algorithm 3: it walks Λ_r in BFS level order and, for
// each affected vertex, decides coverage by Lemma 4.6 — the vertex is
// covered iff it is a landmark, or some shortest-path parent (a neighbour
// at new distance d-1) is a landmark other than r or is itself covered.
// Covered vertices lose their r-entry; uncovered ones get the exact new
// distance. It runs fused with findAffected on the same scratch epoch, so
// the old/new distance stamps are already in place; edits go to the delta,
// with the entry checks exact because only rank r ever touches r-entries.
func (u *Updater) classifyAffected(sc *scratch, fr *findResult, d *repairDelta) {
	idx := u.Idx
	r := fr.rank
	root := idx.Landmarks[r]
	e := sc.epoch
	for _, p := range fr.affected {
		w, dd := p.V, p.D
		if s, isL := idx.Rank(w); isL {
			d.highway(s, dd)
			d.stats.HighwayUpdates++
			sc.covStamp[w], sc.covVal[w] = e, true
			continue
		}
		cov := false
		for _, n := range idx.G.Neighbors(w) {
			var nd graph.Dist
			affected := sc.newStamp[n] == e
			if affected {
				nd = sc.newVal[n]
			} else if sc.oldStamp[n] == e {
				nd = sc.oldVal[n] // unaffected: old distance = new distance
			} else {
				continue // never scanned — cannot be a shortest-path parent
			}
			if nd != dd-1 {
				continue
			}
			if affected {
				if sc.covStamp[n] == e && sc.covVal[n] {
					cov = true
					break
				}
				continue
			}
			if idx.IsLandmark(n) {
				if n != root {
					cov = true
					break
				}
				continue
			}
			if _, hasEntry := idx.EntryDist(n, r); !hasEntry {
				cov = true // unaffected non-landmark without an r-entry is covered
				break
			}
		}
		sc.covStamp[w], sc.covVal[w] = e, cov
		if cov {
			if _, had := idx.EntryDist(w, r); had {
				d.removeEntry(w)
				d.stats.EntriesRemoved++
			}
		} else {
			d.setEntry(w, dd)
			d.stats.EntriesAdded++
		}
	}
}

// rebuildLandmark is the RepairRebuild ablation: rerun the construction BFS
// of landmark r over the whole (already updated) graph, replacing every
// r-entry. It produces the same labelling as classifyAffected at full-BFS
// cost.
func (u *Updater) rebuildLandmark(sc *scratch, r uint16, d *repairDelta) {
	idx := u.Idx
	g := idx.G
	n := g.NumVertices()
	sc.ensureRebuild(n)
	dist, cover := sc.dist[:n], sc.cover[:n]
	for i := range dist {
		dist[i] = graph.Inf
		cover[i] = false
	}
	root := idx.Landmarks[r]
	dist[root] = 0
	sc.plainQ.Reset()
	sc.plainQ.Push(root)
	for !sc.plainQ.Empty() {
		v := sc.plainQ.Pop()
		dv := dist[v]
		cv := cover[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				cover[w] = cv || (idx.IsLandmark(w) && w != root)
				sc.plainQ.Push(w)
			case dist[w] == dv+1 && cv:
				cover[w] = true
			}
		}
	}
	// Replace all r-entries: remove everywhere, re-add where uncovered.
	for v := 0; v < n; v++ {
		vv := uint32(v)
		if s, isL := idx.Rank(vv); isL {
			if dist[v] != graph.Inf || vv == root {
				d.highway(s, dist[v])
				d.stats.HighwayUpdates++
			}
			continue
		}
		if dist[v] != graph.Inf && !cover[v] {
			if old, had := idx.EntryDist(vv, r); !had || old != dist[v] {
				d.setEntry(vv, dist[v])
				d.stats.EntriesAdded++
			}
		} else if _, had := idx.EntryDist(vv, r); had {
			d.removeEntry(vv)
			d.stats.EntriesRemoved++
		}
	}
}
