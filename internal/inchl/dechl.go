// DecHL: the decremental counterpart of IncHL+. The paper covers only
// insertions; deletions are repaired here with the observation that removing
// an edge (a,b) can change the labelling of landmark r — its distances OR
// the covered/uncovered classification of its shortest-path DAG — only when
// (a,b) lies on that DAG, i.e. when the pre-delete endpoint distances differ
// by exactly one (|d_G(r,a) − d_G(r,b)| = 1). The affected test therefore
// costs two labelled lookups per landmark and no search at all; unaffected
// landmarks (the common case: an edge sits on the shortest-path DAGs of few
// landmarks) keep their entries untouched. Each affected landmark is then
// patched by re-running its construction BFS over the updated graph and
// replacing its entries and highway row in place.
//
// Unlike the insertion-side rebuildLandmark, the decremental rebuild must
// handle vertices that became unreachable — their entries are dropped and
// their highway cells reset to Inf — because deletions are the only updates
// that can disconnect the graph.
//
// The resulting labelling is identical to a fresh build (minimality is
// preserved): rebuilt landmarks get exactly their fresh entries, and for a
// landmark whose shortest-path DAG did not contain (a,b), neither its
// distances nor its shortest-path structure changed, so its fresh entries
// equal its old ones.

package inchl

import (
	"fmt"

	"repro/internal/graph"
)

// DeleteEdge removes the undirected edge (a,b) from the graph and repairs
// the labelling so that it is again the minimal highway cover labelling of
// the changed graph. Deleting an edge that does not exist is an error
// (graph.ErrEdgeUnknown), mirroring InsertEdge's update model.
func (u *Updater) DeleteEdge(a, b uint32) (Stats, error) {
	var st Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if !g.HasEdge(a, b) {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrEdgeUnknown)
	}
	st.LandmarksTotal = idx.NumLandmarks()

	// Affected test against the pre-delete labelling (still exact here).
	var affected []uint16
	for r := 0; r < idx.NumLandmarks(); r++ {
		if edgeOnDAG(idx.LandmarkDist(uint16(r), a), idx.LandmarkDist(uint16(r), b), 1) {
			affected = append(affected, uint16(r))
		} else {
			st.LandmarksSkipped++
		}
	}

	if err := g.RemoveEdge(a, b); err != nil {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, err)
	}
	u.ensureScratch(g.NumVertices())
	u.bumpEpoch()
	for _, r := range affected {
		u.rebuildLandmarkDec(r, &st)
	}
	return st, nil
}

// edgeOnDAG reports whether an edge of weight w whose endpoints sit at
// distances da and db from a landmark lies on that landmark's shortest-path
// DAG. Inf-saturated arithmetic makes the test false when either endpoint is
// unreachable (adjacent vertices are either both reachable or both not).
func edgeOnDAG(da, db, w graph.Dist) bool {
	return (da != graph.Inf && graph.AddDist(da, w) == db) ||
		(db != graph.Inf && graph.AddDist(db, w) == da)
}

// rebuildLandmarkDec re-runs the construction BFS of landmark r over the
// already-updated graph and replaces every r-entry and the full highway row
// r, including resets to Inf for vertices the deletion disconnected. The
// current epoch's covStamp doubles as the per-update union set feeding
// Stats.AffectedUnion; callers bump the epoch once per DeleteEdge.
func (u *Updater) rebuildLandmarkDec(r uint16, st *Stats) {
	idx := u.Idx
	g := idx.G
	n := g.NumVertices()
	if len(u.dist) < n {
		u.dist = make([]graph.Dist, n)
		u.cover = make([]bool, n)
	}
	dist, cover := u.dist[:n], u.cover[:n]
	for i := range dist {
		dist[i] = graph.Inf
		cover[i] = false
	}
	root := idx.Landmarks[r]
	dist[root] = 0
	u.plainQ.Reset()
	u.plainQ.Push(root)
	for !u.plainQ.Empty() {
		v := u.plainQ.Pop()
		dv := dist[v]
		cv := cover[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				cover[w] = cv || (idx.IsLandmark(w) && w != root)
				u.plainQ.Push(w)
			case dist[w] == dv+1 && cv:
				cover[w] = true
			}
		}
	}
	e := u.epoch
	touch := func(v uint32) {
		st.AffectedSum++
		if u.covStamp[v] != e {
			u.covStamp[v] = e
			st.AffectedUnion++
		}
	}
	for v := 0; v < n; v++ {
		vv := uint32(v)
		if vv == root {
			continue
		}
		if s, isL := idx.Rank(vv); isL {
			if idx.H.Dist(r, s) != dist[v] {
				idx.H.Set(r, s, dist[v]) // Inf when the deletion disconnected s
				st.HighwayUpdates++
				touch(vv)
			}
			continue
		}
		if dist[v] != graph.Inf && !cover[v] {
			if old, had := idx.EntryDist(vv, r); !had || old != dist[v] {
				idx.SetEntry(vv, r, dist[v])
				st.EntriesAdded++
				touch(vv)
			}
		} else if idx.RemoveEntry(vv, r) {
			st.EntriesRemoved++
			touch(vv)
		}
	}
}

// DeleteVertex disconnects vertex v by deleting all of its incident edges,
// one DecHL repair per edge. The vertex itself keeps its id (the paper's
// contiguous 0..n-1 vertex universe does not renumber); once isolated it is
// unreachable from everything and queries against it answer Inf. Deleting a
// landmark is rejected: landmarks anchor the labelling.
func (u *Updater) DeleteVertex(v uint32) (Stats, error) {
	var agg Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(v) {
		return agg, fmt.Errorf("inchl: delete vertex %d: %w", v, graph.ErrVertexUnknown)
	}
	if idx.IsLandmark(v) {
		return agg, fmt.Errorf("inchl: delete vertex %d: cannot delete a landmark", v)
	}
	agg.LandmarksTotal = idx.NumLandmarks()
	neighbors := append([]uint32(nil), g.Neighbors(v)...)
	for _, w := range neighbors {
		st, err := u.DeleteEdge(v, w)
		if err != nil {
			return agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.AffectedUnion += st.AffectedUnion
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return agg, nil
}
