// DecHL: the decremental counterpart of IncHL+. The paper covers only
// insertions; deletions are repaired here with the observation that removing
// an edge (a,b) can change the labelling of landmark r — its distances OR
// the covered/uncovered classification of its shortest-path DAG — only when
// (a,b) lies on that DAG, i.e. when the pre-delete endpoint distances differ
// by exactly one (|d_G(r,a) − d_G(r,b)| = 1). The affected test therefore
// costs two labelled lookups per landmark and no search at all; unaffected
// landmarks (the common case: an edge sits on the shortest-path DAGs of few
// landmarks) keep their entries untouched. Each affected landmark is then
// patched by re-running its construction BFS over the updated graph — the
// rebuilds fan across workers, buffering their edits as deltas that a
// single-threaded merge applies in rank order (see parallel.go).
//
// Unlike the insertion-side rebuildLandmark, the decremental rebuild must
// handle vertices that became unreachable — their entries are dropped and
// their highway cells reset to Inf — because deletions are the only updates
// that can disconnect the graph.
//
// The resulting labelling is identical to a fresh build (minimality is
// preserved): rebuilt landmarks get exactly their fresh entries, and for a
// landmark whose shortest-path DAG did not contain (a,b), neither its
// distances nor its shortest-path structure changed, so its fresh entries
// equal its old ones.

package inchl

import (
	"fmt"

	"repro/internal/graph"
)

// DeleteEdge removes the undirected edge (a,b) from the graph and repairs
// the labelling so that it is again the minimal highway cover labelling of
// the changed graph. Deleting an edge that does not exist is an error
// (graph.ErrEdgeUnknown), mirroring InsertEdge's update model.
func (u *Updater) DeleteEdge(a, b uint32) (Stats, error) {
	var st Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if !g.HasEdge(a, b) {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, graph.ErrEdgeUnknown)
	}
	st.LandmarksTotal = idx.NumLandmarks()

	// Affected test against the pre-delete labelling (still exact here).
	var affected []uint16
	for r := 0; r < idx.NumLandmarks(); r++ {
		if edgeOnDAG(idx.LandmarkDist(uint16(r), a), idx.LandmarkDist(uint16(r), b), 1) {
			affected = append(affected, uint16(r))
		} else {
			st.LandmarksSkipped++
		}
	}

	if err := g.RemoveEdge(a, b); err != nil {
		return st, fmt.Errorf("inchl: delete (%d,%d): %w", a, b, err)
	}
	u.sc.ensure(g.NumVertices())
	u.sizeDeltas(len(affected))

	// Fan one rebuild task per affected landmark against the frozen
	// labelling; highway cells come back as candidates (where the pre-update
	// matrix differs) because the serial rebuild compares against live cells.
	u.fan(len(affected), func(sc *scratch, task int) {
		d := &u.deltas[task]
		d.reset()
		u.rebuildLandmarkDec(sc, affected[task], d)
	})

	// Merge in rank order, with the current epoch's covStamp as the
	// per-update union set feeding Stats.AffectedUnion.
	u.sc.bump()
	for i, r := range affected {
		u.applyDeltaDec(r, &u.deltas[i], &st)
	}
	return st, nil
}

// edgeOnDAG reports whether an edge of weight w whose endpoints sit at
// distances da and db from a landmark lies on that landmark's shortest-path
// DAG. Inf-saturated arithmetic makes the test false when either endpoint is
// unreachable (adjacent vertices are either both reachable or both not).
func edgeOnDAG(da, db, w graph.Dist) bool {
	return (da != graph.Inf && graph.AddDist(da, w) == db) ||
		(db != graph.Inf && graph.AddDist(db, w) == da)
}

// rebuildLandmarkDec re-runs the construction BFS of landmark r over the
// already-updated graph and buffers the replacement of every r-entry and the
// full highway row r, including resets to Inf for vertices the deletion
// disconnected. Label edits are exact (rank-scoped, see parallel.go);
// highway cells are emitted as candidates wherever the pre-merge matrix
// disagrees — a superset of the serial writes, which the merge's re-check
// reduces back to exactly serial's set.
func (u *Updater) rebuildLandmarkDec(sc *scratch, r uint16, d *repairDelta) {
	idx := u.Idx
	g := idx.G
	n := g.NumVertices()
	sc.ensureRebuild(n)
	dist, cover := sc.dist[:n], sc.cover[:n]
	for i := range dist {
		dist[i] = graph.Inf
		cover[i] = false
	}
	root := idx.Landmarks[r]
	dist[root] = 0
	sc.plainQ.Reset()
	sc.plainQ.Push(root)
	for !sc.plainQ.Empty() {
		v := sc.plainQ.Pop()
		dv := dist[v]
		cv := cover[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				cover[w] = cv || (idx.IsLandmark(w) && w != root)
				sc.plainQ.Push(w)
			case dist[w] == dv+1 && cv:
				cover[w] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		vv := uint32(v)
		if vv == root {
			continue
		}
		if s, isL := idx.Rank(vv); isL {
			if idx.H.Dist(r, s) != dist[v] {
				d.highway(s, dist[v]) // Inf when the deletion disconnected s
			}
			continue
		}
		if dist[v] != graph.Inf && !cover[v] {
			if old, had := idx.EntryDist(vv, r); !had || old != dist[v] {
				d.setEntry(vv, dist[v])
			}
		} else if _, had := idx.EntryDist(vv, r); had {
			d.removeEntry(vv)
		}
	}
}

// applyDeltaDec applies one decremental delta. Label ops apply and count
// directly — the worker's change checks were exact. Highway candidates are
// re-checked against the live matrix: an earlier-rank merge may have already
// mirror-written the cell to the same new distance (Highway.Set writes both
// triangles), in which case serial would not have counted it either. The
// touch accounting — AffectedSum per change, AffectedUnion via the primary
// scratch's covStamp epoch — runs here, single-threaded, exactly as the
// serial rebuild interleaved it.
func (u *Updater) applyDeltaDec(r uint16, d *repairDelta, st *Stats) {
	idx := u.Idx
	e := u.sc.epoch
	touch := func(v uint32) {
		st.AffectedSum++
		if u.sc.covStamp[v] != e {
			u.sc.covStamp[v] = e
			st.AffectedUnion++
		}
	}
	for _, h := range d.hw {
		if idx.H.Dist(r, h.s) != h.d {
			idx.H.Set(r, h.s, h.d)
			st.HighwayUpdates++
			touch(idx.Landmarks[h.s])
		}
	}
	for _, op := range d.ops {
		if op.set {
			idx.SetEntry(op.v, r, op.d)
			st.EntriesAdded++
		} else {
			idx.RemoveEntry(op.v, r)
			st.EntriesRemoved++
		}
		touch(op.v)
	}
}

// DeleteVertex disconnects vertex v by deleting all of its incident edges,
// one DecHL repair per edge. The vertex itself keeps its id (the paper's
// contiguous 0..n-1 vertex universe does not renumber); once isolated it is
// unreachable from everything and queries against it answer Inf. Deleting a
// landmark is rejected: landmarks anchor the labelling.
func (u *Updater) DeleteVertex(v uint32) (Stats, error) {
	var agg Stats
	idx := u.Idx
	g := idx.G
	if !g.HasVertex(v) {
		return agg, fmt.Errorf("inchl: delete vertex %d: %w", v, graph.ErrVertexUnknown)
	}
	if idx.IsLandmark(v) {
		return agg, fmt.Errorf("inchl: delete vertex %d: cannot delete a landmark", v)
	}
	agg.LandmarksTotal = idx.NumLandmarks()
	neighbors := append([]uint32(nil), g.Neighbors(v)...)
	for _, w := range neighbors {
		st, err := u.DeleteEdge(v, w)
		if err != nil {
			return agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.AffectedUnion += st.AffectedUnion
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return agg, nil
}
