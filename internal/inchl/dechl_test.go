package inchl

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/testutil"
)

func TestDeleteEdgeSimplePath(t *testing.T) {
	// 0-1-2-3-4-5 plus shortcut (0,5), landmark 0. Deleting the shortcut
	// restores the path distances; deleting (2,3) then splits the path.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	g.MustAddEdge(0, 5)
	_, u := buildPair(t, g, []uint32{0})
	st, err := u.DeleteEdge(0, 5)
	if err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	if st.LandmarksSkipped != 0 {
		t.Errorf("shortcut is on the landmark's DAG; skipped = %d", st.LandmarksSkipped)
	}
	if d, ok := u.Idx.EntryDist(5, 0); !ok || d != 5 {
		t.Errorf("entry (0,5): got %d,%v want 5", d, ok)
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}

	// Bridge deletion disconnects 3,4,5 from the landmark.
	if _, err := u.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	for v := uint32(3); v <= 5; v++ {
		if _, ok := u.Idx.EntryDist(v, 0); ok {
			t.Errorf("vertex %d unreachable but still has an entry", v)
		}
		if d := u.Idx.LandmarkDist(0, v); d != graph.Inf {
			t.Errorf("LandmarkDist(0,%d): got %d, want Inf", v, d)
		}
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteEdgeDisconnectsLandmark(t *testing.T) {
	// Two landmarks joined by a bridge: deleting it must reset the highway
	// cell between them to Inf.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	_, u := buildPair(t, g, []uint32{0, 3})
	if _, err := u.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d := u.Idx.H.Dist(0, 1); d != graph.Inf {
		t.Errorf("highway cell after disconnect: got %d, want Inf", d)
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteEdgeErrors(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 30, 3)
	_, u := buildPair(t, g, landmark.ByDegree(g, 3))
	if _, err := u.DeleteEdge(0, 0); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v", err)
	}
	if _, err := u.DeleteEdge(0, 99); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v", err)
	}
	// Find a non-edge.
	var a, b uint32
	rng := rand.New(rand.NewSource(1))
	for {
		a, b = uint32(rng.Intn(20)), uint32(rng.Intn(20))
		if a != b && !u.Idx.G.HasEdge(a, b) {
			break
		}
	}
	if _, err := u.DeleteEdge(a, b); !errors.Is(err, graph.ErrEdgeUnknown) {
		t.Errorf("missing edge: got %v", err)
	}
}

// TestRandomDeletionsMatchRebuild removes random edges from random graphs
// and requires the repaired labelling to be byte-identical to a fresh build
// after every deletion — DecHL preserves minimality like IncHL+ does.
func TestRandomDeletionsMatchRebuild(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(50, 120, seed+40)
		lm := landmark.ByDegree(g, 4)
		_, u := buildPair(t, g, lm)
		for step := 0; step < 25; step++ {
			// Pick an existing edge uniformly-ish.
			var edges [][2]uint32
			u.Idx.G.Edges(func(a, b uint32) { edges = append(edges, [2]uint32{a, b}) })
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			if _, err := u.DeleteEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d step %d: DeleteEdge(%d,%d): %v", seed, step, e[0], e[1], err)
			}
			checkAgainstRebuild(t, u)
		}
		if err := u.Idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDeleteThenReinsert pins that a delete/insert round trip restores the
// exact original labelling.
func TestDeleteThenReinsert(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 90, 17)
	lm := landmark.ByDegree(g, 4)
	_, u := buildPair(t, g, lm)
	var edges [][2]uint32
	u.Idx.G.Edges(func(a, b uint32) { edges = append(edges, [2]uint32{a, b}) })
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		e := edges[rng.Intn(len(edges))]
		if _, err := u.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := u.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		checkAgainstRebuild(t, u)
	}
}

func TestDeleteVertexIsolates(t *testing.T) {
	g := testutil.RandomConnectedGraph(30, 60, 9)
	lm := landmark.ByDegree(g, 3)
	_, u := buildPair(t, g, lm)
	// Pick a non-landmark vertex with at least one edge.
	var v uint32
	for v = 0; ; v++ {
		if !u.Idx.IsLandmark(v) && u.Idx.G.Degree(v) > 0 {
			break
		}
	}
	if _, err := u.DeleteVertex(v); err != nil {
		t.Fatal(err)
	}
	if u.Idx.G.Degree(v) != 0 {
		t.Errorf("vertex %d still has %d edges", v, u.Idx.G.Degree(v))
	}
	if len(u.Idx.L[v]) != 0 {
		t.Errorf("isolated vertex kept label entries: %v", u.Idx.L[v])
	}
	checkAgainstRebuild(t, u)
	if _, err := u.DeleteVertex(u.Idx.Landmarks[0]); err == nil {
		t.Error("deleting a landmark must fail")
	}
}
