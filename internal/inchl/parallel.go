// The parallel repair engine. Every expensive phase of an update is
// landmark-independent: the jumped find BFS reads only the frozen pre-update
// labelling, and landmark r's repair writes only rank-r label entries and
// highway row r, while its classification reads only rank-r entries of other
// vertices. Updates therefore fan per-landmark tasks across workers — each
// task computes a repairDelta (label ops plus highway cells) against the
// unmodified labelling with its own pooled epoch-stamped scratch — and after
// a full barrier a single-threaded merge applies the deltas in rank order.
// The serial path (Workers == 1) runs the identical task+merge code, so the
// resulting labelling is byte-identical for every worker count.
//
// Two invariants make worker-side decisions exact rather than speculative:
//
//   - Label writes are rank-scoped. Only landmark r's repair touches rank-r
//     entries, so presence/value checks a task performs against the
//     pre-repair labelling (EntryDist) hold unchanged at merge time.
//   - Highway cells cross landmarks (Highway.Set mirrors (r,s) into (s,r)),
//     but any two landmarks that write the same cell in one update write the
//     same new distance. Insertion repairs never read the highway, so their
//     cells apply unconditionally; the decremental rebuild compares against
//     the current highway, so its tasks emit *candidate* cells where the
//     pre-update value differs (a superset of what serial writes) and the
//     merge re-checks each against the live matrix, reproducing serial's
//     writes, counters and touch accounting exactly.

package inchl

import (
	"math"
	"sync"
	"time"

	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/queue"
)

// scratch is the per-worker update state: epoch-stamped distance arrays for
// the find/classify phases and the plain BFS arrays for full rebuilds. A
// slot of a stamped array is valid only when its stamp equals the current
// epoch, so per-task resets are O(1) — each task bumps the epoch of the
// scratch it runs on. The Updater owns one scratch (worker 0, also used for
// the cross-landmark union accounting); extra workers borrow from a
// package-level pool, which keeps the group-commit pipeline from allocating
// worker state on every forked Updater. Stamps never exceed their scratch's
// epoch, and that invariant survives pooling because stamps and epoch travel
// together.
type scratch struct {
	epoch    uint32
	oldStamp []uint32     // stamps for oldVal
	oldVal   []graph.Dist // cached pre-update distances d_G(r,·)
	newStamp []uint32     // stamps for newVal (doubles as the visited set)
	newVal   []graph.Dist // new distances of affected vertices
	covStamp []uint32     // stamps for covVal
	covVal   []bool       // covered classification of processed vertices

	q queue.PairQueue

	// full-rebuild scratch (RepairRebuild and the decremental path)
	dist   []graph.Dist
	cover  []bool
	plainQ queue.Uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// ensure sizes the stamped arrays for n vertices. Fresh slots carry stamp 0,
// which bump() guarantees is never the current epoch.
func (s *scratch) ensure(n int) {
	if len(s.oldStamp) >= n {
		return
	}
	s.oldStamp = append(s.oldStamp, make([]uint32, n-len(s.oldStamp))...)
	s.oldVal = append(s.oldVal, make([]graph.Dist, n-len(s.oldVal))...)
	s.newStamp = append(s.newStamp, make([]uint32, n-len(s.newStamp))...)
	s.newVal = append(s.newVal, make([]graph.Dist, n-len(s.newVal))...)
	s.covStamp = append(s.covStamp, make([]uint32, n-len(s.covStamp))...)
	s.covVal = append(s.covVal, make([]bool, n-len(s.covVal))...)
}

// ensureRebuild sizes the plain BFS arrays for n vertices.
func (s *scratch) ensureRebuild(n int) {
	if len(s.dist) < n {
		s.dist = make([]graph.Dist, n)
		s.cover = make([]bool, n)
	}
}

// bump starts a fresh validity epoch, clearing stamps on wraparound.
func (s *scratch) bump() {
	if s.epoch == math.MaxUint32 {
		for i := range s.oldStamp {
			s.oldStamp[i] = 0
			s.newStamp[i] = 0
			s.covStamp[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
}

// labelOp is one label edit of a repair delta: set (v,r) to d, or remove the
// r-entry of v. The rank is implicit — a delta belongs to one landmark.
type labelOp struct {
	v   uint32
	d   graph.Dist
	set bool
}

// hwOp is one highway cell of a repair delta: H(r,s) = d with the task's
// rank r implicit. Insert deltas carry definitive cells; decremental deltas
// carry candidates the merge re-checks.
type hwOp struct {
	s uint16
	d graph.Dist
}

// repairDelta is the outcome of one landmark's repair task, buffered so the
// merge can apply it in rank order. stats holds the worker-side counters
// that are exact by rank-scoping (insert paths only; the decremental merge
// counts itself because of the highway re-check).
type repairDelta struct {
	ops   []labelOp
	hw    []hwOp
	stats Stats
}

func (d *repairDelta) reset() {
	d.ops = d.ops[:0]
	d.hw = d.hw[:0]
	d.stats = Stats{}
}

func (d *repairDelta) setEntry(v uint32, dist graph.Dist) {
	d.ops = append(d.ops, labelOp{v: v, d: dist, set: true})
}

func (d *repairDelta) removeEntry(v uint32) {
	d.ops = append(d.ops, labelOp{v: v})
}

func (d *repairDelta) highway(s uint16, dist graph.Dist) {
	d.hw = append(d.hw, hwOp{s: s, d: dist})
}

// sizeFinds and sizeDeltas resize the per-rank result tables, preserving the
// capacity of every per-slot slice across updates.
func (u *Updater) sizeFinds(n int) {
	if cap(u.finds) < n {
		u.finds = append(u.finds[:cap(u.finds)], make([]findResult, n-cap(u.finds))...)
	}
	u.finds = u.finds[:n]
}

func (u *Updater) sizeDeltas(n int) {
	if cap(u.deltas) < n {
		u.deltas = append(u.deltas[:cap(u.deltas)], make([]repairDelta, n-cap(u.deltas))...)
	}
	u.deltas = u.deltas[:n]
}

// fan runs fn for every task in [0,n) across the Updater's worker budget
// (Workers: 0 = GOMAXPROCS, 1 = serial) and returns after all tasks
// complete. Worker 0 is the Updater's own scratch; extra workers borrow
// pooled scratches sized for the current graph. fn must not mutate the
// index — it reads the frozen labelling and fills per-task deltas.
func (u *Updater) fan(n int, fn func(sc *scratch, task int)) {
	if n == 0 {
		return
	}
	workers := fanout.Resolve(u.Workers)
	if workers > n {
		workers = n
	}
	nv := u.Idx.G.NumVertices()
	scs := make([]*scratch, workers)
	scs[0] = &u.sc
	for i := 1; i < workers; i++ {
		sc := scratchPool.Get().(*scratch)
		sc.ensure(nv)
		scs[i] = sc
	}
	timer := u.RepairTimer
	fanout.Run(workers, n, func(worker, task int) {
		if timer == nil {
			fn(scs[worker], task)
			return
		}
		start := time.Now()
		fn(scs[worker], task)
		timer(time.Since(start))
	})
	for _, sc := range scs[1:] {
		scratchPool.Put(sc)
	}
}
