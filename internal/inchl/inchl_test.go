package inchl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/landmark"
	"repro/internal/testutil"
)

// buildPair returns an index over a clone of g plus an updater, leaving g
// untouched for oracle rebuilds.
func buildPair(t *testing.T, g *graph.Graph, landmarks []uint32) (*graph.Graph, *Updater) {
	t.Helper()
	gc := g.Clone()
	idx, err := hcl.Build(gc, landmarks)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return gc, New(idx)
}

// checkAgainstRebuild asserts that the incrementally maintained index is
// exactly the fresh build of its (already updated) graph — the minimality
// preservation of Theorem 5.2, plus exactness of every entry.
func checkAgainstRebuild(t *testing.T, u *Updater) {
	t.Helper()
	fresh, err := hcl.Build(u.Idx.G, u.Idx.Landmarks)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := u.Idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
}

func TestInsertEdgeSimplePath(t *testing.T) {
	// 0-1-2-3-4-5, landmark 0. Insert (0,5): distances of 3,4,5 drop.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	_, u := buildPair(t, g, []uint32{0})
	st, err := u.InsertEdge(0, 5)
	if err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if st.AffectedUnion == 0 {
		t.Error("expected affected vertices")
	}
	if d, ok := u.Idx.EntryDist(5, 0); !ok || d != 1 {
		t.Errorf("entry (0,5): got %d,%v want 1", d, ok)
	}
	if d, ok := u.Idx.EntryDist(3, 0); !ok || d != 3 {
		t.Errorf("entry (0,3): got %d,%v want 3 (either side of the cycle)", d, ok)
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertEdgeCoveredRemoval(t *testing.T) {
	// Path 0-1-2-3-4-5-6 with landmarks 0 and 6. Vertex 3 initially keeps
	// entries for both. Inserting (0,6) makes every shortest path from 3 to
	// 0 ... stay direct, but shortest paths of 5 to 0 now pass landmark 6:
	// the entry (0,·) at vertex 5 must be *removed* — outdated entry
	// elimination, the paper's headline capability.
	g := graph.New(7)
	for i := 0; i < 7; i++ {
		g.AddVertex()
	}
	for i := 0; i < 6; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	_, u := buildPair(t, g, []uint32{0, 6})
	if d, ok := u.Idx.EntryDist(5, 0); !ok || d != 5 {
		t.Fatalf("precondition: entry (0,5): got %d,%v want 5", d, ok)
	}
	if _, err := u.InsertEdge(0, 6); err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if _, ok := u.Idx.EntryDist(5, 0); ok {
		t.Error("entry for landmark 0 at vertex 5 should be removed (covered by landmark 6)")
	}
	if got := u.Idx.H.Dist(0, 1); got != 1 {
		t.Errorf("highway 0-6 after insert: got %d, want 1", got)
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertEdgeEqualDistanceSkips(t *testing.T) {
	// Triangle-to-be: 0-1, 0-2, landmark 0. Inserting (1,2) changes no
	// shortest path to the landmark: both endpoints at distance 1.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	_, u := buildPair(t, g, []uint32{0})
	st, err := u.InsertEdge(1, 2)
	if err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if st.LandmarksSkipped != 1 {
		t.Errorf("LandmarksSkipped: got %d, want 1", st.LandmarksSkipped)
	}
	if st.AffectedUnion != 0 {
		t.Errorf("AffectedUnion: got %d, want 0", st.AffectedUnion)
	}
	checkAgainstRebuild(t, u)
}

func TestInsertEdgeErrors(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	_, u := buildPair(t, g, []uint32{0})
	if _, err := u.InsertEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if _, err := u.InsertEdge(0, 1); err == nil {
		t.Error("duplicate edge must be rejected")
	}
	if _, err := u.InsertEdge(0, 9); err == nil {
		t.Error("unknown vertex must be rejected")
	}
}

func TestInsertEdgeMergesComponents(t *testing.T) {
	// Component A: 0-1-2 (landmark 0); component B: 3-4-5 (no landmark).
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	_, u := buildPair(t, g, []uint32{0})
	st, err := u.InsertEdge(2, 3)
	if err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if st.AffectedUnion != 3 {
		t.Errorf("AffectedUnion: got %d, want 3 (the whole B component)", st.AffectedUnion)
	}
	for v, want := range map[uint32]graph.Dist{3: 3, 4: 4, 5: 5} {
		if d, ok := u.Idx.EntryDist(v, 0); !ok || d != want {
			t.Errorf("entry (0,%d): got %d,%v want %d", v, d, ok, want)
		}
	}
	if got := u.Idx.Query(0, 5); got != 5 {
		t.Errorf("Query(0,5): got %d, want 5", got)
	}
	checkAgainstRebuild(t, u)
}

func TestInsertEdgeBetweenLandmarks(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	_, u := buildPair(t, g, []uint32{0, 3})
	if _, err := u.InsertEdge(0, 3); err != nil {
		t.Fatalf("InsertEdge: %v", err)
	}
	if got := u.Idx.H.Dist(0, 1); got != 1 {
		t.Errorf("highway after landmark-landmark edge: got %d, want 1", got)
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertionsMatchRebuild(t *testing.T) {
	// The main oracle: on random graphs, every insertion must leave the
	// labelling identical to a from-scratch build (unique minimal
	// labelling), and queries exact.
	for seed := int64(0); seed < 10; seed++ {
		g := testutil.RandomGraph(70, 120, seed)
		k := 2 + int(seed%4)
		lm := landmark.ByDegree(g, k)
		_, u := buildPair(t, g, lm)
		inserts := testutil.NonEdges(g, 25, seed*31+7)
		for i, e := range inserts {
			if _, err := u.InsertEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d insert %d (%d,%d): %v", seed, i, e[0], e[1], err)
			}
			checkAgainstRebuild(t, u)
		}
		if err := u.Idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracle := testutil.AllPairsOracle(u.Idx.G)
		for x := 0; x < 70; x++ {
			for y := 0; y < 70; y++ {
				if got := u.Idx.Query(uint32(x), uint32(y)); got != oracle[x][y] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, x, y, got, oracle[x][y])
				}
			}
		}
	}
}

func TestRandomInsertionsQuickProperty(t *testing.T) {
	// Property-based variant: arbitrary seeds drive graph shape, landmark
	// count and insertion stream; the invariant is labelling ≡ rebuild.
	f := func(seed int64, kRaw uint8, denseRaw uint8) bool {
		n := 40
		m := 40 + int(denseRaw)%120
		k := 1 + int(kRaw)%6
		g := testutil.RandomGraph(n, m, seed)
		lm := landmark.ByDegree(g, k)
		idx, err := hcl.Build(g, lm)
		if err != nil {
			return false
		}
		u := New(idx)
		for _, e := range testutil.NonEdges(g, 12, seed+999) {
			if _, err := u.InsertEdge(e[0], e[1]); err != nil {
				return false
			}
		}
		fresh, err := hcl.Build(u.Idx.G, lm)
		if err != nil {
			return false
		}
		return u.Idx.EqualLabels(fresh) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertVertex(t *testing.T) {
	g := testutil.RandomConnectedGraph(30, 40, 5)
	lm := landmark.ByDegree(g, 3)
	_, u := buildPair(t, g, lm)
	v, st, err := u.InsertVertex([]uint32{0, 7, 13})
	if err != nil {
		t.Fatalf("InsertVertex: %v", err)
	}
	if int(v) != 30 {
		t.Errorf("new vertex id: got %d, want 30", v)
	}
	if st.AffectedSum == 0 {
		t.Error("vertex insertion should affect at least the new vertex")
	}
	if !u.Idx.G.HasEdge(v, 7) {
		t.Error("edge to neighbour 7 missing")
	}
	checkAgainstRebuild(t, u)
	if err := u.Idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}

	// An isolated vertex insertion is also legal.
	w, _, err := u.InsertVertex(nil)
	if err != nil {
		t.Fatalf("InsertVertex(nil): %v", err)
	}
	if got := u.Idx.Query(w, 0); got != graph.Inf {
		t.Errorf("Query(isolated,0): got %d, want Inf", got)
	}
	if _, _, err := u.InsertVertex([]uint32{99}); err == nil {
		t.Error("unknown neighbour must be rejected")
	}
}

func TestRepairRebuildStrategyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomGraph(50, 90, 70+seed)
		lm := landmark.ByDegree(g, 4)
		_, partial := buildPair(t, g, lm)
		_, rebuild := buildPair(t, g, lm)
		rebuild.Strategy = RepairRebuild
		for _, e := range testutil.NonEdges(g, 15, seed) {
			if _, err := partial.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := rebuild.InsertEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			if err := partial.Idx.EqualLabels(rebuild.Idx); err != nil {
				t.Fatalf("seed %d: strategies diverged: %v", seed, err)
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 60, 11)
	lm := landmark.ByDegree(g, 3)
	_, u := buildPair(t, g, lm)
	var added, removed int
	for _, e := range testutil.NonEdges(g, 20, 3) {
		st, err := u.InsertEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if st.LandmarksTotal != 3 {
			t.Fatalf("LandmarksTotal: got %d, want 3", st.LandmarksTotal)
		}
		if st.AffectedSum < st.AffectedUnion {
			t.Fatalf("AffectedSum %d < AffectedUnion %d", st.AffectedSum, st.AffectedUnion)
		}
		if st.LandmarksSkipped > st.LandmarksTotal {
			t.Fatalf("LandmarksSkipped out of range: %+v", st)
		}
		added += st.EntriesAdded
		removed += st.EntriesRemoved
	}
	if added == 0 {
		t.Error("expected some entries to be added over 20 insertions")
	}
	_ = removed // removal depends on topology; exercised by dedicated tests
}

func TestMinimalitySizeNeverAboveRebuild(t *testing.T) {
	// size(L) of the maintained labelling equals the fresh build's at every
	// step — the Theorem 5.2 statement in its original "size" form.
	g := testutil.RandomGraph(60, 100, 31)
	lm := landmark.ByDegree(g, 5)
	_, u := buildPair(t, g, lm)
	for _, e := range testutil.NonEdges(g, 30, 17) {
		if _, err := u.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		fresh, err := hcl.Build(u.Idx.G, lm)
		if err != nil {
			t.Fatal(err)
		}
		if u.Idx.NumEntries() != fresh.NumEntries() {
			t.Fatalf("size mismatch: inc %d vs rebuild %d", u.Idx.NumEntries(), fresh.NumEntries())
		}
	}
}
