package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"testing"

	dynhl "repro"
)

// flipByte damages one byte of a file in place.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(data) {
		t.Fatalf("offset %d beyond %d-byte file", off, len(data))
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// cutTail shortens a file by n bytes, the shape of a torn final write.
func cutTail(t *testing.T, path string, n int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// collectTail drains a TailReader to EOF.
func collectTail(t *testing.T, tr *TailReader) []TailRecord {
	t.Helper()
	var recs []TailRecord
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

// churn applies n single-op batches of fresh edges through the store.
func churn(t *testing.T, store *dynhl.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		insertFresh(t, store)
	}
}

func TestTailReaderAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts(t)
	opts.SegmentBytes = 1 // rotate after every record: every boundary is a segment boundary
	d, err := Create(dir, buildIndex(t, 24, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churn(t, d.Store(), 10)

	segs, err := listSegments(walDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 10 {
		t.Fatalf("rotation did not split the log: %d segments for 10 records", len(segs))
	}

	for from := uint64(1); from <= 11; from++ {
		tr, err := d.TailFrom(from)
		if err != nil {
			t.Fatalf("TailFrom(%d): %v", from, err)
		}
		recs := collectTail(t, tr)
		if want := int(10 - from + 1); from <= 10 && len(recs) != want {
			t.Fatalf("TailFrom(%d): %d records, want %d", from, len(recs), want)
		}
		if from == 11 && len(recs) != 0 {
			t.Fatalf("TailFrom past the end returned %d records", len(recs))
		}
		for i, rec := range recs {
			if rec.Epoch != from+uint64(i) {
				t.Fatalf("TailFrom(%d): record %d has epoch %d", from, i, rec.Epoch)
			}
			if len(rec.Ops) != 1 || rec.Size <= frameHeader {
				t.Fatalf("TailFrom(%d): record %d: %d ops, size %d", from, i, len(rec.Ops), rec.Size)
			}
		}
	}
}

func TestTailReaderMidSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 24, 2), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churn(t, d.Store(), 8) // default segment size: all in one file

	tr, err := d.TailFrom(5)
	if err != nil {
		t.Fatal(err)
	}
	recs := collectTail(t, tr)
	if len(recs) != 4 {
		t.Fatalf("%d records from mid-segment, want 4", len(recs))
	}
	if recs[0].Epoch != 5 || recs[3].Epoch != 8 {
		t.Fatalf("epoch range [%d,%d], want [5,8]", recs[0].Epoch, recs[3].Epoch)
	}
}

func TestTailTruncatedIsDistinctFromIOErrors(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts(t)
	opts.SegmentBytes = 1
	d, err := Create(dir, buildIndex(t, 24, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churn(t, d.Store(), 6)
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	churn(t, d.Store(), 2)
	if _, err := d.Checkpoint(); err != nil { // second checkpoint: epochs ≤ 6 leave the log
		t.Fatal(err)
	}

	if _, err := d.TailFrom(1); !errors.Is(err, ErrEpochTruncated) {
		t.Fatalf("tail from a truncated epoch: got %v, want ErrEpochTruncated", err)
	}
	// The boundary epoch the oldest retained checkpoint covers is still there.
	tr, err := d.TailFrom(7)
	if err != nil {
		t.Fatal(err)
	}
	recs := collectTail(t, tr)
	if len(recs) != 2 || recs[0].Epoch != 7 {
		t.Fatalf("resume at the retained floor: %d records starting at %d", len(recs), recs[0].Epoch)
	}

	// Corruption mid-log must NOT be reported as truncation.
	segs, err := listSegments(walDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, segs[0].path, frameHeader+1)
	tr, err = OpenTail(walDir(dir), 7)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = tr.Next()
		if err != nil {
			break
		}
	}
	if errors.Is(err, ErrEpochTruncated) || errors.Is(err, io.EOF) {
		t.Fatalf("corrupt record surfaced as %v", err)
	}
}

func TestTailTornFinalRecordIsEOF(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 24, 4), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churn(t, d.Store(), 3)

	seg := activeSegment(t, dir)
	cutTail(t, seg, 4) // cut the last record short, as a crash would
	tr, err := OpenTail(walDir(dir), 1)
	if err != nil {
		t.Fatal(err)
	}
	var recs []TailRecord
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("torn tail should read as EOF, got %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d complete records before the torn tail, want 2", len(recs))
	}
}

func TestSubscribeCommitsOrderAndLoadNotice(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 24, 5), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ch, cancel := d.SubscribeCommits(16)
	defer cancel()

	churn(t, d.Store(), 3)
	for want := uint64(1); want <= 3; want++ {
		rec := <-ch
		if rec.Epoch != want || rec.Ops == nil || rec.Size <= 0 {
			t.Fatalf("commit notice %+v, want epoch %d with ops", rec, want)
		}
	}

	// A Load epoch has no replayable record: its notice carries nil Ops.
	var saved bytes.Buffer
	if err := d.Store().Save(&saved); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Load(&saved); err != nil {
		t.Fatal(err)
	}
	rec := <-ch
	if rec.Epoch != 4 || rec.Ops != nil {
		t.Fatalf("Load notice %+v, want epoch 4 with nil ops", rec)
	}

	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("cancelled subscription channel not closed")
	}
}

func TestSubscribeCommitsOverflowCutsSubscriberOff(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 24, 6), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ch, cancel := d.SubscribeCommits(1)
	defer cancel()

	churn(t, d.Store(), 3) // nobody draining: the second commit overflows
	if rec, ok := <-ch; !ok || rec.Epoch != 1 {
		t.Fatalf("first notice %+v ok=%v", rec, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("overflowed subscriber still receiving; channel should be closed")
	}
	// The write path must be unaffected.
	if got := d.Epoch(); got != 3 {
		t.Fatalf("store at epoch %d after overflow, want 3", got)
	}
}

func TestSubscribeCommitsClosedOnClose(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 24, 7), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := d.SubscribeCommits(4)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; ok {
		t.Fatal("Close left the subscription open")
	}
}

func TestCheckpointImageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 32, 8), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churn(t, d.Store(), 5)
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	epoch, img, err := d.CheckpointImage()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 5 {
		t.Fatalf("image at epoch %d, want 5", epoch)
	}
	idx, gotEpoch, err := RebuildImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if gotEpoch != epoch {
		t.Fatalf("rebuilt epoch %d, want %d", gotEpoch, epoch)
	}
	rng := rand.New(rand.NewSource(8))
	n := idx.NumVertices()
	for i := 0; i < 200; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if got, want := idx.Query(u, v), d.Store().Query(u, v); got != want {
			t.Fatalf("dist(%d,%d) = %v from image, %v live", u, v, got, want)
		}
	}
}
