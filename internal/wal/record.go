// Package wal is the durability subsystem that makes a dynhl.Store
// crash-recoverable: a write-ahead log of applied op batches keyed by the
// epoch each one published, periodic checkpoints of the full labelling, and
// a recovery path that rebuilds the store from the newest checkpoint plus
// the log tail — restart cost proportional to the churn since the last
// checkpoint, not to a full index rebuild.
//
// On-disk layout under the data directory:
//
//	checkpoint-<epoch>.ckpt   graph + labelling at one epoch (newest two kept)
//	wal/<firstEpoch>.wal      log segments, named by the first epoch appended
//
// Every publish appends one length-prefixed, CRC32-checksummed binary
// record to the active segment before the epoch becomes visible to readers
// (see dynhl.Durability); with the fsync policy SyncAlways the record is
// durable first, so a kill -9 at any point never loses a published epoch.
// A checkpoint writes the current snapshot's graph and labelling to a
// sidecar file, rotates the log, and deletes segments wholly covered by a
// retained checkpoint. Recover loads the newest valid checkpoint (falling
// back to the previous one if the newest is damaged) and replays the log
// tail, tolerating a torn final record — truncate, warn, continue — and
// refusing on mid-log corruption. One caveat: an epoch published by
// Store.Load carries no op record (its state exists only as the checkpoint
// that captured it), so the fallback checkpoint cannot recover across it —
// damage to a Load checkpoint refuses recovery instead of serving a state
// with the Load silently missing.
//
// Only oracles that can serialise both their labelling (dynhl.Saver) and
// their graph — currently the undirected *dynhl.Index — can be made
// durable; Create reports errors.ErrUnsupported for the rest.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	dynhl "repro"
)

// Record frame: u32 payload length | u32 CRC32 (IEEE) of payload | payload.
// Payload: u64 epoch | op batch (dynhl.AppendOps). All little-endian.
const (
	frameHeader = 8
	// minPayload is the smallest legal payload: the epoch plus a varint op
	// count. Complete frames announcing less are corrupt, not torn.
	minPayload = 9
	// maxRecordBytes bounds a single record; a length beyond it is treated
	// as corruption rather than an allocation request.
	maxRecordBytes = 1 << 28
)

// errTorn marks an incomplete frame at the end of a scan — the signature of
// a write cut short by a crash. Recovery truncates it away; anywhere else in
// the log it means a gap and recovery refuses.
var errTorn = errors.New("wal: torn record")

// errCorrupt marks a complete frame whose checksum or contents are wrong —
// not a torn write but damaged data, which recovery never skips over.
var errCorrupt = errors.New("wal: corrupt record")

// appendRecord appends the framed encoding of one (epoch, ops) record.
func appendRecord(buf []byte, epoch uint64, ops []dynhl.Op) ([]byte, error) {
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader)...)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf, err := dynhl.AppendOps(buf, ops)
	if err != nil {
		return nil, err
	}
	payload := buf[start+frameHeader:]
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// record is one decoded WAL entry: the op batch that published epoch.
type record struct {
	epoch uint64
	ops   []dynhl.Op
}

// decodeRecord parses the frame at buf[off:], returning the record and the
// offset of the next frame. An incomplete frame is errTorn; a complete
// frame that fails validation wraps errCorrupt.
func decodeRecord(buf []byte, off int) (record, int, error) {
	rest := buf[off:]
	if len(rest) < frameHeader {
		return record{}, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(rest)
	if n < minPayload || n > maxRecordBytes {
		return record{}, 0, fmt.Errorf("%w: implausible length %d at offset %d", errCorrupt, n, off)
	}
	if len(rest) < frameHeader+int(n) {
		return record{}, 0, errTorn
	}
	payload := rest[frameHeader : frameHeader+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(rest[4:]); got != want {
		return record{}, 0, fmt.Errorf("%w: checksum mismatch at offset %d", errCorrupt, off)
	}
	epoch := binary.LittleEndian.Uint64(payload)
	ops, used, err := dynhl.DecodeOps(payload[8:])
	if err != nil || used != len(payload)-8 {
		return record{}, 0, fmt.Errorf("%w: bad op batch at offset %d: %v", errCorrupt, off, err)
	}
	return record{epoch: epoch, ops: ops}, off + frameHeader + int(n), nil
}
