package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	dynhl "repro"
)

// Checkpoint file: the complete state at one epoch, so recovery replays
// only the log tail beyond it.
//
//	magic "HLWCKPT1" | u64 epoch | u64 vertices |
//	u64 graphLen | graph section: u64 edge count, u32 u | u32 v per edge |
//	u64 labelsLen | labelling stream (dynhl.Saver) |
//	u32 CRC32 (IEEE) of everything above
//
// The graph is a raw binary edge array rather than the textual edge list —
// recovery time is the subsystem's whole point, and parsing text would
// dominate it. The vertex count is stored explicitly because an edge array
// cannot carry trailing isolated vertices (ids with every incident edge
// deleted), which the labelling stream then refuses to attach to.
const ckptMagic = "HLWCKPT1"

const ckptExt = ".ckpt"

// ckptKeep is how many checkpoints survive pruning. Keeping the previous
// one lets recovery fall back when the newest is damaged, so log segments
// are only deleted once two checkpoints supersede them.
const ckptKeep = 2

func ckptPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%020d%s", epoch, ckptExt))
}

// checkpointable is the oracle capability a checkpoint needs: the labelling
// stream plus the graph it was built over. Satisfied by *dynhl.Index.
type checkpointable interface {
	dynhl.Saver
	Graph() *dynhl.Graph
}

// unwrapper is how the concrete oracle is reached behind a Store snapshot.
type unwrapper interface {
	Unwrap() dynhl.Oracle
}

// asCheckpointable digs the checkpoint capability out of o, looking through
// Store views and stores.
func asCheckpointable(o any) (checkpointable, bool) {
	for {
		if c, ok := o.(checkpointable); ok {
			return c, true
		}
		u, ok := o.(unwrapper)
		if !ok {
			return nil, false
		}
		o = u.Unwrap()
	}
}

// appendGraphSection appends g's binary edge array: u64 edge count, then
// the endpoints as u32 pairs.
func appendGraphSection(buf []byte, g *dynhl.Graph) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint64(buf, g.NumEdges())
	g.Edges(func(u, v uint32) {
		buf = le.AppendUint32(buf, u)
		buf = le.AppendUint32(buf, v)
	})
	return buf
}

// decodeGraphSection rebuilds the graph from its binary edge array.
func decodeGraphSection(data []byte, vertices uint64) (*dynhl.Graph, error) {
	le := binary.LittleEndian
	if len(data) < 8 {
		return nil, fmt.Errorf("wal: truncated graph section")
	}
	edges := le.Uint64(data)
	if uint64(len(data)-8) != edges*8 {
		return nil, fmt.Errorf("wal: graph section holds %d bytes for %d edges", len(data)-8, edges)
	}
	g := dynhl.NewGraph(int(vertices))
	if vertices > 0 {
		g.EnsureVertex(uint32(vertices - 1))
	}
	off := 8
	for i := uint64(0); i < edges; i++ {
		u, v := le.Uint32(data[off:]), le.Uint32(data[off+4:])
		if uint64(u) >= vertices || uint64(v) >= vertices {
			return nil, fmt.Errorf("wal: graph section edge (%d,%d) outside %d vertices", u, v, vertices)
		}
		if !g.MustAddEdge(u, v) {
			return nil, fmt.Errorf("wal: graph section repeats edge (%d,%d)", u, v)
		}
		off += 8
	}
	return g, nil
}

// sliceWriter adapts an append-grown byte slice to io.Writer, so the
// labelling streams straight into the checkpoint image.
type sliceWriter struct{ buf *[]byte }

func (w sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// writeCheckpoint atomically writes the checkpoint for epoch: temp file,
// fsync, rename, directory fsync. It returns the final path. The whole
// image is assembled in one buffer — the graph and labelling stream into
// it directly, with the labelling length patched in afterwards, so peak
// memory is one copy of the checkpoint, not three.
func writeCheckpoint(dir string, epoch uint64, src checkpointable) (string, error) {
	g := src.Graph()
	le := binary.LittleEndian
	buf := make([]byte, 0, len(ckptMagic)+4*8+8*int(g.NumEdges())+4)
	if ms, ok := src.(dynhl.MappableSaver); ok {
		// Oracles that can save mappably get the v2 layout so a later
		// recovery can serve the labels straight out of an mmap.
		var err error
		if buf, err = appendCheckpointV2(buf, epoch, src, ms); err != nil {
			return "", err
		}
	} else {
		buf = append(buf, ckptMagic...)
		buf = le.AppendUint64(buf, epoch)
		buf = le.AppendUint64(buf, uint64(g.NumVertices()))
		buf = le.AppendUint64(buf, 8+8*g.NumEdges()) // graph section length
		buf = appendGraphSection(buf, g)
		lenAt := len(buf) // labelling length, patched after the stream
		buf = le.AppendUint64(buf, 0)
		if err := src.Save(sliceWriter{&buf}); err != nil {
			return "", fmt.Errorf("wal: checkpoint labelling: %w", err)
		}
		le.PutUint64(buf[lenAt:], uint64(len(buf)-lenAt-8))
		buf = le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	}

	final := ckptPath(dir, epoch)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: writing checkpoint %d: %w", epoch, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: publishing checkpoint %d: %w", epoch, err)
	}
	if err := syncDir(dir); err != nil {
		// The rename happened but is not known durable; reporting failure
		// with the file still in place would let a checkpoint for an epoch
		// the caller then aborts shadow that epoch's real state later, so
		// undo the publish best-effort before failing.
		os.Remove(final)
		return "", err
	}
	return final, nil
}

// ckptState is a decoded checkpoint, ready to rebuild an oracle.
type ckptState struct {
	epoch    uint64
	vertices uint64
	graph    []byte
	labels   []byte
	// labelsOff is where the labelling stream starts within the image,
	// and v2 whether the image is the mappable HLWCKPT2 layout — together
	// they let a mapped boot hand the labelling's file offset to
	// dynhl.LoadIndexMapped instead of decoding st.labels.
	labelsOff int64
	v2        bool
}

// readCheckpoint validates and decodes one checkpoint file.
func readCheckpoint(path string) (ckptState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ckptState{}, err
	}
	return decodeCheckpoint(data, path)
}

// decodeCheckpoint validates and decodes a checkpoint image, whether read
// from disk or received over a replication link; path only labels errors.
// The returned state's sections alias data. Both format versions decode:
// v1 ("HLWCKPT1") forever, v2 ("HLWCKPT2") since the mappable layout.
func decodeCheckpoint(data []byte, path string) (ckptState, error) {
	le := binary.LittleEndian
	if len(data) >= len(ckptMagicV2) && string(data[:len(ckptMagicV2)]) == ckptMagicV2 {
		return decodeCheckpointV2(data, path)
	}
	if len(data) < len(ckptMagic)+8*3+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return ckptState{}, fmt.Errorf("wal: %s: not a checkpoint file", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != le.Uint32(tail) {
		return ckptState{}, fmt.Errorf("wal: %s: checksum mismatch", path)
	}
	off := len(ckptMagic)
	readU64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, fmt.Errorf("wal: %s: truncated checkpoint", path)
		}
		v := le.Uint64(body[off:])
		off += 8
		return v, nil
	}
	st := ckptState{}
	var err error
	if st.epoch, err = readU64(); err != nil {
		return ckptState{}, err
	}
	if st.vertices, err = readU64(); err != nil {
		return ckptState{}, err
	}
	glen, err := readU64()
	if err != nil {
		return ckptState{}, err
	}
	if uint64(len(body)-off) < glen {
		return ckptState{}, fmt.Errorf("wal: %s: truncated graph section", path)
	}
	st.graph = body[off : off+int(glen)]
	off += int(glen)
	llen, err := readU64()
	if err != nil {
		return ckptState{}, err
	}
	if uint64(len(body)-off) != llen {
		return ckptState{}, fmt.Errorf("wal: %s: labelling section length mismatch", path)
	}
	st.labels = body[off:]
	st.labelsOff = int64(off)
	return st, nil
}

// listCheckpoints returns dir's checkpoint files, newest epoch first.
func listCheckpoints(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cks []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		epoch, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ckptExt), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognised checkpoint file %q", name)
		}
		cks = append(cks, segment{first: epoch, path: filepath.Join(dir, name)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].first > cks[j].first })
	return cks, nil
}

// pruneCheckpoints removes all but the newest ckptKeep checkpoints and
// returns the epoch of the oldest one retained — the truncation bound for
// log segments.
func pruneCheckpoints(dir string) (uint64, error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	if len(cks) == 0 {
		return 0, fmt.Errorf("wal: no checkpoints in %s", dir)
	}
	for _, c := range cks[min(ckptKeep, len(cks)):] {
		if err := os.Remove(c.path); err != nil {
			return 0, fmt.Errorf("wal: pruning checkpoint: %w", err)
		}
	}
	kept := cks[:min(ckptKeep, len(cks))]
	if len(cks) > ckptKeep {
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return kept[len(kept)-1].first, nil
}
