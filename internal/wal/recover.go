package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	dynhl "repro"
	"repro/internal/arena"
)

// Recover rebuilds a durable Store from dir: the newest valid checkpoint is
// loaded (falling back to the previous one when the newest is damaged) and
// the log tail beyond it replayed, batch by batch, under the original
// epochs. A torn final record — the signature of a crash mid-append — is
// truncated away with a warning; an epoch published but never made durable
// cannot exist under SyncAlways, so nothing published is ever lost.
// Corruption anywhere else (checksum failures on complete records, epoch
// gaps) refuses recovery rather than serving wrong distances. ErrNoState
// when dir holds no checkpoint at all.
func Recover(dir string, opts Options) (*Durable, error) {
	opts = opts.withDefaults()
	cks, err := listCheckpoints(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoState
		}
		return nil, err
	}
	if len(cks) == 0 {
		return nil, ErrNoState
	}
	var st ckptState
	var idx *dynhl.Index
	var ckErr error
	for _, c := range cks {
		if opts.Mmap.Enabled() {
			// The mapped boot serves the checkpoint's label entries
			// straight out of the page cache — it faults in only the
			// header, graph and offset pages (the v2 CRC skips the entry
			// arenas), so boot cost stops scaling with labelling size.
			// Replay still works: the mapping is private, so in-place
			// label repairs dirty anonymous copies, never the file.
			mapped, epoch, err := mapCheckpoint(c.path)
			switch {
			case err == nil:
				idx, st.epoch = mapped, epoch
			case errors.Is(err, dynhl.ErrNotMappable):
				// A v1 checkpoint or an unmappable layout: quiet copy-in.
			default:
				opts.Logf("wal: mapped boot of %s failed (%v); falling back to copy-in", c.path, err)
			}
		}
		if idx == nil {
			if st, ckErr = readCheckpoint(c.path); ckErr != nil {
				ckptFallbacksTotal.Add(1)
				opts.Logf("wal: skipping damaged checkpoint %s: %v", c.path, ckErr)
				continue
			}
		}
		break
	}
	if idx == nil && st.graph == nil {
		return nil, fmt.Errorf("wal: no usable checkpoint in %s (newest error: %w)", dir, ckErr)
	}

	if idx == nil {
		if idx, err = rebuildIndex(st); err != nil {
			return nil, err
		}
	}
	last, replayed, err := replay(idx, walDir(dir), st.epoch, opts.Logf)
	if err != nil {
		return nil, err
	}
	// The tail was applied to the plain index as one coalesced replay (the
	// same batching insight as the store's group commit, on the boot path):
	// wrapping it here packs once and publishes once, at the last logged
	// epoch, instead of paying one fork + pack + publish per record.
	recoveriesTotal.Add(1)
	replayedTotal.Add(replayed)
	store := dynhl.NewStoreAt(idx, last)
	return attach(dir, store, st.epoch, replayed, opts)
}

// rebuildIndex reconstructs the oracle a checkpoint captured: the graph
// from its binary edge array, then the labelling attached to it — no
// landmark searches, no label construction.
func rebuildIndex(st ckptState) (*dynhl.Index, error) {
	g, err := decodeGraphSection(st.graph, st.vertices)
	if err != nil {
		return nil, err
	}
	idx, err := dynhl.LoadIndex(bytes.NewReader(st.labels), g)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint labelling: %w", err)
	}
	return idx, nil
}

// mapCheckpoint is the zero-copy variant of readCheckpoint+rebuildIndex:
// it mmaps the checkpoint file and attaches the labelling in place. The
// graph is still decoded to the heap (it is mutated by every update; the
// labels are the bulk of the state). Returns dynhl.ErrNotMappable for v1
// checkpoints and unmappable layouts; the mapping is owned by the
// returned index and unmapped by the garbage collector once no snapshot
// aliases it — checkpoint pruning only ever unlinks files, so a pruned
// checkpoint's pages stay valid for as long as anything still reads them.
func mapCheckpoint(path string) (*dynhl.Index, uint64, error) {
	m, err := arena.MapFile(path)
	if err != nil {
		if errors.Is(err, arena.ErrUnsupported) {
			err = fmt.Errorf("%w: %s", dynhl.ErrNotMappable, err)
		}
		return nil, 0, err
	}
	data := m.Data()
	if len(data) < len(ckptMagicV2) || string(data[:len(ckptMagicV2)]) != ckptMagicV2 {
		// Checking the magic before decodeCheckpoint keeps a v1 boot off
		// this path entirely: v1's whole-file CRC would fault in every
		// page for nothing.
		m.Close()
		return nil, 0, dynhl.ErrNotMappable
	}
	st, err := decodeCheckpoint(data, path)
	if err != nil {
		m.Close()
		return nil, 0, err
	}
	g, err := decodeGraphSection(st.graph, st.vertices)
	if err != nil {
		m.Close()
		return nil, 0, err
	}
	idx, err := dynhl.LoadIndexMapped(m, st.labelsOff, g)
	if err != nil {
		m.Close()
		return nil, 0, fmt.Errorf("wal: checkpoint labelling: %w", err)
	}
	return idx, st.epoch, nil
}

// replay applies the log tail beyond ckptEpoch directly to the plain
// oracle — no store wrapping yet, so the whole tail is one coalesced
// batch: no per-record fork, pack or publish. It returns the last epoch
// applied (ckptEpoch when the log held nothing newer) and how many records
// it replayed. Records at or below ckptEpoch (kept for an older
// checkpoint) are skipped; beyond it epochs must be contiguous.
func replay(o dynhl.Oracle, dir string, ckptEpoch uint64, logf func(string, ...any)) (uint64, uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return ckptEpoch, 0, nil // no log yet: the checkpoint is the whole state
		}
		return 0, 0, err
	}
	epoch := ckptEpoch
	var replayed uint64
	for i, seg := range segs {
		last := i == len(segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return 0, 0, err
		}
		off := 0
		for off < len(data) {
			rec, next, err := decodeRecord(data, off)
			switch {
			case errors.Is(err, errTorn):
				if !last {
					return 0, 0, fmt.Errorf("wal: %s: torn record at offset %d mid-log (later segments exist): refusing to recover", seg.path, off)
				}
				// A crash cut the final append short; the record's epoch
				// was never published, so dropping it loses nothing.
				tornTailsTotal.Add(1)
				logf("wal: truncating torn record at end of %s (offset %d, %d trailing bytes)", seg.path, off, len(data)-off)
				if err := os.Truncate(seg.path, int64(off)); err != nil {
					return 0, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
				}
				return epoch, replayed, nil
			case err != nil:
				return 0, 0, fmt.Errorf("wal: %s: refusing to recover past damaged log: %w", seg.path, err)
			}
			if rec.epoch > ckptEpoch {
				if rec.epoch != epoch+1 {
					return 0, 0, fmt.Errorf("wal: %s: record for epoch %d where %d was expected (gap in the log): refusing to recover", seg.path, rec.epoch, epoch+1)
				}
				if _, err := o.Apply(rec.ops); err != nil {
					return 0, 0, fmt.Errorf("wal: replaying epoch %d: %w", rec.epoch, err)
				}
				epoch = rec.epoch
				replayed++
			}
			off = next
		}
	}
	return epoch, replayed, nil
}
