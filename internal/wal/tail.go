package wal

import (
	"errors"
	"fmt"
	"io"
	"os"

	dynhl "repro"
	"repro/internal/arena"
)

// ErrEpochTruncated reports a tail read asking for epochs the log no longer
// holds: checkpointing truncated the segments that carried them. It is a
// recoverable condition distinct from I/O errors or corruption — the caller
// falls back to bootstrapping from a checkpoint image instead of the log.
var ErrEpochTruncated = errors.New("wal: requested epochs truncated from the log")

// TailRecord is one log record surfaced by a TailReader or a commit
// subscription: the op batch that published Epoch, and the encoded frame
// size it occupies in the log. Ops is nil only on subscription notices for
// an epoch published without ops (Store.Load) — such epochs never have log
// records and are captured as checkpoints instead.
type TailRecord struct {
	Epoch uint64
	Ops   []dynhl.Op
	Size  int
}

// TailReader iterates the log records with epochs >= the requested floor,
// in epoch order. It reads over the segment listing captured at open time:
// records appended after that are not (reliably) seen — pair it with
// SubscribeCommits, subscribing first, to hand off from disk catch-up to
// live streaming without a gap. A torn record at the very end of the log is
// end-of-tail (a live append in progress), not an error; a segment removed
// mid-read by a concurrent checkpoint truncation reports ErrEpochTruncated.
type TailReader struct {
	from uint64
	segs []segment
	i    int    // next segment to load
	data []byte // current segment's bytes
	off  int
	path string // current segment's path, for error text
}

// OpenTail opens a tail over the log directory dir (the "wal" subdirectory
// of a durable data directory) for records with epochs >= from. It reports
// ErrEpochTruncated immediately when the log's oldest surviving segment
// starts past from — the records were truncated away and only a checkpoint
// can bridge the gap. Callers with a live Durable should prefer
// Durable.TailFrom, which syncs the log first.
func OpenTail(dir string, from uint64) (*TailReader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &TailReader{from: from}, nil // no log yet: empty tail
		}
		return nil, err
	}
	// Segments before the one that may contain from hold only older epochs.
	start := 0
	for start+1 < len(segs) && segs[start+1].first <= from {
		start++
	}
	if len(segs) > 0 && segs[start].first > from {
		return nil, fmt.Errorf("%w: epoch %d precedes the oldest surviving segment (first epoch %d)", ErrEpochTruncated, from, segs[start].first)
	}
	return &TailReader{from: from, segs: segs[start:]}, nil
}

// Next returns the next record with epoch >= the open floor, io.EOF at the
// end of the tail. The returned record's Ops alias the reader's internal
// buffer only until the next call consumes a new segment; they are decoded
// fresh per record and safe to retain.
func (t *TailReader) Next() (TailRecord, error) {
	for {
		if t.data == nil {
			if t.i >= len(t.segs) {
				return TailRecord{}, io.EOF
			}
			seg := t.segs[t.i]
			t.i++
			data, err := os.ReadFile(seg.path)
			if err != nil {
				if os.IsNotExist(err) {
					// A concurrent checkpoint truncated it from under us.
					return TailRecord{}, fmt.Errorf("%w: segment %s removed mid-read", ErrEpochTruncated, seg.path)
				}
				return TailRecord{}, err
			}
			t.data, t.off, t.path = data, 0, seg.path
		}
		for t.off < len(t.data) {
			rec, next, err := decodeRecord(t.data, t.off)
			switch {
			case errors.Is(err, errTorn):
				if t.i >= len(t.segs) {
					return TailRecord{}, io.EOF // live append in progress
				}
				return TailRecord{}, fmt.Errorf("wal: %s: torn record at offset %d mid-log", t.path, t.off)
			case err != nil:
				return TailRecord{}, fmt.Errorf("wal: %s: %w", t.path, err)
			}
			size := next - t.off
			t.off = next
			if rec.epoch >= t.from {
				return TailRecord{Epoch: rec.epoch, Ops: rec.ops, Size: size}, nil
			}
		}
		t.data = nil
	}
}

// TailFrom returns a TailReader over this durable store's log for epochs
// >= from, after syncing the log so every record committed so far is on
// disk where the reader can see it.
func (d *Durable) TailFrom(from uint64) (*TailReader, error) {
	if err := d.log.Sync(); err != nil {
		return nil, err
	}
	return OpenTail(walDir(d.dir), from)
}

// subscriber is one SubscribeCommits registration: a bounded channel plus
// the closed flag that keeps a concurrent cancel and an overflow close from
// double-closing it. All sends and closes happen under Durable.subMu.
type subscriber struct {
	ch     chan TailRecord
	closed bool
}

// SubscribeCommits registers for a notification after every committed
// publish, in epoch order: one TailRecord per op batch (and one with nil
// Ops per record-less Load epoch, which subscribers must treat as "fetch a
// fresh checkpoint" rather than something replayable). The channel holds
// buf notifications; a subscriber that falls further behind than that is
// cut off — its channel is closed with notifications lost — so a slow
// consumer degrades itself, never the write path. A closed channel means
// the subscriber must resume from the log (TailFrom) or a checkpoint.
// Closing the Durable closes every subscription. The returned cancel is
// idempotent and closes the channel.
func (d *Durable) SubscribeCommits(buf int) (<-chan TailRecord, func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan TailRecord, buf)}
	d.subMu.Lock()
	if d.subs == nil {
		d.subs = make(map[*subscriber]struct{})
	}
	d.subs[s] = struct{}{}
	d.subMu.Unlock()
	cancel := func() {
		d.subMu.Lock()
		defer d.subMu.Unlock()
		delete(d.subs, s)
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
	return s.ch, cancel
}

// notifyCommit fans one committed record out to every subscriber. Commits
// are serialised by the store's writer lock, so notifications arrive in
// epoch order. A full channel disconnects its subscriber (see
// SubscribeCommits).
func (d *Durable) notifyCommit(rec TailRecord) {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	for s := range d.subs {
		select {
		case s.ch <- rec:
		default:
			delete(d.subs, s)
			s.closed = true
			close(s.ch)
		}
	}
}

// closeSubscribers ends every subscription, part of Close.
func (d *Durable) closeSubscribers() {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	for s := range d.subs {
		delete(d.subs, s)
		s.closed = true
		close(s.ch)
	}
}

// CheckpointEpoch returns the epoch of the newest completed checkpoint —
// the bootstrap floor: log records above it are guaranteed replayable
// (record-less Load epochs always coincide with a checkpoint), so a
// follower at or past it can resume from the log alone.
func (d *Durable) CheckpointEpoch() uint64 { return d.ckptEpoch.Load() }

// CheckpointImage returns the newest valid checkpoint's raw bytes and the
// epoch it captures — the bootstrap payload replication ships to a follower
// that cannot resume from the log. The image is exactly the on-disk file;
// RebuildImage decodes it back into an oracle.
func (d *Durable) CheckpointImage() (uint64, []byte, error) {
	cks, err := listCheckpoints(d.dir)
	if err != nil {
		return 0, nil, err
	}
	var lastErr error
	for _, c := range cks {
		data, err := os.ReadFile(c.path)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := decodeCheckpoint(data, c.path); err != nil {
			lastErr = err
			continue
		}
		return c.first, data, nil
	}
	return 0, nil, fmt.Errorf("wal: no usable checkpoint image in %s: %w", d.dir, lastErr)
}

// RebuildImage decodes a checkpoint image (the bytes of a checkpoint file,
// as shipped by CheckpointImage) back into the oracle it captured and the
// epoch it was taken at — the follower side of a replication bootstrap.
func RebuildImage(data []byte) (*dynhl.Index, uint64, error) {
	st, err := decodeCheckpoint(data, "checkpoint image")
	if err != nil {
		return nil, 0, err
	}
	idx, err := rebuildIndex(st)
	if err != nil {
		return nil, 0, err
	}
	return idx, st.epoch, nil
}

// RebuildImageMapped is RebuildImage serving the labels zero-copy: the
// image is spilled to an unlinked temp file, mmap'd, and the labelling
// attached in place, so a follower bootstrapping from a large shipped
// checkpoint keeps one file-backed copy of the entries instead of a heap
// copy next to the received buffer. Falls back to RebuildImage whenever
// mode declines, the image is a v1 layout, or mapping fails — the result
// is the same oracle either way.
func RebuildImageMapped(data []byte, mode MapMode) (*dynhl.Index, uint64, error) {
	if !mode.Enabled() || len(data) < len(ckptMagicV2) || string(data[:len(ckptMagicV2)]) != ckptMagicV2 {
		return RebuildImage(data)
	}
	m, err := arena.MapBytes(data)
	if err != nil {
		return RebuildImage(data)
	}
	st, err := decodeCheckpoint(m.Data(), "checkpoint image")
	if err != nil {
		m.Close()
		return nil, 0, err
	}
	g, err := decodeGraphSection(st.graph, st.vertices)
	if err != nil {
		m.Close()
		return nil, 0, err
	}
	idx, err := dynhl.LoadIndexMapped(m, st.labelsOff, g)
	if err != nil {
		m.Close()
		if errors.Is(err, dynhl.ErrNotMappable) {
			return RebuildImage(data)
		}
		return nil, 0, fmt.Errorf("wal: shipped checkpoint labelling: %w", err)
	}
	return idx, st.epoch, nil
}
