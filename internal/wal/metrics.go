package wal

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Package-wide recovery counters: recovery runs before any Durable (and
// therefore any registry) exists, so the boot path records into process
// globals and every Durable's registry exposes them as counter funcs.
var (
	recoveriesTotal    atomic.Uint64 // successful Recover calls
	tornTailsTotal     atomic.Uint64 // torn final records truncated on replay
	replayedTotal      atomic.Uint64 // log records replayed over checkpoints
	ckptFallbacksTotal atomic.Uint64 // damaged checkpoints skipped for older ones
)

// walMetrics is one Durable's metric set: inline timings recorded by the
// log and checkpoint paths, plus scrape-time views of the counters the
// log already keeps for DurabilityStats (no double bookkeeping).
type walMetrics struct {
	reg         *obs.Registry
	append      *obs.Histogram // dynhl_wal_append_seconds (write + policy sync)
	fsync       *obs.Histogram // dynhl_wal_fsync_seconds
	checkpoint  *obs.Histogram // dynhl_wal_checkpoint_seconds
	checkpoints *obs.Counter   // dynhl_wal_checkpoints_total
}

func newWALMetrics(d *Durable) *walMetrics {
	r := obs.NewRegistry()
	m := &walMetrics{
		reg: r,
		append: r.Duration("dynhl_wal_append_seconds",
			"WAL record append latency, including the policy's fsync."),
		fsync: r.Duration("dynhl_wal_fsync_seconds",
			"WAL fsync latency."),
		checkpoint: r.Duration("dynhl_wal_checkpoint_seconds",
			"Checkpoint write latency (snapshot serialisation + sync)."),
		checkpoints: r.Counter("dynhl_wal_checkpoints_total",
			"Checkpoints completed."),
	}
	r.CounterFunc("dynhl_wal_records_total", "WAL records appended.",
		func() uint64 { return d.DurabilityStats().Records })
	r.CounterFunc("dynhl_wal_appended_bytes_total", "WAL bytes appended.",
		func() uint64 { return d.DurabilityStats().Bytes })
	r.CounterFunc("dynhl_wal_fsyncs_total", "WAL fsyncs issued.",
		func() uint64 { return d.DurabilityStats().Syncs })
	r.GaugeFunc("dynhl_wal_durable_epoch", "Highest epoch known durable.",
		func() float64 { return float64(d.DurabilityStats().DurableEpoch) })
	r.GaugeFunc("dynhl_wal_checkpoint_epoch", "Epoch of the newest completed checkpoint.",
		func() float64 { return float64(d.ckptEpoch.Load()) })
	r.GaugeFunc("dynhl_wal_segments", "Live log segment files.",
		func() float64 { return float64(d.DurabilityStats().Segments) })
	r.CounterFunc("dynhl_wal_recoveries_total",
		"Successful recoveries (process-wide).", recoveriesTotal.Load)
	r.CounterFunc("dynhl_wal_torn_tails_total",
		"Torn final records truncated on replay (process-wide).", tornTailsTotal.Load)
	r.CounterFunc("dynhl_wal_replayed_records_total",
		"Log records replayed over checkpoints (process-wide).", replayedTotal.Load)
	r.CounterFunc("dynhl_wal_checkpoint_fallbacks_total",
		"Damaged checkpoints skipped for an older one (process-wide).", ckptFallbacksTotal.Load)
	return m
}

// MetricsRegistry returns the durability layer's metrics registry;
// dynhl.Store.MetricsRegistries picks it up once the layer is attached.
func (d *Durable) MetricsRegistry() *obs.Registry { return d.metrics.reg }
