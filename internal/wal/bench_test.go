package wal

import (
	"testing"
	"time"

	dynhl "repro"
)

// BenchmarkLogAppend isolates the WAL append itself — frame encoding, the
// write, and the policy's fsync — from the label repair that dominates a
// full publish (see BenchmarkApplyDurable at the repository root for the
// end-to-end numbers).
func BenchmarkLogAppend(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"fsync-always", SyncAlways},
		{"fsync-interval", SyncInterval},
		{"fsync-off", SyncOff},
	} {
		b.Run(tc.name, func(b *testing.B) {
			lg, err := openLog(b.TempDir(), 1, 0, tc.policy, 100*time.Millisecond, 64<<20)
			if err != nil {
				b.Fatal(err)
			}
			defer lg.Close()
			ops := []dynhl.Op{dynhl.InsertEdgeOp(3, 97, 0), dynhl.DeleteEdgeOp(12, 4)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lg.Append(uint64(i+1), ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
