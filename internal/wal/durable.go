package wal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	dynhl "repro"
	"repro/internal/arena"
)

// Options configures a Durable.
type Options struct {
	// Fsync is the log's sync policy (default SyncAlways).
	Fsync Policy
	// FsyncInterval is the sync cadence under SyncInterval (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery triggers an automatic background checkpoint after
	// that many appended records; 0 means checkpoints are manual (or on
	// Close) only.
	CheckpointEvery int
	// SegmentBytes rotates the active log segment beyond this size
	// (default 64 MiB).
	SegmentBytes int64
	// Logf receives recovery warnings and background-checkpoint failures
	// (default log.Printf).
	Logf func(format string, args ...any)
	// Mmap selects how recovery attaches the checkpoint labelling: MapAuto
	// (the zero value) serves v2 checkpoints out of an mmap on platforms
	// that support it, MapOn insists on trying even where unsupported (the
	// attempt fails and recovery falls back, with a warning), MapOff always
	// decodes a heap copy. Only the load path is affected — checkpoints are
	// written in the mappable v2 layout regardless, whenever the oracle
	// supports it.
	Mmap MapMode
}

// MapMode is the Options.Mmap policy for mmap-served checkpoint boots.
type MapMode int

const (
	// MapAuto mmaps v2 checkpoints where the platform supports it.
	MapAuto MapMode = iota
	// MapOn attempts the mapped boot unconditionally.
	MapOn
	// MapOff always takes the copy-in load.
	MapOff
)

// Enabled reports whether this mode wants the mapped paths attempted
// (how commands resolve their -mmap flag against the platform).
func (m MapMode) Enabled() bool {
	switch m {
	case MapOn:
		return true
	case MapOff:
		return false
	default:
		return arena.Supported()
	}
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// ErrNoState reports a Recover on a directory holding no checkpoint.
var ErrNoState = errors.New("wal: no durable state in directory")

// Durable ties a Store to its write-ahead log and checkpoints: it is the
// dynhl.Durability layer making every published epoch durable before it is
// visible, and the admin surface (Checkpoint, stats) the HTTP service and
// commands expose. Obtain one with Create, Recover or Open; release it with
// Close, which takes a final checkpoint so the next boot replays nothing.
type Durable struct {
	dir   string
	store *dynhl.Store
	log   *Log
	opts  Options

	ckptMu    sync.Mutex // serialises checkpoints
	ckptEpoch atomic.Uint64
	sinceCkpt atomic.Uint64
	replayed  uint64 // records the recovery that opened this Durable replayed

	// subMu guards subs, the live SubscribeCommits registrations; every
	// send and close of a subscriber channel happens under it (see tail.go).
	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	ckptc  chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// metrics is the layer's observability surface (metrics.go), set once
	// in attach before the store or the background worker can run.
	metrics *walMetrics
}

func walDir(dir string) string { return filepath.Join(dir, "wal") }

// HasState reports whether dir holds recoverable state (any checkpoint).
func HasState(dir string) bool {
	cks, err := listCheckpoints(dir)
	return err == nil && len(cks) > 0
}

// Create initialises dir for a fresh oracle: it writes the base checkpoint
// at the store's current epoch — the floor every future recovery builds
// on — opens the log, and attaches. o may be a plain oracle or an existing
// Store; it must support checkpointing (labelling and graph serialisation,
// currently the undirected variant), else errors.ErrUnsupported. A
// directory that already has state is refused — Recover or Open it instead.
func Create(dir string, o dynhl.Oracle, opts Options) (*Durable, error) {
	store := dynhl.NewStore(o)
	src, ok := asCheckpointable(store.Unwrap())
	if !ok {
		return nil, fmt.Errorf("wal: this oracle variant cannot be made durable (needs labelling and graph serialisation): %w", errors.ErrUnsupported)
	}
	if HasState(dir) {
		return nil, fmt.Errorf("wal: %s already holds durable state; use Recover or Open", dir)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	epoch := store.Epoch()
	if _, err := writeCheckpoint(dir, epoch, src); err != nil {
		return nil, err
	}
	return attach(dir, store, epoch, 0, opts)
}

// Open is the boot entry point: Recover when dir holds state, else build a
// fresh oracle and Create.
func Open(dir string, build func() (dynhl.Oracle, error), opts Options) (*Durable, error) {
	if HasState(dir) {
		return Recover(dir, opts)
	}
	o, err := build()
	if err != nil {
		return nil, err
	}
	return Create(dir, o, opts)
}

// attach wires a recovered or fresh store to its log and starts the
// background checkpointer.
func attach(dir string, store *dynhl.Store, ckptEpoch uint64, replayed uint64, opts Options) (*Durable, error) {
	opts = opts.withDefaults()
	// A fresh segment past everything already on disk: recovery never
	// appends to a file it also truncated.
	lg, err := openLog(walDir(dir), store.Epoch()+1, store.Epoch(), opts.Fsync, opts.FsyncInterval, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	d := &Durable{
		dir:      dir,
		store:    store,
		log:      lg,
		opts:     opts,
		replayed: replayed,
		ckptc:    make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	d.ckptEpoch.Store(ckptEpoch)
	d.metrics = newWALMetrics(d)
	lg.m = d.metrics
	if err := store.AttachDurability(d); err != nil {
		lg.Close()
		return nil, err
	}
	d.wg.Add(1)
	go d.run()
	return d, nil
}

// Store returns the durable store; serve queries and apply updates through
// it exactly as with a plain Store.
func (d *Durable) Store() *dynhl.Store { return d.store }

// Epoch returns the store's current published epoch.
func (d *Durable) Epoch() uint64 { return d.store.Epoch() }

// Replayed returns how many log records the recovery that opened this
// Durable replayed (zero for a fresh directory).
func (d *Durable) Replayed() uint64 { return d.replayed }

// Commit implements dynhl.Durability: the record for epoch is appended (and
// under SyncAlways durable) before the store publishes it. An epoch
// published without an op batch (Store.Load) cannot be replayed from ops,
// so it is captured as a synchronous checkpoint of the incoming snapshot
// instead. That checkpoint is then the only route across its epoch: older
// checkpoints cannot bridge the record-less gap, so should it ever be
// damaged, recovery refuses rather than falling back past it.
func (d *Durable) Commit(epoch uint64, ops []dynhl.Op, next dynhl.View) error {
	if d.closed.Load() {
		return errors.New("wal: durable store is closed")
	}
	if ops == nil {
		d.opts.Logf("wal: epoch %d published without ops (Load): captured as a checkpoint; older checkpoints cannot recover past it", epoch)
		if _, err := d.checkpointView(next); err != nil {
			return err
		}
		// A record-less epoch cannot be replayed; the nil-Ops notice tells
		// subscribers to fetch the fresh checkpoint instead.
		d.notifyCommit(TailRecord{Epoch: epoch})
		return nil
	}
	size, err := d.log.Append(epoch, ops)
	if err != nil {
		return err
	}
	d.notifyCommit(TailRecord{Epoch: epoch, Ops: ops, Size: size})
	if every := d.opts.CheckpointEvery; every > 0 && d.sinceCkpt.Add(1) >= uint64(every) {
		d.sinceCkpt.Store(0)
		select {
		case d.ckptc <- struct{}{}:
		default:
		}
	}
	return nil
}

// Checkpoint writes the current snapshot's full state, rotates the log and
// removes segments and checkpoints it supersedes. It runs against a pinned
// immutable snapshot, so writers are never blocked. Returns the epoch the
// checkpoint captured.
func (d *Durable) Checkpoint() (uint64, error) {
	return d.checkpointView(d.store.Snapshot())
}

func (d *Durable) checkpointView(v dynhl.View) (uint64, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	epoch := v.Epoch()
	if cur := d.ckptEpoch.Load(); epoch <= cur {
		return cur, nil // already covered by a newer or equal checkpoint
	}
	src, ok := asCheckpointable(v)
	if !ok {
		return 0, fmt.Errorf("wal: snapshot cannot be checkpointed: %w", errors.ErrUnsupported)
	}
	start := time.Now()
	// Records past the checkpoint must not ride only in the page cache
	// while the files below them disappear.
	if err := d.log.Sync(); err != nil {
		return 0, err
	}
	if _, err := writeCheckpoint(d.dir, epoch, src); err != nil {
		return 0, err
	}
	d.metrics.checkpoint.Since(start)
	d.metrics.checkpoints.Inc()
	// The checkpoint is durable: from here the operation has succeeded and
	// must report so — a caller like a Load commit would otherwise abort
	// its publish while checkpoint-<epoch> stays on disk, shadowing
	// whatever the store really publishes as that epoch next. Rotation,
	// pruning and truncation are housekeeping; failures only delay
	// reclaiming space and are retried by the next checkpoint.
	d.ckptEpoch.Store(epoch)
	d.sinceCkpt.Store(0)
	if err := d.log.Rotate(); err != nil {
		d.opts.Logf("wal: post-checkpoint log rotation failed (truncation deferred): %v", err)
		return epoch, nil
	}
	keepFrom, err := pruneCheckpoints(d.dir)
	if err != nil {
		d.opts.Logf("wal: pruning checkpoints failed (truncation deferred): %v", err)
		return epoch, nil
	}
	if err := d.log.Truncate(keepFrom); err != nil {
		d.opts.Logf("wal: truncating covered segments failed (retried at the next checkpoint): %v", err)
	}
	return epoch, nil
}

// run is the background worker: automatic checkpoints and, under
// SyncInterval, the idle-tail flusher.
func (d *Durable) run() {
	defer d.wg.Done()
	var flush <-chan time.Time
	if d.opts.Fsync == SyncInterval {
		t := time.NewTicker(d.opts.FsyncInterval)
		defer t.Stop()
		flush = t.C
	}
	for {
		select {
		case <-d.stop:
			return
		case <-d.ckptc:
			if _, err := d.Checkpoint(); err != nil {
				d.opts.Logf("wal: background checkpoint: %v", err)
			}
		case <-flush:
			if err := d.log.Sync(); err != nil {
				d.opts.Logf("wal: background fsync: %v", err)
			}
		}
	}
}

// Close shuts the durability layer down cleanly: further publishes are
// refused, a final checkpoint captures the last epoch, and the log is
// synced and closed. After Close the next boot recovers instantly (nothing
// to replay). Closing twice is a no-op.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.wg.Wait()
	d.closeSubscribers()
	_, cerr := d.Checkpoint()
	serr := d.log.Close()
	return errors.Join(cerr, serr)
}

// DurabilityStats implements dynhl.Durability, surfacing the WAL counters
// in Store.Stats and the HTTP endpoints.
func (d *Durable) DurabilityStats() dynhl.DurabilityStats {
	var st dynhl.DurabilityStats
	d.log.statsInto(&st)
	st.CheckpointEpoch = d.ckptEpoch.Load()
	if st.CheckpointEpoch > st.DurableEpoch {
		// A checkpoint is durability too: everything at or below it
		// survives without its log records.
		st.DurableEpoch = st.CheckpointEpoch
	}
	st.Replayed = d.replayed
	return st
}
