package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	dynhl "repro"
)

// The v2 checkpoint ("HLWCKPT2") is the v1 layout with a mappable
// labelling and a CRC that skips the label entry arenas:
//
//	magic "HLWCKPT2" | u64 epoch | u64 vertices |
//	u64 graphLen | graph section (as v1) |
//	u64 labelsLen | labelling stream (dynhl.MappableSaver, v2 formats) |
//	span table: (u64 off | u64 len) per span | u32 span count |
//	u32 CRC32 (IEEE) of everything above except the span byte ranges
//
// The labelling is written with SaveMappable at its real file offset, so
// its entry arenas land page-aligned in the file and a recovery can mmap
// the checkpoint and serve queries straight from the page cache instead
// of decoding the labels. The spans name exactly those entry arenas: the
// CRC deliberately excludes them so validating a mapped checkpoint at
// boot faults in only the header, graph and offset-table pages — a CRC
// over the whole file would read every entry page and make the mapped
// boot a copy-in load with extra steps. The entry bytes are therefore
// not integrity-checked; they are node-local state written by us, and
// the offset tables bounding every access are still fully covered.
//
// The trailer parses backwards (count, then the spans before it) so the
// header needs no forward pointer and v1 readers' "length mismatch"
// rejection stays meaningful. v1 checkpoints remain readable forever;
// new checkpoints are written in v2 whenever the oracle can save
// mappably.
const ckptMagicV2 = "HLWCKPT2"

// maxCkptSpans bounds the span table: no variant writes more than two
// entry arenas (the directed one), so anything large is damage.
const maxCkptSpans = 16

// crcSkipSpans computes the IEEE CRC32 of data with the given byte
// ranges excluded. Spans must be sorted, non-overlapping and in bounds —
// validated by the caller (decode) or true by construction (write).
func crcSkipSpans(data []byte, spans []dynhl.Span) uint32 {
	var crc uint32
	pos := int64(0)
	for _, s := range spans {
		crc = crc32.Update(crc, crc32.IEEETable, data[pos:s.Off])
		pos = s.Off + s.Len
	}
	return crc32.Update(crc, crc32.IEEETable, data[pos:])
}

// appendCheckpointV2 assembles a v2 checkpoint image for epoch into buf.
func appendCheckpointV2(buf []byte, epoch uint64, src checkpointable, ms dynhl.MappableSaver) ([]byte, error) {
	g := src.Graph()
	le := binary.LittleEndian
	buf = append(buf, ckptMagicV2...)
	buf = le.AppendUint64(buf, epoch)
	buf = le.AppendUint64(buf, uint64(g.NumVertices()))
	buf = le.AppendUint64(buf, 8+8*g.NumEdges())
	buf = appendGraphSection(buf, g)
	lenAt := len(buf)
	buf = le.AppendUint64(buf, 0)
	// The labelling's file offset is its buffer offset — the image is
	// written from byte 0 of the file — so alignment computed against the
	// buffer position holds on disk.
	_, spans, err := ms.SaveMappable(sliceWriter{&buf}, int64(len(buf)))
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint labelling: %w", err)
	}
	le.PutUint64(buf[lenAt:], uint64(len(buf)-lenAt-8))
	for _, s := range spans {
		buf = le.AppendUint64(buf, uint64(s.Off))
		buf = le.AppendUint64(buf, uint64(s.Len))
	}
	buf = le.AppendUint32(buf, uint32(len(spans)))
	buf = le.AppendUint32(buf, crcSkipSpans(buf, spans))
	return buf, nil
}

// decodeCheckpointV2 validates and decodes a v2 checkpoint image. Works
// on mapped bytes: validation faults in everything except the label
// entry arenas, which the CRC skips (see the format comment).
func decodeCheckpointV2(data []byte, path string) (ckptState, error) {
	le := binary.LittleEndian
	headerMin := len(ckptMagicV2) + 8*3 + 8 // fixed header + labelsLen
	if len(data) < headerMin+8 || string(data[:len(ckptMagicV2)]) != ckptMagicV2 {
		return ckptState{}, fmt.Errorf("wal: %s: not a v2 checkpoint file", path)
	}
	nspans := le.Uint32(data[len(data)-8:])
	if nspans > maxCkptSpans {
		return ckptState{}, fmt.Errorf("wal: %s: implausible span count %d", path, nspans)
	}
	bodyLen := len(data) - 8 - 16*int(nspans)
	if bodyLen < headerMin {
		return ckptState{}, fmt.Errorf("wal: %s: truncated checkpoint", path)
	}
	spans := make([]dynhl.Span, nspans)
	prevEnd := int64(0)
	for i := range spans {
		at := bodyLen + 16*i
		off, slen := le.Uint64(data[at:]), le.Uint64(data[at+8:])
		if off > uint64(bodyLen) || slen > uint64(bodyLen)-off || int64(off) < prevEnd {
			return ckptState{}, fmt.Errorf("wal: %s: span table out of bounds", path)
		}
		spans[i] = dynhl.Span{Off: int64(off), Len: int64(slen)}
		prevEnd = int64(off + slen)
	}
	if crcSkipSpans(data[:len(data)-4], spans) != le.Uint32(data[len(data)-4:]) {
		return ckptState{}, fmt.Errorf("wal: %s: checksum mismatch", path)
	}
	body := data[:bodyLen]
	off := len(ckptMagicV2)
	readU64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, fmt.Errorf("wal: %s: truncated checkpoint", path)
		}
		v := le.Uint64(body[off:])
		off += 8
		return v, nil
	}
	st := ckptState{v2: true}
	var err error
	if st.epoch, err = readU64(); err != nil {
		return ckptState{}, err
	}
	if st.vertices, err = readU64(); err != nil {
		return ckptState{}, err
	}
	glen, err := readU64()
	if err != nil {
		return ckptState{}, err
	}
	if uint64(len(body)-off) < glen {
		return ckptState{}, fmt.Errorf("wal: %s: truncated graph section", path)
	}
	st.graph = body[off : off+int(glen)]
	off += int(glen)
	llen, err := readU64()
	if err != nil {
		return ckptState{}, err
	}
	if uint64(len(body)-off) != llen {
		return ckptState{}, fmt.Errorf("wal: %s: labelling section length mismatch", path)
	}
	st.labels = body[off:]
	st.labelsOff = int64(off)
	return st, nil
}
