package wal

import (
	"bytes"
	"math/rand"
	"testing"

	dynhl "repro"
	"repro/internal/bfs"
	"repro/internal/graph"
)

// TestCrashRecoveryDifferential is the subsystem's acceptance test: random
// op batches run against a durable store while a mirror graph provides BFS
// ground truth per epoch; at random points the process "crashes" (the
// store is abandoned without a close or flush — under SyncAlways everything
// published is already on disk) and recovery must restore the exact last
// durable epoch, with the labelling byte-identical to the pre-crash Save
// output and every sampled distance matching BFS on the mirror.
func TestCrashRecoveryDifferential(t *testing.T) {
	const (
		vertices = 60
		rounds   = 40
		batchMax = 5
		samples  = 25
	)
	rng := rand.New(rand.NewSource(42))

	// The mirror tracks exactly the ops the durable store applied.
	mirror := graph.New(vertices)
	mirror.EnsureVertex(vertices - 1)
	for v := uint32(1); v < vertices; v++ {
		mirror.MustAddEdge(v, uint32(rng.Intn(int(v))))
	}
	for i := 0; i < vertices; i++ {
		u, v := uint32(rng.Intn(vertices)), uint32(rng.Intn(vertices))
		if u != v {
			mirror.MustAddEdge(u, v)
		}
	}
	seed := mirror.Clone()
	idx, err := dynhl.Build(seed, dynhl.Options{Landmarks: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	d, err := Create(dir, idx, Options{Fsync: SyncAlways, CheckpointEvery: 7, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()

	// checkEpoch compares the recovered (or live) store against BFS ground
	// truth on the mirror at the same epoch.
	checkEpoch := func(s *dynhl.Store, when string) {
		t.Helper()
		n := s.NumVertices()
		if n != mirror.NumVertices() {
			t.Fatalf("%s: store has %d vertices, mirror %d", when, n, mirror.NumVertices())
		}
		for i := 0; i < samples; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if got, want := s.Query(u, v), bfs.Dist(mirror, u, v); got != want {
				t.Fatalf("%s: d(%d,%d) = %d, want %d", when, u, v, got, want)
			}
		}
	}

	for round := 0; round < rounds; round++ {
		ops := randomOps(rng, mirror, 1+rng.Intn(batchMax))
		if _, err := store.Apply(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkEpoch(store, "live")

		if rng.Intn(3) != 0 {
			continue
		}
		// Crash here. Everything published is durable (SyncAlways), so the
		// recovered store must land on exactly this epoch with exactly
		// these bytes.
		wantEpoch := store.Epoch()
		var wantLabels bytes.Buffer
		if err := store.Save(&wantLabels); err != nil {
			t.Fatal(err)
		}
		d.abandon()

		if d, err = Recover(dir, Options{Fsync: SyncAlways, CheckpointEvery: 7, Logf: t.Logf}); err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		store = d.Store()
		if got := store.Epoch(); got != wantEpoch {
			t.Fatalf("round %d: recovered epoch %d, want %d", round, got, wantEpoch)
		}
		var gotLabels bytes.Buffer
		if err := store.Save(&gotLabels); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotLabels.Bytes(), wantLabels.Bytes()) {
			t.Fatalf("round %d: recovered labelling differs from the pre-crash Save output", round)
		}
		if store.Stats().PackedBytes == 0 {
			t.Fatalf("round %d: recovered store is not serving from the packed arena", round)
		}
		checkEpoch(store, "recovered")
	}
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// One last recovery after the graceful close: nothing to replay.
	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Replayed() != 0 {
		t.Fatalf("replayed %d records after graceful close", r.Replayed())
	}
	checkEpoch(r.Store(), "after close")
}
