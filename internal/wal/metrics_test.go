package wal

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// walExposition renders every registry the durable store speaks for.
func walExposition(t *testing.T, d *Durable) string {
	t.Helper()
	var b strings.Builder
	if err := obs.WriteAll(&b, d.Store().MetricsRegistries()...); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// walSample extracts one series' value, failing when it is missing.
func walSample(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		name, raw, ok := strings.Cut(line, " ")
		if ok && name == series {
			var v float64
			if _, err := fmt.Sscanf(raw, "%g", &v); err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, raw, err)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from exposition:\n%s", series, text)
	return 0
}

// TestWALMetricsExposition checks the durable layer's registry rides along
// on Store.MetricsRegistries and its series move with appends, fsyncs and
// checkpoints — and agree with DurabilityStats.
func TestWALMetricsExposition(t *testing.T) {
	d, err := Create(t.TempDir(), buildIndex(t, 30, 5), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	insertFresh(t, d.Store())
	insertFresh(t, d.Store())
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	text := walExposition(t, d)
	st := d.DurabilityStats()
	if got := walSample(t, text, "dynhl_wal_records_total"); got != float64(st.Records) {
		t.Errorf("records_total %g, DurabilityStats says %d", got, st.Records)
	}
	if got := walSample(t, text, "dynhl_wal_appended_bytes_total"); got != float64(st.Bytes) {
		t.Errorf("appended_bytes_total %g, DurabilityStats says %d", got, st.Bytes)
	}
	if got := walSample(t, text, "dynhl_wal_fsyncs_total"); got < 2 {
		t.Errorf("fsyncs_total %g, want >= 2 under SyncAlways", got)
	}
	if got := walSample(t, text, "dynhl_wal_checkpoints_total"); got != 1 {
		t.Errorf("checkpoints_total %g, want 1", got)
	}
	if got := walSample(t, text, "dynhl_wal_durable_epoch"); got != 2 {
		t.Errorf("durable_epoch %g, want 2", got)
	}
	if got := walSample(t, text, "dynhl_wal_checkpoint_epoch"); got != 2 {
		t.Errorf("checkpoint_epoch %g, want 2", got)
	}
	for _, h := range []string{"dynhl_wal_append_seconds_count", "dynhl_wal_fsync_seconds_count", "dynhl_wal_checkpoint_seconds_count"} {
		if got := walSample(t, text, h); got < 1 {
			t.Errorf("%s = %g, want >= 1", h, got)
		}
	}
}

// TestRecoveryMetricsAdvance checks the package-wide recovery counters: a
// crash with a torn tail bumps recoveries, torn tails and replayed
// records on the store recovered afterwards.
func TestRecoveryMetricsAdvance(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 30, 7), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	insertFresh(t, d.Store())
	d.abandon()

	recoveriesBefore := recoveriesTotal.Load()
	replayedBefore := replayedTotal.Load()

	d2, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := recoveriesTotal.Load() - recoveriesBefore; got != 1 {
		t.Errorf("recoveries_total advanced by %d, want 1", got)
	}
	if got := replayedTotal.Load() - replayedBefore; got != 1 {
		t.Errorf("replayed_records_total advanced by %d, want 1 (the unreplayed append)", got)
	}
	text := walExposition(t, d2)
	if got := walSample(t, text, "dynhl_wal_recoveries_total"); got < 1 {
		t.Errorf("recoveries_total %g on /metrics, want >= 1", got)
	}
}
