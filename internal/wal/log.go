package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	dynhl "repro"
)

// Policy selects when the log fsyncs appended records.
type Policy int

const (
	// SyncAlways fsyncs every append before it returns: a published epoch
	// is durable, kill -9 loses nothing. The default.
	SyncAlways Policy = iota
	// SyncInterval fsyncs at most once per interval: bounded data loss
	// (the unsynced tail) for much cheaper appends.
	SyncInterval
	// SyncOff never fsyncs from the log; durability rides on checkpoints
	// and the OS page cache.
	SyncOff
)

// ParsePolicy maps the -fsync flag values onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// segExt is the log segment suffix; segments are named by the first epoch
// they may contain, zero-padded so lexical order is epoch order.
const segExt = ".wal"

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", first, segExt))
}

// segment is one log file: records with epochs in [first, next segment's
// first - 1] (the active segment runs to the last appended epoch).
type segment struct {
	first uint64
	path  string
}

// listSegments returns dir's segments in epoch order.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segExt) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognised segment file %q", name)
		}
		segs = append(segs, segment{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Log is the append side of the write-ahead log: one active segment file
// receiving framed records, rotated on checkpoint or when it outgrows the
// size threshold. Appends are serialised by an internal mutex; all other
// coordination (which epochs to append) is the caller's.
type Log struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	size      int64
	segFirst  uint64 // epoch the active segment is named by
	lastEpoch uint64 // last appended epoch (segFirst-1 when empty)
	pending   bool   // appended records not yet fsynced

	policy   Policy
	interval time.Duration
	segMax   int64

	// poisoned is set when a failed append could not be rolled back: the
	// active segment may end in partial or duplicate-epoch bytes that a
	// replay would refuse, so the log fails stop rather than appending
	// records no recovery could reach.
	poisoned bool

	// counters behind DurabilityStats, guarded by mu
	records  uint64
	bytes    uint64
	syncs    uint64
	lastSync time.Time
	durable  uint64 // highest epoch known fsynced
	segCount int

	// m receives append/fsync timings; set once by the owning Durable
	// before the log is used, nil for logs opened without one (tests).
	m *walMetrics

	buf []byte // frame scratch, reused across appends
}

// openLog opens (creating if needed) the segment named first for appending.
// durable seeds the durable-epoch watermark: everything the caller already
// recovered from disk is durable by definition.
func openLog(dir string, first, durable uint64, policy Policy, interval time.Duration, segMax int64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(segPath(dir, first), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	// The segment's directory entry (and the log directory's own entry in
	// its parent) must be durable before any acked append can rely on the
	// file existing after a crash.
	if err := syncDir(dir); err == nil {
		err = syncDir(filepath.Dir(dir))
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	count := len(segs)
	if st.Size() == 0 { // fresh segment not in the listing yet
		exists := false
		for _, s := range segs {
			if s.first == first {
				exists = true
			}
		}
		if !exists {
			count++
		}
	}
	return &Log{
		dir:       dir,
		f:         f,
		size:      st.Size(),
		segFirst:  first,
		lastEpoch: first - 1,
		policy:    policy,
		interval:  interval,
		segMax:    segMax,
		durable:   durable,
		segCount:  count,
	}, nil
}

// Append writes the record publishing epoch and applies the fsync policy,
// returning the encoded frame size. When it returns nil under SyncAlways,
// the record is durable. A failed write or sync is rolled back by
// truncating the segment to its pre-append size — the caller aborts the
// publish and may retry the same epoch against a clean tail; if even the
// truncation fails, the log poisons itself and refuses further appends
// rather than writing records past bytes a replay would refuse.
func (l *Log) Append(epoch uint64, ops []dynhl.Op) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned {
		return 0, fmt.Errorf("wal: log is poisoned by an earlier unrolled-back append failure; restart to recover")
	}
	start := time.Now()
	frame, err := appendRecord(l.buf[:0], epoch, ops)
	if err != nil {
		return 0, err
	}
	l.buf = frame[:0]
	prevLast := l.lastEpoch
	wrote, err := l.f.Write(frame)
	l.size += int64(wrote) // whatever landed, complete or not
	if err == nil {
		l.lastEpoch = epoch // before the sync: it advances the durable mark
		l.pending = true
		switch l.policy {
		case SyncAlways:
			err = l.syncLocked()
		case SyncInterval:
			if time.Since(l.lastSync) >= l.interval {
				err = l.syncLocked()
			}
		}
	}
	if err != nil {
		l.lastEpoch = prevLast
		l.rollbackLocked(int64(wrote))
		return 0, fmt.Errorf("wal: appending record for epoch %d: %w", epoch, err)
	}
	l.records++
	l.bytes += uint64(len(frame))
	if l.m != nil {
		l.m.append.Since(start)
	}
	if l.size >= l.segMax {
		// The record is already durable, so a publish must not fail on
		// this housekeeping: a rotation error leaves the oversized segment
		// active and the next append retries.
		_ = l.rotateLocked()
	}
	return len(frame), nil
}

// rollbackLocked undoes a failed append: the segment is truncated back to
// the bytes preceding it, so the tail stays exactly the last complete
// record (O_APPEND writes land at the file's end, so a retry reuses the
// reclaimed space). Failure to truncate poisons the log (fail stop).
func (l *Log) rollbackLocked(wrote int64) {
	if wrote == 0 {
		return
	}
	if err := l.f.Truncate(l.size - wrote); err != nil {
		l.poisoned = true
		return
	}
	l.size -= wrote
}

// Sync fsyncs any unsynced appends, advancing the durable watermark.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.pending {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.m != nil {
		l.m.fsync.Since(start)
	}
	l.pending = false
	l.syncs++
	l.lastSync = time.Now()
	l.durable = l.lastEpoch
	return nil
}

// Rotate syncs and closes the active segment and starts a fresh one for the
// next epoch. Rotating an empty segment is a no-op.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if l.size == 0 {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	// The new segment is opened (and made durable) before the old one is
	// given up: any failure leaves the old segment active and the log
	// fully usable.
	next := l.lastEpoch + 1
	f, err := os.OpenFile(segPath(l.dir, next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("wal: opening segment for epoch %d: %w", next, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		// The created-but-abandoned file must not stay behind: Truncate
		// infers a segment's epoch range from its successor's name, and a
		// stale empty segment would shrink the old segment's apparent
		// range, letting a later truncation delete live records. If it
		// cannot be removed, fail stop.
		if rerr := os.Remove(segPath(l.dir, next)); rerr != nil {
			l.poisoned = true
		}
		return err
	}
	// Best-effort close: the old segment's bytes are already synced.
	_ = l.f.Close()
	l.f = f
	l.size = 0
	l.segFirst = next
	l.segCount++
	return nil
}

// Truncate removes closed segments whose every record is at or below
// upto — they are covered by a checkpoint no recovery will reach past.
func (l *Log) Truncate(upto uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, s := range segs {
		if s.first >= l.segFirst {
			break // the active segment is never removed
		}
		// A closed segment's records end where the next segment begins.
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1].first - 1
		} else {
			end = l.lastEpoch
		}
		if end > upto {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: removing covered segment: %w", err)
		}
		l.segCount--
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// statsInto fills the log's counters of a DurabilityStats.
func (l *Log) statsInto(st *dynhl.DurabilityStats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st.Records = l.records
	st.Bytes = l.bytes
	st.Syncs = l.syncs
	st.LastSync = l.lastSync
	st.DurableEpoch = l.durable
	st.Segments = l.segCount
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
