package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	dynhl "repro"
	"repro/internal/arena"
)

// samplePairs returns a deterministic spread of query pairs over n vertices.
func samplePairs(n int) []dynhl.Pair {
	var pairs []dynhl.Pair
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 7 {
			pairs = append(pairs, dynhl.Pair{U: uint32(u), V: uint32(v)})
		}
	}
	return pairs
}

// newestCheckpoint returns the path of dir's newest checkpoint file.
func newestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) == 0 {
		t.Fatalf("listing checkpoints: %v (%d found)", err, len(cks))
	}
	return cks[0].path
}

// TestCheckpointV2RoundTrip pins the on-disk pick — checkpoints of the
// undirected oracle are written in the mappable HLWCKPT2 layout — and the
// copy-in decode of that layout.
func TestCheckpointV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 60, 1)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	path := newestCheckpoint(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(ckptMagicV2)]) != ckptMagicV2 {
		t.Fatalf("checkpoint magic %q, want %q", data[:len(ckptMagicV2)], ckptMagicV2)
	}
	st, err := decodeCheckpoint(data, path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.v2 {
		t.Fatal("decode did not flag the v2 layout")
	}
	back, err := rebuildIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samplePairs(60) {
		if got, want := back.Query(p.U, p.V), idx.Query(p.U, p.V); got != want {
			t.Fatalf("rebuilt Query(%d,%d) = %d, want %d", p.U, p.V, got, want)
		}
	}
}

// TestCheckpointV2CorruptionRejected pins the CRC's coverage: damage
// anywhere outside the label entry arenas is caught; damage inside them
// is not (the CRC skips the spans so a mapped boot never faults the entry
// pages — checkpoints are node-local trusted state, see checkpoint_v2.go).
func TestCheckpointV2CorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 60, 2)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	d.abandon()

	path := newestCheckpoint(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeCheckpoint(data, path)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	nspans := le.Uint32(data[len(data)-8:])
	if nspans != 1 {
		t.Fatalf("undirected checkpoint carries %d spans, want 1", nspans)
	}
	spanOff := int64(le.Uint64(data[len(data)-8-16:]))
	spanLen := int64(le.Uint64(data[len(data)-8-8:]))
	if spanLen == 0 {
		t.Fatal("empty entry span")
	}

	flip := func(at int64) []byte {
		c := append([]byte(nil), data...)
		c[at] ^= 0xff
		return c
	}
	// Headers, graph bytes, offsets: all caught.
	for _, at := range []int64{int64(len(ckptMagicV2)) + 3, 40, st.labelsOff + 5, spanOff - 1} {
		if _, err := decodeCheckpoint(flip(at), path); err == nil {
			t.Fatalf("corruption at offset %d not detected", at)
		}
	}
	// The span table itself is covered too (it sits after the spans).
	if _, err := decodeCheckpoint(flip(int64(len(data))-8-16), path); err == nil {
		t.Fatal("span-table corruption not detected")
	}
	// Inside the entry arena: deliberately not covered.
	if _, err := decodeCheckpoint(flip(spanOff+spanLen/2), path); err != nil {
		t.Fatalf("entry-arena bytes must be outside the CRC, got %v", err)
	}
	// An implausible span count is damage, not an allocation request.
	huge := append([]byte(nil), data...)
	le.PutUint32(huge[len(huge)-8:], maxCkptSpans+1)
	if _, err := decodeCheckpoint(huge, path); err == nil {
		t.Fatal("implausible span count accepted")
	}
}

// writeV1Checkpoint writes a checkpoint in the legacy HLWCKPT1 layout —
// what every release before the mappable format produced — so tests can
// pin that v1 state remains recoverable forever.
func writeV1Checkpoint(t *testing.T, dir string, epoch uint64, src checkpointable) {
	t.Helper()
	g := src.Graph()
	le := binary.LittleEndian
	buf := append([]byte(nil), ckptMagic...)
	buf = le.AppendUint64(buf, epoch)
	buf = le.AppendUint64(buf, uint64(g.NumVertices()))
	buf = le.AppendUint64(buf, 8+8*g.NumEdges())
	buf = appendGraphSection(buf, g)
	lenAt := len(buf)
	buf = le.AppendUint64(buf, 0)
	if err := src.Save(sliceWriter{&buf}); err != nil {
		t.Fatal(err)
	}
	le.PutUint64(buf[lenAt:], uint64(len(buf)-lenAt-8))
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := os.WriteFile(ckptPath(dir, epoch), buf, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverV1Checkpoint pins backward compatibility: a data directory
// whose newest checkpoint is the legacy v1 layout recovers under every
// mmap mode — the mapped boot quietly falls back to the copy-in load.
func TestRecoverV1Checkpoint(t *testing.T) {
	idx := buildIndex(t, 50, 3)
	for _, mode := range []MapMode{MapAuto, MapOn, MapOff} {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
		writeV1Checkpoint(t, dir, 0, idx)
		opts := quietOpts(t)
		opts.Mmap = mode
		d, err := Recover(dir, opts)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		st := d.Store().Stats()
		if st.MappedBytes != 0 {
			t.Fatalf("mode %d: v1 recovery reports MappedBytes=%d, want 0", mode, st.MappedBytes)
		}
		for _, p := range samplePairs(50) {
			if got, want := d.Store().Query(p.U, p.V), idx.Query(p.U, p.V); got != want {
				t.Fatalf("mode %d: Query(%d,%d) = %d, want %d", mode, p.U, p.V, got, want)
			}
		}
		d.Close()
	}
}

// TestRecoverMappedMatchesCopyIn is the recovery differential: the same
// data directory — checkpoint plus a live log tail from a simulated
// crash — recovered mapped and copy-in must agree on the epoch, every
// sampled distance, and the byte-exact serialised labelling.
func TestRecoverMappedMatchesCopyIn(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	dir := t.TempDir()
	idx := buildIndex(t, 80, 4)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	rng := rand.New(rand.NewSource(4))
	mirror := store.Unwrap().(*dynhl.Index).Graph().Fork()
	for i := 0; i < 6; i++ {
		if _, err := store.Apply(randomOps(rng, mirror, 3)); err != nil {
			t.Fatal(err)
		}
	}
	d.abandon() // crash: recovery must replay the tail onto the mapped boot

	dirCopy := t.TempDir()
	copyTree(t, dir, dirCopy)

	mappedOpts := quietOpts(t)
	mappedOpts.Mmap = MapOn
	dm, err := Recover(dir, mappedOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	copyOpts := quietOpts(t)
	copyOpts.Mmap = MapOff
	dc, err := Recover(dirCopy, copyOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	if got, want := dm.Store().Epoch(), dc.Store().Epoch(); got != want {
		t.Fatalf("mapped recovery at epoch %d, copy-in at %d", got, want)
	}
	if mb := dm.Store().Stats().MappedBytes; mb == 0 {
		t.Fatal("mapped recovery reports MappedBytes=0")
	}
	if mb := dc.Store().Stats().MappedBytes; mb != 0 {
		t.Fatalf("copy-in recovery reports MappedBytes=%d, want 0", mb)
	}
	n := dm.Store().NumVertices()
	for _, p := range samplePairs(n) {
		if got, want := dm.Store().Query(p.U, p.V), dc.Store().Query(p.U, p.V); got != want {
			t.Fatalf("Query(%d,%d): mapped %d, copy-in %d", p.U, p.V, got, want)
		}
	}
	var bm, bc bytes.Buffer
	if err := dm.Store().Save(&bm); err != nil {
		t.Fatal(err)
	}
	if err := dc.Store().Save(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bm.Bytes(), bc.Bytes()) {
		t.Fatal("mapped and copy-in recoveries serialise differently")
	}
}

// TestMappedDifferentialUnderChurn drives identical op batches through a
// mapped-boot store and a copy-in store, with concurrent readers hammering
// the mapped one, and checks every epoch publishes the identical state:
// sampled distances agree and the serialised labelling is byte-identical.
// Run under -race this also exercises the mapped arena against the delta
// repack's chunk migration.
func TestMappedDifferentialUnderChurn(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	dir := t.TempDir()
	idx := buildIndex(t, 80, 5)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	dirCopy := t.TempDir()
	copyTree(t, dir, dirCopy)

	mappedOpts := quietOpts(t)
	mappedOpts.Mmap = MapOn
	dm, err := Recover(dir, mappedOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	copyOpts := quietOpts(t)
	copyOpts.Mmap = MapOff
	dc, err := Recover(dirCopy, copyOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	sm, sc := dm.Store(), dc.Store()
	if sm.Stats().MappedBytes == 0 {
		t.Fatal("mapped store reports MappedBytes=0")
	}

	// Concurrent readers on the mapped store: every query runs against a
	// pinned snapshot while churn migrates chunks off the mapping.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := sm.Snapshot()
			n := v.NumVertices()
			for u := 0; u < n; u += 11 {
				v.Query(uint32(u), uint32((u*7+1)%n))
			}
		}
	}()

	rng := rand.New(rand.NewSource(5))
	mirror := sm.Unwrap().(*dynhl.Index).Graph().Fork()
	for i := 0; i < 10; i++ {
		ops := randomOps(rng, mirror, 3)
		if _, err := sm.Apply(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Apply(ops); err != nil {
			t.Fatal(err)
		}
		if sm.Epoch() != sc.Epoch() {
			t.Fatalf("epoch diverged: mapped %d, copy-in %d", sm.Epoch(), sc.Epoch())
		}
		n := sm.NumVertices()
		for _, p := range samplePairs(n) {
			if got, want := sm.Query(p.U, p.V), sc.Query(p.U, p.V); got != want {
				t.Fatalf("epoch %d: Query(%d,%d): mapped %d, copy-in %d", sm.Epoch(), p.U, p.V, got, want)
			}
		}
		var bm, bc bytes.Buffer
		if err := sm.Save(&bm); err != nil {
			t.Fatal(err)
		}
		if err := sc.Save(&bc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bm.Bytes(), bc.Bytes()) {
			t.Fatalf("epoch %d: serialised labellings differ", sm.Epoch())
		}
	}
	close(stop)
	<-done
}

// TestMappedViewOutlivesCheckpointPruning is the use-after-unmap guard: a
// View pinned on a mapped boot keeps answering correctly after churn and
// checkpointing have unlinked the very file it is served from — unlinking
// does not invalidate a mapping, and the snapshot chain keeps the mapping
// reachable. Once every reference is dropped, the finalizer unmaps.
func TestMappedViewOutlivesCheckpointPruning(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	dir := t.TempDir()
	idx := buildIndex(t, 80, 6)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	opts := quietOpts(t)
	opts.Mmap = MapOn
	d, err = Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	if store.Stats().MappedBytes == 0 {
		t.Fatal("mapped recovery reports MappedBytes=0")
	}
	bootCkpt := newestCheckpoint(t, dir)

	// Pin the boot snapshot and record its answers.
	view := store.Snapshot()
	pairs := samplePairs(view.NumVertices())
	want := view.QueryBatch(pairs)

	// Churn plus checkpoints until pruning unlinks the boot checkpoint
	// (ckptKeep newer ones supersede it).
	rng := rand.New(rand.NewSource(6))
	mirror := store.Unwrap().(*dynhl.Index).Graph().Fork()
	for i := 0; i < ckptKeep+1; i++ {
		if _, err := store.Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(bootCkpt); !os.IsNotExist(err) {
		t.Fatalf("boot checkpoint %s still present after pruning (err %v)", bootCkpt, err)
	}

	// The pinned view still serves the unlinked file's pages.
	got := view.QueryBatch(pairs)
	for i := range pairs {
		if got[i] != want[i] {
			t.Fatalf("pinned view Query(%d,%d) = %d after pruning, want %d",
				pairs[i].U, pairs[i].V, got[i], want[i])
		}
	}

	// Drop every reference; the GC must eventually reclaim the mapping
	// (reachability is the refcount — see internal/arena).
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	view, store, d, mirror = nil, nil, nil, nil
	_ = view
	_ = store
	_ = d
	_ = mirror
	deadline := time.Now().Add(15 * time.Second)
	for arena.Mappings() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d mappings still live after releasing every reference", arena.Mappings())
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRebuildImageMapped pins the follower bootstrap path: rebuilding a
// shipped v2 image under MapAuto serves the labels from an unlinked temp
// spill, answers identically to the copy-in rebuild, and MapOff still
// takes the heap route.
func TestRebuildImageMapped(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 60, 7)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	d.abandon()
	img, err := os.ReadFile(newestCheckpoint(t, dir))
	if err != nil {
		t.Fatal(err)
	}

	plain, epochP, err := RebuildImage(img)
	if err != nil {
		t.Fatal(err)
	}
	mapped, epochM, err := RebuildImageMapped(img, MapAuto)
	if err != nil {
		t.Fatal(err)
	}
	if epochP != epochM {
		t.Fatalf("epochs differ: %d vs %d", epochP, epochM)
	}
	if arena.Supported() {
		if mapped.Stats().MappedBytes == 0 {
			t.Fatal("MapAuto rebuild on a supported platform reports MappedBytes=0")
		}
	} else if mapped.Stats().MappedBytes != 0 {
		t.Fatal("MapAuto rebuild on an unsupported platform must fall back")
	}
	for _, p := range samplePairs(60) {
		if got, want := mapped.Query(p.U, p.V), plain.Query(p.U, p.V); got != want {
			t.Fatalf("Query(%d,%d): mapped %d, plain %d", p.U, p.V, got, want)
		}
	}
	off, _, err := RebuildImageMapped(img, MapOff)
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats().MappedBytes != 0 {
		t.Fatalf("MapOff rebuild reports MappedBytes=%d", off.Stats().MappedBytes)
	}

	// Errors still surface: a corrupted image is rejected, not mapped.
	bad := append([]byte(nil), img...)
	bad[20] ^= 0xff
	_, _, err = RebuildImageMapped(bad, MapAuto)
	if err == nil {
		t.Fatal("corrupted image accepted")
	}
	if errors.Is(err, dynhl.ErrNotMappable) {
		t.Fatal("corruption must not masquerade as not-mappable")
	}
}
