package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	dynhl "repro"
)

// abandon kills the background worker without flushing or checkpointing —
// the test stand-in for a crashed process: whatever is on disk is all a
// recovery gets.
func (d *Durable) abandon() {
	if d.closed.CompareAndSwap(false, true) {
		close(d.stop)
		d.wg.Wait()
	}
}

// quietOpts silences recovery warnings in tests that expect them.
func quietOpts(t *testing.T) Options {
	t.Helper()
	return Options{Logf: t.Logf}
}

// buildIndex returns a small random connected oracle and its seed graph.
func buildIndex(t *testing.T, n int, seed int64) *dynhl.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dynhl.NewGraph(n)
	g.EnsureVertex(uint32(n - 1))
	for v := 1; v < n; v++ {
		g.MustAddEdge(uint32(v), uint32(rng.Intn(v))) // random tree: connected
	}
	for i := 0; i < n; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// randomOps returns a batch of valid mutations against mirror, applying
// them to mirror as it goes so later ops stay valid.
func randomOps(rng *rand.Rand, mirror *dynhl.Graph, k int) []dynhl.Op {
	var ops []dynhl.Op
	for len(ops) < k {
		n := mirror.NumVertices()
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		switch rng.Intn(4) {
		case 0, 1: // insert a missing edge
			if u != v && !mirror.HasEdge(u, v) {
				mirror.MustAddEdge(u, v)
				ops = append(ops, dynhl.InsertEdgeOp(u, v, 0))
			}
		case 2: // delete a present edge
			if u != v && mirror.HasEdge(u, v) && mirror.Degree(u) > 1 && mirror.Degree(v) > 1 {
				if err := mirror.RemoveEdge(u, v); err == nil {
					ops = append(ops, dynhl.DeleteEdgeOp(u, v))
				}
			}
		case 3: // insert a vertex joined to two existing ones
			if u != v {
				id := mirror.AddVertex()
				mirror.MustAddEdge(id, u)
				mirror.MustAddEdge(id, v)
				ops = append(ops, dynhl.InsertVertexOp(dynhl.Arcs(u, v)...))
			}
		}
	}
	return ops
}

// freshEdge returns an edge absent from the store's current graph, so an
// InsertEdgeOp built from it always applies whatever the build seed was.
func freshEdge(t *testing.T, store *dynhl.Store) (uint32, uint32) {
	t.Helper()
	g := store.Unwrap().(*dynhl.Index).Graph()
	n := uint32(g.NumVertices())
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	t.Fatal("graph is complete")
	return 0, 0
}

// insertFresh applies a one-op batch inserting a currently missing edge.
func insertFresh(t *testing.T, store *dynhl.Store) {
	t.Helper()
	u, v := freshEdge(t, store)
	if _, err := store.Apply([]dynhl.Op{dynhl.InsertEdgeOp(u, v, 0)}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	batches := [][]dynhl.Op{
		{dynhl.InsertEdgeOp(1, 2, 0)},
		{dynhl.DeleteEdgeOp(7, 9), dynhl.DeleteVertexOp(3)},
		{dynhl.InsertVertexOp(dynhl.Arc{To: 5}, dynhl.Arc{To: 6, W: 3, In: true})},
		{}, // empty batch records are legal at the codec level
	}
	var buf []byte
	var err error
	for i, ops := range batches {
		buf, err = appendRecord(buf, uint64(i+1), ops)
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range batches {
		rec, next, err := decodeRecord(buf, off)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.epoch != uint64(i+1) {
			t.Fatalf("record %d: epoch %d", i, rec.epoch)
		}
		if len(rec.ops) != len(want) {
			t.Fatalf("record %d: %d ops, want %d", i, len(rec.ops), len(want))
		}
		for j, op := range rec.ops {
			if op.Kind != want[j].Kind || op.U != want[j].U || op.V != want[j].V || op.W != want[j].W || len(op.Arcs) != len(want[j].Arcs) {
				t.Fatalf("record %d op %d: got %+v want %+v", i, j, op, want[j])
			}
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestCreateRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 40, 1)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	if _, err := store.Apply([]dynhl.Op{dynhl.InsertVertexOp(dynhl.Arcs(0, 7)...)}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply([]dynhl.Op{dynhl.InsertEdgeOp(3, 40, 0)}); err != nil {
		t.Fatal(err)
	}
	wantEpoch := store.Epoch()
	var wantLabels bytes.Buffer
	if err := store.Save(&wantLabels); err != nil {
		t.Fatal(err)
	}
	d.abandon() // crash: no Close, no final checkpoint

	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if got := r.Replayed(); got != 2 {
		t.Fatalf("replayed %d records, want 2", got)
	}
	var gotLabels bytes.Buffer
	if err := r.Store().Save(&gotLabels); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLabels.Bytes(), wantLabels.Bytes()) {
		t.Fatal("recovered labelling differs from the pre-crash one")
	}
	if err := r.Store().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNoState(t *testing.T) {
	if _, err := Recover(t.TempDir(), quietOpts(t)); !errors.Is(err, ErrNoState) {
		t.Fatalf("got %v, want ErrNoState", err)
	}
	if _, err := Recover(filepath.Join(t.TempDir(), "missing"), quietOpts(t)); !errors.Is(err, ErrNoState) {
		t.Fatalf("got %v, want ErrNoState for a missing directory", err)
	}
}

func TestCreateRefusesUncheckpointable(t *testing.T) {
	g := dynhl.NewGraph(4)
	g.EnsureVertex(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	dg := dynhl.NewDigraph(4)
	for i := 0; i < 4; i++ {
		dg.AddVertex()
	}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}} {
		if _, err := dg.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := dynhl.BuildDirected(dg, dynhl.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(t.TempDir(), idx, quietOpts(t)); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("directed oracle: got %v, want ErrUnsupported", err)
	}
}

// TestTornTail truncates the final record at every possible byte boundary
// and checks recovery drops exactly that record, keeping every epoch whose
// append completed.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 30, 2)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	insertFresh(t, store)
	seg := activeSegment(t, dir)
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	insertFresh(t, store)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	d.abandon()

	for cut := len(whole) + 1; cut < len(full); cut++ {
		t.Run("", func(t *testing.T) {
			dir2 := t.TempDir()
			copyTree(t, dir, dir2)
			if err := os.WriteFile(filepath.Join(dir2, "wal", filepath.Base(seg)), full[:cut], 0o666); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(dir2, quietOpts(t))
			if err != nil {
				t.Fatalf("cut at %d bytes: %v", cut, err)
			}
			defer r.abandon()
			if got := r.Epoch(); got != 1 {
				t.Fatalf("cut at %d bytes: epoch %d, want 1 (second record torn)", cut, got)
			}
			// The torn bytes must be gone: a fresh recovery replays cleanly.
			if data, err := os.ReadFile(filepath.Join(dir2, "wal", filepath.Base(seg))); err != nil || len(data) != len(whole) {
				t.Fatalf("cut at %d: torn tail not truncated (now %d bytes, want %d; err %v)", cut, len(data), len(whole), err)
			}
		})
	}
}

// TestCorruptRecord flips bytes inside completed records and checks
// recovery refuses instead of replaying damaged data.
func TestCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 30, 3)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	for i := 0; i < 3; i++ {
		insertFresh(t, store)
	}
	seg := activeSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	d.abandon()

	for name, corrupt := range map[string]func([]byte) []byte{
		"payload byte of the first record": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[frameHeader+4] ^= 0xff
			return c
		},
		"crc of a middle record": func(b []byte) []byte {
			_, second, err := decodeRecord(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			c := append([]byte(nil), b...)
			c[second+5] ^= 0xff
			return c
		},
		"implausible length mid-log": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0], c[1], c[2], c[3] = 0xff, 0xff, 0xff, 0x7f
			return c
		},
		"crc of the final record": func(b []byte) []byte {
			_, second, err := decodeRecord(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, third, err := decodeRecord(b, second)
			if err != nil {
				t.Fatal(err)
			}
			c := append([]byte(nil), b...)
			c[third+5] ^= 0xff
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir2 := t.TempDir()
			copyTree(t, dir, dir2)
			if err := os.WriteFile(filepath.Join(dir2, "wal", filepath.Base(seg)), corrupt(full), 0o666); err != nil {
				t.Fatal(err)
			}
			if _, err := Recover(dir2, quietOpts(t)); err == nil {
				t.Fatal("recovered over corrupted log data")
			} else if !strings.Contains(err.Error(), "refusing") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// TestCheckpointTruncatesLog checks a checkpoint rotates the log, prunes
// superseded segments once two checkpoints cover them, and that recovery
// after a crash replays only the tail.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 40, 4)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	insertFresh(t, store)
	insertFresh(t, store)
	if _, err := d.Checkpoint(); err != nil { // checkpoint #2 (after the base)
		t.Fatal(err)
	}
	insertFresh(t, store)
	if _, err := d.Checkpoint(); err != nil { // checkpoint #3: base pruned, first segment covered
		t.Fatal(err)
	}
	insertFresh(t, store)

	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != ckptKeep {
		t.Fatalf("%d checkpoints on disk, want %d", len(cks), ckptKeep)
	}
	segs, err := listSegments(walDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Records 1-2 are covered by both retained checkpoints; their segment
	// must be gone. The tail (record 4) must survive.
	if len(segs) == 0 || segs[0].first <= 2 {
		t.Fatalf("segments %+v still include fully covered records", segs)
	}
	wantEpoch := store.Epoch()
	d.abandon()

	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if got := r.Replayed(); got != 1 {
		t.Fatalf("replayed %d records, want 1 (just the post-checkpoint tail)", got)
	}
}

// TestRecoverFallsBackToOlderCheckpoint damages the newest checkpoint and
// checks recovery uses the previous one plus a longer replay.
func TestRecoverFallsBackToOlderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 40, 5)
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	insertFresh(t, store)
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertFresh(t, store)
	wantEpoch := store.Epoch()
	d.abandon()

	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(cks[0].path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if got := r.Replayed(); got != 2 {
		t.Fatalf("replayed %d records, want 2 (full tail over the older checkpoint)", got)
	}
	if err := r.Store().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseCheckpointsCleanly checks a graceful shutdown leaves nothing to
// replay and a closed store refuses further publishes.
func TestCloseCheckpointsCleanly(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 30, 6), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	insertFresh(t, store)
	wantEpoch := store.Epoch()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	u, v := freshEdge(t, store)
	if _, err := store.Apply([]dynhl.Op{dynhl.InsertEdgeOp(u, v, 0)}); err == nil {
		t.Fatal("closed durable store accepted a publish")
	}
	if got := store.Epoch(); got != wantEpoch {
		t.Fatalf("refused publish advanced the epoch to %d", got)
	}

	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Replayed(); got != 0 {
		t.Fatalf("replayed %d records after a clean close, want 0", got)
	}
	if got := r.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
}

// TestLoadPublishesDurably checks an epoch published without an op batch
// (Store.Load) survives a crash via its synchronous checkpoint.
func TestLoadPublishesDurably(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 30, 7)
	var labels bytes.Buffer
	if err := idx.Save(&labels); err != nil {
		t.Fatal(err)
	}
	d, err := Create(dir, idx, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	store := d.Store()
	if err := store.Load(bytes.NewReader(labels.Bytes())); err != nil {
		t.Fatal(err)
	}
	wantEpoch := store.Epoch()
	d.abandon()

	r, err := Recover(dir, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d (the Load publish)", got, wantEpoch)
	}
	if got := r.Replayed(); got != 0 {
		t.Fatalf("replayed %d records, want 0 (the Load was checkpointed)", got)
	}
}

func TestStatsSurface(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 30, 8), quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	store := d.Store()
	insertFresh(t, store)
	st := store.Stats()
	if st.Epoch != 1 {
		t.Fatalf("stats epoch %d, want 1", st.Epoch)
	}
	if st.Durability == nil {
		t.Fatal("store with attached WAL reports no durability stats")
	}
	ds := *st.Durability
	if ds.Records != 1 || ds.Bytes == 0 {
		t.Fatalf("durability stats %+v: want 1 record and nonzero bytes", ds)
	}
	if ds.DurableEpoch != 1 {
		t.Fatalf("durable epoch %d, want 1 under SyncAlways", ds.DurableEpoch)
	}
	if ds.Syncs == 0 || ds.LastSync.IsZero() {
		t.Fatalf("durability stats %+v: want fsync evidence under SyncAlways", ds)
	}
	if ds.Segments == 0 {
		t.Fatalf("durability stats %+v: want at least one live segment", ds)
	}
}

// activeSegment returns the newest segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(walDir(dir))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return segs[len(segs)-1].path
}

// copyTree copies the durable directory so tests can damage a private copy.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"always", SyncAlways},
		{"interval", SyncInterval},
		{"off", SyncOff},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("parsed an unknown policy")
	}
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown policy stringer: %q", s)
	}
}

// TestOpenBootPaths checks Open builds fresh state on an empty directory
// and recovers on a populated one — never calling build twice.
func TestOpenBootPaths(t *testing.T) {
	dir := t.TempDir()
	builds := 0
	build := func() (dynhl.Oracle, error) {
		builds++
		return buildIndex(t, 30, 9), nil
	}
	d, err := Open(dir, build, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("fresh Open called build %d times, want 1", builds)
	}
	insertFresh(t, d.Store())
	wantEpoch := d.Epoch()
	d.abandon()

	d2, err := Open(dir, build, quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if builds != 1 {
		t.Fatalf("recovering Open called build again (%d calls)", builds)
	}
	if got := d2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}

	if _, err := Open(dir, func() (dynhl.Oracle, error) {
		return nil, errors.New("boom")
	}, quietOpts(t)); err != nil {
		t.Fatalf("Open with state must not need build: %v", err)
	}
}

// TestAutoCheckpoint checks the background checkpointer fires after
// CheckpointEvery records and truncates what it supersedes.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 30, 11), Options{CheckpointEvery: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	store := d.Store()
	for i := 0; i < 2; i++ {
		insertFresh(t, store)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.DurabilityStats().CheckpointEpoch < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after %d records (stats %+v)", 2, d.DurabilityStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIntervalFlusher checks the background fsync under SyncInterval
// advances the durable watermark without further appends.
func TestIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, buildIndex(t, 30, 12), Options{
		Fsync:         SyncInterval,
		FsyncInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	insertFresh(t, d.Store()) // first append syncs (lastSync is zero)...
	insertFresh(t, d.Store()) // ...the second rides the interval, unsynced
	deadline := time.Now().Add(10 * time.Second)
	for d.DurabilityStats().DurableEpoch < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flusher never synced the tail (stats %+v)", d.DurabilityStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAppendFailureRollsBack checks a failed append never leaves bytes for
// a replay to trip over: with the file forced to fail (closed underneath),
// the append errors, and when not even truncation can clean up, the log
// poisons itself and refuses further appends instead of writing records
// past a damaged tail.
func TestAppendFailureRollsBack(t *testing.T) {
	lg, err := openLog(t.TempDir(), 1, 0, SyncAlways, time.Second, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(1, []dynhl.Op{dynhl.InsertEdgeOp(0, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	lg.f.Close() // force writes (and truncates) to fail
	if _, err := lg.Append(2, []dynhl.Op{dynhl.InsertEdgeOp(1, 2, 0)}); err == nil {
		t.Fatal("append on a dead file reported success")
	}
	// Nothing landed (the write itself failed), so the log stays clean.
	if lg.poisoned {
		t.Fatal("zero-byte append failure poisoned the log")
	}
	if lg.lastEpoch != 1 {
		t.Fatalf("failed append advanced lastEpoch to %d", lg.lastEpoch)
	}
	// The poison path proper: bytes landed but the truncate cannot undo
	// them (dead file again) — the log must fail stop.
	lg.mu.Lock()
	lg.size += 10
	lg.rollbackLocked(10)
	lg.mu.Unlock()
	if !lg.poisoned {
		t.Fatal("unrollable partial append did not poison the log")
	}
	if _, err := lg.Append(3, nil); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("append on a poisoned log: got %v, want poisoned fail-stop", err)
	}
}

// TestAttachDurabilityRefusesFallback checks the Store rejects a durability
// layer in the non-forkable fallback mode, where a refused commit could not
// roll the in-place batch back.
func TestAttachDurabilityRefusesFallback(t *testing.T) {
	store := dynhl.NewStore(opaque{buildIndex(t, 20, 13)})
	var d dynhl.Durability = &Durable{}
	if err := store.AttachDurability(d); err == nil {
		t.Fatal("fallback-mode store accepted a durability layer")
	}
}

// opaque hides the concrete index type, forcing the Store's fallback mode.
type opaque struct{ dynhl.Oracle }
