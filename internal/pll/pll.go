// Package pll implements pruned landmark labelling (Akiba, Iwata, Yoshida;
// SIGMOD 2013) — a full 2-hop cover distance labelling — together with the
// incremental update algorithm of their follow-up work (WWW 2014), the
// IncPLL baseline of the IncHL+ paper. Faithful to that baseline, the
// incremental update only adds or modifies entries and never removes
// outdated or redundant ones, so the labelling loses minimality and grows
// as the graph is updated (Section 6.1.2 of Farhan & Wang).
package pll

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/queue"
)

// Entry is one 2-hop label entry: a hub (identified by its rank in the
// degree-descending vertex order) and the exact distance to it at
// construction time. After incremental updates an entry's distance may be
// stale (an upper bound); queries remain exact because every shortened pair
// gains fresh entries.
type Entry struct {
	Hub uint32     // hub rank
	D   graph.Dist // distance to the hub (exact at insertion time)
}

// EntryBytes is the storage charged per label entry (4-byte hub + 4-byte
// distance), matching common compact PLL encodings.
const EntryBytes = 8

// Index is a pruned landmark labelling over a graph.
// It is not safe for concurrent use.
type Index struct {
	G     *graph.Graph
	Order []uint32 // rank -> vertex, degree descending
	Rank  []uint32 // vertex -> rank
	L     [][]Entry

	// scratch
	tmpDist []graph.Dist
	q       queue.PairQueue
}

// Build constructs the labelling with one pruned BFS per vertex in
// degree-descending order.
func Build(g *graph.Graph) *Index {
	n := g.NumVertices()
	idx := &Index{
		G:     g,
		Order: make([]uint32, n),
		Rank:  make([]uint32, n),
		L:     make([][]Entry, n),
	}
	for i := range idx.Order {
		idx.Order[i] = uint32(i)
	}
	sort.Slice(idx.Order, func(i, j int) bool {
		di, dj := g.Degree(idx.Order[i]), g.Degree(idx.Order[j])
		if di != dj {
			return di > dj
		}
		return idx.Order[i] < idx.Order[j]
	})
	for r, v := range idx.Order {
		idx.Rank[v] = uint32(r)
	}
	idx.tmpDist = make([]graph.Dist, n)
	for i := range idx.tmpDist {
		idx.tmpDist[i] = graph.Inf
	}
	visited := make([]bool, n)
	var order []uint32
	for r := 0; r < n; r++ {
		root := idx.Order[r]
		order = order[:0]
		idx.q.Reset()
		idx.q.Push(queue.Pair{V: root, D: 0})
		visited[root] = true
		order = append(order, root)
		for !idx.q.Empty() {
			p := idx.q.Pop()
			if idx.queryWithTmp(uint32(r), p.V) <= p.D {
				continue // pruned: already covered by higher-ranked hubs
			}
			idx.L[p.V] = append(idx.L[p.V], Entry{Hub: uint32(r), D: p.D})
			for _, w := range idx.G.Neighbors(p.V) {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
					idx.q.Push(queue.Pair{V: w, D: p.D + 1})
				}
			}
		}
		for _, v := range order {
			visited[v] = false
		}
	}
	return idx
}

// queryWithTmp returns the 2-hop distance between hub rank r's vertex and v
// using the labels built so far. Because every already-processed hub h with
// rank < r has its entry in L(root) only implicitly (the root's own label is
// also under construction), the standard trick applies: d(root, v) =
// min over entries (h,d) of L(v) with a matching entry in L(root), plus the
// in-progress entries of L(root) itself.
func (idx *Index) queryWithTmp(r uint32, v uint32) graph.Dist {
	root := idx.Order[r]
	return idx.queryVertices(root, v)
}

// Query returns the exact distance between u and v.
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	return idx.queryVertices(u, v)
}

// queryVertices merges the sorted hub lists of u and v.
func (idx *Index) queryVertices(u, v uint32) graph.Dist {
	lu, lv := idx.L[u], idx.L[v]
	best := graph.Inf
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].Hub == lv[j].Hub:
			if t := graph.AddDist(lu[i].D, lv[j].D); t < best {
				best = t
			}
			i++
			j++
		case lu[i].Hub < lv[j].Hub:
			i++
		default:
			j++
		}
	}
	// The hub may be u or v itself: rank(u) appears in L(u) with distance 0
	// by construction, so the merge above already covers those cases.
	return best
}

// InsertEdge applies the WWW 2014 incremental update for an inserted edge
// (a,b): resume a pruned BFS from b for every hub of a, and from a for
// every hub of b, adding or tightening entries where the current labelling
// overestimates. Entries are never removed.
func (idx *Index) InsertEdge(a, b uint32) error {
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return fmt.Errorf("pll: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return fmt.Errorf("pll: insert (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("pll: edge (%d,%d) already exists", a, b)
	}
	if _, err := g.AddEdge(a, b); err != nil {
		return err
	}
	// Snapshot the hub lists: resumes append to labels.
	hubsA := append([]Entry(nil), idx.L[a]...)
	hubsB := append([]Entry(nil), idx.L[b]...)
	for _, e := range hubsA {
		idx.resume(e.Hub, b, graph.AddDist(e.D, 1))
	}
	for _, e := range hubsB {
		idx.resume(e.Hub, a, graph.AddDist(e.D, 1))
	}
	return nil
}

// resume restarts the pruned BFS of hub rank r at vertex start with the
// given depth.
func (idx *Index) resume(r uint32, start uint32, depth graph.Dist) {
	n := idx.G.NumVertices()
	visited := make(map[uint32]bool, 16)
	idx.q.Reset()
	idx.q.Push(queue.Pair{V: start, D: depth})
	visited[start] = true
	_ = n
	for !idx.q.Empty() {
		p := idx.q.Pop()
		if idx.queryWithTmp(r, p.V) <= p.D {
			continue
		}
		idx.setEntry(p.V, r, p.D)
		for _, w := range idx.G.Neighbors(p.V) {
			if !visited[w] {
				visited[w] = true
				idx.q.Push(queue.Pair{V: w, D: p.D + 1})
			}
		}
	}
}

// setEntry adds or tightens the entry for hub rank r in L(v), keeping the
// list sorted by hub rank. Existing larger distances are overwritten (the
// baseline "modifies existing entries"); stale entries for other hubs stay.
func (idx *Index) setEntry(v uint32, r uint32, d graph.Dist) {
	l := idx.L[v]
	i := sort.Search(len(l), func(i int) bool { return l[i].Hub >= r })
	if i < len(l) && l[i].Hub == r {
		if d < l[i].D {
			l[i].D = d
		}
		return
	}
	l = append(l, Entry{})
	copy(l[i+1:], l[i:])
	l[i] = Entry{Hub: r, D: d}
	idx.L[v] = l
}

// NumEntries returns the total number of label entries.
func (idx *Index) NumEntries() int64 {
	var n int64
	for _, l := range idx.L {
		n += int64(len(l))
	}
	return n
}

// Bytes returns the storage charged for the labelling.
func (idx *Index) Bytes() int64 { return idx.NumEntries() * EntryBytes }

// AvgLabelSize returns entries per vertex.
func (idx *Index) AvgLabelSize() float64 {
	if len(idx.L) == 0 {
		return 0
	}
	return float64(idx.NumEntries()) / float64(len(idx.L))
}
