package pll

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestBuildQueryMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := testutil.RandomGraph(50, 90, seed)
		idx := Build(g)
		oracle := testutil.AllPairsOracle(g)
		for u := 0; u < 50; u++ {
			for v := 0; v < 50; v++ {
				if got := idx.Query(uint32(u), uint32(v)); got != oracle[u][v] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, u, v, got, oracle[u][v])
				}
			}
		}
	}
}

func TestBuildSelfEntries(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 20, 1)
	idx := Build(g)
	for v := uint32(0); v < 20; v++ {
		if d, ok := entryFor(idx, v, idx.Rank[v]); !ok || d != 0 {
			t.Errorf("vertex %d lacks its own hub entry: %d,%v", v, d, ok)
		}
	}
}

func entryFor(idx *Index, v uint32, hub uint32) (graph.Dist, bool) {
	for _, e := range idx.L[v] {
		if e.Hub == hub {
			return e.D, true
		}
	}
	return graph.Inf, false
}

func TestIncrementalInsertKeepsQueriesExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomGraph(40, 70, 50+seed)
		idx := Build(g)
		for i, e := range testutil.NonEdges(g, 20, seed*13+1) {
			if err := idx.InsertEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d insert %d: %v", seed, i, err)
			}
			oracle := testutil.AllPairsOracle(g)
			for u := 0; u < 40; u++ {
				for v := 0; v < 40; v++ {
					if got := idx.Query(uint32(u), uint32(v)); got != oracle[u][v] {
						t.Fatalf("seed %d after insert %d: Query(%d,%d): got %d, want %d",
							seed, i, u, v, got, oracle[u][v])
					}
				}
			}
		}
	}
}

func TestIncrementalNeverShrinksLabelling(t *testing.T) {
	// The baseline's defining pathology: entries are never removed, so the
	// labelling size is monotonically non-decreasing under insertions.
	g := testutil.RandomConnectedGraph(50, 80, 9)
	idx := Build(g)
	prev := idx.NumEntries()
	for _, e := range testutil.NonEdges(g, 30, 2) {
		if err := idx.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		cur := idx.NumEntries()
		if cur < prev {
			t.Fatalf("labelling shrank: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestIncrementalGrowsBeyondMinimal(t *testing.T) {
	// After enough insertions the maintained labelling must be strictly
	// larger than a fresh rebuild — the redundancy IncHL+ eliminates and
	// IncPLL keeps (Section 6.1.2 of the IncHL+ paper).
	g := testutil.RandomConnectedGraph(60, 90, 33)
	idx := Build(g)
	for _, e := range testutil.NonEdges(g, 40, 4) {
		if err := idx.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fresh := Build(g)
	if idx.NumEntries() < fresh.NumEntries() {
		t.Fatalf("incremental %d entries < rebuilt %d", idx.NumEntries(), fresh.NumEntries())
	}
	if idx.NumEntries() == fresh.NumEntries() {
		t.Logf("note: no redundancy accumulated on this instance (%d entries)", idx.NumEntries())
	}
}

func TestInsertEdgeErrors(t *testing.T) {
	g := testutil.RandomConnectedGraph(10, 5, 3)
	idx := Build(g)
	if err := idx.InsertEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := idx.InsertEdge(0, 99); err == nil {
		t.Error("unknown vertex must be rejected")
	}
	e := testutil.NonEdges(g, 1, 1)[0]
	if err := idx.InsertEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(e[0], e[1]); err == nil {
		t.Error("duplicate edge must be rejected")
	}
}

func TestQuickInsertStreamStaysExact(t *testing.T) {
	f := func(seed int64) bool {
		g := testutil.RandomGraph(25, 35, seed)
		idx := Build(g)
		for _, e := range testutil.NonEdges(g, 8, seed+5) {
			if err := idx.InsertEdge(e[0], e[1]); err != nil {
				return false
			}
		}
		oracle := testutil.AllPairsOracle(g)
		for u := 0; u < 25; u++ {
			for v := 0; v < 25; v++ {
				if idx.Query(uint32(u), uint32(v)) != oracle[u][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesAndAvg(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 30, 2)
	idx := Build(g)
	if idx.Bytes() != idx.NumEntries()*EntryBytes {
		t.Error("Bytes must charge EntryBytes per entry")
	}
	if idx.AvgLabelSize() <= 0 {
		t.Error("AvgLabelSize must be positive")
	}
}
