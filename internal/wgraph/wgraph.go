// Package wgraph provides the positively-weighted undirected graph
// substrate for the weighted extension of IncHL+ (Section 5 of Farhan &
// Wang, EDBT 2021), together with the Dijkstra primitives that replace BFS
// there. Weights are integral and at least 1, which keeps the
// shortest-path DAG acyclic across equal-distance vertices.
package wgraph

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Arc is one weighted adjacency entry.
type Arc struct {
	To uint32
	W  graph.Dist // ≥ 1
}

// Graph is an undirected, positively-weighted dynamic graph.
type Graph struct {
	adj   [][]Arc
	edges uint64

	// shared is non-nil only on forks: a set bit means that adjacency
	// list's backing array still belongs to the parent and is copied before
	// the first mutation (see Fork).
	shared *bitset.Set
}

// New returns an empty weighted graph with capacity hints for n vertices.
func New(n int) *Graph { return &Graph{adj: make([][]Arc, 0, n)} }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() uint64 { return g.edges }

// AddVertex appends a new isolated vertex and returns its id.
func (g *Graph) AddVertex() uint32 {
	g.adj = append(g.adj, nil)
	if g.shared != nil {
		g.shared.Grow(len(g.adj)) // new bits are clear: the fork owns new vertices
	}
	return uint32(len(g.adj) - 1)
}

// HasVertex reports whether v exists.
func (g *Graph) HasVertex(v uint32) bool { return int(v) < len(g.adj) }

// Neighbors returns the weighted adjacency of v (owned by the graph).
func (g *Graph) Neighbors(v uint32) []Arc { return g.adj[v] }

// Weight returns the weight of edge (u,v), or 0 if absent.
func (g *Graph) Weight(u, v uint32) graph.Dist {
	if int(u) >= len(g.adj) {
		return 0
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.W
		}
	}
	return 0
}

// HasEdge reports whether edge (u,v) exists.
func (g *Graph) HasEdge(u, v uint32) bool { return g.Weight(u, v) != 0 }

// AddEdge inserts the undirected edge (u,v) with weight w ≥ 1, reporting
// whether it was new.
func (g *Graph) AddEdge(u, v uint32, w graph.Dist) (bool, error) {
	if u == v {
		return false, graph.ErrSelfLoop
	}
	if w < 1 || w == graph.Inf {
		return false, fmt.Errorf("wgraph: edge (%d,%d): weight %d out of range", u, v, w)
	}
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false, fmt.Errorf("%w: edge (%d,%d) with %d vertices", graph.ErrVertexUnknown, u, v, len(g.adj))
	}
	if g.HasEdge(u, v) {
		return false, nil
	}
	g.own(u)
	g.own(v)
	g.adj[u] = append(g.adj[u], Arc{To: v, W: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, W: w})
	g.edges++
	return true, nil
}

// RemoveEdge deletes the undirected edge (u,v), returning its weight. It
// returns graph.ErrSelfLoop for u == v, graph.ErrVertexUnknown when either
// endpoint does not exist and graph.ErrEdgeUnknown when the edge is not
// present.
func (g *Graph) RemoveEdge(u, v uint32) (graph.Dist, error) {
	if u == v {
		return 0, graph.ErrSelfLoop
	}
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return 0, fmt.Errorf("%w: edge (%d,%d) with %d vertices", graph.ErrVertexUnknown, u, v, len(g.adj))
	}
	if !g.HasEdge(u, v) {
		return 0, fmt.Errorf("%w: (%d,%d)", graph.ErrEdgeUnknown, u, v)
	}
	g.own(u)
	g.own(v)
	w, _ := removeArc(&g.adj[u], v)
	removeArc(&g.adj[v], u)
	g.edges--
	return w, nil
}

// Fork returns a copy-on-write copy: adjacency headers are copied (O(|V|))
// while every neighbour list's backing array stays shared with g until the
// fork first mutates it. Mutating the fork never writes to memory reachable
// from g; g must be treated as frozen afterwards (snapshot discipline).
func (g *Graph) Fork() *Graph {
	return &Graph{
		adj:    append([][]Arc(nil), g.adj...),
		edges:  g.edges,
		shared: bitset.NewAllSet(len(g.adj)),
	}
}

// own makes adj[v] writable on a fork, copying the shared backing array on
// first touch.
func (g *Graph) own(v uint32) {
	if g.shared == nil || !g.shared.Get(v) {
		return
	}
	g.adj[v] = append(make([]Arc, 0, len(g.adj[v])+1), g.adj[v]...)
	g.shared.Clear(v)
}

// removeArc deletes the arc to x from *list (swap with last; adjacency
// order is unspecified), returning its weight and whether it was present.
func removeArc(list *[]Arc, x uint32) (graph.Dist, bool) {
	l := *list
	for i, a := range l {
		if a.To == x {
			w := a.W
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return w, true
		}
	}
	return 0, false
}

// MustAddEdge inserts (u,v,w), growing the vertex set as needed.
func (g *Graph) MustAddEdge(u, v uint32, w graph.Dist) bool {
	for uint32(len(g.adj)) <= max(u, v) {
		g.AddVertex()
	}
	ok, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return ok
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Arc, len(g.adj)), edges: g.edges}
	for v, as := range g.adj {
		if len(as) > 0 {
			c.adj[v] = append([]Arc(nil), as...)
		}
	}
	return c
}

// Item is a priority-queue element.
type Item struct {
	V uint32
	D graph.Dist
}

// PQ is a binary min-heap of Items ordered by distance. PushItem and
// PopItem sift by hand instead of going through container/heap: boxing an
// Item into the interface argument of heap.Push allocates on every push,
// which would put an allocation inside the Dijkstra inner loop.
type PQ []Item

func (p PQ) Len() int { return len(p) }

// PushItem inserts it, keeping the heap order.
func (p *PQ) PushItem(it Item) {
	h := append(*p, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].D <= h[i].D {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*p = h
}

// PopItem removes and returns the minimum-distance item.
func (p *PQ) PopItem() Item {
	h := *p
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].D < h[small].D {
			small = l
		}
		if r < n && h[r].D < h[small].D {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*p = h
	return top
}

// Reset empties the heap, keeping its capacity.
func (p *PQ) Reset() { *p = (*p)[:0] }

// QuerySpace is the per-query scratch of the bounded bidirectional Dijkstra
// (Sparsified): two distance vectors whose entries are graph.Inf between
// queries, the touched list used to restore them sparsely, and the two
// priority-queue buffers. Mirrors bfs.QuerySpace for the weighted searches;
// a steady-state query allocates nothing.
type QuerySpace struct {
	DistU, DistV []graph.Dist
	Touched      []uint32
	pqU, pqV     PQ
}

// SpacePool hands out query scratch sized for at least n vertices, giving
// every in-flight query its own buffers so queries stay safe for any number
// of concurrent readers.
type SpacePool struct {
	pool sync.Pool
}

// Get returns a QuerySpace covering n vertices, distance entries all
// graph.Inf.
func (sp *SpacePool) Get(n int) *QuerySpace {
	s, _ := sp.pool.Get().(*QuerySpace)
	if s == nil {
		s = &QuerySpace{}
	}
	if len(s.DistU) < n {
		s.DistU = make([]graph.Dist, n)
		s.DistV = make([]graph.Dist, n)
		for i := 0; i < n; i++ {
			s.DistU[i] = graph.Inf
			s.DistV[i] = graph.Inf
		}
	}
	return s
}

// Put returns s to the pool; its distance entries must be graph.Inf again,
// which Sparsified guarantees on return.
func (sp *SpacePool) Put(s *QuerySpace) { sp.pool.Put(s) }

// Dijkstra computes the distances from src into dist (length NumVertices),
// returning the vertices it settled in non-decreasing distance order.
func (g *Graph) Dijkstra(src uint32, dist []graph.Dist) []uint32 {
	for i := range dist {
		dist[i] = graph.Inf
	}
	order := make([]uint32, 0, 64)
	var pq PQ
	dist[src] = 0
	pq.PushItem(Item{V: src, D: 0})
	for pq.Len() > 0 {
		it := pq.PopItem()
		if it.D != dist[it.V] {
			continue // stale entry
		}
		order = append(order, it.V)
		for _, a := range g.adj[it.V] {
			if nd := graph.AddDist(it.D, a.W); nd < dist[a.To] {
				dist[a.To] = nd
				pq.PushItem(Item{V: a.To, D: nd})
			}
		}
	}
	return order
}

// Dist returns the exact distance between u and v (test oracle).
func (g *Graph) Dist(u, v uint32) graph.Dist {
	dist := make([]graph.Dist, g.NumVertices())
	g.Dijkstra(u, dist)
	return dist[v]
}

// Sparsified runs a bounded bidirectional Dijkstra between u and v on the
// subgraph excluding vertices for which avoid reports true (endpoints
// exempt), returning the distance or graph.Inf when it exceeds bound.
// s carries all scratch: distance vectors of length ≥ NumVertices whose
// entries must all be graph.Inf on entry (restored sparsely on return) and
// the two priority-queue buffers. A steady-state query allocates nothing.
func (g *Graph) Sparsified(u, v uint32, bound graph.Dist, avoid func(uint32) bool, s *QuerySpace) graph.Dist {
	if u == v {
		return 0
	}
	if bound == 0 {
		return graph.Inf
	}
	distU, distV := s.DistU, s.DistV
	touched := s.Touched[:0]
	defer func() {
		for _, x := range touched {
			distU[x] = graph.Inf
			distV[x] = graph.Inf
		}
		s.Touched = touched // keep the grown capacity
	}()
	pqU, pqV := s.pqU[:0], s.pqV[:0]
	defer func() { s.pqU, s.pqV = pqU[:0], pqV[:0] }()
	distU[u] = 0
	distV[v] = 0
	touched = append(touched, u, v)
	pqU.PushItem(Item{V: u, D: 0})
	pqV.PushItem(Item{V: v, D: 0})
	best := graph.Inf
	if bound != graph.Inf {
		best = bound + 1
	}
	topU, topV := graph.Dist(0), graph.Dist(0)
	for pqU.Len() > 0 && pqV.Len() > 0 {
		if best != graph.Inf && graph.AddDist(topU, topV) >= best {
			break // settled radii already cover every candidate below best
		}
		if topU <= topV {
			topU = settle(g, &pqU, distU, distV, u, v, avoid, &best, &touched)
		} else {
			topV = settle(g, &pqV, distV, distU, v, u, avoid, &best, &touched)
		}
	}
	if bound != graph.Inf && best > bound {
		return graph.Inf
	}
	return best
}

// settle pops one vertex from the side rooted at src and relaxes its edges,
// recording meets with the opposite side. Distance entries are graph.Inf
// for undiscovered vertices; every first discovery is appended to touched
// so the caller can restore sparsely.
func settle(g *Graph, pq *PQ, dist, other []graph.Dist, src, dst uint32, avoid func(uint32) bool, best *graph.Dist, touched *[]uint32) graph.Dist {
	for pq.Len() > 0 {
		it := pq.PopItem()
		if dist[it.V] != it.D {
			continue // stale entry
		}
		if avoid != nil && it.V != src && avoid(it.V) {
			return it.D // settled but not expanded: removed vertex
		}
		for _, a := range g.adj[it.V] {
			if avoid != nil && a.To != dst && a.To != src && avoid(a.To) {
				continue
			}
			nd := graph.AddDist(it.D, a.W)
			if nd < dist[a.To] {
				if dist[a.To] == graph.Inf {
					*touched = append(*touched, a.To)
				}
				dist[a.To] = nd
				pq.PushItem(Item{V: a.To, D: nd})
				if od := other[a.To]; od != graph.Inf {
					if t := graph.AddDist(nd, od); t < *best {
						*best = t
					}
				}
			}
		}
		return it.D
	}
	return graph.Inf
}
