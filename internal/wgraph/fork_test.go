package wgraph

import "testing"

// TestForkIsolation pins the copy-on-write contract on the weighted
// substrate: fork mutations never change the parent's weighted adjacency.
func TestForkIsolation(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 4; i++ {
		if _, err := g.AddEdge(i, i+1, 2+i); err != nil {
			t.Fatal(err)
		}
	}
	want := make([][]Arc, 5)
	for v := uint32(0); v < 5; v++ {
		want[v] = append([]Arc(nil), g.Neighbors(v)...)
	}
	wantEdges := g.NumEdges()

	f := g.Fork()
	if _, err := f.AddEdge(0, 4, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}

	for v := uint32(0); v < 5; v++ {
		got := g.Neighbors(v)
		if len(got) != len(want[v]) {
			t.Fatalf("parent adjacency of %d changed: %v != %v", v, got, want[v])
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("parent adjacency of %d changed: %v != %v", v, got, want[v])
			}
		}
	}
	if g.NumEdges() != wantEdges {
		t.Fatalf("parent edge count changed: %d", g.NumEdges())
	}
	if g.Weight(0, 4) != 0 || f.Weight(0, 4) != 7 {
		t.Fatal("insert leaked into parent or missed the fork")
	}
	if g.Weight(1, 2) == 0 || f.Weight(1, 2) != 0 {
		t.Fatal("delete leaked into parent or missed the fork")
	}
}
