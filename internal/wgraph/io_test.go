package wgraph

import (
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
0 1 5
1 2
2 0 3
2 0 9
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if w := g.Weight(0, 1); w != 5 {
		t.Errorf("w(0,1): got %d, want 5", w)
	}
	if w := g.Weight(1, 2); w != 1 {
		t.Errorf("w(1,2): got %d, want 1 (missing weight defaults)", w)
	}
	if w := g.Weight(2, 0); w != 3 {
		t.Errorf("w(2,0): got %d, want 3 (duplicate dropped)", w)
	}
	if _, err := ReadEdgeList(strings.NewReader("0 1 0\n")); err == nil {
		t.Error("zero weight must fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 1 x\n")); err == nil {
		t.Error("bad weight must fail")
	}
}
