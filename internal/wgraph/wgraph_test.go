package wgraph

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	if ok, err := g.AddEdge(0, 1, 4); !ok || err != nil {
		t.Fatalf("AddEdge: %v %v", ok, err)
	}
	if _, err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop must fail")
	}
	if _, err := g.AddEdge(0, 2, 0); err == nil {
		t.Error("zero weight must fail")
	}
	if _, err := g.AddEdge(0, 2, graph.Inf); err == nil {
		t.Error("infinite weight must fail")
	}
	if _, err := g.AddEdge(0, 9, 1); err == nil {
		t.Error("unknown vertex must fail")
	}
	if ok, _ := g.AddEdge(1, 0, 7); ok {
		t.Error("duplicate must report false")
	}
	if g.Weight(0, 1) != 4 {
		t.Error("duplicate insert must not change the weight")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges: %d", g.NumEdges())
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		n := 20
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for i := 0; i < 45; i++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, 1+graph.Dist(rng.Intn(9)))
			}
		}
		src := uint32(rng.Intn(n))
		// Bellman–Ford oracle.
		want := make([]graph.Dist, n)
		for i := range want {
			want[i] = graph.Inf
		}
		want[src] = 0
		for round := 0; round < n; round++ {
			changed := false
			for u := uint32(0); u < uint32(n); u++ {
				if want[u] == graph.Inf {
					continue
				}
				for _, a := range g.Neighbors(u) {
					if nd := want[u] + a.W; nd < want[a.To] {
						want[a.To] = nd
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		got := make([]graph.Dist, n)
		g.Dijkstra(src, got)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("iter %d: dist[%d]: Dijkstra %d, Bellman-Ford %d", iter, v, got[v], want[v])
			}
		}
	}
}

func TestPQOrdering(t *testing.T) {
	var pq PQ
	for _, d := range []graph.Dist{5, 1, 9, 3, 3, 7} {
		pq.PushItem(Item{V: uint32(d), D: d})
	}
	prev := graph.Dist(0)
	for pq.Len() > 0 {
		it := pq.PopItem()
		if it.D < prev {
			t.Fatalf("heap order violated: %d after %d", it.D, prev)
		}
		prev = it.D
	}
	pq.PushItem(Item{V: 1, D: 1})
	pq.Reset()
	if pq.Len() != 0 {
		t.Error("Reset must empty the queue")
	}
}

func wscratch(n int) *QuerySpace {
	du := make([]graph.Dist, n)
	dv := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		du[i] = graph.Inf
		dv[i] = graph.Inf
	}
	return &QuerySpace{DistU: du, DistV: dv}
}

func TestSparsifiedEndpoints(t *testing.T) {
	// 0 -2- 1 -2- 2, avoiding both endpoints must still find the path.
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 2)
	avoid := func(v uint32) bool { return v == 0 || v == 2 }
	if got := g.Sparsified(0, 2, graph.Inf, avoid, wscratch(3)); got != 4 {
		t.Errorf("got %d, want 4", got)
	}
	avoidMid := func(v uint32) bool { return v == 1 }
	if got := g.Sparsified(0, 2, graph.Inf, avoidMid, wscratch(3)); got != graph.Inf {
		t.Errorf("avoiding the middle: got %d, want Inf", got)
	}
	if got := g.Sparsified(0, 2, 3, nil, wscratch(3)); got != graph.Inf {
		t.Errorf("bound 3 on distance 4: got %d, want Inf", got)
	}
	if got := g.Sparsified(0, 2, 4, nil, wscratch(3)); got != 4 {
		t.Errorf("bound 4 on distance 4: got %d", got)
	}
}

func TestRemoveEdgeWeighted(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 7)
	w, err := g.RemoveEdge(2, 1)
	if err != nil || w != 7 {
		t.Fatalf("RemoveEdge: weight %d, err %v (want 7, nil)", w, err)
	}
	if g.HasEdge(1, 2) || g.NumEdges() != 1 {
		t.Error("edge survived removal")
	}
	if _, err := g.RemoveEdge(1, 2); !errors.Is(err, graph.ErrEdgeUnknown) {
		t.Errorf("double delete: got %v, want ErrEdgeUnknown", err)
	}
	if _, err := g.RemoveEdge(0, 9); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v, want ErrVertexUnknown", err)
	}
	if _, err := g.RemoveEdge(2, 2); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v, want ErrSelfLoop", err)
	}
	if ok, err := g.AddEdge(1, 2, 9); !ok || err != nil {
		t.Fatalf("reinsert after delete: %v %v", ok, err)
	}
	if g.Weight(1, 2) != 9 {
		t.Error("reinserted weight lost")
	}
}
