package wgraph

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// ReadEdgeList parses a whitespace-separated weighted edge list in the
// graph.ForEachEdge format: one "u v w" triple per line with weight w ≥ 1;
// a missing third field means weight 1, so plain unweighted edge lists
// load too. Vertices are created as needed; duplicate edges and self-loops
// are silently dropped.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(0)
	err := graph.ForEachEdge(r, "wgraph", func(u, v uint32, extra []string) error {
		w := graph.Dist(1)
		if len(extra) > 0 {
			parsed, err := strconv.ParseUint(extra[0], 10, 32)
			if err != nil || parsed == 0 {
				return fmt.Errorf("bad weight %q", extra[0])
			}
			w = graph.Dist(parsed)
		}
		for !g.HasVertex(max(u, v)) {
			g.AddVertex()
		}
		_, err := g.AddEdge(u, v, w)
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
