// Decremental repair (DecHL) for the directed variant. A directed edge a→b
// affects landmark r's forward labels only when it lies on the forward
// shortest-path DAG (d(r→a) + 1 = d(r→b)) and its backward labels only when
// it lies on the backward DAG (d(b→r) + 1 = d(a→r)), so the affected test
// is four labelled lookups per landmark. Each affected (landmark,
// direction) pair is repaired by a rebuild pass, the same covered-flag BFS
// used at construction, which also drops entries and resets highway cells
// of vertices that the deletion made unreachable.

package dhcl

import (
	"fmt"

	"repro/internal/fanout"
	"repro/internal/graph"
)

// DeleteEdge removes the directed edge a→b and repairs both label sets.
// Deleting an edge that does not exist is an error (graph.ErrEdgeUnknown).
func (idx *Index) DeleteEdge(a, b uint32) (Stats, error) {
	var st Stats
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("dhcl: delete (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("dhcl: delete (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if !g.HasEdge(a, b) {
		return st, fmt.Errorf("dhcl: delete (%d,%d): %w", a, b, graph.ErrEdgeUnknown)
	}
	st.LandmarksTotal = idx.k

	var fwdAffected, backAffected []uint16
	for r := 0; r < idx.k; r++ {
		if da := idx.DistF(uint16(r), a); da != graph.Inf && graph.AddDist(da, 1) == idx.DistF(uint16(r), b) {
			fwdAffected = append(fwdAffected, uint16(r))
		} else {
			st.PassesSkipped++
		}
		if db := idx.DistB(uint16(r), b); db != graph.Inf && graph.AddDist(db, 1) == idx.DistB(uint16(r), a) {
			backAffected = append(backAffected, uint16(r))
		} else {
			st.PassesSkipped++
		}
	}

	if err := g.RemoveEdge(a, b); err != nil {
		return st, fmt.Errorf("dhcl: delete (%d,%d): %w", a, b, err)
	}
	if len(fwdAffected)+len(backAffected) > 0 {
		// Serial repair order: all forward passes, then all backward ones.
		tasks := make([]passTask, 0, len(fwdAffected)+len(backAffected))
		for _, r := range fwdAffected {
			tasks = append(tasks, passTask{r, true})
		}
		for _, r := range backAffected {
			tasks = append(tasks, passTask{r, false})
		}
		idx.rebuildPasses(fanout.Resolve(idx.Workers), tasks, &st)
	}
	return st, nil
}

// DeleteVertex disconnects vertex v by deleting all of its outgoing and
// incoming edges. The id survives as an isolated vertex; deleting a
// landmark is rejected.
func (idx *Index) DeleteVertex(v uint32) (Stats, error) {
	var agg Stats
	g := idx.G
	if !g.HasVertex(v) {
		return agg, fmt.Errorf("dhcl: delete vertex %d: %w", v, graph.ErrVertexUnknown)
	}
	if idx.rankArr[v] != noRank {
		return agg, fmt.Errorf("dhcl: delete vertex %d: cannot delete a landmark", v)
	}
	agg.LandmarksTotal = idx.k
	del := func(x, y uint32) error {
		st, err := idx.DeleteEdge(x, y)
		if err != nil {
			return err
		}
		agg.PassesSkipped += st.PassesSkipped
		agg.AffectedForward += st.AffectedForward
		agg.AffectedBack += st.AffectedBack
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
		return nil
	}
	for _, w := range append([]uint32(nil), g.Out(v)...) {
		if err := del(v, w); err != nil {
			return agg, err
		}
	}
	for _, w := range append([]uint32(nil), g.In(v)...) {
		if err := del(w, v); err != nil {
			return agg, err
		}
	}
	return agg, nil
}
