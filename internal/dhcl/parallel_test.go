package dhcl

import (
	"testing"

	"repro/internal/digraph"
)

// buildAt rebuilds the same directed fixture from scratch (graphs are
// mutated by updates, so every worker-count run gets its own copy) and
// pins the index to the given repair fan-out.
func buildAt(t *testing.T, n, m int, seed int64, k, workers int) (*digraph.Digraph, *Index) {
	t.Helper()
	g := randomDigraph(n, m, seed)
	idx, err := BuildParallel(g, topLandmarks(g, k), workers)
	if err != nil {
		t.Fatal(err)
	}
	idx.Workers = workers
	return g, idx
}

// runMixedD drives the same insert/delete arc stream through idx; every
// third inserted arc is deleted again so both repair paths execute.
func runMixedD(t *testing.T, idx *Index, arcs [][2]uint32) []Stats {
	t.Helper()
	var log []Stats
	for i, e := range arcs {
		st, err := idx.InsertEdge(e[0], e[1])
		if err != nil {
			t.Fatalf("insert %d (%d,%d): %v", i, e[0], e[1], err)
		}
		log = append(log, st)
		if i%3 == 2 {
			st, err := idx.DeleteEdge(e[0], e[1])
			if err != nil {
				t.Fatalf("delete %d (%d,%d): %v", i, e[0], e[1], err)
			}
			log = append(log, st)
		}
	}
	return log
}

// TestBuildParallelMatchesSerial pins that the parallel construction is
// byte-identical to the serial one for any worker count.
func TestBuildParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomDigraph(70, 240, seed)
		serial, err := Build(g, topLandmarks(g, 5))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 0} {
			g2 := randomDigraph(70, 240, seed)
			par, err := BuildParallel(g2, topLandmarks(g2, 5), w)
			if err != nil {
				t.Fatal(err)
			}
			if err := serial.EqualLabels(par); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestParallelRepairMatchesSerial pins the directed repair engine's
// contract: per-op Stats and the final labelling (labels + both highway
// halves) are identical to the serial path for any worker count.
func TestParallelRepairMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		gs, serial := buildAt(t, 60, 200, seed, 4, 1)
		arcs := nonEdges(gs, 15, seed*31+7)
		want := runMixedD(t, serial, arcs)

		for _, w := range []int{2, 0} {
			_, par := buildAt(t, 60, 200, seed, 4, w)
			got := runMixedD(t, par, arcs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: op %d stats diverged: got %+v, want %+v",
						seed, w, i, got[i], want[i])
				}
			}
			if err := serial.EqualLabels(par); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := par.VerifyCover(); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestPackParallelMatchesSerial pins that packing with a fan-out yields
// the same packed form (entries, bytes, every label) as serial packing.
func TestPackParallelMatchesSerial(t *testing.T) {
	gs, serial := buildAt(t, 60, 200, 5, 4, 1)
	arcs := nonEdges(gs, 9, 42)
	runMixedD(t, serial, arcs)
	serial.Pack()

	_, par := buildAt(t, 60, 200, 5, 4, 4)
	runMixedD(t, par, arcs)
	par.Pack()

	for _, side := range []struct {
		name string
		s, p interface{ NumEntries() int64 }
	}{
		{"forward", serial.PackedForward(), par.PackedForward()},
		{"backward", serial.PackedBackward(), par.PackedBackward()},
	} {
		if side.s.NumEntries() != side.p.NumEntries() {
			t.Fatalf("%s: packed entries diverged: serial %d, parallel %d",
				side.name, side.s.NumEntries(), side.p.NumEntries())
		}
	}
	if err := serial.EqualLabels(par); err != nil {
		t.Fatal(err)
	}
}
