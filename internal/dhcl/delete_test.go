package dhcl

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// arcsOf snapshots the current directed edge set.
func arcsOf(g *digraph.Digraph) [][2]uint32 {
	var out [][2]uint32
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(uint32(u)) {
			out = append(out, [2]uint32{uint32(u), v})
		}
	}
	return out
}

func TestDeleteEdgeMatchesRebuildDirected(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomDigraph(35, 90, 50+seed)
		lm := topLandmarks(g, 3+int(seed%3))
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 13))
		for i := 0; i < 20; i++ {
			arcs := arcsOf(g)
			if len(arcs) == 0 {
				break
			}
			e := arcs[rng.Intn(len(arcs))]
			if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d delete %d (%d→%d): %v", seed, i, e[0], e[1], err)
			}
			fresh, err := Build(g, lm)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.EqualLabels(fresh); err != nil {
				t.Fatalf("seed %d after delete %d (%d→%d): %v", seed, i, e[0], e[1], err)
			}
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDeleteThenReinsertDirected(t *testing.T) {
	g := randomDigraph(30, 70, 21)
	lm := topLandmarks(g, 4)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		arcs := arcsOf(g)
		e := arcs[rng.Intn(len(arcs))]
		if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.EqualLabels(fresh); err != nil {
			t.Fatalf("round trip %d diverged: %v", i, err)
		}
	}
}

func TestDeleteEdgeErrorsDirected(t *testing.T) {
	g := randomDigraph(20, 50, 7)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.DeleteEdge(0, 0); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v", err)
	}
	if _, err := idx.DeleteEdge(0, 99); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v", err)
	}
	for _, e := range nonEdges(g, 1, 3) {
		if _, err := idx.DeleteEdge(e[0], e[1]); !errors.Is(err, graph.ErrEdgeUnknown) {
			t.Errorf("missing edge: got %v", err)
		}
	}
	if _, err := idx.DeleteVertex(idx.Landmarks[0]); err == nil {
		t.Error("deleting a landmark must fail")
	}
}

func TestDeleteVertexDirected(t *testing.T) {
	g := randomDigraph(25, 60, 14)
	lm := topLandmarks(g, 3)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	var v uint32
	for v = 0; ; v++ {
		if _, isL := idx.Rank(v); !isL && (g.OutDegree(v) > 0 || g.InDegree(v) > 0) {
			break
		}
	}
	if _, err := idx.DeleteVertex(v); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
		t.Errorf("vertex %d still has edges", v)
	}
	if len(idx.Lf[v]) != 0 || len(idx.Lb[v]) != 0 {
		t.Errorf("isolated vertex kept entries: %v / %v", idx.Lf[v], idx.Lb[v])
	}
	fresh, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
}
