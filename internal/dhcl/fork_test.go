package dhcl

import (
	"testing"

	"repro/internal/digraph"
	"repro/internal/hcl"
)

func forkFixture(t *testing.T) *Index {
	t.Helper()
	g := digraph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 7; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(7, 0) // cycle keeps everything reachable both ways
	idx, err := Build(g, []uint32{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func copyLabels(ls []hcl.Label) []hcl.Label {
	out := make([]hcl.Label, len(ls))
	for v, l := range ls {
		out[v] = append(hcl.Label(nil), l...)
	}
	return out
}

// TestForkUpdateIsolation runs full IncHL+/DecHL repairs on a fork and pins
// that the parent's labels, highway and graph stay untouched while the fork
// remains exact.
func TestForkUpdateIsolation(t *testing.T) {
	idx := forkFixture(t)
	lf, lb := copyLabels(idx.Lf), copyLabels(idx.Lb)
	hf := append([]uint32(nil), idx.hf...)
	edges := idx.G.NumEdges()

	f := idx.Fork(idx.G.Fork())
	if _, err := f.InsertEdge(2, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertVertex([]uint32{1}, []uint32{5}); err != nil {
		t.Fatal(err)
	}

	for v := range lf {
		if !idx.Lf[v].Equal(lf[v]) || !idx.Lb[v].Equal(lb[v]) {
			t.Fatalf("parent labels of %d changed", v)
		}
	}
	for i := range hf {
		if idx.hf[i] != hf[i] {
			t.Fatalf("parent highway cell %d changed", i)
		}
	}
	if idx.G.NumEdges() != edges || idx.G.NumVertices() != 8 {
		t.Fatalf("parent graph changed: %d edges, %d vertices", idx.G.NumEdges(), idx.G.NumVertices())
	}
	if err := idx.VerifyCover(); err != nil {
		t.Fatalf("parent no longer verifies: %v", err)
	}
	if err := f.VerifyCover(); err != nil {
		t.Fatalf("fork does not verify: %v", err)
	}
}
