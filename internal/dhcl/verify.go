package dhcl

import (
	"fmt"

	"repro/internal/graph"
)

// VerifyCover checks both directions of the directed highway cover property
// against ground-truth BFS: DistF(r,v) = d(r→v) and DistB(r,v) = d(v→r)
// for every landmark and vertex. O(|R|·|E|); for tests and audits.
func (idx *Index) VerifyCover() error {
	n := idx.G.NumVertices()
	dist := make([]graph.Dist, n)
	for r := range idx.Landmarks {
		idx.G.Forward(idx.Landmarks[r], dist)
		for v := 0; v < n; v++ {
			if got := idx.DistF(uint16(r), uint32(v)); got != dist[v] {
				return fmt.Errorf("dhcl: forward cover violated: landmark %d to %d: label %d, BFS %d",
					idx.Landmarks[r], v, got, dist[v])
			}
		}
		idx.G.Backward(idx.Landmarks[r], dist)
		for v := 0; v < n; v++ {
			if got := idx.DistB(uint16(r), uint32(v)); got != dist[v] {
				return fmt.Errorf("dhcl: backward cover violated: %d to landmark %d: label %d, BFS %d",
					v, idx.Landmarks[r], got, dist[v])
			}
		}
	}
	return nil
}

// EqualLabels reports whether two indexes hold identical labels and
// highway, returning a descriptive error on the first difference. Used by
// tests to assert that incremental maintenance reproduces a fresh build
// exactly (minimality preservation in both directions).
func (idx *Index) EqualLabels(o *Index) error {
	if len(idx.Lf) != len(o.Lf) {
		return fmt.Errorf("dhcl: label table size differs: %d vs %d", len(idx.Lf), len(o.Lf))
	}
	for v := range idx.Lf {
		if !idx.Lf[v].Equal(o.Lf[v]) {
			return fmt.Errorf("dhcl: forward label of %d differs: %v vs %v", v, idx.Lf[v], o.Lf[v])
		}
		if !idx.Lb[v].Equal(o.Lb[v]) {
			return fmt.Errorf("dhcl: backward label of %d differs: %v vs %v", v, idx.Lb[v], o.Lb[v])
		}
	}
	if idx.k != o.k {
		return fmt.Errorf("dhcl: landmark count differs: %d vs %d", idx.k, o.k)
	}
	for i := range idx.hf {
		if idx.hf[i] != o.hf[i] {
			return fmt.Errorf("dhcl: highway cell %d differs: %d vs %d", i, idx.hf[i], o.hf[i])
		}
	}
	return nil
}
