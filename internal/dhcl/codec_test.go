package dhcl

import (
	"bytes"
	"testing"
)

// TestCodecRoundTrip pins that WriteTo → ReadIndex reproduces the directed
// labelling exactly (labels, highway, landmarks), that the loaded index
// arrives packed in both directions, and that a second save of the loaded
// index is byte-identical to the first — the checkpoint-equals-fresh-build
// guarantee.
func TestCodecRoundTrip(t *testing.T) {
	g := randomDigraph(120, 400, 41)
	idx, err := Build(g, topLandmarks(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.EqualLabels(idx); err != nil {
		t.Fatal(err)
	}
	if loaded.PackedForward() == nil || loaded.PackedBackward() == nil {
		t.Fatal("loaded index must arrive packed in both directions")
	}
	for u := uint32(0); u < 120; u += 7 {
		for v := uint32(0); v < 120; v += 11 {
			if got, want := loaded.Query(u, v), idx.Query(u, v); got != want {
				t.Fatalf("loaded Query(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-saving a loaded labelling must be byte-identical")
	}
	if err := loaded.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecRejectsCorruption pins the untrusted-stream validation: a wrong
// magic, a truncated stream and an implausible landmark count all refuse.
func TestCodecRejectsCorruption(t *testing.T) {
	g := randomDigraph(40, 120, 43)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	bad := append([]byte(nil), blob...)
	copy(bad, "XXXX")
	if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(blob[:len(blob)/2]), g); err == nil {
		t.Error("truncated stream accepted")
	}
	other := randomDigraph(41, 120, 44)
	if _, err := ReadIndex(bytes.NewReader(blob), other); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
}
