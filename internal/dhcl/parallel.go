// The parallel repair engine for the directed variant — the per-landmark
// fan-out of internal/inchl specialised to (landmark, direction) passes. A
// pass (r, fwd) writes only rank-r entries of its direction's label set and
// only cell (r,s) (forward) or (s,r) (backward) of the highway, and its
// classification reads only rank-r entries of the same direction, so passes
// are independent: each task computes a passDelta against the frozen
// pre-repair labelling, a barrier separates the fan from the merge, and the
// merge applies deltas in serial pass order — forward before backward per
// rank on insertion, all forward ranks before all backward ranks on
// rebuilds — making every worker count byte-identical to serial.
//
// Insertion highway cells apply unconditionally (the serial repair never
// reads the matrix before writing), so worker-side counters are exact.
// Rebuild passes compare against the live matrix, so their tasks emit
// candidate cells wherever the pre-merge value differs — a superset of the
// serial writes, because any pass that writes a cell writes the same new
// directed distance — and the merge re-checks each candidate, reproducing
// serial's writes and counters exactly.

package dhcl

import (
	"sync"
	"time"

	"repro/internal/fanout"
	"repro/internal/graph"
)

// labelOp is one label edit of a pass delta: set (v,r) to d, or remove the
// r-entry of v. Rank and direction are implicit — a delta belongs to one
// pass.
type labelOp struct {
	v   uint32
	d   graph.Dist
	set bool
}

// hwOp is one highway cell: d(r→s) for a forward pass, d(s→r) for a
// backward one, with the pass rank r implicit.
type hwOp struct {
	s uint16
	d graph.Dist
}

// passDelta is the buffered outcome of one (landmark, direction) task.
// added/removed/highway are worker-side counters, exact for insertion
// deltas; rebuild deltas leave them zero and let the merge count.
type passDelta struct {
	ops     []labelOp
	hw      []hwOp
	added   int
	removed int
	highway int
}

func (d *passDelta) reset() {
	d.ops = d.ops[:0]
	d.hw = d.hw[:0]
	d.added, d.removed, d.highway = 0, 0, 0
}

func (d *passDelta) setEntry(v uint32, dist graph.Dist) {
	d.ops = append(d.ops, labelOp{v: v, d: dist, set: true})
}

func (d *passDelta) removeEntry(v uint32) {
	d.ops = append(d.ops, labelOp{v: v})
}

func (d *passDelta) cell(s uint16, dist graph.Dist) {
	d.hw = append(d.hw, hwOp{s: s, d: dist})
}

// passScratch is the per-worker BFS state of rebuild passes.
type passScratch struct {
	dist  []graph.Dist
	cover []bool
}

func (s *passScratch) ensure(n int) {
	if len(s.dist) < n {
		s.dist = make([]graph.Dist, n)
		s.cover = make([]bool, n)
	}
}

var passPool = sync.Pool{New: func() any { return new(passScratch) }}

// sizeDeltas resizes the per-task delta table, preserving slice capacity
// across updates.
func (idx *Index) sizeDeltas(n int) {
	if cap(idx.deltas) < n {
		idx.deltas = append(idx.deltas[:cap(idx.deltas)], make([]passDelta, n-cap(idx.deltas))...)
	}
	idx.deltas = idx.deltas[:n]
}

// fan runs fn for every task in [0,n) across workers (pre-resolved), giving
// each worker pooled BFS scratch sized for the current graph; worker 0 uses
// the index's own rebuild scratch. fn must not mutate the index — it reads
// the frozen labelling and fills per-task deltas. Tasks are timed through
// RepairTimer when set.
func (idx *Index) fan(workers, n int, fn func(ws *passScratch, task int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	nv := idx.G.NumVertices()
	scs := make([]*passScratch, workers)
	scs[0] = &idx.del
	scs[0].ensure(nv)
	for i := 1; i < workers; i++ {
		ws := passPool.Get().(*passScratch)
		ws.ensure(nv)
		scs[i] = ws
	}
	timer := idx.RepairTimer
	fanout.Run(workers, n, func(worker, task int) {
		if timer == nil {
			fn(scs[worker], task)
			return
		}
		start := time.Now()
		fn(scs[worker], task)
		timer(time.Since(start))
	})
	for _, ws := range scs[1:] {
		passPool.Put(ws)
	}
}

// applyPassInsert applies one insertion delta: highway cells and label ops
// are definitive, so the merge writes them through and trusts the worker
// counters.
func (idx *Index) applyPassInsert(r uint16, fwd bool, d *passDelta, st *Stats) {
	for _, h := range d.hw {
		if fwd {
			idx.setHighway(r, h.s, h.d) // d(r→s) decreased
		} else {
			idx.setHighway(h.s, r, h.d) // d(s→r) decreased
		}
	}
	for _, op := range d.ops {
		idx.applyLabelOp(r, fwd, op)
	}
	st.EntriesAdded += d.added
	st.EntriesRemoved += d.removed
	st.HighwayUpdates += d.highway
}

// applyPassRebuild applies one rebuild delta (construction or decremental),
// re-checking each highway candidate against the live matrix — an
// earlier-merged pass may have already written the cell to the same new
// distance, in which case serial would not have counted it either — and
// counting everything here, single-threaded, exactly as the serial pass
// interleaved it.
func (idx *Index) applyPassRebuild(r uint16, fwd bool, d *passDelta, st *Stats) {
	for _, h := range d.hw {
		i, j := r, h.s // d(root→s)
		if !fwd {
			i, j = h.s, r // d(s→root)
		}
		if idx.Highway(i, j) != h.d {
			idx.setHighway(i, j, h.d)
			st.HighwayUpdates++
		}
	}
	for _, op := range d.ops {
		idx.applyLabelOp(r, fwd, op)
		if op.set {
			st.EntriesAdded++
		} else {
			st.EntriesRemoved++
		}
	}
}

func (idx *Index) applyLabelOp(r uint16, fwd bool, op labelOp) {
	labels := idx.Lb
	if fwd {
		labels = idx.Lf
	}
	idx.ownLabel(fwd, op.v)
	if op.set {
		labels[op.v] = labels[op.v].Set(r, op.d)
	} else {
		labels[op.v], _ = labels[op.v].Remove(r)
	}
}
