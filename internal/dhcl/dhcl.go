// Package dhcl implements the directed extension of highway cover
// labelling and IncHL+ sketched in Section 5 of Farhan & Wang (EDBT 2021):
// every vertex stores a forward label (distances from landmarks, over
// out-edges) and a backward label (distances to landmarks, over in-edges),
// the highway holds the directed landmark-to-landmark distance matrix, and
// an insertion triggers two maintenance passes per landmark — one forward
// from the edge head, one backward from the edge tail.
package dhcl

import (
	"fmt"
	"time"

	"repro/internal/arena"
	"repro/internal/bfs"
	"repro/internal/bitset"
	"repro/internal/digraph"
	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/queue"
)

// noRank marks non-landmark vertices.
const noRank = ^uint16(0)

// Index is a directed highway cover labelling Γ = (H_f, L_f, L_b).
// Queries are safe for any number of concurrent readers; mutations require
// exclusive access.
type Index struct {
	G         *digraph.Digraph
	Landmarks []uint32
	Lf        []hcl.Label // forward labels: (r, d(r→v))
	Lb        []hcl.Label // backward labels: (r, d(v→r))

	hf      []graph.Dist // k×k directed highway: hf[i*k+j] = d(ri→rj)
	k       int
	rankArr []uint16

	// sharedF/sharedB are non-nil only on forks: a set bit means that
	// direction's label backing array still belongs to the parent and is
	// copied before the first write (see Fork).
	sharedF *bitset.Set
	sharedB *bitset.Set

	// packedF/packedB are the CSR read representations of Lf and Lb,
	// non-nil only while the index is publishable (built by Pack, dropped
	// by the first label write); queries prefer them. parent remembers the
	// forked-from index until the fork's own Pack runs, which reads the
	// parent's packed forms then — not at fork time — so a fork taken
	// while its parent is still packing keeps the delta repack (see
	// hcl.Pack). Pack clears it so ancestor chains are not pinned.
	packedF, packedB *hcl.Packed
	parent           *Index

	// mapRef pins the mmap'd checkpoint this index was attached to by
	// ReadIndexMapped, if any; forks inherit it because their label slices
	// may alias the mapped bytes indefinitely (see hcl.Index.mapRef).
	mapRef *arena.Mapping

	scratch bfs.SpacePool

	// Workers bounds the per-pass fan-out of InsertEdge/DeleteEdge repairs:
	// 0 (the default) resolves to GOMAXPROCS, 1 forces the serial path, any
	// other value is used as given. Every worker count produces a
	// byte-identical labelling and identical Stats (see parallel.go).
	Workers int

	// RepairTimer, when non-nil, observes the wall time of every repair
	// pass. It is called from worker goroutines and must be safe for
	// concurrent use.
	RepairTimer func(time.Duration)

	// del is worker 0's rebuild scratch, reused across updates (mutations
	// hold exclusive access); extra workers draw pooled scratches.
	del    passScratch
	finds  []findResult
	deltas []passDelta
}

// passTask names one (landmark, direction) maintenance pass.
type passTask struct {
	rank uint16
	fwd  bool
}

// Build constructs the minimal directed labelling: per landmark one forward
// and one backward covered-flag BFS.
func Build(g *digraph.Digraph, landmarks []uint32) (*Index, error) {
	return BuildParallel(g, landmarks, 1)
}

// BuildParallel constructs the same labelling as Build, fanning the
// per-(landmark, direction) construction passes across workers
// (0 = GOMAXPROCS, 1 = serial). The result is byte-identical for every
// worker count: passes only buffer deltas against the empty labelling and a
// single-threaded merge applies them in pass order.
func BuildParallel(g *digraph.Digraph, landmarks []uint32, workers int) (*Index, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("dhcl: need at least one landmark")
	}
	seen := make(map[uint32]bool, len(landmarks))
	for _, v := range landmarks {
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("dhcl: landmark %d is not a vertex of the graph", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("dhcl: duplicate landmark %d", v)
		}
		seen[v] = true
	}
	n := g.NumVertices()
	k := len(landmarks)
	idx := &Index{
		G:         g,
		Landmarks: append([]uint32(nil), landmarks...),
		Lf:        make([]hcl.Label, n),
		Lb:        make([]hcl.Label, n),
		hf:        make([]graph.Dist, k*k),
		k:         k,
		rankArr:   make([]uint16, n),
	}
	for i := range idx.hf {
		idx.hf[i] = graph.Inf
	}
	for i := 0; i < k; i++ {
		idx.hf[i*k+i] = 0
	}
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankArr[v] = uint16(r)
	}
	tasks := make([]passTask, 0, 2*k)
	for r := 0; r < k; r++ {
		// Serial construction order: forward then backward per landmark.
		tasks = append(tasks, passTask{uint16(r), true}, passTask{uint16(r), false})
	}
	var st Stats
	idx.rebuildPasses(fanout.Resolve(workers), tasks, &st)
	return idx, nil
}

// rebuildPasses fans the covered-flag BFS of the given (landmark, direction)
// passes across workers — construction on an empty labelling, decremental
// repair after a deletion — and merges their buffered deltas in task order,
// charging each pass's changes to the matching Stats.Affected* counter.
func (idx *Index) rebuildPasses(workers int, tasks []passTask, st *Stats) {
	idx.sizeDeltas(len(tasks))
	idx.fan(workers, len(tasks), func(ws *passScratch, t int) {
		d := &idx.deltas[t]
		d.reset()
		idx.rebuildPassDelta(tasks[t].rank, tasks[t].fwd, ws, d)
	})
	for t := range tasks {
		before := st.EntriesAdded + st.EntriesRemoved + st.HighwayUpdates
		idx.applyPassRebuild(tasks[t].rank, tasks[t].fwd, &idx.deltas[t], st)
		changed := st.EntriesAdded + st.EntriesRemoved + st.HighwayUpdates - before
		if tasks[t].fwd {
			st.AffectedForward += changed
		} else {
			st.AffectedBack += changed
		}
	}
}

// rebuildPassDelta runs the covered-flag BFS of landmark rank r in one
// direction (forward over out-edges when fwd, else backward over in-edges)
// over the current graph and buffers the replacement of that direction's
// entries and highway cells — setting label entries for uncovered reachable
// vertices, removing stale ones, and resetting cells of vertices that became
// unreachable to Inf. Label edits are pre-checked against the frozen
// labelling and exact (only this pass touches rank-r entries of its
// direction); highway cells are candidates the merge re-checks. On an empty
// labelling this is the construction pass; after an edge deletion it is the
// decremental repair of one affected (landmark, direction) pair.
func (idx *Index) rebuildPassDelta(r uint16, fwd bool, ws *passScratch, d *passDelta) {
	root := idx.Landmarks[r]
	adj := idx.G.In
	if fwd {
		adj = idx.G.Out
	}
	n := idx.G.NumVertices()
	dist, covered := ws.dist[:n], ws.cover[:n]
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[root] = 0
	covered[root] = false
	q := queue.NewUint32(64)
	q.Push(root)
	for !q.Empty() {
		v := q.Pop()
		dv := dist[v]
		cv := covered[v]
		for _, w := range adj(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				covered[w] = cv || (idx.rankArr[w] != noRank && w != root)
				q.Push(w)
			case dist[w] == dv+1 && cv:
				covered[w] = true
			}
		}
	}
	labels := idx.Lb
	if fwd {
		labels = idx.Lf
	}
	for v := 0; v < len(labels); v++ {
		vv := uint32(v)
		if vv == root {
			continue
		}
		if s := idx.rankArr[vv]; s != noRank {
			i, j := r, s // d(root→s)
			if !fwd {
				i, j = s, r // d(s→root)
			}
			if idx.Highway(i, j) != dist[v] {
				d.cell(s, dist[v])
			}
			continue
		}
		if dist[v] != graph.Inf && !covered[vv] {
			if old, had := labels[vv].Get(r); !had || old != dist[v] {
				d.setEntry(vv, dist[v])
			}
		} else if _, had := labels[vv].Get(r); had {
			d.removeEntry(vv)
		}
	}
}

// Highway returns d(r_i → r_j) between landmark ranks.
func (idx *Index) Highway(i, j uint16) graph.Dist { return idx.hf[int(i)*idx.k+int(j)] }

func (idx *Index) setHighway(i, j uint16, d graph.Dist) { idx.hf[int(i)*idx.k+int(j)] = d }

// Rank returns the landmark rank of v, if any.
func (idx *Index) Rank(v uint32) (uint16, bool) {
	r := idx.rankArr[v]
	return r, r != noRank
}

// labelF returns the forward entry span of vertex v from the packed arena
// when the index is packed, else from the mutable label table; labelB
// mirrors it for backward labels. The query path reads labels only through
// these helpers, so both representations answer identically.
func (idx *Index) labelF(v uint32) []hcl.Entry {
	if p := idx.packedF; p != nil {
		return p.Label(v)
	}
	return idx.Lf[v]
}

func (idx *Index) labelB(v uint32) []hcl.Entry {
	if p := idx.packedB; p != nil {
		return p.Label(v)
	}
	return idx.Lb[v]
}

// DistF returns the exact directed distance landmark(r) → v.
func (idx *Index) DistF(r uint16, v uint32) graph.Dist {
	if s := idx.rankArr[v]; s != noRank {
		return idx.Highway(r, s)
	}
	// Row r of the highway holds d(r→s) for every rank s, which is exactly
	// the Equation 1 kernel shape.
	return hcl.LandmarkVia(idx.hf[int(r)*idx.k:int(r)*idx.k+idx.k], idx.labelF(v))
}

// DistB returns the exact directed distance v → landmark(r).
func (idx *Index) DistB(r uint16, v uint32) graph.Dist {
	if s := idx.rankArr[v]; s != noRank {
		return idx.Highway(s, r)
	}
	best := graph.Inf
	for _, e := range idx.labelB(v) {
		if t := graph.AddDist(e.D, idx.Highway(e.Rank, r)); t < best {
			best = t
		}
	}
	return best
}

// UpperBound returns the best u→v distance through the highway network.
func (idx *Index) UpperBound(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	ru, uIsL := idx.Rank(u)
	rv, vIsL := idx.Rank(v)
	switch {
	case uIsL && vIsL:
		return idx.Highway(ru, rv)
	case uIsL:
		return idx.DistF(ru, v)
	case vIsL:
		return idx.DistB(rv, u)
	}
	// Equation 2, directed: min over eu ∈ L_b(u), ev ∈ L_f(v) of
	// δ(u→eu) + δ_H(eu→ev) + δ(ev→v), the shared kernel over the flat
	// highway matrix.
	return hcl.UpperBoundMat(idx.hf, idx.k, idx.labelB(u), idx.labelF(v))
}

// Query answers an exact directed distance query u→v: the highway upper
// bound refined by a bounded bidirectional search on the sparsified graph.
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	top := idx.UpperBound(u, v)
	if _, isL := idx.Rank(u); isL {
		return top
	}
	if _, isL := idx.Rank(v); isL {
		return top
	}
	if top <= 1 {
		return top
	}
	avoid := func(x uint32) bool { return idx.rankArr[x] != noRank }
	s := idx.scratch.Get(idx.G.NumVertices())
	sp := idx.G.Sparsified(u, v, top, avoid, s)
	idx.scratch.Put(s)
	if sp < top {
		return sp
	}
	return top
}

// NumEntries returns size(L_f) + size(L_b).
func (idx *Index) NumEntries() int64 {
	var n int64
	for v := range idx.Lf {
		n += int64(len(idx.Lf[v])) + int64(len(idx.Lb[v]))
	}
	return n
}

// Bytes returns the storage charged for both label sets and the highway.
func (idx *Index) Bytes() int64 {
	_, bytes := idx.Sizes()
	return bytes
}

// Sizes returns NumEntries and Bytes with a single label scan.
func (idx *Index) Sizes() (entries, bytes int64) {
	entries = idx.NumEntries()
	return entries, entries*hcl.EntryBytes + int64(len(idx.hf))*4
}

// EnsureVertex grows the label tables to cover vertex v.
func (idx *Index) EnsureVertex(v uint32) {
	if uint32(len(idx.Lf)) <= v {
		idx.unpack() // the packed forms no longer cover every vertex
	}
	for uint32(len(idx.Lf)) <= v {
		idx.Lf = append(idx.Lf, nil)
		idx.Lb = append(idx.Lb, nil)
		idx.rankArr = append(idx.rankArr, noRank)
	}
	if idx.sharedF != nil {
		idx.sharedF.Grow(len(idx.Lf)) // new bits are clear: the fork owns new labels
		idx.sharedB.Grow(len(idx.Lb))
	}
}

// unpack drops the packed read forms; the slice form is the write
// representation, so every label write goes through here (via ownLabel).
func (idx *Index) unpack() {
	idx.packedF, idx.packedB = nil, nil
}

// Pack builds the packed read representations of both label directions (see
// hcl.Packed). On an index forked from a packed parent it is delta-aware:
// chunks whose labels the fork never touched are reused from the parent's
// arenas by reference. Idempotent; any subsequent label write drops the
// packed forms again.
func (idx *Index) Pack() {
	var parentF, parentB *hcl.Packed
	if idx.parent != nil {
		parentF, parentB = idx.parent.packedF, idx.parent.packedB
	}
	if idx.packedF == nil {
		idx.packedF = hcl.PackParallel(idx.Lf, parentF, idx.sharedF, idx.Workers)
	}
	if idx.packedB == nil {
		idx.packedB = hcl.PackParallel(idx.Lb, parentB, idx.sharedB, idx.Workers)
	}
	idx.parent = nil
}

// PackedForward and PackedBackward return the packed read forms, or nil
// when the index has unpublished label writes (or was never packed).
func (idx *Index) PackedForward() *hcl.Packed { return idx.packedF }

// PackedBackward returns the backward packed form; see PackedForward.
func (idx *Index) PackedBackward() *hcl.Packed { return idx.packedB }

// MappedBytes returns the size of the mmap'd checkpoint region this index
// still holds alive (both directions share one mapping), or 0 for a fully
// heap-resident index.
func (idx *Index) MappedBytes() int64 {
	if idx.mapRef != nil {
		return idx.mapRef.Len()
	}
	var n int64
	if idx.packedF != nil {
		n = idx.packedF.MappedBytes()
	}
	if n == 0 && idx.packedB != nil {
		n = idx.packedB.MappedBytes()
	}
	return n
}

// Fork returns a copy-on-write copy of the index bound to g, which must be
// a fork of idx.G taken at the same moment. Label-table headers, the rank
// array and the small highway matrix are copied (O(|V| + k²)), but every
// per-vertex label's backing array stays shared with idx until the fork
// first writes to it. Snapshot discipline: idx is frozen once forked.
func (idx *Index) Fork(g *digraph.Digraph) *Index {
	return &Index{
		G:           g,
		Landmarks:   idx.Landmarks, // immutable after construction
		Lf:          append([]hcl.Label(nil), idx.Lf...),
		Lb:          append([]hcl.Label(nil), idx.Lb...),
		hf:          append([]graph.Dist(nil), idx.hf...),
		k:           idx.k,
		rankArr:     append([]uint16(nil), idx.rankArr...),
		sharedF:     bitset.NewAllSet(len(idx.Lf)),
		sharedB:     bitset.NewAllSet(len(idx.Lb)),
		mapRef:      idx.mapRef, // label slices may still alias the mapping
		Workers:     idx.Workers,
		RepairTimer: idx.RepairTimer,
		// The fork mutates, so it starts unpacked; remembering the parent
		// lets its Pack reuse whatever chunks the parent's arenas hold by
		// the time the fork itself is frozen.
		parent: idx,
	}
}

// ownLabel makes the fwd-direction label of v writable on a fork, copying
// the shared backing array on first touch. The returned write-through is
// idx.Lf/idx.Lb itself, so callers holding an alias of the label table see
// the owned copy immediately (slice headers share the backing array).
func (idx *Index) ownLabel(fwd bool, v uint32) {
	idx.unpack() // the slice form is the write representation
	labels, shared := idx.Lb, idx.sharedB
	if fwd {
		labels, shared = idx.Lf, idx.sharedF
	}
	if shared == nil || !shared.Get(v) {
		return
	}
	labels[v] = append(make(hcl.Label, 0, len(labels[v])+1), labels[v]...)
	shared.Clear(v)
}
