package dhcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/hcl"
)

// Binary index format:
//
//	magic "DHL1" | u32 |V| | u32 |R| | landmarks u32×|R| |
//	highway u32×|R|² (row-major, hf[i*k+j] = d(ri→rj)) |
//	forward label block | backward label block
//
// The label blocks are the shared CSR layout of hcl.WriteLabelBlock, so a
// load is two bulk arena reads and the loaded index is already packed. All
// integers little-endian; the graph is serialised separately.
const codecMagic = "DHL1"

// WriteTo serialises the directed labelling (landmarks, highway, both label
// sets) to w. Below hcl.V2SaveThreshold total entries it writes the DHL1
// layout; at or above it the mappable DHL2 layout, whose u64 offsets are
// the only representation past the u32 ceiling.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var total uint64
	for _, l := range idx.Lf {
		total += uint64(len(l))
	}
	for _, l := range idx.Lb {
		total += uint64(len(l))
	}
	if total >= hcl.V2SaveThreshold {
		n, _, err := idx.WriteToMappable(w, 0)
		return n, err
	}
	cw := &hcl.CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return cw.N, err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(len(idx.Lf))); err != nil {
		return cw.N, err
	}
	if err := writeU32(uint32(idx.k)); err != nil {
		return cw.N, err
	}
	for _, v := range idx.Landmarks {
		if err := writeU32(v); err != nil {
			return cw.N, err
		}
	}
	for _, d := range idx.hf {
		if err := writeU32(uint32(d)); err != nil {
			return cw.N, err
		}
	}
	if err := hcl.WriteLabelBlock(bw, idx.Lf); err != nil {
		return cw.N, err
	}
	if err := hcl.WriteLabelBlock(bw, idx.Lb); err != nil {
		return cw.N, err
	}
	if err := bw.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, nil
}

// ReadIndex deserialises a labelling written by WriteTo and attaches it to
// g, which must be the graph the index was built over (vertex count is
// checked; callers needing a stronger guarantee can run VerifyCover). The
// loaded index is already packed in both directions: the label blocks are
// the arenas.
func ReadIndex(r io.Reader, g *digraph.Digraph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dhcl: reading index header: %w", err)
	}
	v2 := false
	switch string(magic) {
	case codecMagic:
	case codecMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("dhcl: bad index magic %q", magic)
	}
	var nv, nr uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, fmt.Errorf("dhcl: reading vertex count: %w", err)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("dhcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if err := binary.Read(br, binary.LittleEndian, &nr); err != nil {
		return nil, fmt.Errorf("dhcl: reading landmark count: %w", err)
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("dhcl: implausible landmark count %d", nr)
	}
	landmarks := make([]uint32, nr)
	if err := binary.Read(br, binary.LittleEndian, landmarks); err != nil {
		return nil, fmt.Errorf("dhcl: reading landmarks: %w", err)
	}
	for _, v := range landmarks {
		if v >= nv {
			return nil, fmt.Errorf("dhcl: landmark %d out of range", v)
		}
	}
	k := int(nr)
	idx := &Index{
		G:         g,
		Landmarks: landmarks,
		Lf:        make([]hcl.Label, nv),
		Lb:        make([]hcl.Label, nv),
		hf:        make([]graph.Dist, k*k),
		k:         k,
		rankArr:   make([]uint16, nv),
	}
	if err := binary.Read(br, binary.LittleEndian, idx.hf); err != nil {
		return nil, fmt.Errorf("dhcl: reading highway: %w", err)
	}
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankArr[v] = uint16(r)
	}
	if v2 {
		arenaF, offF, err := hcl.ReadLabelBlockV2(br, nv, nr)
		if err != nil {
			return nil, fmt.Errorf("dhcl: forward %w", err)
		}
		arenaB, offB, err := hcl.ReadLabelBlockV2(br, nv, nr)
		if err != nil {
			return nil, fmt.Errorf("dhcl: backward %w", err)
		}
		idx.packedF = hcl.AttachArena64(idx.Lf, arenaF, offF)
		idx.packedB = hcl.AttachArena64(idx.Lb, arenaB, offB)
		return idx, nil
	}
	arenaF, offF, err := hcl.ReadLabelBlock(br, nv, nr)
	if err != nil {
		return nil, fmt.Errorf("dhcl: forward %w", err)
	}
	arenaB, offB, err := hcl.ReadLabelBlock(br, nv, nr)
	if err != nil {
		return nil, fmt.Errorf("dhcl: backward %w", err)
	}
	idx.packedF = hcl.AttachArena(idx.Lf, arenaF, offF)
	idx.packedB = hcl.AttachArena(idx.Lb, arenaB, offB)
	return idx, nil
}
