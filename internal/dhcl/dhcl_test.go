package dhcl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// randomDigraph returns a digraph with n vertices and ~m random directed
// edges, deterministic per seed.
func randomDigraph(n, m int, seed int64) *digraph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v)
		}
	}
	return g
}

// topLandmarks picks the k vertices with the highest total degree.
func topLandmarks(g *digraph.Digraph, k int) []uint32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di := g.OutDegree(ids[i]) + g.InDegree(ids[i])
		dj := g.OutDegree(ids[j]) + g.InDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return append([]uint32(nil), ids[:k]...)
}

// nonEdges samples directed non-edges.
func nonEdges(g *digraph.Digraph, count int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	seen := map[[2]uint32]bool{}
	var out [][2]uint32
	for tries := 0; len(out) < count && tries < 400*count; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]uint32{u, v}] {
			continue
		}
		seen[[2]uint32{u, v}] = true
		out = append(out, [2]uint32{u, v})
	}
	return out
}

func TestDigraphBasics(t *testing.T) {
	g := digraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	if ok, _ := g.AddEdge(0, 1); !ok {
		t.Fatal("AddEdge failed")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edge must not be symmetric")
	}
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if _, err := g.AddEdge(0, 9); err == nil {
		t.Error("unknown vertex must be rejected")
	}
	if ok, _ := g.AddEdge(0, 1); ok {
		t.Error("duplicate must report false")
	}
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("clone leaked")
	}
}

func TestDigraphForwardBackward(t *testing.T) {
	// 0→1→2, 2→0
	g := digraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	dist := make([]graph.Dist, 3)
	g.Forward(0, dist)
	if dist[1] != 1 || dist[2] != 2 {
		t.Errorf("forward: %v", dist)
	}
	g.Backward(0, dist)
	if dist[2] != 1 || dist[1] != 2 {
		t.Errorf("backward: %v", dist)
	}
}

func TestBuildQueryMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomDigraph(45, 160, seed)
		idx, err := Build(g, topLandmarks(g, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for u := uint32(0); u < 45; u++ {
			want := make([]graph.Dist, 45)
			g.Forward(u, want)
			for v := uint32(0); v < 45; v++ {
				if got := idx.Query(u, v); got != want[v] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, u, v, got, want[v])
				}
			}
		}
	}
}

func TestBuildAsymmetricPath(t *testing.T) {
	// A directed path 0→1→2→3: distances only exist one way.
	g := digraph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	idx, err := Build(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Query(0, 3); got != 3 {
		t.Errorf("Query(0,3): got %d, want 3", got)
	}
	if got := idx.Query(3, 0); got != graph.Inf {
		t.Errorf("Query(3,0): got %d, want Inf", got)
	}
	// Forward labels exist, backward labels (to landmark 0) must be empty
	// since nothing reaches 0.
	for v := uint32(1); v <= 3; v++ {
		if len(idx.Lb[v]) != 0 {
			t.Errorf("Lb[%d] should be empty: %v", v, idx.Lb[v])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := randomDigraph(5, 10, 1)
	if _, err := Build(g, nil); err == nil {
		t.Error("no landmarks must fail")
	}
	if _, err := Build(g, []uint32{1, 1}); err == nil {
		t.Error("duplicate landmarks must fail")
	}
	if _, err := Build(g, []uint32{99}); err == nil {
		t.Error("unknown landmark must fail")
	}
}

func TestInsertEdgeMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomDigraph(40, 110, 50+seed)
		lm := topLandmarks(g, 3+int(seed%3))
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range nonEdges(g, 20, seed*7+1) {
			if _, err := idx.InsertEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d insert %d: %v", seed, i, err)
			}
			fresh, err := Build(g, lm)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.EqualLabels(fresh); err != nil {
				t.Fatalf("seed %d after insert %d (%d→%d): %v", seed, i, e[0], e[1], err)
			}
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestInsertEdgeQueriesStayExact(t *testing.T) {
	g := randomDigraph(35, 90, 9)
	idx, err := Build(g, topLandmarks(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range nonEdges(g, 25, 4) {
		if _, err := idx.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for u := uint32(0); u < 35; u++ {
		want := make([]graph.Dist, 35)
		g.Forward(u, want)
		for v := uint32(0); v < 35; v++ {
			if got := idx.Query(u, v); got != want[v] {
				t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, want[v])
			}
		}
	}
}

func TestInsertEdgeErrors(t *testing.T) {
	g := randomDigraph(6, 8, 2)
	idx, err := Build(g, topLandmarks(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertEdge(1, 1); err == nil {
		t.Error("self-loop must be rejected")
	}
	if _, err := idx.InsertEdge(0, 77); err == nil {
		t.Error("unknown vertex must be rejected")
	}
	e := nonEdges(g, 1, 5)[0]
	if _, err := idx.InsertEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertEdge(e[0], e[1]); err == nil {
		t.Error("duplicate must be rejected")
	}
}

func TestInsertVertexDirected(t *testing.T) {
	g := randomDigraph(25, 60, 3)
	lm := topLandmarks(g, 3)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	v, st, err := idx.InsertVertex([]uint32{0, 5}, []uint32{7})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(v, 0) || !g.HasEdge(v, 5) || !g.HasEdge(7, v) {
		t.Error("vertex edges missing")
	}
	if st.LandmarksTotal != 3 {
		t.Errorf("stats: %+v", st)
	}
	fresh, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.InsertVertex([]uint32{999}, nil); err == nil {
		t.Error("unknown out-neighbour must be rejected")
	}
	if _, _, err := idx.InsertVertex(nil, []uint32{999}); err == nil {
		t.Error("unknown in-neighbour must be rejected")
	}
}

func TestQuickInsertStreamMinimality(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g := randomDigraph(25, 70, seed)
		lm := topLandmarks(g, 1+int(kRaw)%4)
		idx, err := Build(g, lm)
		if err != nil {
			return false
		}
		for _, e := range nonEdges(g, 10, seed+3) {
			if _, err := idx.InsertEdge(e[0], e[1]); err != nil {
				return false
			}
		}
		fresh, err := Build(g, lm)
		if err != nil {
			return false
		}
		return idx.EqualLabels(fresh) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesAndEntries(t *testing.T) {
	g := randomDigraph(30, 80, 6)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumEntries() <= 0 {
		t.Error("expected label entries")
	}
	if idx.Bytes() <= idx.NumEntries()*6 {
		t.Error("Bytes must include the highway")
	}
}
