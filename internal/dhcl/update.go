package dhcl

import (
	"fmt"

	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/queue"
)

// Stats reports what one directed insertion did.
type Stats struct {
	LandmarksTotal  int // |R|
	PassesSkipped   int // forward/backward passes eliminated (of 2|R|)
	AffectedForward int // Σ_r |Λ_r| over forward passes
	AffectedBack    int // Σ_r |Λ_r| over backward passes
	EntriesAdded    int
	EntriesRemoved  int
	HighwayUpdates  int
}

// findResult carries one pass's affected set from find to repair.
type findResult struct {
	rank     uint16
	fwd      bool                  // forward pass (maintains Lf) or backward (Lb)
	skipped  bool                  // pass eliminated: the edge shortens nothing
	affected []queue.Pair          // level order, depth = new distance
	newDist  map[uint32]graph.Dist // affected vertex -> new distance
	oldDist  map[uint32]graph.Dist // scanned vertex -> old distance
}

// sizeFinds resizes the per-task find table.
func (idx *Index) sizeFinds(n int) {
	if cap(idx.finds) < n {
		idx.finds = append(idx.finds[:cap(idx.finds)], make([]findResult, n-cap(idx.finds))...)
	}
	idx.finds = idx.finds[:n]
}

// InsertEdge inserts the directed edge a→b and repairs both label sets:
// forward distances can only change downstream of b, backward distances
// only upstream of a (the directed analogue of Lemma 4.3). The 2|R|
// (landmark, direction) passes fan across Workers cores — each task runs
// its find against the pre-update labelling (no repair has mutated anything
// yet: tasks only buffer deltas) plus the repair classification — and the
// merge applies the deltas in serial pass order.
func (idx *Index) InsertEdge(a, b uint32) (Stats, error) {
	var st Stats
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("dhcl: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("dhcl: insert (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if g.HasEdge(a, b) {
		return st, fmt.Errorf("dhcl: insert (%d,%d): %w", a, b, graph.ErrEdgeExists)
	}
	if _, err := g.AddEdge(a, b); err != nil {
		return st, err
	}
	st.LandmarksTotal = idx.k

	tasks := 2 * idx.k // task t = pass (rank t/2, forward when t is even)
	idx.sizeFinds(tasks)
	idx.sizeDeltas(tasks)
	idx.fan(fanout.Resolve(idx.Workers), tasks, func(_ *passScratch, t int) {
		r, fwd := uint16(t/2), t%2 == 0
		d := &idx.deltas[t]
		d.reset()
		fr, ok := idx.findAffected(r, fwd, a, b)
		fr.skipped = !ok
		idx.finds[t] = fr
		if ok {
			idx.classifyPass(&idx.finds[t], d)
		}
	})
	for t := 0; t < tasks; t++ {
		r, fwd := uint16(t/2), t%2 == 0
		fr := &idx.finds[t]
		if fr.skipped {
			st.PassesSkipped++
			continue
		}
		if fwd {
			st.AffectedForward += len(fr.affected)
		} else {
			st.AffectedBack += len(fr.affected)
		}
		idx.applyPassInsert(r, fwd, &idx.deltas[t], &st)
	}
	return st, nil
}

// InsertVertex adds a new vertex with the given initial out- and
// in-neighbours, applied as sequential edge insertions.
func (idx *Index) InsertVertex(outTo, inFrom []uint32) (uint32, Stats, error) {
	var agg Stats
	for _, w := range outTo {
		if !idx.G.HasVertex(w) {
			return 0, agg, fmt.Errorf("dhcl: insert vertex: neighbour %d: %w", w, graph.ErrVertexUnknown)
		}
	}
	for _, w := range inFrom {
		if !idx.G.HasVertex(w) {
			return 0, agg, fmt.Errorf("dhcl: insert vertex: neighbour %d: %w", w, graph.ErrVertexUnknown)
		}
	}
	v := idx.G.AddVertex()
	idx.EnsureVertex(v)
	agg.LandmarksTotal = idx.k
	add := func(x, y uint32) error {
		st, err := idx.InsertEdge(x, y)
		if err != nil {
			return err
		}
		agg.PassesSkipped += st.PassesSkipped
		agg.AffectedForward += st.AffectedForward
		agg.AffectedBack += st.AffectedBack
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
		return nil
	}
	for _, w := range outTo {
		if err := add(v, w); err != nil {
			return v, agg, err
		}
	}
	for _, w := range inFrom {
		if err := add(w, v); err != nil {
			return v, agg, err
		}
	}
	return v, agg, nil
}

// findAffected runs the jumped BFS of one (landmark, direction) pass. For a
// forward pass the new path is r→…→a→b, so the search starts at b over
// out-edges with depth d(r→a)+1; backward passes mirror this from a over
// in-edges with depth d(b→r)+1. It reports ok=false when the pass is
// eliminated (the new edge cannot lie on any shortest path to/from r).
func (idx *Index) findAffected(r uint16, fwd bool, a, b uint32) (findResult, bool) {
	var dNear, dStart graph.Dist
	var start uint32
	var frontier, parents func(uint32) []uint32
	var oldDist func(uint32) graph.Dist
	if fwd {
		dNear = idx.DistF(r, a)  // distance to the edge tail
		dStart = idx.DistF(r, b) // current distance of the search start
		start = b                // new paths enter through b
		frontier = idx.G.Out     // expand along out-edges
		parents = idx.G.In       // shortest-path parents are in-neighbours
		oldDist = func(v uint32) graph.Dist { return idx.DistF(r, v) }
	} else {
		dNear = idx.DistB(r, b)
		dStart = idx.DistB(r, a)
		start = a
		frontier = idx.G.In
		parents = idx.G.Out
		oldDist = func(v uint32) graph.Dist { return idx.DistB(r, v) }
	}
	if dNear == graph.Inf {
		return findResult{}, false // no path reaches the new edge
	}
	pi := dNear + 1
	if dStart < pi {
		return findResult{}, false // the new edge shortens nothing (Λ = ∅)
	}
	fr := findResult{
		rank:    r,
		fwd:     fwd,
		newDist: make(map[uint32]graph.Dist, 16),
		oldDist: make(map[uint32]graph.Dist, 32),
	}
	cache := func(v uint32) graph.Dist {
		if d, ok := fr.oldDist[v]; ok {
			return d
		}
		d := oldDist(v)
		fr.oldDist[v] = d
		return d
	}
	if fwd {
		fr.oldDist[a] = dNear
	} else {
		fr.oldDist[b] = dNear
	}
	fr.oldDist[start] = dStart

	q := queue.NewPairQueue(16)
	q.Push(queue.Pair{V: start, D: pi})
	fr.newDist[start] = pi
	for !q.Empty() {
		p := q.Pop()
		fr.affected = append(fr.affected, p)
		next := graph.AddDist(p.D, 1)
		for _, w := range frontier(p.V) {
			if _, seen := fr.newDist[w]; seen {
				continue
			}
			if cache(w) >= next {
				fr.newDist[w] = next
				q.Push(queue.Pair{V: w, D: next})
			}
		}
		// Repair classifies through shortest-path parents, which lie on the
		// opposite adjacency — cache their old distances now, while the
		// labelling still reflects the old graph.
		for _, w := range parents(p.V) {
			if _, seen := fr.newDist[w]; !seen {
				cache(w)
			}
		}
	}
	return fr, true
}

// classifyPass walks one pass's affected set in level order and applies the
// covered/uncovered classification of Lemma 4.6 in the pass direction,
// buffering edits into the delta. Entry checks read the frozen pre-repair
// labelling and are exact: only this pass touches rank-r entries of its
// direction, and highway cells of an insertion apply unconditionally.
func (idx *Index) classifyPass(fr *findResult, d *passDelta) {
	r := fr.rank
	root := idx.Landmarks[r]
	labels := idx.Lb
	parents := idx.G.Out
	if fr.fwd {
		labels = idx.Lf
		parents = idx.G.In
	}
	covered := make(map[uint32]bool, len(fr.affected))
	for _, p := range fr.affected {
		w, dd := p.V, p.D
		if s := idx.rankArr[w]; s != noRank {
			d.cell(s, dd) // d(r→s) decreased on forward passes, d(s→r) on backward
			d.highway++
			covered[w] = true
			continue
		}
		cov := false
		for _, n := range parents(w) {
			nd, affected := fr.newDist[n]
			if !affected {
				var ok bool
				nd, ok = fr.oldDist[n]
				if !ok {
					continue
				}
			}
			if nd != dd-1 {
				continue
			}
			if affected {
				if covered[n] {
					cov = true
					break
				}
				continue
			}
			if idx.rankArr[n] != noRank {
				if n != root {
					cov = true
					break
				}
				continue
			}
			if _, has := labels[n].Get(r); !has {
				cov = true
				break
			}
		}
		covered[w] = cov
		if cov {
			if _, had := labels[w].Get(r); had {
				d.removeEntry(w)
				d.removed++
			}
		} else {
			d.setEntry(w, dd)
			d.added++
		}
	}
}
