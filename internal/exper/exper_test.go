package exper

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// smallCfg keeps harness smoke tests fast: two contrasting datasets at tiny
// scale.
func smallCfg(buf *bytes.Buffer) Config {
	return Config{
		Scale:    0.04,
		Updates:  30,
		Queries:  200,
		Seed:     7,
		Datasets: []string{"Skitter", "Indochina"},
		Out:      buf,
	}
}

func TestSampleInsertionsAreFreshNonEdges(t *testing.T) {
	g := testutil.RandomConnectedGraph(60, 100, 3)
	ins := SampleInsertions(g, 40, 9)
	if len(ins) != 40 {
		t.Fatalf("got %d insertions", len(ins))
	}
	seen := map[[2]uint32]bool{}
	for _, e := range ins {
		if g.HasEdge(e[0], e[1]) {
			t.Errorf("sampled existing edge %v", e)
		}
		if e[0] == e[1] {
			t.Errorf("sampled self-loop %v", e)
		}
		if seen[e] {
			t.Errorf("duplicate sample %v", e)
		}
		seen[e] = true
	}
}

func TestSampleQueriesDeterministic(t *testing.T) {
	a := SampleQueries(100, 50, 3)
	b := SampleQueries(100, 50, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must sample same queries")
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	sums, err := Table2(smallCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	for _, s := range sums {
		if s.V == 0 || s.E == 0 || s.AvgDist <= 0 {
			t.Errorf("degenerate summary: %+v", s)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("output missing table title")
	}
}

func TestFig1Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig1(smallCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.PctAffected) != 30 {
			t.Fatalf("%s: got %d samples", r.Dataset, len(r.PctAffected))
		}
		for i := 1; i < len(r.PctAffected); i++ {
			if r.PctAffected[i-1] < r.PctAffected[i] {
				t.Fatalf("%s: series not descending", r.Dataset)
			}
		}
		if r.PctAffected[0] < 0 || r.PctAffected[0] > 100 {
			t.Fatalf("%s: percentage out of range: %v", r.Dataset, r.PctAffected[0])
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(smallCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsNaN(r.IncHL.UpdateMs) || r.IncHL.Bytes <= 0 {
			t.Errorf("%s: IncHL+ must always have results: %+v", r.Dataset, r.IncHL)
		}
		if math.IsNaN(r.IncFD.UpdateMs) {
			t.Errorf("%s: IncFD feasible here: %+v", r.Dataset, r.IncFD)
		}
		// The headline size claim: IncHL+ labelling much smaller than IncFD.
		if r.IncFD.Bytes > 0 && r.IncHL.Bytes >= r.IncFD.Bytes {
			t.Errorf("%s: IncHL+ size %d not below IncFD %d", r.Dataset, r.IncHL.Bytes, r.IncFD.Bytes)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Skitter") || !strings.Contains(out, "Indochina") {
		t.Error("rendered table missing datasets")
	}
}

func TestTable1InfeasibleCells(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Datasets = []string{"Clueweb09"}
	cfg.Updates = 5
	cfg.Queries = 20
	cfg.Landmarks = 10 // keep the 150-landmark default out of the smoke test
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !math.IsNaN(r.IncFD.UpdateMs) || !math.IsNaN(r.IncPLL.UpdateMs) {
		t.Errorf("Clueweb09 must mirror the paper's '-' cells: %+v", r)
	}
	if r.IncFD.Bytes != -1 || r.IncPLL.Bytes != -1 {
		t.Errorf("infeasible sizes must be -1: %+v", r)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Error("rendered table should contain '-' for infeasible cells")
	}
}

func TestFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Datasets = []string{"Flickr"}
	cfg.Updates = 15
	rows, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig3LandmarkCounts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Fig3LandmarkCounts))
	}
	for _, r := range rows {
		if r.IncHLMs <= 0 || math.IsNaN(r.IncFDMs) {
			t.Errorf("row %+v has missing timings", r)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Datasets = []string{"Skitter"}
	cfg.Updates = 20 // → 200 total, batches of 10
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ConstructionMs <= 0 {
		t.Error("construction time missing")
	}
	if len(r.CumulativeMs) == 0 {
		t.Fatal("no batches recorded")
	}
	for i := 1; i < len(r.CumulativeMs); i++ {
		if r.CumulativeMs[i] < r.CumulativeMs[i-1] {
			t.Error("cumulative time must be monotone")
		}
	}
	if r.UpdatesDone[len(r.UpdatesDone)-1] != 200 {
		t.Errorf("total updates: got %d, want 200", r.UpdatesDone[len(r.UpdatesDone)-1])
	}
}

func TestAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Datasets = []string{"Flickr"}
	cfg.Updates = 10
	rows, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PartialMs <= 0 || r.RebuildMs <= 0 {
		t.Fatalf("timings missing: %+v", r)
	}
	if r.SkippedLandmarks < 0 || r.SkippedLandmarks > 1 {
		t.Fatalf("skip fraction out of range: %+v", r)
	}
}

func TestConfigUnknownDataset(t *testing.T) {
	cfg := Config{Datasets: []string{"NoSuch"}}
	if _, err := Table2(cfg); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestPackedExperiment(t *testing.T) {
	rows, err := Packed(Config{Scale: 0.02, Queries: 200, Datasets: []string{"Skitter"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Vertices == 0 || r.Entries == 0 || r.BytesPerVertex <= 0 {
		t.Fatalf("degenerate row: %+v", r)
	}
	if r.PackedMeanUs <= 0 || r.SliceMeanUs <= 0 || r.LoadMs < 0 {
		t.Fatalf("missing timings: %+v", r)
	}
}

func TestRepairSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Datasets = []string{"Flickr"}
	cfg.Updates = 12
	cfg.Workers = []int{1, 2}
	rows, err := Repair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Workers != cfg.Workers[i] {
			t.Errorf("row %d: workers %d, want %d", i, r.Workers, cfg.Workers[i])
		}
		if r.BuildMs <= 0 || r.InsertUs <= 0 || r.DeleteUs <= 0 {
			t.Errorf("row %+v has missing timings", r)
		}
	}
	if base := rows[0]; base.BuildSpeedup != 1 || base.RepairSpeedup != 1 {
		t.Errorf("serial baseline speedups = %.2f/%.2f, want 1/1", base.BuildSpeedup, base.RepairSpeedup)
	}
}
