package exper

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/fulldyn"
	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/pll"
	"repro/internal/stats"
)

// MethodResult holds one method's measurements on one dataset. Times are
// NaN and Bytes -1 when the method is infeasible on the dataset (mirroring
// the "-" cells of the paper's Table 1).
type MethodResult struct {
	UpdateMs float64 // mean per-insertion update time
	QueryMs  float64 // mean per-query time after all updates
	Bytes    int64   // labelling size after all updates
}

func infeasible() MethodResult {
	return MethodResult{UpdateMs: math.NaN(), QueryMs: math.NaN(), Bytes: -1}
}

// Table1Row is one dataset's comparison of the three methods.
type Table1Row struct {
	Dataset   string
	Vertices  int
	Edges     uint64
	Landmarks int
	IncHL     MethodResult
	IncFD     MethodResult
	IncPLL    MethodResult
}

// Table1 reproduces the paper's Table 1: average update time, average query
// time and labelling size of IncHL+, IncFD and IncPLL after applying the
// insertion workload.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		row, err := table1Dataset(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("table1: dataset %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	renderTable1(cfg, rows)
	return rows, nil
}

func table1Dataset(spec dataset.Spec, cfg Config) (Table1Row, error) {
	base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
	k := cfg.landmarkCount(spec)
	inserts := SampleInsertions(base, cfg.Updates, cfg.Seed+101)
	queries := SampleQueries(base.NumVertices(), cfg.Queries, cfg.Seed+202)
	lm := landmark.ByDegree(base, k)
	row := Table1Row{
		Dataset:   spec.Name,
		Vertices:  base.NumVertices(),
		Edges:     base.NumEdges(),
		Landmarks: k,
	}

	// IncHL+ (always feasible — the paper's headline scalability claim).
	{
		g := base.Clone()
		idx, err := hcl.Build(g, lm)
		if err != nil {
			return row, err
		}
		upd := inchl.New(idx)
		updMs, err := timeUpdates(len(inserts), func(i int) error {
			_, err := upd.InsertEdge(inserts[i][0], inserts[i][1])
			return err
		})
		if err != nil {
			return row, err
		}
		row.IncHL = MethodResult{
			UpdateMs: updMs,
			QueryMs:  timeQueries(queries, func(u, v uint32) graph.Dist { return idx.Query(u, v) }),
			Bytes:    idx.Bytes(),
		}
	}

	// IncFD.
	if spec.FDFeasible {
		g := base.Clone()
		idx, err := fulldyn.Build(g, lm)
		if err != nil {
			return row, err
		}
		updMs, err := timeUpdates(len(inserts), func(i int) error {
			return idx.InsertEdge(inserts[i][0], inserts[i][1])
		})
		if err != nil {
			return row, err
		}
		row.IncFD = MethodResult{
			UpdateMs: updMs,
			QueryMs:  timeQueries(queries, func(u, v uint32) graph.Dist { return idx.Query(u, v) }),
			Bytes:    idx.Bytes(),
		}
	} else {
		row.IncFD = infeasible()
	}

	// IncPLL.
	if spec.PLLFeasible {
		g := base.Clone()
		idx := pll.Build(g)
		updMs, err := timeUpdates(len(inserts), func(i int) error {
			return idx.InsertEdge(inserts[i][0], inserts[i][1])
		})
		if err != nil {
			return row, err
		}
		row.IncPLL = MethodResult{
			UpdateMs: updMs,
			QueryMs:  timeQueries(queries, func(u, v uint32) graph.Dist { return idx.Query(u, v) }),
			Bytes:    idx.Bytes(),
		}
	} else {
		row.IncPLL = infeasible()
	}
	return row, nil
}

// timeUpdates measures the mean wall-clock milliseconds of n update
// operations.
func timeUpdates(n int, op func(i int) error) (float64, error) {
	if n == 0 {
		return math.NaN(), nil
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(i); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond) / float64(n), nil
}

// timeQueries measures the mean wall-clock milliseconds of the query batch.
func timeQueries(pairs [][2]uint32, q func(u, v uint32) graph.Dist) float64 {
	if len(pairs) == 0 {
		return math.NaN()
	}
	var sink graph.Dist
	start := time.Now()
	for _, p := range pairs {
		sink ^= q(p[0], p[1])
	}
	_ = sink
	return float64(time.Since(start)) / float64(time.Millisecond) / float64(len(pairs))
}

func renderTable1(cfg Config, rows []Table1Row) {
	fmtBytes := func(b int64) string {
		if b < 0 {
			return "-"
		}
		return stats.FormatBytes(b)
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Dataset,
			stats.FormatMillis(r.IncHL.UpdateMs), stats.FormatMillis(r.IncFD.UpdateMs), stats.FormatMillis(r.IncPLL.UpdateMs),
			stats.FormatMillis(r.IncHL.QueryMs), stats.FormatMillis(r.IncFD.QueryMs), stats.FormatMillis(r.IncPLL.QueryMs),
			fmtBytes(r.IncHL.Bytes), fmtBytes(r.IncFD.Bytes), fmtBytes(r.IncPLL.Bytes),
		})
	}
	writeTable(cfg.Out,
		"Table 1: update time (ms), query time (ms), labelling size",
		[]string{"Dataset", "upd IncHL+", "upd IncFD", "upd IncPLL",
			"qry IncHL+", "qry IncFD", "qry IncPLL",
			"size IncHL+", "size IncFD", "size IncPLL"},
		table)
}
