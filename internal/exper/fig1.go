package exper

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/stats"
)

// Fig1Row is the affected-vertex distribution of one dataset: for each of
// the sampled insertions, the percentage of vertices affected, sorted in
// descending order — the series the paper plots in Figure 1.
type Fig1Row struct {
	Dataset     string
	Vertices    int
	PctAffected []float64 // sorted descending
}

// Fig1 reproduces Figure 1: the distribution of the percentage of affected
// vertices over the insertion workload (1000 insertions in the paper),
// computed from IncHL+'s find phase.
func Fig1(cfg Config) ([]Fig1Row, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig1Row, 0, len(specs))
	table := make([][]string, 0, len(specs))
	for _, spec := range specs {
		row, err := fig1Dataset(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig1: dataset %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
		s := stats.Summarize(row.PctAffected)
		table = append(table, []string{
			spec.Name,
			fmt.Sprintf("%d", row.Vertices),
			fmt.Sprintf("%.5f", s.Max),
			fmt.Sprintf("%.5f", s.P90),
			fmt.Sprintf("%.5f", s.Median),
			fmt.Sprintf("%.5f", s.Min),
			fmt.Sprintf("%.5f", s.Mean),
		})
	}
	writeTable(cfg.Out,
		"Figure 1: % of affected vertices per insertion (descending distribution)",
		[]string{"Dataset", "|V|", "max%", "p90%", "median%", "min%", "mean%"},
		table)
	return rows, nil
}

func fig1Dataset(spec dataset.Spec, cfg Config) (Fig1Row, error) {
	g := dataset.Generate(spec, cfg.Scale, cfg.Seed)
	k := cfg.landmarkCount(spec)
	lm := landmark.ByDegree(g, k)
	idx, err := hcl.Build(g, lm)
	if err != nil {
		return Fig1Row{}, err
	}
	upd := inchl.New(idx)
	inserts := SampleInsertions(g, cfg.Updates, cfg.Seed+77)
	row := Fig1Row{Dataset: spec.Name, Vertices: g.NumVertices()}
	for _, e := range inserts {
		st, err := upd.InsertEdge(e[0], e[1])
		if err != nil {
			return row, err
		}
		row.PctAffected = append(row.PctAffected,
			100*float64(st.AffectedUnion)/float64(g.NumVertices()))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(row.PctAffected)))
	return row, nil
}
