package exper

import (
	"bytes"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/arena"
	"repro/internal/dataset"
	"repro/internal/hcl"
	"repro/internal/landmark"
)

// MmapRow reports, for one dataset proxy, what serving a checkpoint's
// labelling out of an mmap buys over decoding a heap copy: the cold-boot
// attach time on each path, the first query batch on the freshly booted
// index (which on the mapped path faults its pages in on demand), and how
// much of the stream stays file-backed.
type MmapRow struct {
	Dataset  string
	Vertices int
	Entries  int64

	// StreamMB is the size of the mappable (v2) labelling stream on disk.
	StreamMB float64

	// CopyLoadMs decodes the stream onto the heap; MapBootMs mmaps the file
	// and attaches the entries in place.
	CopyLoadMs, MapBootMs float64

	// CopyQueryMs / MapQueryMs run the same query batch on the fresh index:
	// the mapped figure includes the demand paging the boot deferred.
	CopyQueryMs, MapQueryMs float64

	// MappedMB is what stays file-backed after the mapped boot.
	MappedMB float64
}

// Mmap runs the cold-boot experiment backing the EXPERIMENTS.md mapped-
// checkpoint table (invoked by `hlbench -exp mmap`): per dataset proxy,
// boot from a mappable labelling stream by copy-in decode and by mmap
// attach, then pay for the first queries on each.
func Mmap(cfg Config) ([]MmapRow, error) {
	cfg = cfg.withDefaults()
	if !arena.Supported() {
		return nil, fmt.Errorf("mmap: not supported on this platform")
	}
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	rows := make([]MmapRow, 0, len(specs))
	for _, spec := range specs {
		base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
		lm := landmark.ByDegree(base, cfg.landmarkCount(spec))
		idx, err := hcl.Build(base, lm)
		if err != nil {
			return nil, fmt.Errorf("mmap: dataset %s: %w", spec.Name, err)
		}
		idx.Pack()
		queries := SampleQueries(base.NumVertices(), cfg.Queries, cfg.Seed+505)

		f, err := os.CreateTemp("", "hlbench-mmap-*.hl")
		if err != nil {
			return nil, err
		}
		path := f.Name()
		if _, _, err := idx.WriteToMappable(f, 0); err != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("mmap: dataset %s: save: %w", spec.Name, err)
		}
		if err := f.Close(); err != nil {
			os.Remove(path)
			return nil, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			os.Remove(path)
			return nil, err
		}

		row := MmapRow{
			Dataset:  spec.Name,
			Vertices: base.NumVertices(),
			Entries:  idx.NumEntries(),
			StreamMB: float64(fi.Size()) / (1 << 20),
		}

		// Copy-in: read the whole stream and decode a heap labelling.
		start := time.Now()
		data, err := os.ReadFile(path)
		var heap *hcl.Index
		if err == nil {
			heap, err = hcl.ReadIndex(bytes.NewReader(data), base)
		}
		if err != nil {
			os.Remove(path)
			return nil, fmt.Errorf("mmap: dataset %s: copy-in load: %w", spec.Name, err)
		}
		row.CopyLoadMs = ms(time.Since(start))
		start = time.Now()
		for _, p := range queries {
			heap.Query(p[0], p[1])
		}
		row.CopyQueryMs = ms(time.Since(start))

		// Mapped: attach the entries in place; queries fault pages in.
		start = time.Now()
		m, err := arena.MapFile(path)
		var mapped *hcl.Index
		if err == nil {
			mapped, err = hcl.ReadIndexMapped(m, 0, base)
		}
		if err != nil {
			os.Remove(path)
			return nil, fmt.Errorf("mmap: dataset %s: mapped boot: %w", spec.Name, err)
		}
		row.MapBootMs = ms(time.Since(start))
		row.MappedMB = float64(mapped.MappedBytes()) / (1 << 20)
		start = time.Now()
		for _, p := range queries {
			mapped.Query(p[0], p[1])
		}
		row.MapQueryMs = ms(time.Since(start))

		m.Close()
		os.Remove(path)
		rows = append(rows, row)
	}
	renderMmap(cfg, rows)
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func renderMmap(cfg Config, rows []MmapRow) {
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mapped checkpoint arena: cold boot, copy-in vs mmap")
	fmt.Fprintln(tw, "dataset\t|V|\tentries\tstream MB\tcopy-in boot ms\tmmap boot ms\tcopy-in queries ms\tmmap queries ms\tmapped MB")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.2f\t%.1f\t%.1f\t%.1f\n",
			r.Dataset, r.Vertices, r.Entries, r.StreamMB,
			r.CopyLoadMs, r.MapBootMs, r.CopyQueryMs, r.MapQueryMs, r.MappedMB)
	}
	tw.Flush()
}
