package exper

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
)

// Fig4Row holds one dataset's scalability test: the cumulative IncHL+
// update time after each batch of insertions, against the time to construct
// the labelling from scratch (the paper's horizontal reference line).
type Fig4Row struct {
	Dataset        string
	ConstructionMs float64
	BatchSize      int
	UpdatesDone    []int     // 500, 1000, ... (scaled)
	CumulativeMs   []float64 // cumulative update time at each point
}

// Fig4 reproduces Figure 4: update time of IncHL+ for up to 10,000
// insertions (cfg.Updates×10 when overridden) against from-scratch
// construction time, in batches of cfg.Updates/2 (500 at the paper's
// defaults).
func Fig4(cfg Config) ([]Fig4Row, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	total := cfg.Updates * 10 // paper: 1000-update workload → 10,000 total
	batch := cfg.Updates / 2  // paper: batches of 500
	if batch < 1 {
		batch = 1
	}
	var rows []Fig4Row
	var table [][]string
	for _, spec := range specs {
		row, err := fig4Dataset(spec, cfg, total, batch)
		if err != nil {
			return nil, fmt.Errorf("fig4: dataset %s: %w", spec.Name, err)
		}
		rows = append(rows, row)
		last := len(row.CumulativeMs) - 1
		ratio := row.CumulativeMs[last] / row.ConstructionMs
		table = append(table, []string{
			spec.Name,
			fmt.Sprintf("%.1f", row.ConstructionMs),
			fmt.Sprintf("%d", row.UpdatesDone[last]),
			fmt.Sprintf("%.1f", row.CumulativeMs[last]),
			fmt.Sprintf("%.2fx", ratio),
		})
	}
	writeTable(cfg.Out,
		"Figure 4: cumulative IncHL+ update time vs construction time",
		[]string{"Dataset", "construct ms", "#updates", "cumulative ms", "cum/construct"},
		table)
	return rows, nil
}

func fig4Dataset(spec dataset.Spec, cfg Config, total, batch int) (Fig4Row, error) {
	g := dataset.Generate(spec, cfg.Scale, cfg.Seed)
	k := cfg.landmarkCount(spec)
	lm := landmark.ByDegree(g, k)

	row := Fig4Row{Dataset: spec.Name, BatchSize: batch}
	start := time.Now()
	idx, err := hcl.Build(g, lm)
	if err != nil {
		return row, err
	}
	row.ConstructionMs = float64(time.Since(start)) / float64(time.Millisecond)

	inserts := SampleInsertions(g, total, cfg.Seed+404)
	upd := inchl.New(idx)
	var cum float64
	for done := 0; done < len(inserts); {
		end := done + batch
		if end > len(inserts) {
			end = len(inserts)
		}
		t0 := time.Now()
		for ; done < end; done++ {
			if _, err := upd.InsertEdge(inserts[done][0], inserts[done][1]); err != nil {
				return row, err
			}
		}
		cum += float64(time.Since(t0)) / float64(time.Millisecond)
		row.UpdatesDone = append(row.UpdatesDone, done)
		row.CumulativeMs = append(row.CumulativeMs, cum)
	}
	return row, nil
}
