package exper

import (
	"fmt"

	"repro/internal/dataset"
)

// Table2 reproduces the paper's Table 2 (dataset summary) for the proxies:
// |V|, |E|, average degree, sampled average distance, next to the
// paper-reported values for the real networks.
func Table2(cfg Config) ([]dataset.Summary, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	sums := make([]dataset.Summary, 0, len(specs))
	rows := make([][]string, 0, len(specs))
	for _, spec := range specs {
		g := dataset.Generate(spec, cfg.Scale, cfg.Seed)
		samples := 200
		if g.NumVertices() < samples {
			samples = g.NumVertices()
		}
		s := dataset.Summarize(spec, g, samples, cfg.Seed+5)
		sums = append(sums, s)
		rows = append(rows, []string{
			spec.Name, string(spec.Kind),
			fmt.Sprintf("%d", s.V), fmt.Sprintf("%d", s.E),
			fmt.Sprintf("%.2f", s.AvgDeg), fmt.Sprintf("%.1f", s.AvgDist),
			spec.PaperV, spec.PaperE,
			fmt.Sprintf("%.2f", spec.PaperAvgDeg), fmt.Sprintf("%.1f", spec.PaperAvgDist),
		})
	}
	writeTable(cfg.Out,
		"Table 2: dataset summary (proxy vs paper)",
		[]string{"Dataset", "Network", "|V|", "|E|", "avg deg", "avg dist",
			"paper |V|", "paper |E|", "paper deg", "paper dist"},
		rows)
	return sums, nil
}
