package exper

import (
	"bytes"
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
)

// PackedRow reports, for one dataset proxy, what the CSR-flattened read
// representation buys over the per-vertex slice layout: query latency on
// both paths, the cost of packing (full and delta-aware after a one-edge
// repair on a fork), checkpoint save/load time over the arena codec, and
// the storage charged per vertex.
type PackedRow struct {
	Dataset  string
	Vertices int
	Entries  int64

	// Mean and 99th-percentile single-query latency in microseconds.
	SliceMeanUs, SliceP99Us   float64
	PackedMeanUs, PackedP99Us float64

	// PackMs is the full flatten of every label; RepackMs the delta-aware
	// repack after one IncHL+ repair on a fork of the packed parent.
	PackMs, RepackMs float64

	// SaveMs/LoadMs time the labelling codec (checkpoint write and load).
	SaveMs, LoadMs float64

	// BytesPerVertex charges the packed arena (entries + offset index).
	BytesPerVertex float64
}

// Packed runs the packed-versus-slice read-path experiment backing the
// EXPERIMENTS.md table (invoked by `hlbench -exp packed`).
func Packed(cfg Config) ([]PackedRow, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	rows := make([]PackedRow, 0, len(specs))
	for _, spec := range specs {
		base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
		k := cfg.landmarkCount(spec)
		lm := landmark.ByDegree(base, k)
		idx, err := hcl.Build(base, lm)
		if err != nil {
			return nil, fmt.Errorf("packed: dataset %s: %w", spec.Name, err)
		}
		queries := SampleQueries(base.NumVertices(), cfg.Queries, cfg.Seed+303)

		row := PackedRow{
			Dataset:  spec.Name,
			Vertices: base.NumVertices(),
			Entries:  idx.NumEntries(),
		}
		row.SliceMeanUs, row.SliceP99Us = timeQueriesDist(queries, idx.Query)

		start := time.Now()
		idx.Pack()
		row.PackMs = float64(time.Since(start).Microseconds()) / 1e3
		row.PackedMeanUs, row.PackedP99Us = timeQueriesDist(queries, idx.Query)
		row.BytesPerVertex = float64(idx.PackedLabels().ArenaBytes()) / float64(base.NumVertices())

		// Delta repack: fork the packed index, repair one inserted edge,
		// pack again — only the chunks the repair touched are rebuilt.
		if e := SampleInsertions(base, 1, cfg.Seed+404); len(e) == 1 {
			fork := idx.Fork(base.Fork())
			if _, err := inchl.New(fork).InsertEdge(e[0][0], e[0][1]); err != nil {
				return nil, fmt.Errorf("packed: dataset %s: repair: %w", spec.Name, err)
			}
			start = time.Now()
			fork.Pack()
			row.RepackMs = float64(time.Since(start).Microseconds()) / 1e3
		}

		var buf bytes.Buffer
		start = time.Now()
		if _, err := idx.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("packed: dataset %s: save: %w", spec.Name, err)
		}
		row.SaveMs = float64(time.Since(start).Microseconds()) / 1e3
		start = time.Now()
		if _, err := hcl.ReadIndex(bytes.NewReader(buf.Bytes()), base); err != nil {
			return nil, fmt.Errorf("packed: dataset %s: load: %w", spec.Name, err)
		}
		row.LoadMs = float64(time.Since(start).Microseconds()) / 1e3

		rows = append(rows, row)
	}
	renderPacked(cfg, rows)
	return rows, nil
}

// timeQueriesDist measures each query individually, returning the mean and
// 99th-percentile latency in microseconds.
func timeQueriesDist(pairs [][2]uint32, q func(u, v uint32) graph.Dist) (mean, p99 float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	lat := make([]float64, len(pairs))
	var total float64
	for i, p := range pairs {
		start := time.Now()
		q(p[0], p[1])
		us := float64(time.Since(start).Nanoseconds()) / 1e3
		lat[i] = us
		total += us
	}
	sort.Float64s(lat)
	return total / float64(len(lat)), lat[len(lat)*99/100]
}

func renderPacked(cfg Config, rows []PackedRow) {
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Packed label arena: CSR read path vs per-vertex slices")
	fmt.Fprintln(tw, "dataset\t|V|\tentries\tslice µs (p99)\tpacked µs (p99)\tpack ms\trepack ms\tsave ms\tload ms\tB/vertex")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f (%.2f)\t%.2f (%.2f)\t%.1f\t%.2f\t%.1f\t%.1f\t%.1f\n",
			r.Dataset, r.Vertices, r.Entries,
			r.SliceMeanUs, r.SliceP99Us, r.PackedMeanUs, r.PackedP99Us,
			r.PackMs, r.RepackMs, r.SaveMs, r.LoadMs, r.BytesPerVertex)
	}
	tw.Flush()
}
