package exper

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fulldyn"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/stats"
)

// Fig3LandmarkCounts are the |R| values swept in the paper's Figure 3.
var Fig3LandmarkCounts = []int{10, 20, 30, 40, 50}

// Fig3Row holds the average update time of IncHL+ and IncFD on one dataset
// for one landmark count.
type Fig3Row struct {
	Dataset   string
	Landmarks int
	IncHLMs   float64
	IncFDMs   float64 // NaN when IncFD is infeasible on the dataset
}

// Fig3 reproduces Figure 3: average update time of IncHL+ (vs IncFD) under
// 10–50 landmarks.
func Fig3(cfg Config) ([]Fig3Row, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	counts := Fig3LandmarkCounts
	if cfg.Landmarks > 0 {
		counts = []int{cfg.Landmarks}
	}
	var rows []Fig3Row
	var table [][]string
	for _, spec := range specs {
		base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
		inserts := SampleInsertions(base, cfg.Updates, cfg.Seed+303)
		for _, k := range counts {
			lm := landmark.ByDegree(base, k)
			row := Fig3Row{Dataset: spec.Name, Landmarks: k}

			gHL := base.Clone()
			idxHL, err := hcl.Build(gHL, lm)
			if err != nil {
				return nil, fmt.Errorf("fig3: %s |R|=%d: %w", spec.Name, k, err)
			}
			upd := inchl.New(idxHL)
			row.IncHLMs, err = timeUpdates(len(inserts), func(i int) error {
				_, err := upd.InsertEdge(inserts[i][0], inserts[i][1])
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig3: %s |R|=%d: %w", spec.Name, k, err)
			}

			if spec.FDFeasible {
				gFD := base.Clone()
				idxFD, err := fulldyn.Build(gFD, lm)
				if err != nil {
					return nil, fmt.Errorf("fig3: %s |R|=%d: %w", spec.Name, k, err)
				}
				row.IncFDMs, err = timeUpdates(len(inserts), func(i int) error {
					return idxFD.InsertEdge(inserts[i][0], inserts[i][1])
				})
				if err != nil {
					return nil, fmt.Errorf("fig3: %s |R|=%d: %w", spec.Name, k, err)
				}
			} else {
				row.IncFDMs = infeasible().UpdateMs
			}
			rows = append(rows, row)
			table = append(table, []string{
				spec.Name, fmt.Sprintf("%d", k),
				stats.FormatMillis(row.IncHLMs), stats.FormatMillis(row.IncFDMs),
			})
		}
	}
	writeTable(cfg.Out,
		"Figure 3: average update time (ms) under varying landmarks",
		[]string{"Dataset", "|R|", "IncHL+", "IncFD"},
		table)
	return rows, nil
}
