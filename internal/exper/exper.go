// Package exper is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6) on the synthetic dataset
// proxies: Table 2 (dataset summary), Figure 1 (affected-vertex
// distribution), Table 1 (update/query/size comparison of IncHL+, IncFD,
// IncPLL), Figure 3 (update time under varying landmark counts) and
// Figure 4 (cumulative update time versus reconstruction).
package exper

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// Config controls an experiment run. Zero values select the defaults noted
// on each field.
type Config struct {
	// Scale multiplies every proxy's vertex count (default 1.0; tests and
	// benchmarks use smaller values).
	Scale float64
	// Updates is the number of edge insertions per dataset (default 1000,
	// the paper's workload).
	Updates int
	// Queries is the number of distance queries per dataset (default
	// 10000; the paper uses 100000).
	Queries int
	// Landmarks overrides the per-dataset |R| when positive.
	Landmarks int
	// Seed drives every sampled workload (default 1).
	Seed int64
	// Datasets selects a subset by name (default: all 12).
	Datasets []string
	// Workers is the fan-out sweep for the repair experiment (default
	// 1, 2, 4, 8); the first entry is the speedup baseline. Other
	// experiments ignore it.
	Workers []int
	// Out receives the rendered tables (nil discards them).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Updates <= 0 {
		c.Updates = 1000
	}
	if c.Queries <= 0 {
		c.Queries = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.Names()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) specs() ([]dataset.Spec, error) {
	out := make([]dataset.Spec, 0, len(c.Datasets))
	for _, name := range c.Datasets {
		s, err := dataset.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (c Config) landmarkCount(spec dataset.Spec) int {
	if c.Landmarks > 0 {
		return c.Landmarks
	}
	return spec.Landmarks
}

// SampleInsertions returns count vertex pairs that are non-edges of g, all
// distinct, for use as the insertion workload E_I (E_I ∩ E = ∅, Section 6).
func SampleInsertions(g *graph.Graph, count int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	seen := make(map[[2]uint32]bool, count)
	out := make([][2]uint32, 0, count)
	for tries := 0; len(out) < count && tries < 400*count+10000; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		key := [2]uint32{min(u, v), max(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// SampleQueries returns count random vertex pairs.
func SampleQueries(n, count int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]uint32, count)
	for i := range out {
		out[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return out
}

// writeTable renders an aligned text table.
func writeTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
