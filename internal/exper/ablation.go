package exper

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
	"repro/internal/stats"
)

// AblationRow quantifies the design choices called out in DESIGN.md on one
// dataset: the partial repair of IncHL+ versus rebuilding each affected
// landmark's labelling (RepairRebuild), and how often the equal-distance
// rule of Lemma 4.3 eliminates a landmark outright.
type AblationRow struct {
	Dataset          string
	PartialMs        float64 // IncHL+ repair, mean per update
	RebuildMs        float64 // per-landmark rebuild repair, mean per update
	Speedup          float64 // RebuildMs / PartialMs
	SkippedLandmarks float64 // mean fraction of landmarks skipped per update
}

// Ablation runs the repair-strategy and landmark-skip ablations.
func Ablation(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var table [][]string
	for _, spec := range specs {
		base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
		k := cfg.landmarkCount(spec)
		lm := landmark.ByDegree(base, k)
		inserts := SampleInsertions(base, cfg.Updates, cfg.Seed+505)
		row := AblationRow{Dataset: spec.Name}

		var skipped, totalLm int
		{
			g := base.Clone()
			idx, err := hcl.Build(g, lm)
			if err != nil {
				return nil, fmt.Errorf("ablation: %s: %w", spec.Name, err)
			}
			upd := inchl.New(idx)
			row.PartialMs, err = timeUpdates(len(inserts), func(i int) error {
				st, err := upd.InsertEdge(inserts[i][0], inserts[i][1])
				skipped += st.LandmarksSkipped
				totalLm += st.LandmarksTotal
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("ablation: %s: %w", spec.Name, err)
			}
		}
		{
			g := base.Clone()
			idx, err := hcl.Build(g, lm)
			if err != nil {
				return nil, fmt.Errorf("ablation: %s: %w", spec.Name, err)
			}
			upd := inchl.New(idx)
			upd.Strategy = inchl.RepairRebuild
			row.RebuildMs, err = timeUpdates(len(inserts), func(i int) error {
				_, err := upd.InsertEdge(inserts[i][0], inserts[i][1])
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("ablation: %s: %w", spec.Name, err)
			}
		}
		row.Speedup = row.RebuildMs / row.PartialMs
		if totalLm > 0 {
			row.SkippedLandmarks = float64(skipped) / float64(totalLm)
		}
		rows = append(rows, row)
		table = append(table, []string{
			spec.Name,
			stats.FormatMillis(row.PartialMs),
			stats.FormatMillis(row.RebuildMs),
			fmt.Sprintf("%.1fx", row.Speedup),
			fmt.Sprintf("%.0f%%", 100*row.SkippedLandmarks),
		})
	}
	writeTable(cfg.Out,
		"Ablation: partial repair vs per-landmark rebuild; Lemma 4.3 skip rate",
		[]string{"Dataset", "partial ms", "rebuild ms", "speedup", "skipped |R|"},
		table)
	return rows, nil
}
