package exper

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/hcl"
	"repro/internal/inchl"
	"repro/internal/landmark"
)

// RepairRow holds one (dataset, worker-count) cell of the repair-engine
// scaling experiment: parallel construction time plus per-op repair
// latencies for an insert-then-delete workload, and the speedups over the
// serial run of the same workload.
type RepairRow struct {
	Dataset       string
	Workers       int // requested fan-out (>= 1; resolved literally)
	BuildMs       float64
	InsertUs      float64 // mean per-insertion repair time
	DeleteUs      float64 // mean per-deletion repair time
	BuildSpeedup  float64 // serial build time / this build time
	RepairSpeedup float64 // serial total repair time / this total repair time
}

// Repair measures the parallel repair engine: for each dataset it rebuilds
// the same labelling and replays the same insert+delete workload at each
// fan-out in cfg.Workers (default 1, 2, 4, 8), reporting per-op repair
// time and the speedup over the serial run. The labelling is
// byte-identical across worker counts (pinned by the determinism tests),
// so the runs differ only in wall-clock.
func Repair(cfg Config) ([]RepairRow, error) {
	cfg = cfg.withDefaults()
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	var rows []RepairRow
	var table [][]string
	for _, spec := range specs {
		cells, err := repairDataset(spec, cfg, workers)
		if err != nil {
			return nil, fmt.Errorf("repair: dataset %s: %w", spec.Name, err)
		}
		rows = append(rows, cells...)
		for _, r := range cells {
			table = append(table, []string{
				r.Dataset,
				fmt.Sprintf("%d", r.Workers),
				fmt.Sprintf("%.1f", r.BuildMs),
				fmt.Sprintf("%.1f", r.InsertUs),
				fmt.Sprintf("%.1f", r.DeleteUs),
				fmt.Sprintf("%.2fx", r.BuildSpeedup),
				fmt.Sprintf("%.2fx", r.RepairSpeedup),
			})
		}
	}
	writeTable(cfg.Out,
		"Repair engine: build/repair scaling over worker counts",
		[]string{"Dataset", "workers", "build ms", "insert µs", "delete µs", "build spd", "repair spd"},
		table)
	return rows, nil
}

// repairDataset runs the worker sweep for one dataset. The first entry of
// workers is the speedup baseline (callers pass 1 first for the serial
// reference).
func repairDataset(spec dataset.Spec, cfg Config, workers []int) ([]RepairRow, error) {
	base := dataset.Generate(spec, cfg.Scale, cfg.Seed)
	lm := landmark.ByDegree(base, cfg.landmarkCount(spec))
	inserts := SampleInsertions(base, cfg.Updates, cfg.Seed+505)

	rows := make([]RepairRow, 0, len(workers))
	var serialBuild, serialRepair time.Duration
	for i, w := range workers {
		g := base.Clone()
		t0 := time.Now()
		idx, err := hcl.BuildParallel(g, lm, w)
		if err != nil {
			return nil, err
		}
		build := time.Since(t0)

		upd := inchl.New(idx)
		upd.Workers = w
		t0 = time.Now()
		for _, e := range inserts {
			if _, err := upd.InsertEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
		insert := time.Since(t0)
		t0 = time.Now()
		for _, e := range inserts {
			if _, err := upd.DeleteEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
		del := time.Since(t0)

		if i == 0 {
			serialBuild, serialRepair = build, insert+del
		}
		perOp := float64(len(inserts))
		rows = append(rows, RepairRow{
			Dataset:       spec.Name,
			Workers:       w,
			BuildMs:       float64(build) / float64(time.Millisecond),
			InsertUs:      float64(insert) / float64(time.Microsecond) / perOp,
			DeleteUs:      float64(del) / float64(time.Microsecond) / perOp,
			BuildSpeedup:  float64(serialBuild) / float64(build),
			RepairSpeedup: float64(serialRepair) / float64(insert+del),
		})
	}
	return rows, nil
}
