// Package bitset provides a compact bit vector used to mark visited vertices
// during graph traversals.
package bitset

import "math/bits"

// Set is a fixed-capacity bit vector. The zero value is an empty set of
// capacity zero; use New or Grow to size it.
type Set struct {
	words []uint64
	size  int
}

// New returns a Set able to hold n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), size: n}
}

// Len reports the capacity of the set in bits.
func (s *Set) Len() int { return s.size }

// Grow extends the capacity of the set to at least n bits, preserving
// existing bits.
func (s *Set) Grow(n int) {
	if n <= s.size {
		return
	}
	need := (n + 63) / 64
	if need > len(s.words) {
		w := make([]uint64, need)
		copy(w, s.words)
		s.words = w
	}
	s.size = n
}

// Set sets bit i.
func (s *Set) Set(i uint32) {
	s.words[i>>6] |= 1 << (i & 63)
}

// SetAll sets every bit in 0..Len()-1.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := s.size & 63; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << tail) - 1
	}
}

// NewAllSet returns a Set of n bits, all set — the fork-time "everything is
// shared with the parent" state of the copy-on-write structures.
func NewAllSet(n int) *Set {
	s := New(n)
	s.SetAll()
	return s
}

// Clear clears bit i.
func (s *Set) Clear(i uint32) {
	s.words[i>>6] &^= 1 << (i & 63)
}

// Get reports whether bit i is set.
func (s *Set) Get(i uint32) bool {
	return s.words[i>>6]&(1<<(i&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears every bit, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ResetSparse clears only the listed bits. For traversals that touch a small
// fraction of a large set this is much cheaper than Reset.
func (s *Set) ResetSparse(set []uint32) {
	for _, i := range set {
		s.Clear(i)
	}
}

// AllSet reports whether every bit in [lo, hi) is set. An empty range is
// trivially all-set. Bits at or beyond Len() count as clear, matching Get.
func (s *Set) AllSet(lo, hi int) bool {
	if hi > s.size {
		return lo >= hi
	}
	if lo >= hi {
		return true
	}
	lw, hw := lo>>6, (hi-1)>>6
	if lw == hw {
		mask := (^uint64(0) << (lo & 63)) & (^uint64(0) >> (63 - (hi-1)&63))
		return s.words[lw]&mask == mask
	}
	if head := ^uint64(0) << (lo & 63); s.words[lw]&head != head {
		return false
	}
	for i := lw + 1; i < hw; i++ {
		if s.words[i] != ^uint64(0) {
			return false
		}
	}
	tail := ^uint64(0) >> (63 - (hi-1)&63)
	return s.words[hw]&tail == tail
}
