package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearGet(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len: got %d", s.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 127, 129} {
		if s.Get(i) {
			t.Errorf("bit %d should start clear", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Count() != 6 {
		t.Errorf("Count: got %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 5 {
		t.Errorf("Clear(64) failed: count %d", s.Count())
	}
}

func TestReset(t *testing.T) {
	s := New(100)
	for i := uint32(0); i < 100; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Errorf("Count after Reset: %d", s.Count())
	}
}

func TestResetSparse(t *testing.T) {
	s := New(100)
	touched := []uint32{3, 50, 99}
	for _, i := range touched {
		s.Set(i)
	}
	s.ResetSparse(touched)
	if s.Count() != 0 {
		t.Errorf("Count after ResetSparse: %d", s.Count())
	}
}

func TestGrow(t *testing.T) {
	s := New(10)
	s.Set(5)
	s.Grow(500)
	if !s.Get(5) {
		t.Error("Grow lost bit 5")
	}
	s.Set(499)
	if !s.Get(499) || s.Count() != 2 {
		t.Errorf("bits after grow: count %d", s.Count())
	}
	s.Grow(100) // no-op shrink attempt
	if s.Len() != 500 {
		t.Errorf("Len after smaller Grow: %d", s.Len())
	}
}

func TestQuickMirrorsMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(1 << 16)
		m := map[uint32]bool{}
		for i, op := range ops {
			v := uint32(op)
			if i%4 == 3 {
				s.Clear(v)
				delete(m, v)
			} else {
				s.Set(v)
				m[v] = true
			}
		}
		if s.Count() != len(m) {
			return false
		}
		for v := range m {
			if !s.Get(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSet(t *testing.T) {
	s := New(200)
	if !s.AllSet(5, 5) || !s.AllSet(300, 100) {
		t.Error("empty ranges must be trivially all-set")
	}
	if s.AllSet(0, 1) {
		t.Error("cleared bit reported set")
	}
	for i := uint32(64); i < 140; i++ {
		s.Set(i)
	}
	if !s.AllSet(64, 140) {
		t.Error("fully set range reported unset")
	}
	if !s.AllSet(70, 130) || !s.AllSet(100, 101) {
		t.Error("interior ranges reported unset")
	}
	if s.AllSet(63, 140) || s.AllSet(64, 141) || s.AllSet(0, 200) {
		t.Error("ranges crossing cleared bits reported set")
	}
	// Word-boundary edges: single-word spans and exact multiples of 64.
	if !s.AllSet(64, 128) || !s.AllSet(128, 140) {
		t.Error("word-aligned spans reported unset")
	}
	if s.AllSet(190, 201) {
		t.Error("range beyond Len with cleared bits reported set")
	}
	full := NewAllSet(130)
	if !full.AllSet(0, 130) || !full.AllSet(0, 64) || !full.AllSet(64, 130) {
		t.Error("NewAllSet ranges reported unset")
	}
	if full.AllSet(0, 131) {
		t.Error("range beyond Len must count missing bits as clear")
	}
}
