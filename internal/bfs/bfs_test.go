package bfs_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestAllOnPath(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	d := bfs.Distances(g, 0)
	for i, want := range []graph.Dist{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d]: got %d, want %d", i, d[i], want)
		}
	}
}

func TestDistDisconnected(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	if got := bfs.Dist(g, 0, 3); got != graph.Inf {
		t.Errorf("bfs.Dist(0,3): got %d, want Inf", got)
	}
	if got := bfs.Dist(g, 2, 2); got != 0 {
		t.Errorf("bfs.Dist(2,2): got %d, want 0", got)
	}
}

func newScratch(n int) *bfs.QuerySpace {
	du := make([]graph.Dist, n)
	dv := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		du[i] = graph.Inf
		dv[i] = graph.Inf
	}
	return &bfs.QuerySpace{DistU: du, DistV: dv}
}

func TestSparsifiedNoAvoidMatchesBFS(t *testing.T) {
	g := testutil.RandomGraph(50, 90, 2)
	qs := newScratch(50)
	for u := uint32(0); u < 50; u++ {
		want := bfs.Distances(g, u)
		for v := uint32(0); v < 50; v++ {
			got := bfs.Sparsified(g, u, v, graph.Inf, nil, qs)
			if got != want[v] {
				t.Fatalf("bfs.Sparsified(%d,%d): got %d, want %d", u, v, got, want[v])
			}
		}
	}
}

func TestSparsifiedScratchRestored(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 60, 4)
	qs := newScratch(40)
	_ = bfs.Sparsified(g, 0, 39, graph.Inf, nil, qs)
	for i := 0; i < 40; i++ {
		if qs.DistU[i] != graph.Inf || qs.DistV[i] != graph.Inf {
			t.Fatalf("scratch not restored at %d: %d/%d", i, qs.DistU[i], qs.DistV[i])
		}
	}
}

func TestSparsifiedAvoidsVertices(t *testing.T) {
	// 0-1-2 and 0-3-4-2: avoiding vertex 1 must force the long route.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {4, 2}} {
		g.MustAddEdge(e[0], e[1])
	}
	qs := newScratch(5)
	avoid := func(v uint32) bool { return v == 1 }
	if got := bfs.Sparsified(g, 0, 2, graph.Inf, avoid, qs); got != 3 {
		t.Errorf("avoiding 1: got %d, want 3", got)
	}
	avoidBoth := func(v uint32) bool { return v == 1 || v == 3 }
	if got := bfs.Sparsified(g, 0, 2, graph.Inf, avoidBoth, qs); got != graph.Inf {
		t.Errorf("avoiding 1 and 3: got %d, want Inf", got)
	}
}

func TestSparsifiedEndpointExemptFromAvoid(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	qs := newScratch(3)
	avoid := func(v uint32) bool { return v == 0 || v == 2 }
	if got := bfs.Sparsified(g, 0, 2, graph.Inf, avoid, qs); got != 2 {
		t.Errorf("endpoints avoided: got %d, want 2", got)
	}
}

func TestSparsifiedRespectsBound(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	qs := newScratch(6)
	if got := bfs.Sparsified(g, 0, 5, 4, nil, qs); got != graph.Inf {
		t.Errorf("bound 4 on distance 5: got %d, want Inf", got)
	}
	if got := bfs.Sparsified(g, 0, 5, 5, nil, qs); got != 5 {
		t.Errorf("bound 5 on distance 5: got %d, want 5", got)
	}
	if got := bfs.Sparsified(g, 0, 5, 0, nil, qs); got != graph.Inf {
		t.Errorf("bound 0: got %d, want Inf", got)
	}
}

func TestSparsifiedQuickAgainstAvoidedOracle(t *testing.T) {
	// Property: Sparsified equals a plain BFS on a copy of the graph with
	// the avoided vertices' edges removed (endpoints exempt).
	rng := rand.New(rand.NewSource(77))
	check := func() bool {
		n := 30
		g := testutil.RandomGraph(n, 55, rng.Int63())
		av1 := uint32(rng.Intn(n))
		av2 := uint32(rng.Intn(n))
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		avoid := func(x uint32) bool { return x == av1 || x == av2 }
		// Build the pruned graph: drop all edges incident to avoided
		// vertices except those incident to u or v themselves.
		pruned := graph.New(n)
		for i := 0; i < n; i++ {
			pruned.AddVertex()
		}
		g.Edges(func(x, y uint32) {
			xBad := avoid(x) && x != u && x != v
			yBad := avoid(y) && y != u && y != v
			if !xBad && !yBad {
				pruned.MustAddEdge(x, y)
			}
		})
		want := bfs.Dist(pruned, u, v)
		qs := newScratch(n)
		got := bfs.Sparsified(g, u, v, graph.Inf, avoid, qs)
		return got == want
	}
	for i := 0; i < 300; i++ {
		if !check() {
			t.Fatalf("iteration %d: sparsified search disagrees with pruned-graph oracle", i)
		}
	}
}

func TestSparsifiedQuickBoundNeverLies(t *testing.T) {
	// Property: with a finite bound, the result is either Inf or a value
	// within the bound equal to the unbounded result.
	f := func(seed int64, boundRaw uint8) bool {
		g := testutil.RandomGraph(25, 40, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		u := uint32(rng.Intn(25))
		v := uint32(rng.Intn(25))
		bound := graph.Dist(boundRaw % 8)
		qs := newScratch(25)
		free := bfs.Sparsified(g, u, v, graph.Inf, nil, qs)
		got := bfs.Sparsified(g, u, v, bound, nil, qs)
		if free <= bound {
			return got == free
		}
		return got == graph.Inf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
