// Package bfs implements the breadth-first-search toolkit shared by the
// labelling methods: full single-source BFS, distance queries between single
// pairs, and the bounded bidirectional search over a landmark-sparsified
// graph that turns a highway-cover upper bound into an exact distance
// (Section 3 of Farhan & Wang, EDBT 2021).
package bfs

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/queue"
)

// QuerySpace is the per-query scratch of the bounded bidirectional searches
// (Sparsified here and digraph.Sparsified): two distance vectors whose
// entries are graph.Inf between queries, the touched list used to restore
// them sparsely, and the frontier buffers the search levels rotate through.
// Keeping the frontiers here (instead of allocating per level) is what
// makes the indexed query paths allocation-free in steady state.
type QuerySpace struct {
	DistU, DistV []graph.Dist
	Touched      []uint32

	// Fronts are the three frontier buffers the bidirectional searches
	// rotate (Sparsified here and digraph.Sparsified): the two live sides
	// plus the level under construction. Capacity persists across queries
	// drawn from the same pool.
	Fronts [3][]uint32
}

// SpacePool hands out query scratch sized for at least n vertices. Handing
// every in-flight query its own QuerySpace — instead of sharing one set of
// buffers on the index — is what makes the indexed query paths safe for any
// number of concurrent readers.
type SpacePool struct {
	pool sync.Pool
}

// Get returns a QuerySpace covering n vertices, entries all graph.Inf.
func (sp *SpacePool) Get(n int) *QuerySpace {
	s, _ := sp.pool.Get().(*QuerySpace)
	if s == nil {
		s = &QuerySpace{}
	}
	if len(s.DistU) < n {
		s.DistU = make([]graph.Dist, n)
		s.DistV = make([]graph.Dist, n)
		for i := 0; i < n; i++ {
			s.DistU[i] = graph.Inf
			s.DistV[i] = graph.Inf
		}
	}
	return s
}

// Put returns s to the pool for reuse; s must be restored (all distance
// entries graph.Inf), which Sparsified guarantees on return.
func (sp *SpacePool) Put(s *QuerySpace) { sp.pool.Put(s) }

// All computes the distances from src to every vertex, writing them into
// dist, which must have length g.NumVertices(). Unreached vertices get
// graph.Inf.
func All(g *graph.Graph, src uint32, dist []graph.Dist) {
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	q := queue.NewUint32(64)
	q.Push(src)
	for !q.Empty() {
		v := q.Pop()
		dv := dist[v]
		for _, w := range g.Neighbors(v) {
			if dist[w] == graph.Inf {
				dist[w] = dv + 1
				q.Push(w)
			}
		}
	}
}

// Distances allocates and returns the full distance vector from src.
func Distances(g *graph.Graph, src uint32) []graph.Dist {
	dist := make([]graph.Dist, g.NumVertices())
	All(g, src, dist)
	return dist
}

// Dist returns the exact distance between u and v with a plain BFS. It is
// the ground-truth oracle used by tests and benchmark baselines, not by any
// indexed query path.
func Dist(g *graph.Graph, u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	dist := make([]graph.Dist, g.NumVertices())
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[u] = 0
	q := queue.NewUint32(64)
	q.Push(u)
	for !q.Empty() {
		x := q.Pop()
		dx := dist[x]
		for _, w := range g.Neighbors(x) {
			if dist[w] == graph.Inf {
				if w == v {
					return dx + 1
				}
				dist[w] = dx + 1
				q.Push(w)
			}
		}
	}
	return graph.Inf
}

// Sparsified runs a bidirectional BFS between u and v on the subgraph
// G[V\R] obtained by removing every vertex for which avoid reports true
// (the endpoints themselves are kept even if avoid holds, matching Q(u,v,Γ)
// in the paper). The search is bounded: as soon as it can prove the
// sparsified distance exceeds bound it returns graph.Inf.
//
// s carries all scratch: distance vectors of length ≥ g.NumVertices()
// whose entries must all be graph.Inf on entry (restored sparsely before
// returning, so pooled scratch needs no re-clearing) and the frontier
// buffers. A steady-state query allocates nothing.
func Sparsified(g *graph.Graph, u, v uint32, bound graph.Dist, avoid func(uint32) bool, s *QuerySpace) graph.Dist {
	if u == v {
		return 0
	}
	if bound == 0 {
		return graph.Inf
	}
	distU, distV := s.DistU, s.DistV
	touched := s.Touched[:0]
	defer func() {
		for _, x := range touched {
			distU[x] = graph.Inf
			distV[x] = graph.Inf
		}
		s.Touched = touched // keep the grown capacity
	}()

	distU[u] = 0
	distV[v] = 0
	touched = append(touched, u, v)
	frontU := append(s.Fronts[0][:0], u)
	frontV := append(s.Fronts[1][:0], v)
	spare := s.Fronts[2][:0]
	var du, dv graph.Dist // levels fully expanded on each side
	best := graph.Inf
	if bound != graph.Inf {
		best = bound + 1 // sentinel meaning "nothing within bound yet"
	}

	for len(frontU) > 0 && len(frontV) > 0 {
		// After expanding du levels on one side and dv on the other, every
		// path of length ≤ du+dv has been recorded as a meeting, so once
		// du+dv+1 ≥ best no undiscovered path can improve on best.
		if best != graph.Inf && graph.AddDist(graph.AddDist(du, dv), 1) >= best {
			break
		}
		if len(frontU) <= len(frontV) {
			next := expand(g, u, v, frontU, du, distU, distV, avoid, &best, &touched, spare)
			spare, frontU = frontU[:0], next
			du++
		} else {
			next := expand(g, v, u, frontV, dv, distV, distU, avoid, &best, &touched, spare)
			spare, frontV = frontV[:0], next
			dv++
		}
	}
	s.Fronts[0], s.Fronts[1], s.Fronts[2] = frontU, frontV, spare
	if bound != graph.Inf && best > bound {
		return graph.Inf
	}
	return best
}

// expand advances one BFS level of the side rooted at src, whose opposite
// endpoint is dst, appending the next level into next (length 0, reused
// capacity). Removed vertices are neither discovered nor expanded, except
// for the two endpoints.
func expand(g *graph.Graph, src, dst uint32, front []uint32, depth graph.Dist, dist, other []graph.Dist, avoid func(uint32) bool, best *graph.Dist, touched *[]uint32, next []uint32) []uint32 {
	for _, x := range front {
		if avoid != nil && x != src && avoid(x) {
			continue
		}
		for _, w := range g.Neighbors(x) {
			if dist[w] != graph.Inf {
				continue
			}
			if avoid != nil && w != dst && w != src && avoid(w) {
				continue // vertex removed from the sparsified graph
			}
			dist[w] = depth + 1
			*touched = append(*touched, w)
			if other[w] != graph.Inf {
				if t := graph.AddDist(depth+1, other[w]); t < *best {
					*best = t
				}
			}
			next = append(next, w)
		}
	}
	return next
}
