package landmark

import (
	"testing"

	"repro/internal/testutil"
)

func TestByDegreePicksHubs(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 120, 3)
	lm := ByDegree(g, 5)
	if len(lm) != 5 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	// Every selected landmark must have degree >= every non-selected vertex.
	minSel := 1 << 30
	sel := map[uint32]bool{}
	for _, v := range lm {
		sel[v] = true
		if d := g.Degree(v); d < minSel {
			minSel = d
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !sel[uint32(v)] && g.Degree(uint32(v)) > minSel {
			t.Fatalf("vertex %d (deg %d) beats selected min degree %d", v, g.Degree(uint32(v)), minSel)
		}
	}
}

func TestByDegreeClampsToVertexCount(t *testing.T) {
	g := testutil.RandomConnectedGraph(4, 2, 1)
	if got := len(ByDegree(g, 10)); got != 4 {
		t.Errorf("got %d landmarks, want 4", got)
	}
}

func TestByRandomDistinctAndDeterministic(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 60, 2)
	a := ByRandom(g, 10, 7)
	b := ByRandom(g, 10, 7)
	seen := map[uint32]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same selection")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate landmark %d", a[i])
		}
		seen[a[i]] = true
	}
	c := ByRandom(g, 10, 8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different selections")
	}
}

func TestByWeightedRandomDistinct(t *testing.T) {
	g := testutil.RandomConnectedGraph(30, 80, 5)
	lm := ByWeightedRandom(g, 6, 3)
	if len(lm) != 6 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	seen := map[uint32]bool{}
	for _, v := range lm {
		if seen[v] {
			t.Fatalf("duplicate landmark %d", v)
		}
		seen[v] = true
	}
}

func TestSelect(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 30, 1)
	for _, s := range []string{TopDegree, Random, WeightedRandom, ""} {
		lm, err := Select(g, 3, s, 1)
		if err != nil || len(lm) != 3 {
			t.Errorf("Select(%q): %v, %d landmarks", s, err, len(lm))
		}
	}
	if _, err := Select(g, 3, "nope", 1); err == nil {
		t.Error("unknown strategy must fail")
	}
}
