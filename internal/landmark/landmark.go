// Package landmark implements landmark (root) selection strategies for the
// highway cover labelling. The paper selects the |R| highest-degree vertices
// (the standard choice for complex networks, following Farhan et al. EDBT
// 2019 and Hayashi et al. CIKM 2016); random and degree-weighted strategies
// are provided for ablations.
package landmark

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Strategy names accepted by Select.
const (
	TopDegree      = "topdegree"
	Random         = "random"
	WeightedRandom = "weighted"
)

// ByDegree returns the k vertices with the highest degree, ties broken by
// smaller vertex id. If the graph has fewer than k vertices all of them are
// returned.
func ByDegree(g *graph.Graph, k int) []uint32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	out := append([]uint32(nil), ids[:k]...)
	return out
}

// ByRandom returns k distinct vertices chosen uniformly at random with the
// given seed.
func ByRandom(g *graph.Graph, k int, seed int64) []uint32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = uint32(perm[i])
	}
	return out
}

// ByWeightedRandom returns k distinct vertices sampled without replacement
// with probability proportional to degree+1.
func ByWeightedRandom(g *graph.Graph, k int, seed int64) []uint32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := make(map[uint32]bool, k)
	total := 2*int64(g.NumEdges()) + int64(n)
	out := make([]uint32, 0, k)
	for len(out) < k {
		t := rng.Int63n(total)
		var acc int64
		for v := 0; v < n; v++ {
			acc += int64(g.Degree(uint32(v)) + 1)
			if acc > t {
				if !chosen[uint32(v)] {
					chosen[uint32(v)] = true
					out = append(out, uint32(v))
				}
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select picks k landmarks using the named strategy.
func Select(g *graph.Graph, k int, strategy string, seed int64) ([]uint32, error) {
	switch strategy {
	case TopDegree, "":
		return ByDegree(g, k), nil
	case Random:
		return ByRandom(g, k, seed), nil
	case WeightedRandom:
		return ByWeightedRandom(g, k, seed), nil
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %q", strategy)
	}
}
