// Package landmark implements landmark (root) selection strategies for the
// highway cover labelling. The paper selects the |R| highest-degree vertices
// (the standard choice for complex networks, following Farhan et al. EDBT
// 2019 and Hayashi et al. CIKM 2016); random and degree-weighted strategies
// are provided for ablations. The strategies are defined over an abstract
// degree function so the undirected, directed and weighted variants all
// share them (SelectBy).
package landmark

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Strategy names accepted by Select and SelectBy.
const (
	TopDegree      = "topdegree"
	Random         = "random"
	WeightedRandom = "weighted"
)

// ByDegree returns the k vertices with the highest degree, ties broken by
// smaller vertex id. If the graph has fewer than k vertices all of them are
// returned.
func ByDegree(g *graph.Graph, k int) []uint32 {
	return byDegreeFunc(g.NumVertices(), g.Degree, k)
}

func byDegreeFunc(n int, degree func(uint32) int, k int) []uint32 {
	if k > n {
		k = n
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := degree(ids[i]), degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	out := append([]uint32(nil), ids[:k]...)
	return out
}

// ByRandom returns k distinct vertices chosen uniformly at random with the
// given seed.
func ByRandom(g *graph.Graph, k int, seed int64) []uint32 {
	return byRandomN(g.NumVertices(), k, seed)
}

func byRandomN(n, k int, seed int64) []uint32 {
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = uint32(perm[i])
	}
	return out
}

// ByWeightedRandom returns k distinct vertices sampled without replacement
// with probability proportional to degree+1.
func ByWeightedRandom(g *graph.Graph, k int, seed int64) []uint32 {
	return byWeightedRandomFunc(g.NumVertices(), g.Degree, g.NumEdges(), k, seed)
}

func byWeightedRandomFunc(n int, degree func(uint32) int, edges uint64, k int, seed int64) []uint32 {
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := make(map[uint32]bool, k)
	total := 2*int64(edges) + int64(n)
	out := make([]uint32, 0, k)
	for len(out) < k {
		t := rng.Int63n(total)
		var acc int64
		for v := 0; v < n; v++ {
			acc += int64(degree(uint32(v)) + 1)
			if acc > t {
				if !chosen[uint32(v)] {
					chosen[uint32(v)] = true
					out = append(out, uint32(v))
				}
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select picks k landmarks from g using the named strategy.
func Select(g *graph.Graph, k int, strategy string, seed int64) ([]uint32, error) {
	return SelectBy(g.NumVertices(), g.Degree, g.NumEdges(), k, strategy, seed)
}

// SelectBy picks k landmarks among vertices 0..n-1 using the named strategy
// over an arbitrary degree function. edges is the graph's edge count with
// Σ_v degree(v) = 2·edges (which holds for undirected degree, weighted
// degree, and directed in+out degree alike); it only weights the
// degree-proportional sampling of WeightedRandom.
func SelectBy(n int, degree func(uint32) int, edges uint64, k int, strategy string, seed int64) ([]uint32, error) {
	switch strategy {
	case TopDegree, "":
		return byDegreeFunc(n, degree, k), nil
	case Random:
		return byRandomN(n, k, seed), nil
	case WeightedRandom:
		return byWeightedRandomFunc(n, degree, edges, k, seed), nil
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %q", strategy)
	}
}
