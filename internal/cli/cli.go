// Package cli holds the graph-loading logic shared by the command-line
// front-ends (cmd/hlserver, cmd/hlquery): resolve the -graph/-mode/-dataset
// flag combination to a built dynhl.Oracle, so both binaries serve all
// three index variants identically.
package cli

import (
	"fmt"
	"os"

	dynhl "repro"
	"repro/internal/dataset"
)

// ModeUndirected is the default -mode; directed and weighted select the
// Section 5 variants.
const (
	ModeUndirected = "undirected"
	ModeDirected   = "directed"
	ModeWeighted   = "weighted"
)

// BuildOracle loads the requested graph and builds the matching variant;
// everything after this point works through the Oracle interface. Flag
// combinations that would silently discard a flag — -graph with -dataset,
// -dataset with a non-default -mode (proxies are undirected) — are errors.
func BuildOracle(path, mode, ds string, scale float64, opt dynhl.Options) (dynhl.Oracle, error) {
	if ds != "" {
		if path != "" {
			return nil, fmt.Errorf("-graph and -dataset are mutually exclusive")
		}
		if mode != ModeUndirected && mode != "" {
			return nil, fmt.Errorf("-dataset proxies are undirected; drop -mode %s or use -graph", mode)
		}
		spec, err := dataset.Lookup(ds)
		if err != nil {
			return nil, err
		}
		return dynhl.Build(dataset.Generate(spec, scale, opt.Seed), opt)
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch mode {
	case ModeUndirected, "":
		g, err := dynhl.ReadGraph(f)
		if err != nil {
			return nil, err
		}
		return dynhl.Build(g, opt)
	case ModeDirected:
		g, err := dynhl.ReadDigraph(f)
		if err != nil {
			return nil, err
		}
		return dynhl.BuildDirected(g, opt)
	case ModeWeighted:
		g, err := dynhl.ReadWeightedGraph(f)
		if err != nil {
			return nil, err
		}
		return dynhl.BuildWeighted(g, opt)
	default:
		return nil, fmt.Errorf("unknown -mode %q (want undirected, directed or weighted)", mode)
	}
}
