package repl

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	dynhl "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Leader accepts follower connections and streams the durable store's
// checkpoint images and log records to them. It implements
// dynhl.Replication, so attaching it (StartLeader does) surfaces follower
// count and the slowest follower's lag in Store.Stats.
type Leader struct {
	d     *wal.Durable
	store *dynhl.Store
	opts  Options
	ln    net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool

	shippedRecords atomic.Uint64
	shippedBytes   atomic.Uint64
	bootstraps     atomic.Uint64
	resumes        atomic.Uint64
	acksReceived   atomic.Uint64
	lastAck        atomic.Int64 // unix nanos of the newest follower ack

	reg *obs.Registry // metrics (metrics.go), built at StartLeader

	wg sync.WaitGroup
}

// session is one connected follower.
type session struct {
	conn  net.Conn
	acked atomic.Uint64
}

// StartLeader listens on addr and serves replication to any follower that
// connects, streaming d's checkpoints and log. It attaches itself to d's
// store as the dynhl.Replication layer. Close releases the listener and
// every follower connection.
func StartLeader(addr string, d *wal.Durable, opts Options) (*Leader, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Leader{
		d:        d,
		store:    d.Store(),
		opts:     opts,
		ln:       ln,
		sessions: make(map[*session]struct{}),
	}
	l.reg = newLeaderMetrics(l)
	if err := l.store.AttachReplication(l); err != nil {
		ln.Close()
		return nil, err
	}
	l.wg.Add(1)
	go l.accept()
	return l, nil
}

// Addr returns the address the leader is listening on — the value to hand
// followers, resolved even when StartLeader was given port 0.
func (l *Leader) Addr() string { return l.ln.Addr().String() }

// accept admits followers until the listener closes.
func (l *Leader) accept() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		s := &session{conn: conn}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.sessions[s] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serve(s)
	}
}

// serve runs one follower session: hello, bootstrap or resume, then stream
// until the connection or the subscription drops. Any exit just ends the
// session — the follower reconnects and resumes from wherever it got to.
func (l *Leader) serve(s *session) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.sessions, s)
		l.mu.Unlock()
		s.conn.Close()
	}()

	if err := s.conn.SetReadDeadline(time.Now().Add(l.opts.Timeout)); err != nil {
		return
	}
	typ, payload, err := readFrame(s.conn)
	if err != nil || typ != frameHello || len(payload) != 9 {
		l.opts.Logf("repl: leader: bad hello from %s: %v", s.conn.RemoteAddr(), err)
		return
	}
	have, helloEpoch := payload[0] == 1, binary.LittleEndian.Uint64(payload[1:])
	s.conn.SetReadDeadline(time.Time{})

	// Subscribe before reading the log: every record not yet on disk at the
	// TailFrom below is then guaranteed to arrive on sub (or sub is closed
	// by overflow and the session ends — never a silent gap).
	sub, cancel := l.d.SubscribeCommits(l.opts.QueueLen)
	defer cancel()

	// The ack reader doubles as the connection monitor: when the follower
	// goes away its read fails, and closing the connection here makes the
	// streaming loop's next write fail promptly too.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer s.conn.Close()
		for {
			typ, payload, err := readFrame(s.conn)
			if err != nil {
				return
			}
			if typ != frameAck {
				continue
			}
			if epoch, err := decodeU64(payload, "ack"); err == nil {
				s.acked.Store(epoch)
				l.acksReceived.Add(1)
				l.lastAck.Store(time.Now().UnixNano())
			}
		}
	}()
	defer func() { s.conn.Close(); <-readerDone }()

	lastSent, err := l.start(s, have, helloEpoch)
	if err != nil {
		l.opts.Logf("repl: leader: session with %s: %v", s.conn.RemoteAddr(), err)
		l.sendError(s, err)
		return
	}

	hb := time.NewTicker(l.opts.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case rec, ok := <-sub:
			if !ok {
				// Overflow (this follower fell QueueLen commits behind) or
				// the durable store closed; either way the follower
				// reconnects and resumes.
				l.opts.Logf("repl: leader: dropping %s: subscription lost (follower too slow or leader closing)", s.conn.RemoteAddr())
				return
			}
			if rec.Ops == nil {
				// A Load epoch has no replayable record; its state exists
				// only as the checkpoint Commit captured, so ship that.
				if lastSent, err = l.sendSnapshot(s); err != nil {
					return
				}
				continue
			}
			if rec.Epoch <= lastSent {
				continue // already covered by the disk tail
			}
			if rec.Epoch != lastSent+1 {
				l.opts.Logf("repl: leader: dropping %s: commit gap (%d after %d)", s.conn.RemoteAddr(), rec.Epoch, lastSent)
				return
			}
			if err := l.sendRecord(s, rec); err != nil {
				return
			}
			lastSent = rec.Epoch
		case <-hb.C:
			if err := writeFrame(s.conn, l.opts.Timeout, frameHeartbeat, u64Payload(l.store.Epoch())); err != nil {
				return
			}
		}
	}
}

// start brings a fresh session to the tip of the log: resume from the
// follower's epoch when the log still covers it, else a snapshot, then the
// disk tail. It returns the last epoch the follower now has. The retry
// loop covers the benign race where a checkpoint truncates the log between
// choosing an epoch and opening the tail.
func (l *Leader) start(s *session, have bool, helloEpoch uint64) (uint64, error) {
	for attempt := 0; ; attempt++ {
		var lastSent uint64
		// Records above the newest checkpoint are guaranteed present and
		// replayable (a record-less Load epoch always coincides with a
		// checkpoint at that epoch), so that is the resume floor.
		if have && helloEpoch >= l.d.CheckpointEpoch() && helloEpoch <= l.store.Epoch() {
			lastSent = helloEpoch
			l.resumes.Add(1)
		} else {
			epoch, err := l.sendSnapshot(s)
			if err != nil {
				return 0, err
			}
			lastSent = epoch
		}
		tr, err := l.d.TailFrom(lastSent + 1)
		if err == nil {
			return l.drainTail(s, tr, lastSent)
		}
		if !errors.Is(err, wal.ErrEpochTruncated) || attempt >= 2 {
			return 0, err
		}
		have = false // a concurrent checkpoint moved the floor: re-bootstrap
	}
}

// drainTail streams a disk tail, returning the last epoch shipped.
func (l *Leader) drainTail(s *session, tr *wal.TailReader, lastSent uint64) (uint64, error) {
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return lastSent, nil
		}
		if err != nil {
			return 0, err
		}
		if rec.Epoch <= lastSent {
			continue
		}
		if err := l.sendRecord(s, rec); err != nil {
			return 0, err
		}
		lastSent = rec.Epoch
	}
}

// sendSnapshot ships the newest checkpoint image and returns its epoch.
func (l *Leader) sendSnapshot(s *session) (uint64, error) {
	epoch, img, err := l.d.CheckpointImage()
	if err != nil {
		return 0, err
	}
	if err := writeFrame(s.conn, l.opts.Timeout, frameSnapshot, img); err != nil {
		return 0, err
	}
	l.bootstraps.Add(1)
	l.shippedBytes.Add(uint64(len(img)))
	return epoch, nil
}

// sendRecord ships one op-batch record.
func (l *Leader) sendRecord(s *session, rec wal.TailRecord) error {
	payload := make([]byte, 16, 16+8*len(rec.Ops))
	binary.LittleEndian.PutUint64(payload, l.store.Epoch())
	binary.LittleEndian.PutUint64(payload[8:], rec.Epoch)
	payload, err := dynhl.AppendOps(payload, rec.Ops)
	if err != nil {
		return err
	}
	if err := writeFrame(s.conn, l.opts.Timeout, frameRecords, payload); err != nil {
		return err
	}
	l.shippedRecords.Add(1)
	l.shippedBytes.Add(uint64(len(payload)))
	return nil
}

// sendError best-effort ships a terminal error to the follower, so its log
// says why the leader hung up.
func (l *Leader) sendError(s *session, err error) {
	_ = writeFrame(s.conn, l.opts.Timeout, frameError, []byte(err.Error()))
}

// ReplicationStats implements dynhl.Replication: the leader's role, its
// follower count, and how far the slowest connected follower's acks trail
// the published epoch.
func (l *Leader) ReplicationStats() dynhl.ReplicationStats {
	st := dynhl.ReplicationStats{
		Role:           "leader",
		Ready:          true,
		LeaderEpoch:    l.store.Epoch(),
		ShippedRecords: l.shippedRecords.Load(),
		ShippedBytes:   l.shippedBytes.Load(),
		Bootstraps:     l.bootstraps.Load(),
		Resumes:        l.resumes.Load(),
	}
	if nanos := l.lastAck.Load(); nanos != 0 {
		st.LastContact = time.Unix(0, nanos)
	}
	minAck := uint64(math.MaxUint64)
	l.mu.Lock()
	st.Connected = !l.closed
	st.Followers = len(l.sessions)
	for s := range l.sessions {
		if a := s.acked.Load(); a < minAck {
			minAck = a
		}
	}
	l.mu.Unlock()
	if st.Followers > 0 && st.LeaderEpoch > minAck {
		st.LagEpochs = st.LeaderEpoch - minAck
	}
	return st
}

// Close stops accepting followers and drops every session. The durable
// store itself is untouched — it keeps serving and logging locally.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for s := range l.sessions {
		s.conn.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

var _ dynhl.Replication = (*Leader)(nil)
