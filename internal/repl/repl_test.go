package repl

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	dynhl "repro"
	"repro/internal/bfs"
	"repro/internal/wal"
)

// testOpts keeps reconnects fast and routes log noise through the test.
func testOpts(t testing.TB) Options {
	t.Helper()
	return Options{
		Heartbeat:    20 * time.Millisecond,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
		Logf:         t.Logf,
	}
}

// buildIndex returns a small random connected oracle.
func buildIndex(t testing.TB, n int, seed int64) (*dynhl.Index, *dynhl.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dynhl.NewGraph(n)
	g.EnsureVertex(uint32(n - 1))
	mirror := dynhl.NewGraph(n)
	mirror.EnsureVertex(uint32(n - 1))
	for v := 1; v < n; v++ {
		u := uint32(rng.Intn(v))
		g.MustAddEdge(uint32(v), u)
		mirror.MustAddEdge(uint32(v), u)
	}
	for i := 0; i < n; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
			mirror.MustAddEdge(u, v)
		}
	}
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return idx, mirror
}

// randomOps returns a batch of valid mutations against mirror, applying
// them to mirror as it goes so later ops stay valid.
func randomOps(rng *rand.Rand, mirror *dynhl.Graph, k int) []dynhl.Op {
	var ops []dynhl.Op
	for len(ops) < k {
		n := mirror.NumVertices()
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		switch rng.Intn(4) {
		case 0, 1:
			if u != v && !mirror.HasEdge(u, v) {
				mirror.MustAddEdge(u, v)
				ops = append(ops, dynhl.InsertEdgeOp(u, v, 0))
			}
		case 2:
			if u != v && mirror.HasEdge(u, v) && mirror.Degree(u) > 1 && mirror.Degree(v) > 1 {
				if err := mirror.RemoveEdge(u, v); err == nil {
					ops = append(ops, dynhl.DeleteEdgeOp(u, v))
				}
			}
		case 3:
			if u != v {
				id := mirror.AddVertex()
				mirror.MustAddEdge(id, u)
				mirror.MustAddEdge(id, v)
				ops = append(ops, dynhl.InsertVertexOp(dynhl.Arcs(u, v)...))
			}
		}
	}
	return ops
}

// startLeader builds a durable leader over a fresh oracle and serves
// replication on a loopback port.
func startLeader(t testing.TB, n int, seed int64) (*Leader, *wal.Durable, *dynhl.Graph) {
	t.Helper()
	idx, mirror := buildIndex(t, n, seed)
	d, err := wal.Create(t.TempDir(), idx, wal.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	l, err := StartLeader("127.0.0.1:0", d, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, d, mirror
}

// startFollower connects a follower and waits for its bootstrap.
func startFollower(t testing.TB, l *Leader) *Follower {
	t.Helper()
	f := StartFollower(l.Addr(), testOpts(t))
	t.Cleanup(func() { f.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return f
}

// converge waits until the follower has applied epoch.
func converge(t testing.TB, f *Follower, epoch uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Store().WaitEpoch(ctx, epoch); err != nil {
		t.Fatalf("follower stuck at epoch %d waiting for %d: %v", f.Store().Epoch(), epoch, err)
	}
}

// assertIdentical checks the follower snapshot is byte-identical to the
// leader's at the same epoch and answers random queries identically.
func assertIdentical(t *testing.T, leader, follower *dynhl.Store, rng *rand.Rand) {
	t.Helper()
	if le, fe := leader.Epoch(), follower.Epoch(); le != fe {
		t.Fatalf("epoch mismatch: leader %d, follower %d", le, fe)
	}
	var lb, fb bytes.Buffer
	if err := leader.Save(&lb); err != nil {
		t.Fatal(err)
	}
	if err := follower.Save(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), fb.Bytes()) {
		t.Fatalf("epoch %d: follower labelling differs from leader (%d vs %d bytes)", leader.Epoch(), fb.Len(), lb.Len())
	}
	n := leader.NumVertices()
	for i := 0; i < 64; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if got, want := follower.Query(u, v), leader.Query(u, v); got != want {
			t.Fatalf("epoch %d: dist(%d,%d) = %v on follower, %v on leader", leader.Epoch(), u, v, got, want)
		}
	}
}

func TestBootstrapAndStream(t *testing.T) {
	l, d, mirror := startLeader(t, 32, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	f := startFollower(t, l)
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)

	// Live streaming after the bootstrap.
	for i := 0; i < 5; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)

	rs := f.ReplicationStats()
	if rs.Role != "follower" || !rs.Ready || rs.Leader != l.Addr() {
		t.Fatalf("follower stats %+v", rs)
	}
	ls := d.Store().Stats()
	if ls.Replication == nil || ls.Replication.Role != "leader" || ls.Replication.Followers != 1 {
		t.Fatalf("leader stats replication %+v", ls.Replication)
	}
}

func TestReconnectResume(t *testing.T) {
	l, d, mirror := startLeader(t, 32, 2)
	rng := rand.New(rand.NewSource(2))
	f := startFollower(t, l)
	converge(t, f, d.Epoch())

	f.bounce()
	for i := 0; i < 4; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)
	if got := l.resumes.Load(); got == 0 {
		t.Fatal("reconnect did not resume from the follower's epoch")
	}
}

func TestTruncatedResumeRebootstraps(t *testing.T) {
	l, d, mirror := startLeader(t, 32, 3)
	rng := rand.New(rand.NewSource(3))
	f := startFollower(t, l)
	converge(t, f, d.Epoch())
	before := l.bootstraps.Load()

	// While the follower is down, the leader checkpoints past its epoch:
	// the resume floor moves and the reconnect must ship a fresh image.
	f.bounce()
	for i := 0; i < 4; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)
	if got := l.bootstraps.Load(); got <= before {
		t.Fatalf("checkpoint past the follower's epoch should force a re-bootstrap (bootstraps %d -> %d)", before, got)
	}
}

func TestLoadEpochShipsFreshSnapshot(t *testing.T) {
	l, d, mirror := startLeader(t, 32, 4)
	rng := rand.New(rand.NewSource(4))
	f := startFollower(t, l)
	if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
		t.Fatal(err)
	}
	converge(t, f, d.Epoch())

	// A Load publish has no op record; the follower must still reach its
	// epoch, via the snapshot the leader ships instead.
	var saved bytes.Buffer
	if err := d.Store().Save(&saved); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Load(&saved); err != nil {
		t.Fatal(err)
	}
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)

	// And the stream keeps going afterwards.
	if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
		t.Fatal(err)
	}
	converge(t, f, d.Epoch())
	assertIdentical(t, d.Store(), f.Store(), rng)
}

// TestReplicationDifferential is the acceptance differential: random
// batches on the leader with periodic checkpoints and forced follower
// reconnects, asserting after every round that the follower's Save output
// is byte-identical to the leader's at the shared epoch and that both
// agree with BFS ground truth on the mirror graph.
func TestReplicationDifferential(t *testing.T) {
	l, d, mirror := startLeader(t, 48, 5)
	rng := rand.New(rand.NewSource(5))
	f := startFollower(t, l)

	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 1+rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
		switch round % 7 {
		case 3:
			if _, err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case 5:
			f.bounce()
		}
		converge(t, f, d.Epoch())
		assertIdentical(t, d.Store(), f.Store(), rng)
		// Spot-check against ground truth so "identical" is also "right".
		u, v := uint32(rng.Intn(mirror.NumVertices())), uint32(rng.Intn(mirror.NumVertices()))
		if got, want := f.Store().Query(u, v), bfs.Dist(mirror, u, v); got != want {
			t.Fatalf("round %d: dist(%d,%d) = %v, BFS says %v", round, u, v, got, want)
		}
	}
	rs := f.ReplicationStats()
	if rs.LagEpochs != 0 {
		t.Fatalf("converged follower reports lag %d", rs.LagEpochs)
	}
}

func TestTwoFollowersAndLeaderStats(t *testing.T) {
	l, d, mirror := startLeader(t, 32, 6)
	rng := rand.New(rand.NewSource(6))
	f1 := startFollower(t, l)
	f2 := startFollower(t, l)
	for i := 0; i < 4; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, f1, d.Epoch())
	converge(t, f2, d.Epoch())
	assertIdentical(t, d.Store(), f1.Store(), rng)
	assertIdentical(t, d.Store(), f2.Store(), rng)

	rs := l.ReplicationStats()
	if rs.Followers != 2 {
		t.Fatalf("leader sees %d followers, want 2", rs.Followers)
	}
	// Acks are async; the slowest-follower lag must drain to zero.
	deadline := time.Now().Add(5 * time.Second)
	for l.ReplicationStats().LagEpochs != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leader lag stuck at %d", l.ReplicationStats().LagEpochs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	idx, mirror := buildIndex(t, 32, 7)
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	d, err := wal.Create(dir, idx, wal.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	l, err := StartLeader("127.0.0.1:0", d, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	f := StartFollower(addr, testOpts(t))
	t.Cleanup(func() { f.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
		t.Fatal(err)
	}
	converge(t, f, d.Epoch())

	// Leader goes away and comes back on the same address with the same
	// durable state; the follower reconnects and picks the stream back up.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := wal.Recover(dir, wal.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	l2, err := StartLeader(addr, d2, testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l2.Close() })
	for i := 0; i < 3; i++ {
		if _, err := d2.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, f, d2.Epoch())
	assertIdentical(t, d2.Store(), f.Store(), rng)
}
