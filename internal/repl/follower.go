package repl

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	dynhl "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Follower maintains a read replica of a leader's store: it connects,
// bootstraps from a shipped checkpoint image, replays every op batch the
// leader publishes under the leader's own epoch numbers, and reconnects
// with resume whenever the link drops. The replica store serves the full
// lock-free read API; Store returns nil until the first bootstrap lands.
// It implements dynhl.Replication and attaches itself to the replica store
// it creates, so lag shows up in Store.Stats.
type Follower struct {
	leaderAddr string
	opts       Options

	store       atomic.Pointer[dynhl.Store]
	ready       atomic.Bool
	connected   atomic.Bool
	leaderEpoch atomic.Uint64
	lastContact atomic.Int64 // unix nanos of the last frame from the leader
	queueBytes  atomic.Int64 // received-but-unapplied record bytes

	// forceSnapshot makes the next hello request a full image — set when an
	// apply failed or a gap appeared, cleared when a snapshot lands.
	forceSnapshot atomic.Bool

	reconnects   atomic.Uint64 // sessions dialled after the first
	rebootstraps atomic.Uint64 // images applied over an existing store
	acksSent     atomic.Uint64

	reg *obs.Registry // metrics (metrics.go), built at StartFollower

	connMu sync.Mutex
	conn   net.Conn

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartFollower begins replicating from the leader at leaderAddr. It
// returns immediately; the replica bootstraps in the background (WaitReady
// blocks until it has) and keeps reconnecting with backoff until Close.
func StartFollower(leaderAddr string, opts Options) *Follower {
	f := &Follower{
		leaderAddr: leaderAddr,
		opts:       opts.withDefaults(),
		stop:       make(chan struct{}),
	}
	f.reg = newFollowerMetrics(f)
	f.wg.Add(1)
	go f.run()
	return f
}

// Store returns the replica store, nil until the first bootstrap completes.
// The same Store stays valid across reconnects and re-bootstraps.
func (f *Follower) Store() *dynhl.Store { return f.store.Load() }

// Leader returns the leader's replication address.
func (f *Follower) Leader() string { return f.leaderAddr }

// WaitReady blocks until the replica has bootstrapped and serves reads, or
// ctx is done.
func (f *Follower) WaitReady(ctx context.Context) error {
	for !f.ready.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-f.stop:
			return errors.New("repl: follower closed before it became ready")
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// run is the reconnect loop: one session after another, backing off on
// failure and resetting the backoff after any session that got as far as a
// working stream.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.opts.ReconnectMin
	for attempt := 0; ; attempt++ {
		select {
		case <-f.stop:
			return
		default:
		}
		if attempt > 0 {
			f.reconnects.Add(1)
		}
		err := f.session()
		f.connected.Store(false)
		select {
		case <-f.stop:
			return
		default:
		}
		if err != nil {
			f.opts.Logf("repl: follower of %s: %v (reconnecting in %v)", f.leaderAddr, err, backoff)
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

// item is one queued frame on its way from the receive loop to the apply
// goroutine.
type item struct {
	img   []byte // snapshot image, nil for a records item
	epoch uint64
	ops   []dynhl.Op
	size  int
}

// session runs one connection: hello, then receive frames into the bounded
// apply queue while a single applier goroutine replays them and writes
// acks back. It returns when the connection drops, an apply fails (the
// next session re-bootstraps), or Close fires.
func (f *Follower) session() error {
	conn, err := net.DialTimeout("tcp", f.leaderAddr, f.opts.Timeout)
	if err != nil {
		return err
	}
	f.connMu.Lock()
	f.conn = conn
	f.connMu.Unlock()
	defer func() {
		f.connMu.Lock()
		f.conn = nil
		f.connMu.Unlock()
		conn.Close()
	}()

	hello := make([]byte, 9)
	st := f.store.Load()
	if st != nil && !f.forceSnapshot.Load() {
		hello[0] = 1
		binary.LittleEndian.PutUint64(hello[1:], st.Epoch())
	}
	if err := writeFrame(conn, f.opts.Timeout, frameHello, hello); err != nil {
		return err
	}
	f.connected.Store(true)

	queue := make(chan item, f.opts.QueueLen)
	applyErr := make(chan error, 1)
	var applyWG sync.WaitGroup
	applyWG.Add(1)
	go func() {
		defer applyWG.Done()
		if err := f.apply(conn, queue); err != nil {
			applyErr <- err
			conn.Close() // unblock the receive loop
		}
	}()
	recvErr := f.receive(conn, queue)
	close(queue)
	applyWG.Wait()
	// Whatever is still queued was never applied; it no longer counts as
	// backlog — the next session re-ships it.
	f.queueBytes.Store(0)
	select {
	case err := <-applyErr:
		return err
	default:
		return recvErr
	}
}

// receive reads frames and feeds the apply queue until the connection
// fails. Heartbeats are absorbed here — only state-bearing frames queue.
func (f *Follower) receive(conn net.Conn, queue chan<- item) error {
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return fmt.Errorf("repl: link lost: %w", err)
		}
		f.lastContact.Store(time.Now().UnixNano())
		var it item
		switch typ {
		case frameSnapshot:
			it = item{img: payload, size: len(payload)}
		case frameRecords:
			if len(payload) < 16 {
				return fmt.Errorf("repl: short records frame (%d bytes)", len(payload))
			}
			f.observeLeader(binary.LittleEndian.Uint64(payload))
			epoch := binary.LittleEndian.Uint64(payload[8:])
			ops, used, err := dynhl.DecodeOps(payload[16:])
			if err != nil || used != len(payload)-16 {
				return fmt.Errorf("repl: bad op batch for epoch %d: %v", epoch, err)
			}
			it = item{epoch: epoch, ops: ops, size: len(payload)}
		case frameHeartbeat:
			epoch, err := decodeU64(payload, "heartbeat")
			if err != nil {
				return err
			}
			f.observeLeader(epoch)
			continue
		case frameError:
			return fmt.Errorf("%w: %s", errRemote, payload)
		default:
			return fmt.Errorf("repl: unknown frame type %d", typ)
		}
		f.queueBytes.Add(int64(it.size))
		select {
		case queue <- it:
		case <-f.stop:
			return errors.New("repl: follower closed")
		}
	}
}

// observeLeader advances the follower's view of the leader's published
// epoch (it never goes backwards — frames can carry a stale reading).
func (f *Follower) observeLeader(epoch uint64) {
	for {
		cur := f.leaderEpoch.Load()
		if epoch <= cur || f.leaderEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// apply is the single applier: it replays queued items into the replica
// store in order and acks each applied epoch back to the leader (it is the
// connection's only writer after the hello). An apply error poisons the
// session and flags the next one to re-bootstrap; a failed ack write is
// just a link error — the state is fine and the next session resumes.
func (f *Follower) apply(conn net.Conn, queue <-chan item) error {
	for it := range queue {
		ack, send, err := f.applyOne(it)
		if err != nil {
			f.forceSnapshot.Store(true)
			return err
		}
		f.queueBytes.Add(-int64(it.size))
		if send {
			if err := writeFrame(conn, f.opts.Timeout, frameAck, u64Payload(ack)); err != nil {
				return err
			}
			f.acksSent.Add(1)
		}
	}
	return nil
}

// applyOne replays one queued item into the replica store, returning the
// epoch to acknowledge.
func (f *Follower) applyOne(it item) (ack uint64, send bool, err error) {
	if it.img != nil {
		idx, epoch, err := wal.RebuildImageMapped(it.img, f.opts.Mmap)
		if err != nil {
			return 0, false, fmt.Errorf("repl: shipped checkpoint image: %w", err)
		}
		st := f.store.Load()
		if st == nil {
			st = dynhl.NewStoreAt(idx, epoch)
			st.SetRepairWorkers(f.opts.RepairWorkers)
			if err := st.AttachReplication(f); err != nil {
				return 0, false, err
			}
			f.store.Store(st)
		} else if err := st.Reset(idx, epoch); err != nil {
			return 0, false, err
		} else {
			f.rebootstraps.Add(1)
		}
		f.observeLeader(epoch)
		f.forceSnapshot.Store(false)
		f.ready.Store(true)
		return epoch, true, nil
	}
	st := f.store.Load()
	if st == nil {
		return 0, false, fmt.Errorf("repl: records for epoch %d before any snapshot", it.epoch)
	}
	if it.epoch <= st.Epoch() {
		return 0, false, nil // duplicate from a reconnect race; already applied
	}
	if it.epoch != st.Epoch()+1 {
		return 0, false, fmt.Errorf("repl: records gap: epoch %d shipped where %d was expected", it.epoch, st.Epoch()+1)
	}
	if _, got, err := st.ApplyEpoch(it.ops); err != nil {
		return 0, false, fmt.Errorf("repl: replaying epoch %d: %w", it.epoch, err)
	} else if got != it.epoch {
		return 0, false, fmt.Errorf("repl: replay published epoch %d, want %d", got, it.epoch)
	}
	f.observeLeader(it.epoch)
	return it.epoch, true, nil
}

// bounce drops the current connection (a test hook): the follower
// reconnects and resumes as if the network blipped.
func (f *Follower) bounce() {
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()
}

// ReplicationStats implements dynhl.Replication: the follower's link state
// and how far it trails the leader in epochs and unapplied bytes.
func (f *Follower) ReplicationStats() dynhl.ReplicationStats {
	st := dynhl.ReplicationStats{
		Role:        "follower",
		Leader:      f.leaderAddr,
		Connected:   f.connected.Load(),
		Ready:       f.ready.Load(),
		LeaderEpoch: f.leaderEpoch.Load(),
	}
	if nanos := f.lastContact.Load(); nanos != 0 {
		st.LastContact = time.Unix(0, nanos)
	}
	if b := f.queueBytes.Load(); b > 0 {
		st.LagBytes = uint64(b)
	}
	var applied uint64
	if s := f.store.Load(); s != nil {
		applied = s.Epoch()
	}
	if st.LeaderEpoch > applied {
		st.LagEpochs = st.LeaderEpoch - applied
	}
	return st
}

// Close stops replicating and drops the connection. The replica store (if
// bootstrapped) remains valid and keeps serving its last applied epoch.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.bounce()
	f.wg.Wait()
	return nil
}

var _ dynhl.Replication = (*Follower)(nil)
