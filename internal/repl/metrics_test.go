package repl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// replSample extracts one series' value from an exposition.
func replSample(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		name, raw, ok := strings.Cut(line, " ")
		if ok && name == series {
			var v float64
			if _, err := fmt.Sscanf(raw, "%g", &v); err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, raw, err)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from exposition:\n%s", series, text)
	return 0
}

// TestReplicationMetricsExposition streams a few epochs to a follower and
// checks both roles' registries ride along on their stores' registry
// lists, with role labels keeping the series apart.
func TestReplicationMetricsExposition(t *testing.T) {
	l, d, mirror := startLeader(t, 40, 3)
	f := startFollower(t, l)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
			t.Fatal(err)
		}
	}
	converge(t, f, d.Store().Epoch())

	var lb strings.Builder
	if err := obs.WriteAll(&lb, d.Store().MetricsRegistries()...); err != nil {
		t.Fatal(err)
	}
	leaderText := lb.String()
	if got := replSample(t, leaderText, `dynhl_repl_followers{role="leader"}`); got != 1 {
		t.Errorf("followers %g, want 1", got)
	}
	if got := replSample(t, leaderText, `dynhl_repl_shipped_records_total{role="leader"}`); got < 3 {
		t.Errorf("shipped_records_total %g, want >= 3", got)
	}
	if got := replSample(t, leaderText, `dynhl_repl_bootstraps_total{role="leader"}`); got != 1 {
		t.Errorf("bootstraps_total %g, want 1", got)
	}
	// The leader's store carries WAL series too: one registry list, every
	// attached layer present.
	if got := replSample(t, leaderText, "dynhl_wal_records_total"); got < 3 {
		t.Errorf("leader exposition missing WAL series: records_total %g", got)
	}

	var fb strings.Builder
	if err := obs.WriteAll(&fb, f.Store().MetricsRegistries()...); err != nil {
		t.Fatal(err)
	}
	followerText := fb.String()
	if got := replSample(t, followerText, `dynhl_repl_ready{role="follower"}`); got != 1 {
		t.Errorf("ready %g, want 1", got)
	}
	if got := replSample(t, followerText, `dynhl_repl_connected{role="follower"}`); got != 1 {
		t.Errorf("connected %g, want 1", got)
	}
	if got := replSample(t, followerText, `dynhl_repl_lag_epochs{role="follower"}`); got != 0 {
		t.Errorf("lag_epochs %g after converge, want 0", got)
	}
	// At least the bootstrap ack must have landed; the per-batch acks can
	// be cut short by a link race (the session just re-forms and resumes).
	if got := replSample(t, followerText, `dynhl_repl_acks_total{role="follower"}`); got < 1 {
		t.Errorf("acks_total %g, want >= 1", got)
	}

	// A link bounce shows up as a reconnect once the session re-forms.
	f.bounce()
	for i := 0; f.reconnects.Load() == 0 && i < 400; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if f.reconnects.Load() == 0 {
		t.Fatal("reconnect never counted after a link bounce")
	}
	var fb2 strings.Builder
	if err := obs.WriteAll(&fb2, f.Store().MetricsRegistries()...); err != nil {
		t.Fatal(err)
	}
	if got := replSample(t, fb2.String(), `dynhl_repl_reconnects_total{role="follower"}`); got < 1 {
		t.Errorf("reconnects_total %g, want >= 1", got)
	}
}
