package repl

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dynhl "repro"
	"repro/internal/wal"
)

// benchLogf silences replication log noise during benchmarks.
func benchLogf(string, ...any) {}

// benchFollower connects a follower and blocks until it has bootstrapped
// and applied tip.
func benchFollower(b *testing.B, l *Leader, opts Options, tip uint64) *Follower {
	b.Helper()
	f := StartFollower(l.Addr(), opts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		b.Fatal(err)
	}
	converge(b, f, tip)
	return f
}

// BenchmarkFollowerReplay measures the follower side of replication end to
// end: each iteration starts a fresh follower against a leader whose log
// holds a fixed number of committed batches, and times bootstrap from the
// shipped checkpoint image plus replay of the whole tail over loopback.
// The records/sec metric is the sustained replay throughput — the rate at
// which a trailing replica catches up.
func BenchmarkFollowerReplay(b *testing.B) {
	const records = 256
	idx, mirror := buildIndex(b, 512, 1)
	d, err := wal.Create(b.TempDir(), idx, wal.Options{Logf: benchLogf})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < records; i++ {
		if _, err := d.Store().Apply(randomOps(rng, mirror, 4)); err != nil {
			b.Fatal(err)
		}
	}
	opts := testOpts(b)
	opts.Logf = benchLogf
	l, err := StartLeader("127.0.0.1:0", d, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	tip := d.Epoch()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchFollower(b, l, opts, tip).Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkReplicaReadScaling serves queries from one, two and three
// converged replica stores with a shared worker pool round-robining across
// them. Replicas share nothing — each has its own packed snapshot — so the
// per-query cost must stay flat as replicas are added; fleet capacity then
// grows with the replica count, since in production each replica is its
// own process on its own cores.
func BenchmarkReplicaReadScaling(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			idx, mirror := buildIndex(b, 2048, 42)
			d, err := wal.Create(b.TempDir(), idx, wal.Options{Logf: benchLogf})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			opts := testOpts(b)
			opts.Logf = benchLogf
			l, err := StartLeader("127.0.0.1:0", d, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 8; i++ {
				if _, err := d.Store().Apply(randomOps(rng, mirror, 4)); err != nil {
					b.Fatal(err)
				}
			}
			stores := make([]*dynhl.Store, replicas)
			followers := make([]*Follower, replicas)
			for i := range stores {
				followers[i] = benchFollower(b, l, opts, d.Epoch())
				stores[i] = followers[i].Store()
			}
			defer func() {
				for _, f := range followers {
					f.Close()
				}
			}()
			n := stores[0].NumVertices()

			var worker atomic.Int64
			var queries atomic.Int64
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				id := worker.Add(1)
				st := stores[int(id)%replicas]
				rng := rand.New(rand.NewSource(id))
				local := int64(0)
				for pb.Next() {
					u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
					st.Query(u, v)
					local++
				}
				queries.Add(local)
			})
			b.ReportMetric(float64(queries.Load())/time.Since(start).Seconds(), "queries/sec")
		})
	}
}

// BenchmarkLeaderFanout measures the leader's shipping cost as followers
// are added: each iteration publishes one batch and waits until every
// follower has applied it, so the metric is the converged end-to-end
// publish latency with 1, 2 and 3 live replication streams.
func BenchmarkLeaderFanout(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("followers=%d", replicas), func(b *testing.B) {
			idx, mirror := buildIndex(b, 512, 7)
			d, err := wal.Create(b.TempDir(), idx, wal.Options{Logf: benchLogf})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			opts := testOpts(b)
			opts.Logf = benchLogf
			l, err := StartLeader("127.0.0.1:0", d, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			followers := make([]*Follower, replicas)
			for i := range followers {
				followers[i] = benchFollower(b, l, opts, d.Epoch())
			}
			defer func() {
				for _, f := range followers {
					f.Close()
				}
			}()
			rng := rand.New(rand.NewSource(7))
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Store().Apply(randomOps(rng, mirror, 2)); err != nil {
					b.Fatal(err)
				}
				tip := d.Epoch()
				for _, f := range followers {
					wg.Add(1)
					go func(f *Follower) {
						defer wg.Done()
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						defer cancel()
						if err := f.Store().WaitEpoch(ctx, tip); err != nil {
							b.Error(err) // Fatal is not goroutine-safe
						}
					}(f)
				}
				wg.Wait()
			}
		})
	}
}
