package repl

import (
	"repro/internal/obs"
)

// Metrics: each role owns a registry built at construction; every series
// carries a role label so a process hosting both (tests, future chained
// topologies) stays unambiguous. Lag is exposed as scrape-time gauge
// funcs over the same state ReplicationStats reports — the numbers on
// /metrics and /stats can never drift apart.

func newLeaderMetrics(l *Leader) *obs.Registry {
	r := obs.NewRegistry()
	role := obs.Label{Name: "role", Value: "leader"}
	r.GaugeFunc("dynhl_repl_followers", "Connected followers.",
		func() float64 { return float64(l.ReplicationStats().Followers) }, role)
	r.GaugeFunc("dynhl_repl_lag_epochs",
		"Epochs the slowest connected follower's acks trail the published epoch.",
		func() float64 { return float64(l.ReplicationStats().LagEpochs) }, role)
	r.GaugeFunc("dynhl_repl_connected", "1 while accepting followers.",
		func() float64 {
			if l.ReplicationStats().Connected {
				return 1
			}
			return 0
		}, role)
	r.CounterFunc("dynhl_repl_shipped_records_total", "Op-batch records shipped to followers.",
		l.shippedRecords.Load, role)
	r.CounterFunc("dynhl_repl_shipped_bytes_total", "Bytes shipped to followers (records and images).",
		l.shippedBytes.Load, role)
	r.CounterFunc("dynhl_repl_bootstraps_total", "Checkpoint images shipped (first contact or re-bootstrap).",
		l.bootstraps.Load, role)
	r.CounterFunc("dynhl_repl_resumes_total", "Sessions resumed from the follower's own epoch.",
		l.resumes.Load, role)
	r.CounterFunc("dynhl_repl_acks_total", "Follower acks received.",
		l.acksReceived.Load, role)
	return r
}

func newFollowerMetrics(f *Follower) *obs.Registry {
	r := obs.NewRegistry()
	role := obs.Label{Name: "role", Value: "follower"}
	r.GaugeFunc("dynhl_repl_lag_epochs", "Epochs this replica trails the leader.",
		func() float64 { return float64(f.ReplicationStats().LagEpochs) }, role)
	r.GaugeFunc("dynhl_repl_lag_bytes", "Received-but-unapplied record bytes.",
		func() float64 { return float64(f.ReplicationStats().LagBytes) }, role)
	r.GaugeFunc("dynhl_repl_connected", "1 while the leader link is up.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		}, role)
	r.GaugeFunc("dynhl_repl_ready", "1 once the replica bootstrapped and serves reads.",
		func() float64 {
			if f.ready.Load() {
				return 1
			}
			return 0
		}, role)
	r.GaugeFunc("dynhl_repl_leader_epoch", "Newest epoch the leader is known to have published.",
		func() float64 { return float64(f.leaderEpoch.Load()) }, role)
	r.CounterFunc("dynhl_repl_reconnects_total", "Sessions dialled after the first (link drops survived).",
		f.reconnects.Load, role)
	r.CounterFunc("dynhl_repl_rebootstraps_total", "Full image bootstraps after the first (resume impossible).",
		f.rebootstraps.Load, role)
	r.CounterFunc("dynhl_repl_acks_total", "Acks written back to the leader.",
		f.acksSent.Load, role)
	return r
}

// MetricsRegistry returns the leader's metrics registry;
// dynhl.Store.MetricsRegistries picks it up via the replication layer.
func (l *Leader) MetricsRegistry() *obs.Registry { return l.reg }

// MetricsRegistry returns the follower's metrics registry.
func (f *Follower) MetricsRegistry() *obs.Registry { return f.reg }
