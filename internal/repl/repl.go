// Package repl is the replication subsystem that scales reads across
// machines: a leader streams its write-ahead log to follower stores that
// replay every op batch under the leader's own epoch numbers, so any
// replica answers any query — lock-free, from the same published version
// the leader would have served — and a client that saw epoch N from a
// write can read its write on any follower via dynhl.Store.WaitEpoch.
//
// The leader piggybacks entirely on the durability subsystem: bootstrap is
// the newest checkpoint image (internal/wal's on-disk format, shipped
// verbatim), catch-up is the log tail (wal.TailReader), and live streaming
// is the commit subscription (wal.SubscribeCommits) — replication adds no
// second write path and no second serialisation format. A follower
// bootstraps through the same wal.RebuildImage/dynhl.LoadIndex route a
// crash recovery takes, then replays shipped batches through
// Store.ApplyEpoch; because epochs advance by exactly one per publish on
// both sides, leader and follower publish identical epoch numbers for
// identical states.
//
// Wire protocol, over one TCP connection per follower, each frame
// length-prefixed:
//
//	u32 payloadLen | u8 type | payload
//
//	hello     (follower→leader)  u8 have | u64 epoch
//	snapshot  (leader→follower)  checkpoint image (wal file bytes)
//	records   (leader→follower)  u64 leaderEpoch | u64 epoch | op batch
//	heartbeat (leader→follower)  u64 leaderEpoch
//	ack       (follower→leader)  u64 epoch
//	error     (leader→follower)  utf-8 message
//
// The follower opens with hello carrying its current epoch (have=0 when it
// holds no state or wants a fresh image). The leader resumes from the log
// when the follower's epoch is at or past the newest checkpoint — records
// above it are guaranteed replayable — and ships a snapshot otherwise,
// including when the log was truncated past the resume point. An epoch the
// leader published without ops (Store.Load) has no replayable record; the
// subscription notice for it makes the leader ship a fresh snapshot
// mid-stream. Slow followers are cut off by bounded queues on both sides
// (the leader's subscription buffer, the follower's apply queue) and
// reconnect with resume; acks flow back so the leader's stats expose the
// slowest follower's lag, and heartbeats keep the follower's view of the
// leader epoch fresh between writes.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"repro/internal/wal"
)

// Frame types. Values are part of the wire protocol.
const (
	frameHello     = 1
	frameSnapshot  = 2
	frameRecords   = 3
	frameHeartbeat = 4
	frameAck       = 5
	frameError     = 6
)

// maxFrameBytes bounds one frame; snapshot frames carry whole checkpoint
// images, so the cap is generous. A length beyond it is protocol damage,
// not an allocation request.
const maxFrameBytes = 1 << 30

// Options tunes both ends of a replication link. The zero value is ready
// for use.
type Options struct {
	// Heartbeat is the leader's idle-stream heartbeat cadence
	// (default 500ms).
	Heartbeat time.Duration
	// Timeout bounds every network write, the dial, and the leader's wait
	// for a follower's hello (default 10s).
	Timeout time.Duration
	// QueueLen is the depth of the leader's per-follower commit
	// subscription and the follower's apply queue (default 1024). A
	// follower that falls further behind is disconnected and resumes via
	// reconnect.
	QueueLen int
	// ReconnectMin/ReconnectMax bound the follower's reconnect backoff
	// (defaults 100ms and 3s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logf receives connection lifecycle and failure messages
	// (default log.Printf).
	Logf func(format string, args ...any)
	// Mmap selects how the follower attaches a shipped checkpoint image:
	// under wal.MapAuto (the zero value) and wal.MapOn the image is
	// spilled to an unlinked temp file and the labels served out of an
	// mmap of it, so bootstrap does not hold a heap copy of the entries;
	// wal.MapOff decodes to the heap. Leader side ignores it.
	Mmap wal.MapMode
	// RepairWorkers bounds the per-landmark fan-out of the follower's
	// replay repairs (0 = GOMAXPROCS, 1 = serial; see
	// dynhl.Options.RepairWorkers). Leader side ignores it.
	RepairWorkers int
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 3 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// writeFrame sends one frame under a write deadline.
func writeFrame(conn net.Conn, timeout time.Duration, typ byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("repl: %d-byte frame exceeds the %d-byte cap", len(payload), maxFrameBytes)
	}
	buf := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = typ
	buf = append(buf, payload...)
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

// readFrame reads one frame. The caller sets any read deadline it wants.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("repl: implausible %d-byte frame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// errRemote wraps an error frame's message received from the peer.
var errRemote = errors.New("repl: remote error")

func u64Payload(v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return buf[:]
}

func decodeU64(payload []byte, what string) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("repl: %d-byte %s frame, want 8", len(payload), what)
	}
	return binary.LittleEndian.Uint64(payload), nil
}
