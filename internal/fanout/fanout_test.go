package fanout

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{-3, 1},
		{1, 1},
		{5, 5},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRunCoversAllTasks checks every task index runs exactly once for
// serial, fixed and oversubscribed widths.
func TestRunCoversAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]atomic.Int32, n)
			Run(workers, n, func(_, task int) { hits[task].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunSerialOnCallersGoroutine pins that workers<=1 (and n<2) never
// spawns: worker id is always 0 and tasks run on the calling goroutine.
func TestRunSerialOnCallersGoroutine(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{{1, 5}, {4, 1}, {-2, 3}} {
		Run(tc.workers, tc.n, func(worker, _ int) {
			if worker != 0 {
				t.Fatalf("workers=%d n=%d: serial path used worker id %d", tc.workers, tc.n, worker)
			}
		})
	}
}

// TestRunWorkerIDsDistinct checks concurrent workers get distinct ids in
// [0, workers) — the contract per-worker scratch relies on.
func TestRunWorkerIDsDistinct(t *testing.T) {
	const workers, n = 4, 200
	var used [workers]atomic.Int32
	Run(workers, n, func(worker, _ int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d out of range", worker)
			return
		}
		used[worker].Add(1)
	})
	var total int32
	for i := range used {
		total += used[i].Load()
	}
	if total != n {
		t.Fatalf("tasks seen by workers: %d, want %d", total, n)
	}
}
