// Package fanout is the tiny worker-fan used by the parallel build, repair
// and repack paths. It deliberately has no dependencies and no state: a call
// distributes n independent tasks over at most `workers` goroutines via an
// atomic counter, with the caller participating as worker 0 so that the
// workers==1 case never spawns and the workers==2 case spawns exactly one
// goroutine. Tasks are claimed dynamically, so uneven per-task cost (one
// landmark's BFS dominating) still balances.
package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a worker-count knob to an actual worker count: 0 (the
// default everywhere in this module) means GOMAXPROCS, negative values
// clamp to serial, anything else is taken literally.
func Resolve(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// Run executes fn(worker, task) for every task in [0, n), fanning across
// min(workers, n) workers. Each worker id in [0, workers) is used by at most
// one goroutine at a time, so fn may index per-worker scratch by its first
// argument. Run returns only after every task has completed (full barrier).
// Tasks must not depend on each other; the assignment of tasks to workers is
// nondeterministic, which is why callers merge results by task order, never
// by completion order.
func Run(workers, n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(worker int) {
		for {
			t := int(next.Add(1)) - 1
			if t >= n {
				return
			}
			fn(worker, t)
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
}
