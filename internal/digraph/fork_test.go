package digraph

import "testing"

// TestForkIsolation pins the copy-on-write contract for both adjacency
// directions: fork mutations never change the parent's out- or in-lists.
func TestForkIsolation(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 4; i++ {
		if _, err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	wantOut := make([][]uint32, 5)
	wantIn := make([][]uint32, 5)
	for v := uint32(0); v < 5; v++ {
		wantOut[v] = append([]uint32(nil), g.Out(v)...)
		wantIn[v] = append([]uint32(nil), g.In(v)...)
	}

	f := g.Fork()
	if _, err := f.AddEdge(4, 0); err != nil { // close the cycle on the fork
		t.Fatal(err)
	}
	if err := f.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	nv := f.AddVertex()
	if _, err := f.AddEdge(2, nv); err != nil {
		t.Fatal(err)
	}

	for v := uint32(0); v < 5; v++ {
		if !equalU32(g.Out(v), wantOut[v]) || !equalU32(g.In(v), wantIn[v]) {
			t.Fatalf("parent adjacency of %d changed: out %v in %v", v, g.Out(v), g.In(v))
		}
	}
	if g.HasEdge(4, 0) || !f.HasEdge(4, 0) {
		t.Fatal("insert leaked into parent or missed the fork")
	}
	if !g.HasEdge(0, 1) || f.HasEdge(0, 1) {
		t.Fatal("delete leaked into parent or missed the fork")
	}
	if g.NumVertices() != 5 || f.NumVertices() != 6 {
		t.Fatalf("vertex counts: parent %d fork %d", g.NumVertices(), f.NumVertices())
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
