package digraph

import (
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% comment

0 1
1 2 extra-ignored
2 0
2 0
3 3
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("vertices: got %d, want 3 (self-loop line skipped entirely)", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("arcs: got %d, want 3 (duplicate and self-loop dropped)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("direction lost")
	}
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("short line must fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 x\n")); err == nil {
		t.Error("bad vertex must fail")
	}
}
