package digraph

import (
	"io"

	"repro/internal/graph"
)

// ReadEdgeList parses a whitespace-separated arc list, one "u v" pair per
// line meaning the directed edge u→v, in the graph.ForEachEdge format.
// Vertices are created as needed; duplicate arcs and self-loops are
// silently dropped.
func ReadEdgeList(r io.Reader) (*Digraph, error) {
	g := New(0)
	err := graph.ForEachEdge(r, "digraph", func(u, v uint32, _ []string) error {
		for !g.HasVertex(max(u, v)) {
			g.AddVertex()
		}
		_, err := g.AddEdge(u, v)
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
