package digraph

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func cycle(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(uint32(i), uint32((i+1)%n))
	}
	return g
}

func TestCycleDistances(t *testing.T) {
	g := cycle(5)
	if got := g.Dist(0, 4); got != 4 {
		t.Errorf("Dist(0,4): got %d, want 4 (must go the long way)", got)
	}
	if got := g.Dist(4, 0); got != 1 {
		t.Errorf("Dist(4,0): got %d, want 1", got)
	}
}

func TestInOutAdjacency(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	if g.OutDegree(2) != 0 || g.InDegree(2) != 2 {
		t.Errorf("degrees of 2: out %d in %d", g.OutDegree(2), g.InDegree(2))
	}
	if len(g.Out(0)) != 1 || g.Out(0)[0] != 2 {
		t.Errorf("Out(0): %v", g.Out(0))
	}
	if len(g.In(2)) != 2 {
		t.Errorf("In(2): %v", g.In(2))
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges: %d", g.NumEdges())
	}
}

func TestSparsifiedDirectedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 200; iter++ {
		n := 25
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for i := 0; i < 60; i++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v)
			}
		}
		av := uint32(rng.Intn(n))
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		avoid := func(x uint32) bool { return x == av }
		// Oracle: BFS on a copy without the avoided vertex's edges
		// (endpoints exempt).
		pruned := New(n)
		for i := 0; i < n; i++ {
			pruned.AddVertex()
		}
		for x := uint32(0); x < uint32(n); x++ {
			for _, y := range g.Out(x) {
				xBad := avoid(x) && x != u && x != v
				yBad := avoid(y) && y != u && y != v
				if !xBad && !yBad {
					pruned.MustAddEdge(x, y)
				}
			}
		}
		want := pruned.Dist(u, v)
		distU := make([]graph.Dist, n)
		distV := make([]graph.Dist, n)
		for i := 0; i < n; i++ {
			distU[i] = graph.Inf
			distV[i] = graph.Inf
		}
		qs := &bfs.QuerySpace{DistU: distU, DistV: distV}
		got := g.Sparsified(u, v, graph.Inf, avoid, qs)
		if got != want {
			t.Fatalf("iter %d: Sparsified(%d,%d) avoiding %d: got %d, want %d", iter, u, v, av, got, want)
		}
		for i := 0; i < n; i++ {
			if distU[i] != graph.Inf || distV[i] != graph.Inf {
				t.Fatal("scratch not restored")
			}
		}
	}
}

func TestSparsifiedDirectedBound(t *testing.T) {
	g := cycle(8)
	distU := make([]graph.Dist, 8)
	distV := make([]graph.Dist, 8)
	for i := range distU {
		distU[i] = graph.Inf
		distV[i] = graph.Inf
	}
	qs := &bfs.QuerySpace{DistU: distU, DistV: distV}
	if got := g.Sparsified(0, 5, 4, nil, qs); got != graph.Inf {
		t.Errorf("bound 4 on distance 5: got %d", got)
	}
	if got := g.Sparsified(0, 5, 5, nil, qs); got != 5 {
		t.Errorf("bound 5 on distance 5: got %d", got)
	}
}

func TestCloneAndErrors(t *testing.T) {
	g := cycle(4)
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone leaked")
	}
	if _, err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop must fail")
	}
	if _, err := g.AddEdge(0, 50); err == nil {
		t.Error("unknown vertex must fail")
	}
	if ok, _ := g.AddEdge(0, 1); ok {
		t.Error("duplicate must report false")
	}
}

func TestRemoveEdgeDirected(t *testing.T) {
	g := cycle(4)
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Error("edge survived removal")
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges: got %d, want 3", g.NumEdges())
	}
	for _, w := range g.In(2) {
		if w == 1 {
			t.Error("in-adjacency not cleaned")
		}
	}
	if err := g.RemoveEdge(2, 1); !errors.Is(err, graph.ErrEdgeUnknown) {
		t.Errorf("reverse direction was never inserted: got %v, want ErrEdgeUnknown", err)
	}
	if err := g.RemoveEdge(0, 9); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v, want ErrVertexUnknown", err)
	}
	if err := g.RemoveEdge(3, 3); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v, want ErrSelfLoop", err)
	}
	if ok, err := g.AddEdge(1, 2); !ok || err != nil {
		t.Fatalf("reinsert after delete: %v %v", ok, err)
	}
}
