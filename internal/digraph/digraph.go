// Package digraph provides the directed dynamic graph substrate for the
// directed extension of IncHL+ (Section 5 of Farhan & Wang, EDBT 2021):
// adjacency in both directions, online edge/vertex insertion, and the
// forward/backward BFS primitives the directed labelling needs.
package digraph

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/queue"
)

// Digraph is a directed, unweighted dynamic graph over vertices
// 0..NumVertices-1. Both out- and in-adjacency are maintained so backward
// searches run without transposition. The zero value is ready to use.
type Digraph struct {
	out   [][]uint32
	in    [][]uint32
	edges uint64

	// sharedOut/sharedIn are non-nil only on forks: a set bit means that
	// adjacency list's backing array still belongs to the parent and is
	// copied before the first mutation (see Fork).
	sharedOut *bitset.Set
	sharedIn  *bitset.Set
}

// New returns an empty digraph with capacity hints for n vertices.
func New(n int) *Digraph {
	return &Digraph{out: make([][]uint32, 0, n), in: make([][]uint32, 0, n)}
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() uint64 { return g.edges }

// AddVertex appends a new isolated vertex and returns its id.
func (g *Digraph) AddVertex() uint32 {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if g.sharedOut != nil {
		g.sharedOut.Grow(len(g.out)) // new bits are clear: the fork owns new vertices
		g.sharedIn.Grow(len(g.in))
	}
	return uint32(len(g.out) - 1)
}

// HasVertex reports whether v exists.
func (g *Digraph) HasVertex(v uint32) bool { return int(v) < len(g.out) }

// Out returns the out-neighbours of v (owned by the graph; do not modify).
func (g *Digraph) Out(v uint32) []uint32 { return g.out[v] }

// In returns the in-neighbours of v (owned by the graph; do not modify).
func (g *Digraph) In(v uint32) []uint32 { return g.in[v] }

// HasEdge reports whether the directed edge u→v exists.
func (g *Digraph) HasEdge(u, v uint32) bool {
	if int(u) >= len(g.out) || int(v) >= len(g.out) {
		return false
	}
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the directed edge u→v, reporting whether it was new.
func (g *Digraph) AddEdge(u, v uint32) (bool, error) {
	if u == v {
		return false, graph.ErrSelfLoop
	}
	if int(u) >= len(g.out) || int(v) >= len(g.out) {
		return false, fmt.Errorf("%w: edge (%d,%d) with %d vertices", graph.ErrVertexUnknown, u, v, len(g.out))
	}
	if g.HasEdge(u, v) {
		return false, nil
	}
	g.ownOut(u)
	g.ownIn(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edges++
	return true, nil
}

// RemoveEdge deletes the directed edge u→v. It returns graph.ErrSelfLoop
// for u == v, graph.ErrVertexUnknown when either endpoint does not exist and
// graph.ErrEdgeUnknown when the edge is not present.
func (g *Digraph) RemoveEdge(u, v uint32) error {
	if u == v {
		return graph.ErrSelfLoop
	}
	if int(u) >= len(g.out) || int(v) >= len(g.out) {
		return fmt.Errorf("%w: edge (%d,%d) with %d vertices", graph.ErrVertexUnknown, u, v, len(g.out))
	}
	if !g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", graph.ErrEdgeUnknown, u, v)
	}
	g.ownOut(u)
	g.ownIn(v)
	graph.RemoveFromList(&g.out[u], v)
	graph.RemoveFromList(&g.in[v], u)
	g.edges--
	return nil
}

// Fork returns a copy-on-write copy: adjacency headers are copied (O(|V|))
// while every neighbour list's backing array stays shared with g until the
// fork first mutates it. Mutating the fork never writes to memory reachable
// from g; g must be treated as frozen afterwards (snapshot discipline).
func (g *Digraph) Fork() *Digraph {
	return &Digraph{
		out:       append([][]uint32(nil), g.out...),
		in:        append([][]uint32(nil), g.in...),
		edges:     g.edges,
		sharedOut: bitset.NewAllSet(len(g.out)),
		sharedIn:  bitset.NewAllSet(len(g.in)),
	}
}

// ownOut makes out[v] writable on a fork, copying the shared backing array
// on first touch; ownIn mirrors it for in[v].
func (g *Digraph) ownOut(v uint32) {
	if g.sharedOut == nil || !g.sharedOut.Get(v) {
		return
	}
	g.out[v] = append(make([]uint32, 0, len(g.out[v])+1), g.out[v]...)
	g.sharedOut.Clear(v)
}

func (g *Digraph) ownIn(v uint32) {
	if g.sharedIn == nil || !g.sharedIn.Get(v) {
		return
	}
	g.in[v] = append(make([]uint32, 0, len(g.in[v])+1), g.in[v]...)
	g.sharedIn.Clear(v)
}

// MustAddEdge inserts u→v, growing the vertex set as needed.
func (g *Digraph) MustAddEdge(u, v uint32) bool {
	for uint32(len(g.out)) <= max(u, v) {
		g.AddVertex()
	}
	ok, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return ok
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{out: make([][]uint32, len(g.out)), in: make([][]uint32, len(g.in)), edges: g.edges}
	for v := range g.out {
		if len(g.out[v]) > 0 {
			c.out[v] = append([]uint32(nil), g.out[v]...)
		}
		if len(g.in[v]) > 0 {
			c.in[v] = append([]uint32(nil), g.in[v]...)
		}
	}
	return c
}

// OutDegree and InDegree report adjacency sizes.
func (g *Digraph) OutDegree(v uint32) int { return len(g.out[v]) }

// InDegree reports the number of in-neighbours of v.
func (g *Digraph) InDegree(v uint32) int { return len(g.in[v]) }

// Forward computes d(src→v) for all v into dist (length NumVertices).
func (g *Digraph) Forward(src uint32, dist []graph.Dist) {
	g.bfs(src, dist, g.out)
}

// Backward computes d(v→src) for all v into dist.
func (g *Digraph) Backward(src uint32, dist []graph.Dist) {
	g.bfs(src, dist, g.in)
}

func (g *Digraph) bfs(src uint32, dist []graph.Dist, adj [][]uint32) {
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	q := queue.NewUint32(64)
	q.Push(src)
	for !q.Empty() {
		v := q.Pop()
		dv := dist[v]
		for _, w := range adj[v] {
			if dist[w] == graph.Inf {
				dist[w] = dv + 1
				q.Push(w)
			}
		}
	}
}

// Dist returns the exact directed distance u→v by plain BFS (test oracle).
func (g *Digraph) Dist(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	dist := make([]graph.Dist, g.NumVertices())
	g.Forward(u, dist)
	return dist[v]
}

// Sparsified runs a bounded bidirectional directed BFS from u (forward) and
// v (backward) on the subgraph excluding vertices for which avoid reports
// true (endpoints exempt), returning the u→v distance or graph.Inf if it
// exceeds bound. Scratch conventions match bfs.Sparsified: s carries the
// distance vectors (all graph.Inf on entry, restored sparsely on return)
// and the frontier buffers, so a steady-state query allocates nothing.
func (g *Digraph) Sparsified(u, v uint32, bound graph.Dist, avoid func(uint32) bool, s *bfs.QuerySpace) graph.Dist {
	if u == v {
		return 0
	}
	if bound == 0 {
		return graph.Inf
	}
	distU, distV := s.DistU, s.DistV
	touched := s.Touched[:0]
	defer func() {
		for _, x := range touched {
			distU[x] = graph.Inf
			distV[x] = graph.Inf
		}
		s.Touched = touched // keep the grown capacity
	}()
	distU[u] = 0
	distV[v] = 0
	touched = append(touched, u, v)
	frontU := append(s.Fronts[0][:0], u)
	frontV := append(s.Fronts[1][:0], v)
	spare := s.Fronts[2][:0]
	var du, dv graph.Dist
	best := graph.Inf
	if bound != graph.Inf {
		best = bound + 1
	}
	for len(frontU) > 0 && len(frontV) > 0 {
		if best != graph.Inf && graph.AddDist(graph.AddDist(du, dv), 1) >= best {
			break
		}
		if len(frontU) <= len(frontV) {
			next := g.expand(g.out, u, v, frontU, du, distU, distV, avoid, &best, &touched, spare)
			spare, frontU = frontU[:0], next
			du++
		} else {
			next := g.expand(g.in, v, u, frontV, dv, distV, distU, avoid, &best, &touched, spare)
			spare, frontV = frontV[:0], next
			dv++
		}
	}
	s.Fronts[0], s.Fronts[1], s.Fronts[2] = frontU, frontV, spare
	if bound != graph.Inf && best > bound {
		return graph.Inf
	}
	return best
}

func (g *Digraph) expand(adj [][]uint32, src, dst uint32, front []uint32, depth graph.Dist, dist, other []graph.Dist, avoid func(uint32) bool, best *graph.Dist, touched *[]uint32, next []uint32) []uint32 {
	for _, x := range front {
		if avoid != nil && x != src && avoid(x) {
			continue
		}
		for _, w := range adj[x] {
			if dist[w] != graph.Inf {
				continue
			}
			if avoid != nil && w != dst && w != src && avoid(w) {
				continue
			}
			dist[w] = depth + 1
			*touched = append(*touched, w)
			if other[w] != graph.Inf {
				if t := graph.AddDist(depth+1, other[w]); t < *best {
					*best = t
				}
			}
			next = append(next, w)
		}
	}
	return next
}
