package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
	"repro/internal/wal"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := testutil.RandomConnectedGraph(60, 110, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, &resp)
	if resp.Distance == nil {
		t.Fatal("connected graph: distance must not be null")
	}
	getJSON(t, ts.URL+"/distance?u=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=xyz", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=9999", http.StatusNotFound, nil)
}

func TestInsertEdgeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Find a non-edge through the API by probing distances.
	var d0 distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d0)
	if d0.Distance != nil && *d0.Distance == 1 {
		t.Skip("sampled pair already adjacent") // deterministic graph: never happens for this seed
	}
	var er edgeResponse
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusOK, &er)
	var d1 distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d1)
	if d1.Distance == nil || *d1.Distance != 1 {
		t.Fatalf("distance after insert: %+v", d1)
	}
	// Duplicate insert conflicts; self-loops and bad JSON are 400; unknown
	// vertices are 404 via the typed sentinels.
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusConflict, nil)
	postJSON(t, ts.URL+"/edges", `{"u":0`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":0}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":9999}`, http.StatusNotFound, nil)
}

func TestInsertVertexEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var vr vertexResponse
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[0,5]}`, http.StatusOK, &vr)
	if vr.ID != 60 {
		t.Fatalf("new vertex id: got %d, want 60", vr.ID)
	}
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=60&v=0", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 1 {
		t.Fatalf("distance to new vertex: %+v", d)
	}
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[4444]}`, http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/vertices", `not json`, http.StatusBadRequest, nil)
}

func TestBatchDistancesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp distancesResponse
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1},{"u":3,"v":3},{"u":7,"v":40}]}`, http.StatusOK, &resp)
	if len(resp.Distances) != 3 {
		t.Fatalf("distances: %+v", resp)
	}
	for i, d := range resp.Distances {
		if d == nil {
			t.Fatalf("connected graph: distance %d must not be null", i)
		}
	}
	if *resp.Distances[1] != 0 {
		t.Errorf("d(3,3): got %d, want 0", *resp.Distances[1])
	}
	// Batch answers must agree with the single-pair endpoint.
	var single distanceResponse
	getJSON(t, ts.URL+"/distance?u=7&v=40", http.StatusOK, &single)
	if *single.Distance != *resp.Distances[2] {
		t.Errorf("batch %d vs single %d", *resp.Distances[2], *single.Distance)
	}
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":9999}]}`, http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/distances", `{"pairs":`, http.StatusBadRequest, nil)
	// An empty batch is fine.
	postJSON(t, ts.URL+"/distances", `{"pairs":[]}`, http.StatusOK, &resp)
	if len(resp.Distances) != 0 {
		t.Errorf("empty batch: %+v", resp)
	}
}

// TestDirectedServer pins that the same handler set serves the directed
// variant through the Oracle interface.
func TestDirectedServer(t *testing.T) {
	g := dynhl.NewDigraph(0)
	for i := 0; i < 10; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 9; i++ {
		g.MustAddEdge(i, i+1)
	}
	idx, err := dynhl.BuildDirected(g, dynhl.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx).Handler())
	t.Cleanup(ts.Close)

	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=9", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 9 {
		t.Fatalf("d(0,9): %+v", d)
	}
	// The reverse direction is unreachable on a directed path.
	getJSON(t, ts.URL+"/distance?u=9&v=0", http.StatusOK, &d)
	if d.Distance != nil {
		t.Fatalf("d(9,0) must be null: %+v", d)
	}
	// A weighted edge must be rejected by the unweighted oracle.
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":5,"w":3}`, http.StatusBadRequest, nil)
	// Close the cycle and re-query through a batch.
	postJSON(t, ts.URL+"/edges", `{"u":9,"v":0}`, http.StatusOK, nil)
	var resp distancesResponse
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":9,"v":0},{"u":5,"v":2}]}`, http.StatusOK, &resp)
	if *resp.Distances[0] != 1 || *resp.Distances[1] != 7 {
		t.Fatalf("batch after cycle close: %+v", resp)
	}
	// Incoming arcs via the full vertex form.
	var vr vertexResponse
	postJSON(t, ts.URL+"/vertices", `{"arcs":[{"to":0},{"to":9,"in":true}]}`, http.StatusOK, &vr)
	getJSON(t, ts.URL+"/distance?u=9&v="+strconv.Itoa(int(vr.ID)), http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 1 {
		t.Fatalf("d(9,new): %+v", d)
	}
}

// TestWeightedServer pins the weighted variant behind the same handlers.
func TestWeightedServer(t *testing.T) {
	g := dynhl.NewWeightedGraph(0)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 5; i++ {
		g.MustAddEdge(i, i+1, 10)
	}
	idx, err := dynhl.BuildWeighted(g, dynhl.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx).Handler())
	t.Cleanup(ts.Close)

	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=5", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 50 {
		t.Fatalf("d(0,5): %+v", d)
	}
	// A weight-2 shortcut across the whole path.
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":5,"w":2}`, http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=5", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 2 {
		t.Fatalf("d(0,5) after shortcut: %+v", d)
	}
	var vr vertexResponse
	postJSON(t, ts.URL+"/vertices", `{"arcs":[{"to":5,"w":4}]}`, http.StatusOK, &vr)
	getJSON(t, ts.URL+"/distance?u=0&v="+strconv.Itoa(int(vr.ID)), http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 6 {
		t.Fatalf("d(0,new): %+v", d)
	}
}

func doDelete(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("DELETE %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeleteEdgeEndpoint drives a full insert → delete → reinsert cycle
// over HTTP, including the 404 mappings of the typed sentinels.
func TestDeleteEdgeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusOK, nil)
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 1 {
		t.Fatalf("distance after insert: %+v", d)
	}
	var er edgeResponse
	doDelete(t, ts.URL+"/edges?u=0&v=30", http.StatusOK, &er)
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d)
	if d.Distance != nil && *d.Distance == 1 {
		t.Fatalf("edge still answers distance 1 after delete: %+v", d)
	}
	// Deleting again: the edge is gone → 404. Unknown vertices → 404.
	doDelete(t, ts.URL+"/edges?u=0&v=30", http.StatusNotFound, nil)
	doDelete(t, ts.URL+"/edges?u=0&v=9999", http.StatusNotFound, nil)
	doDelete(t, ts.URL+"/edges?u=0", http.StatusBadRequest, nil)
	// Reinsert restores the distance.
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 1 {
		t.Fatalf("distance after reinsert: %+v", d)
	}
}

// TestDeleteVertexEndpoint isolates a vertex over HTTP: its distances all
// go null (Inf) while its id stays valid.
func TestDeleteVertexEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var vr vertexResponse
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[0,5]}`, http.StatusOK, &vr)
	id := strconv.Itoa(int(vr.ID))
	doDelete(t, ts.URL+"/vertices?v="+id, http.StatusOK, nil)
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u="+id+"&v=0", http.StatusOK, &d)
	if d.Distance != nil {
		t.Fatalf("isolated vertex still reachable: %+v", d)
	}
	doDelete(t, ts.URL+"/vertices?v=9999", http.StatusNotFound, nil)
}

// TestPayloadCaps pins the 413 defence for oversized batch requests and
// bodies.
func TestPayloadCaps(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 30, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, WithMaxBatchPairs(2), WithMaxBodyBytes(256)).Handler())
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1},{"u":1,"v":2}]}`, http.StatusOK, nil)
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1},{"u":1,"v":2},{"u":2,"v":3}]}`,
		http.StatusRequestEntityTooLarge, nil)
	big := `{"pairs":[` + strings.Repeat(`{"u":0,"v":1},`, 100) + `{"u":0,"v":1}]}`
	postJSON(t, ts.URL+"/distances", big, http.StatusRequestEntityTooLarge, nil)
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[`+strings.Repeat("0,", 200)+`0]}`,
		http.StatusRequestEntityTooLarge, nil)
}

// TestEpochHeader pins the versioned serving contract: every response
// names its snapshot epoch, reads do not advance it, successful updates
// advance it by exactly one, failed updates leave it unchanged.
func TestEpochHeader(t *testing.T) {
	ts := newTestServer(t)
	epoch := func(resp *http.Response) uint64 {
		t.Helper()
		raw := resp.Header.Get("X-Oracle-Epoch")
		if raw == "" {
			t.Fatal("missing X-Oracle-Epoch header")
		}
		e, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	resp, err := http.Get(ts.URL + "/distance?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := epoch(resp); e != 0 {
		t.Fatalf("fresh server epoch: %d", e)
	}
	resp, err = http.Post(ts.URL+"/edges", "application/json", strings.NewReader(`{"u":0,"v":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := epoch(resp); e != 1 {
		t.Fatalf("epoch after insert: %d", e)
	}
	// A failed mutation (duplicate edge) must not advance the epoch.
	resp, err = http.Post(ts.URL+"/edges", "application/json", strings.NewReader(`{"u":0,"v":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d", resp.StatusCode)
	}
	if e := epoch(resp); e != 1 {
		t.Fatalf("epoch after failed insert: %d", e)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := epoch(resp); e != 1 {
		t.Fatalf("stats epoch: %d", e)
	}
}

// TestUpdatesEndpoint drives POST /updates: a mixed batch lands atomically
// as one epoch, a batch failing mid-way changes nothing, and the op cap
// answers 413.
func TestUpdatesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var ur updatesResponse
	postJSON(t, ts.URL+"/updates",
		`{"ops":[{"op":"insert_edge","u":0,"v":30},{"op":"insert_vertex","neighbors":null,"arcs":[{"to":5}]},{"op":"delete_edge","u":0,"v":30}]}`,
		http.StatusOK, &ur)
	if ur.Epoch != 1 {
		t.Fatalf("batch epoch: %d", ur.Epoch)
	}
	if len(ur.Results) != 3 {
		t.Fatalf("results: %d", len(ur.Results))
	}
	if ur.Results[1].NewVertex == nil || *ur.Results[1].NewVertex != 60 {
		t.Fatalf("insert_vertex result: %+v", ur.Results[1])
	}
	// The batch inserted then deleted (0,30): the published snapshot must
	// not have it.
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d)
	if d.Distance != nil && *d.Distance == 1 {
		t.Fatal("delete inside the batch was lost")
	}

	// Mid-batch failure: op 0 would apply, op 1 deletes a missing edge.
	// All-or-nothing: the eventual distance must be unchanged.
	postJSON(t, ts.URL+"/updates",
		`{"ops":[{"op":"insert_edge","u":0,"v":30},{"op":"delete_edge","u":0,"v":31}]}`,
		http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d)
	if d.Distance != nil && *d.Distance == 1 {
		t.Fatal("half-applied batch is visible")
	}

	// Unknown op kinds are 400, oversized batches 413.
	postJSON(t, ts.URL+"/updates", `{"ops":[{"op":"explode"}]}`, http.StatusBadRequest, nil)
	ts2 := httptest.NewServer(New(mustBuild(t), WithMaxBatchOps(1)).Handler())
	t.Cleanup(ts2.Close)
	postJSON(t, ts2.URL+"/updates",
		`{"ops":[{"op":"insert_edge","u":0,"v":9},{"op":"delete_edge","u":0,"v":9}]}`,
		http.StatusRequestEntityTooLarge, nil)
}

func mustBuild(t *testing.T) dynhl.Oracle {
	t.Helper()
	g := testutil.RandomConnectedGraph(20, 30, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestLabelsEndpoints pins labelling download/upload round trips on the
// undirected variant and the 501 mapping of errors.ErrUnsupported for
// variants without the capability.
func TestLabelsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/labels")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /labels: status %d", resp.StatusCode)
	}
	if len(blob) == 0 {
		t.Fatal("empty labelling stream")
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/labels", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /labels: status %d", resp.StatusCode)
	}
	if e := resp.Header.Get("X-Oracle-Epoch"); e != "1" {
		t.Fatalf("PUT /labels must publish a new epoch, got %q", e)
	}

	// The directed variant serialises too: its labels round-trip through
	// GET /labels → PUT /labels and the epoch advances on the PUT.
	g := dynhl.NewDigraph(0)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 5; i++ {
		g.MustAddEdge(i, i+1)
	}
	dir, err := dynhl.BuildDirected(g, dynhl.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsDir := httptest.NewServer(New(dir).Handler())
	t.Cleanup(tsDir.Close)
	resp, err = http.Get(tsDir.URL + "/labels")
	if err != nil {
		t.Fatal(err)
	}
	dirBlob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(dirBlob) == 0 {
		t.Fatalf("GET /labels on directed: status %d, %d bytes", resp.StatusCode, len(dirBlob))
	}
	req, err = http.NewRequest(http.MethodPut, tsDir.URL+"/labels", bytes.NewReader(dirBlob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /labels on directed: status %d", resp.StatusCode)
	}
	if e := resp.Header.Get("X-Oracle-Epoch"); e != "1" {
		t.Fatalf("PUT /labels on directed must publish a new epoch, got %q", e)
	}
}

// TestLabelsCaps pins that PUT /labels is bounded by the dedicated label
// cap, not the (much smaller) JSON body cap — the GET → PUT round trip must
// survive labellings bigger than a JSON request — and that the label cap
// itself still answers 413.
func TestLabelsCaps(t *testing.T) {
	g := testutil.RandomConnectedGraph(60, 110, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx, WithMaxBodyBytes(64)).Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/labels")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) <= 64 {
		t.Fatalf("fixture labelling too small (%d bytes) to exercise the cap split", len(blob))
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/labels", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /labels larger than the JSON cap: status %d, want 204", resp.StatusCode)
	}

	tsSmall := httptest.NewServer(New(idx, WithMaxLabelBytes(16)).Handler())
	t.Cleanup(tsSmall.Close)
	req, err = http.NewRequest(http.MethodPut, tsSmall.URL+"/labels", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("PUT /labels over the label cap: status %d, want 413", resp.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	ts := newTestServer(t)
	var st dynhl.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Vertices != 60 || st.Landmarks != 5 || st.LabelEntries <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
}

// TestDurabilityEndpointsUnsupported checks the admin endpoints answer 501
// on a server without a durability layer.
func TestDurabilityEndpointsUnsupported(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/checkpoint", "", http.StatusNotImplemented, nil)
	getJSON(t, ts.URL+"/wal/stats", http.StatusNotImplemented, nil)
}

// TestDurabilityEndpoints runs the admin surface against a real WAL in a
// temp directory: /stats carries the epoch and WAL counters, /checkpoint
// advances the checkpoint epoch, /wal/stats reports it.
func TestDurabilityEndpoints(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 80, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := wal.Create(t.TempDir(), idx, wal.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ts := httptest.NewServer(New(d.Store(), WithDurability(d)).Handler())
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/updates", `{"ops":[{"op":"insert_vertex","arcs":[{"to":0},{"to":1}]}]}`, http.StatusOK, nil)

	var st dynhl.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Epoch != 1 {
		t.Fatalf("/stats epoch %d, want 1", st.Epoch)
	}
	if st.Durability == nil || st.Durability.Records != 1 {
		t.Fatalf("/stats durability %+v, want 1 appended record", st.Durability)
	}

	var ck struct {
		Epoch uint64 `json:"epoch"`
	}
	postJSON(t, ts.URL+"/checkpoint", "", http.StatusOK, &ck)
	if ck.Epoch != 1 {
		t.Fatalf("/checkpoint epoch %d, want 1", ck.Epoch)
	}

	var ws dynhl.DurabilityStats
	getJSON(t, ts.URL+"/wal/stats", http.StatusOK, &ws)
	if ws.CheckpointEpoch != 1 || ws.DurableEpoch != 1 {
		t.Fatalf("/wal/stats %+v: want checkpoint and durable epoch 1", ws)
	}
}
