package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := testutil.RandomConnectedGraph(60, 110, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(idx).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, &resp)
	if resp.Distance == nil {
		t.Fatal("connected graph: distance must not be null")
	}
	getJSON(t, ts.URL+"/distance?u=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=xyz", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/distance?u=0&v=9999", http.StatusNotFound, nil)
}

func TestInsertEdgeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Find a non-edge through the API by probing distances.
	var d0 distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d0)
	if d0.Distance != nil && *d0.Distance == 1 {
		t.Skip("sampled pair already adjacent") // deterministic graph: never happens for this seed
	}
	var er edgeResponse
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusOK, &er)
	var d1 distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=30", http.StatusOK, &d1)
	if d1.Distance == nil || *d1.Distance != 1 {
		t.Fatalf("distance after insert: %+v", d1)
	}
	// Duplicate insert conflicts.
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":30}`, http.StatusConflict, nil)
	postJSON(t, ts.URL+"/edges", `{"u":0`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/edges", `{"u":0,"v":0}`, http.StatusConflict, nil)
}

func TestInsertVertexEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var vr vertexResponse
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[0,5]}`, http.StatusOK, &vr)
	if vr.ID != 60 {
		t.Fatalf("new vertex id: got %d, want 60", vr.ID)
	}
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?u=60&v=0", http.StatusOK, &d)
	if d.Distance == nil || *d.Distance != 1 {
		t.Fatalf("distance to new vertex: %+v", d)
	}
	postJSON(t, ts.URL+"/vertices", `{"neighbors":[4444]}`, http.StatusConflict, nil)
	postJSON(t, ts.URL+"/vertices", `not json`, http.StatusBadRequest, nil)
}

func TestStatsAndHealth(t *testing.T) {
	ts := newTestServer(t)
	var st dynhl.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Vertices != 60 || st.Landmarks != 5 || st.LabelEntries <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
}
