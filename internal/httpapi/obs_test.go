package httpapi

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	dynhl "repro"
	"repro/internal/testutil"
)

// scrape fetches /metrics and returns the body plus the Content-Type.
func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// parseExposition validates every line of a Prometheus text exposition and
// returns the samples (full series name with labels → value) and the
// families declared by # TYPE lines (family name → type).
func parseExposition(t *testing.T, body string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[0] == "" || fields[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			helped[fields[0]] = true
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", line, fields[1])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			t.Fatalf("line %d: unknown comment form: %q", line, text)
		}
		// A sample: name{labels} value, with the value after the last space.
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			t.Fatalf("line %d: malformed sample: %q", line, text)
		}
		name, raw := text[:cut], text[cut+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			if raw != "+Inf" {
				t.Fatalf("line %d: bad sample value %q: %v", line, raw, err)
			}
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("line %d: duplicate series %q", line, name)
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every sample's family must carry both TYPE and HELP. Histogram
	// samples resolve through their _bucket/_sum/_count suffix.
	family := func(name string) string {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(base, suf); ok && types[trimmed] == "histogram" {
				return trimmed
			}
		}
		return base
	}
	for name := range samples {
		fam := family(name)
		if types[fam] == "" {
			t.Errorf("series %q has no # TYPE for family %q", name, fam)
		}
		if !helped[fam] {
			t.Errorf("series %q has no # HELP for family %q", name, fam)
		}
	}
	return samples, types
}

// TestMetricsExposition drives queries and an update through the API, then
// checks /metrics parses cleanly and carries the query histogram and all
// five pipeline-stage histograms with nonzero counts.
func TestMetricsExposition(t *testing.T) {
	ts := newTestServer(t)
	for range 3 {
		getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, nil)
	}
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1},{"u":1,"v":2}]}`, http.StatusOK, nil)
	postJSON(t, ts.URL+"/updates", `{"ops":[{"op":"insert_vertex","arcs":[{"to":0},{"to":1}]}]}`, http.StatusOK, nil)

	body, ctype := scrape(t, ts.URL)
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("Content-Type %q, want Prometheus text 0.0.4", ctype)
	}
	samples, types := parseExposition(t, body)

	if v := samples[`dynhl_query_seconds_count{variant="undirected"}`]; v < 3 {
		t.Fatalf("query histogram count %v, want >= 3\n%s", v, body)
	}
	if v := samples[`dynhl_query_batch_seconds_count{variant="undirected"}`]; v < 1 {
		t.Fatalf("batch histogram count %v, want >= 1", v)
	}
	for _, stage := range []string{"coalesce_wait", "repair", "pack", "wal_commit", "publish"} {
		name := fmt.Sprintf(`dynhl_apply_stage_seconds_count{stage=%q}`, stage)
		if v, ok := samples[name]; !ok {
			t.Errorf("missing pipeline stage series %s", name)
		} else if v < 1 {
			t.Errorf("stage %s count %v, want >= 1", stage, v)
		}
	}
	if samples["dynhl_epoch"] != 1 {
		t.Fatalf("dynhl_epoch = %v, want 1 after one update", samples["dynhl_epoch"])
	}
	if types["go_goroutines"] != "gauge" || samples["go_goroutines"] < 1 {
		t.Fatal("runtime registry (go_goroutines) missing from /metrics")
	}
}

// TestMetricsMonotonicCounters scrapes twice with traffic in between:
// counters and histogram counts must not go backwards, and must advance
// where traffic hit them.
func TestMetricsMonotonicCounters(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, nil)
	first, _ := scrape(t, ts.URL)
	before, _ := parseExposition(t, first)

	for range 5 {
		getJSON(t, ts.URL+"/distance?u=1&v=2", http.StatusOK, nil)
	}
	second, _ := scrape(t, ts.URL)
	after, types := parseExposition(t, second)

	for name, v := range before {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		isCount := false
		for _, suf := range []string{"_bucket", "_count"} {
			if trimmed, ok := strings.CutSuffix(fam, suf); ok && types[trimmed] == "histogram" {
				isCount = true
			}
		}
		if types[fam] != "counter" && !isCount {
			continue // gauges may move either way
		}
		if now, ok := after[name]; ok && now < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, now)
		}
	}
	qc := `dynhl_query_seconds_count{variant="undirected"}`
	if after[qc] < before[qc]+5 {
		t.Fatalf("query count %v -> %v, want +5", before[qc], after[qc])
	}
}

// TestAccessLog checks the middleware emits one structured line per
// request with the method, path, status and served epoch.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	g := testutil.RandomConnectedGraph(30, 60, 4)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(AccessLog(logf, New(idx).Handler()))
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?u=0", http.StatusBadRequest, nil)

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("access log: %d lines, want 2: %q", len(lines), lines)
	}
	for _, want := range []string{"method=GET", "path=/distance", "status=200", "epoch=0", "latency="} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("access line %q missing %q", lines[0], want)
		}
	}
	if !strings.Contains(lines[1], "status=400") {
		t.Errorf("error line %q missing status=400", lines[1])
	}
}

// TestStatsAndHealthServerInfo checks the satellite enrichment: both
// endpoints carry uptime, goroutines and heap bytes.
func TestStatsAndHealthServerInfo(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/stats", "/healthz"} {
		var resp struct {
			Server struct {
				UptimeSeconds float64 `json:"uptime_seconds"`
				Goroutines    int     `json:"goroutines"`
				HeapBytes     uint64  `json:"heap_bytes"`
			} `json:"server"`
		}
		getJSON(t, ts.URL+path, http.StatusOK, &resp)
		if resp.Server.UptimeSeconds < 0 {
			t.Errorf("%s: negative uptime %v", path, resp.Server.UptimeSeconds)
		}
		if resp.Server.Goroutines < 1 || resp.Server.HeapBytes == 0 {
			t.Errorf("%s: runtime basics missing: %+v", path, resp.Server)
		}
	}
}
