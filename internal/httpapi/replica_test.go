package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dynhl "repro"
	"repro/internal/testutil"
)

// fakeReplica drives the replica-mode server without a live leader: the
// store is swappable so tests can model pre- and post-bootstrap states.
type fakeReplica struct {
	store *dynhl.Store
	stats dynhl.ReplicationStats
}

func (f *fakeReplica) Store() *dynhl.Store                      { return f.store }
func (f *fakeReplica) ReplicationStats() dynhl.ReplicationStats { return f.stats }
func (f *fakeReplica) Leader() string                           { return f.stats.Leader }

func replicaFixture(t *testing.T, bootstrapped bool) (*fakeReplica, *httptest.Server) {
	t.Helper()
	f := &fakeReplica{stats: dynhl.ReplicationStats{
		Role: "follower", Leader: "leader.example:7601", Connected: true,
	}}
	if bootstrapped {
		idx, err := dynhl.Build(testutil.RandomConnectedGraph(40, 80, 11), dynhl.Options{Landmarks: 4})
		if err != nil {
			t.Fatal(err)
		}
		f.store = dynhl.NewStore(idx)
		f.stats.Ready = true
	}
	ts := httptest.NewServer(NewReplica(f, WithEpochWait(50*time.Millisecond)).Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

func TestReplicaRejectsWritesWithLeaderHint(t *testing.T) {
	_, ts := replicaFixture(t, true)
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/edges", `{"u":0,"v":30}`},
		{"POST", "/updates", `{"ops":[{"op":"insert_edge","u":0,"v":30}]}`},
		{"POST", "/vertices", `{"neighbors":[1,2]}`},
		{"DELETE", "/edges?u=0&v=1", ""},
		{"DELETE", "/vertices?v=3", ""},
		{"PUT", "/labels", "x"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s on a replica: status %d, want 503", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get(leaderHeader); got != "leader.example:7601" {
			t.Fatalf("%s %s: %s header %q", tc.method, tc.path, leaderHeader, got)
		}
	}
}

func TestReplicaServesReads(t *testing.T) {
	f, ts := replicaFixture(t, true)
	var dr distanceResponse
	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusOK, &dr)
	if dr.Distance == nil {
		t.Fatal("connected graph: distance must not be null")
	}
	var br distancesResponse
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1},{"u":2,"v":3}]}`, http.StatusOK, &br)
	if len(br.Distances) != 2 {
		t.Fatalf("batch answered %d pairs", len(br.Distances))
	}
	var st dynhl.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Vertices != f.store.NumVertices() {
		t.Fatalf("stats vertices %d, want %d", st.Vertices, f.store.NumVertices())
	}
}

func TestReplicaBootstrapping(t *testing.T) {
	_, ts := replicaFixture(t, false)
	getJSON(t, ts.URL+"/distance?u=0&v=1", http.StatusServiceUnavailable, nil)
	postJSON(t, ts.URL+"/distances", `{"pairs":[{"u":0,"v":1}]}`, http.StatusServiceUnavailable, nil)

	var hr healthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusServiceUnavailable, &hr)
	if hr.Status != "bootstrapping" || hr.Role != "follower" || hr.Ready {
		t.Fatalf("healthz during bootstrap: %+v", hr)
	}
	// /stats still answers, with the replication state alone.
	var st dynhl.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Replication == nil || st.Replication.Role != "follower" {
		t.Fatalf("bootstrapping /stats replication %+v", st.Replication)
	}
}

func TestReplicaHealthzReady(t *testing.T) {
	f, ts := replicaFixture(t, true)
	f.stats.LagEpochs = 2
	f.stats.LagBytes = 512
	var hr healthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &hr)
	if hr.Status != "ok" || hr.Role != "follower" || !hr.Ready {
		t.Fatalf("healthz: %+v", hr)
	}
	if hr.LagEpochs != 2 || hr.LagBytes != 512 || hr.Leader == "" {
		t.Fatalf("healthz lag fields: %+v", hr)
	}
}

func TestHealthzStandalone(t *testing.T) {
	ts := newTestServer(t)
	var hr healthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &hr)
	if hr.Status != "ok" || hr.Role != "standalone" || !hr.Ready {
		t.Fatalf("healthz: %+v", hr)
	}
}

func TestReadYourWritesEpochWait(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 80, 12)
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	store := dynhl.NewStore(idx)
	ts := httptest.NewServer(New(store, WithEpochWait(100*time.Millisecond)).Handler())
	t.Cleanup(ts.Close)

	get := func(epoch string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+"/distance?u=0&v=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != "" {
			req.Header.Set(epochHeader, epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Already-published epoch: no wait.
	if resp := get("0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait for current epoch: status %d", resp.StatusCode)
	}
	// Future epoch that never lands: bounded 503.
	start := time.Now()
	if resp := get("5"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wait for unpublished epoch: status %d, want 503", resp.StatusCode)
	} else if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timeout not bounded: waited %v", waited)
	}
	// Malformed header.
	if resp := get("not-a-number"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("malformed epoch header accepted")
	}

	// A waiter parked on the next epoch is released by the publish.
	done := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest("GET", ts.URL+"/distance?u=0&v=1", nil)
		req.Header.Set(epochHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond)
	var fu, fv uint32
	found := false
	for u := uint32(0); u < 40 && !found; u++ {
		for v := u + 1; v < 40 && !found; v++ {
			if !g.HasEdge(u, v) {
				fu, fv, found = u, v, true
			}
		}
	}
	if !found {
		t.Fatal("graph is complete")
	}
	if _, err := store.Apply([]dynhl.Op{dynhl.InsertEdgeOp(fu, fv, 0)}); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("read-your-writes after publish: status %d", code)
	}
}
