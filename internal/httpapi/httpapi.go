// Package httpapi exposes a dynamic distance oracle over HTTP with a small
// JSON API, turning the library into the kind of service the paper's
// motivating applications (context-aware search, social analysis, network
// management) would deploy. It is written against the dynhl.Oracle
// interface, so one handler set serves undirected, directed and weighted
// graphs alike:
//
//	GET    /distance?u=U&v=V   exact distance ("distance": null when
//	                           unreachable)
//	POST   /distances          {"pairs":[{"u":U,"v":V},...]} — batch query,
//	                           answered against one snapshot and honouring
//	                           request cancellation mid-batch
//	POST   /updates            {"ops":[{"op":"insert_edge","u":U,"v":V},
//	                           {"op":"delete_edge",...},...]} — apply a
//	                           batch of mutations as ONE atomic publish:
//	                           readers see all of it or none of it, and the
//	                           epoch advances by exactly one
//	POST   /edges              {"u":U,"v":V,"w":W} — insert an edge (weight
//	                           optional, weighted oracles only), index
//	                           repaired with IncHL+
//	DELETE /edges?u=U&v=V      delete an edge, index repaired with DecHL
//	POST   /vertices           {"neighbors":[..]} or {"arcs":[{"to":T,"w":W,
//	                           "in":B},..]} — insert a vertex
//	DELETE /vertices?v=V       disconnect a vertex (all incident edges)
//	GET    /labels             download the labelling (binary stream; 501
//	                           when the variant cannot serialise)
//	PUT    /labels             replace the labelling from a stream saved
//	                           over the same graph (501 when unsupported)
//	GET    /stats              index size statistics, current epoch, and —
//	                           on a durable server — the WAL counters; on a
//	                           replicated one, role and lag
//	GET    /healthz            readiness: role, epoch, replication lag; 503
//	                           until a replica has bootstrapped, so load
//	                           balancers route around a catching-up follower
//
// A durable server (one whose store has a write-ahead log attached, see
// internal/wal and the WithDurability option) additionally serves the
// admin endpoints:
//
//	POST   /checkpoint         write a checkpoint of the current snapshot
//	                           and truncate superseded log segments;
//	                           responds {"epoch": E}
//	GET    /wal/stats          WAL counters alone (records, bytes, fsyncs,
//	                           durable epoch / LSN, checkpoint epoch,
//	                           segments, replay count)
//
// Without durability attached both answer 501.
//
// Every response carries an X-Oracle-Epoch header naming the published
// version it was served from (reads) or produced (writes). Reads are served
// lock-free from one immutable snapshot per request — a request never
// observes a half-applied update batch and never waits on a writer, however
// long its repair runs.
//
// A server started with NewReplica serves a read-scaling follower
// (internal/repl): the full read API works as above, while every mutating
// endpoint answers 503 with an X-Oracle-Leader header and a JSON leader
// hint — writes belong on the leader. Read-your-writes across replicas
// rides the epoch header in the other direction: a request carrying
// X-Oracle-Epoch: N (the epoch a write on the leader reported) makes any
// read endpoint wait — bounded by WithEpochWait — until the serving store
// has published N, so a client can write to the leader and immediately
// read its write from any follower. The wait degrades to a no-op on the
// leader itself, so clients can send the header unconditionally.
//
// Mutation failures map onto status codes through the dynhl sentinel
// errors: unknown vertices and edges are 404, inserting an edge that
// already exists is 409, capability gaps (errors.ErrUnsupported from
// Save/Load) are 501, anything else the oracle rejects is 400. Untrusted
// input is bounded: request bodies beyond MaxBodyBytes, batches beyond
// MaxBatchPairs and update batches beyond MaxBatchOps are rejected with 413
// before any result allocation.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	dynhl "repro"
)

// Limits on untrusted input, overridable per Server through Options.
const (
	// DefaultMaxBatchPairs bounds the number of pairs one POST /distances
	// may ask for; each pair costs a query and eight bytes of result.
	DefaultMaxBatchPairs = 10000
	// DefaultMaxBodyBytes bounds the size of any JSON request body.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxBatchOps bounds the number of ops one POST /updates may
	// carry; each op costs an IncHL+/DecHL repair on the working copy.
	DefaultMaxBatchOps = 1000
	// DefaultMaxLabelBytes bounds the binary labelling stream of PUT
	// /labels. Labellings are ~6 bytes per entry, so real indexes run to
	// many megabytes — the JSON body cap would break the GET → PUT round
	// trip.
	DefaultMaxLabelBytes = 1 << 30
)

// Option customises a Server.
type Option func(*Server)

// WithMaxBatchPairs caps the pair count of POST /distances (0 or negative
// restores the default).
func WithMaxBatchPairs(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatchPairs = n
		}
	}
}

// WithMaxBodyBytes caps JSON request body sizes (0 or negative restores the
// default).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBodyBytes = n
		}
	}
}

// WithMaxBatchOps caps the op count of POST /updates (0 or negative
// restores the default).
func WithMaxBatchOps(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatchOps = n
		}
	}
}

// WithMaxLabelBytes caps the labelling stream size of PUT /labels (0 or
// negative restores the default).
func WithMaxLabelBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxLabelBytes = n
		}
	}
}

// Durability is the admin capability of a durable store (implemented by
// *wal.Durable): trigger a checkpoint, read the WAL counters.
type Durability interface {
	Checkpoint() (uint64, error)
	DurabilityStats() dynhl.DurabilityStats
}

// WithDurability exposes the durability admin endpoints (POST /checkpoint,
// GET /wal/stats) backed by d.
func WithDurability(d Durability) Option {
	return func(s *Server) { s.durability = d }
}

// WithEpochWait bounds how long a read carrying an X-Oracle-Epoch request
// header may wait for the serving store to catch up to that epoch (0 or
// negative restores the 2s default).
func WithEpochWait(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.epochWait = d
		}
	}
}

// DefaultEpochWait is the read-your-writes waiting bound.
const DefaultEpochWait = 2 * time.Second

// Replica is the follower capability the server needs to serve a read
// replica (implemented by *repl.Follower): the replica store — nil until
// the first bootstrap lands — plus where writes should go instead and the
// lag surfaced by /healthz.
type Replica interface {
	Store() *dynhl.Store
	ReplicationStats() dynhl.ReplicationStats
	Leader() string
}

// NewReplica returns a Server serving a follower's replica store: the read
// API in full, 503 + a leader hint on every write, 503 from /healthz until
// the bootstrap completes.
func NewReplica(r Replica, opts ...Option) *Server {
	s := &Server{
		replica:       r,
		maxBatchPairs: DefaultMaxBatchPairs,
		maxBodyBytes:  DefaultMaxBodyBytes,
		maxBatchOps:   DefaultMaxBatchOps,
		maxLabelBytes: DefaultMaxLabelBytes,
		epochWait:     DefaultEpochWait,
		start:         time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Server wraps an oracle with HTTP handlers over a versioned snapshot
// store: reads load one immutable snapshot per request, writes publish new
// epochs.
type Server struct {
	store         *dynhl.Store
	replica       Replica // non-nil on a follower: store comes from here
	maxBatchPairs int
	maxBodyBytes  int64
	maxBatchOps   int
	maxLabelBytes int64
	epochWait     time.Duration
	durability    Durability // nil on a non-durable server
	start         time.Time  // process-visible start, for uptime_seconds
}

// New returns a Server serving o through a dynhl.Store (reusing it when o
// already is one, or a ConcurrentOracle's).
func New(o dynhl.Oracle, opts ...Option) *Server {
	s := &Server{
		store:         dynhl.NewStore(o),
		maxBatchPairs: DefaultMaxBatchPairs,
		maxBodyBytes:  DefaultMaxBodyBytes,
		maxBatchOps:   DefaultMaxBatchOps,
		maxLabelBytes: DefaultMaxLabelBytes,
		epochWait:     DefaultEpochWait,
		start:         time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// epochHeader is the response header naming the snapshot version served or
// produced.
const epochHeader = "X-Oracle-Epoch"

func tagEpoch(w http.ResponseWriter, epoch uint64) {
	w.Header().Set(epochHeader, strconv.FormatUint(epoch, 10))
}

// leaderHeader carries the leader's replication address when a replica
// refuses a write.
const leaderHeader = "X-Oracle-Leader"

// readStore resolves the store a read serves from, answering 503 while a
// replica is still bootstrapping. A request carrying an X-Oracle-Epoch
// header is read-your-writes: the read waits — bounded by WithEpochWait —
// until the store has published that epoch, and answers 503 (with the
// current epoch tagged) when it cannot catch up in time.
func (s *Server) readStore(w http.ResponseWriter, r *http.Request) (*dynhl.Store, bool) {
	st := s.store
	if s.replica != nil {
		st = s.replica.Store()
	}
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("replica is bootstrapping; retry shortly"))
		return nil, false
	}
	if raw := r.Header.Get(epochHeader); raw != "" {
		epoch, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s %q: %w", epochHeader, raw, err))
			return nil, false
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.epochWait)
		defer cancel()
		if err := st.WaitEpoch(ctx, epoch); err != nil {
			tagEpoch(w, st.Epoch())
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("still at epoch %d, not yet %d: %w", st.Epoch(), epoch, err))
			return nil, false
		}
	}
	return st, true
}

// writeStore resolves the store a mutation goes to; a replica answers 503
// with the leader's address instead — writes belong on the leader.
func (s *Server) writeStore(w http.ResponseWriter) (*dynhl.Store, bool) {
	if s.replica != nil {
		w.Header().Set(leaderHeader, s.replica.Leader())
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error":  "this server is a read replica; send writes to the leader",
			"leader": s.replica.Leader(),
		})
		return nil, false
	}
	return s.store, true
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distance", s.distance)
	mux.HandleFunc("POST /distances", s.distances)
	mux.HandleFunc("POST /updates", s.updates)
	mux.HandleFunc("POST /edges", s.insertEdge)
	mux.HandleFunc("DELETE /edges", s.deleteEdge)
	mux.HandleFunc("POST /vertices", s.insertVertex)
	mux.HandleFunc("DELETE /vertices", s.deleteVertex)
	mux.HandleFunc("GET /labels", s.saveLabels)
	mux.HandleFunc("PUT /labels", s.loadLabels)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("POST /checkpoint", s.checkpoint)
	mux.HandleFunc("GET /wal/stats", s.walStats)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// distanceResponse is the JSON shape of GET /distance.
type distanceResponse struct {
	U        uint32  `json:"u"`
	V        uint32  `json:"v"`
	Distance *uint32 `json:"distance"` // null when unreachable
}

func (s *Server) distance(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.readStore(w, r)
	if !ok {
		return
	}
	// One snapshot serves validation and query: the answer is guaranteed
	// consistent with the single epoch named in the response header.
	view := st.Snapshot()
	tagEpoch(w, view.Epoch())
	n := view.NumVertices()
	if int(u) >= n || int(v) >= n {
		httpError(w, http.StatusNotFound, fmt.Errorf("vertex out of range (have %d vertices)", n))
		return
	}
	d := view.Query(u, v)
	writeJSON(w, http.StatusOK, distanceResponse{U: u, V: v, Distance: jsonDist(d)})
}

// distancesRequest is the JSON shape of POST /distances.
type distancesRequest struct {
	Pairs []dynhl.Pair `json:"pairs"`
}

// distancesResponse answers pairs positionally; null marks unreachable.
type distancesResponse struct {
	Distances []*uint32 `json:"distances"`
}

func (s *Server) distances(w http.ResponseWriter, r *http.Request) {
	var req distancesRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Pairs) > s.maxBatchPairs {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), s.maxBatchPairs))
		return
	}
	st, ok := s.readStore(w, r)
	if !ok {
		return
	}
	view := st.Snapshot()
	tagEpoch(w, view.Epoch())
	n := view.NumVertices()
	for i, p := range req.Pairs {
		if int(p.U) >= n || int(p.V) >= n {
			httpError(w, http.StatusNotFound,
				fmt.Errorf("pair %d: vertex out of range (have %d vertices)", i, n))
			return
		}
	}
	ds, err := view.QueryBatchCtx(r.Context(), req.Pairs)
	if err != nil {
		// The client went away mid-batch; stop burning cycles. 499 is the
		// de-facto "client closed request" status.
		httpError(w, 499, err)
		return
	}
	resp := distancesResponse{Distances: make([]*uint32, len(ds))}
	for i, d := range ds {
		resp.Distances[i] = jsonDist(d)
	}
	writeJSON(w, http.StatusOK, resp)
}

// updatesRequest is the JSON shape of POST /updates: a batch of ops applied
// as one atomic publish.
type updatesRequest struct {
	Ops []dynhl.Op `json:"ops"`
}

// updatesResponse reports the epoch the batch published, whether that
// epoch was a group commit shared with other concurrent writers, and one
// summary per op (insert_vertex summaries carry the new vertex id).
type updatesResponse struct {
	Epoch     uint64                `json:"epoch"`
	Coalesced bool                  `json:"coalesced"`
	Results   []dynhl.UpdateSummary `json:"results"`
}

func (s *Server) updates(w http.ResponseWriter, r *http.Request) {
	var req updatesRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) > s.maxBatchOps {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d ops exceeds the %d-op cap", len(req.Ops), s.maxBatchOps))
		return
	}
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	// ApplyCtx reports the exact epoch this batch published — the coalesced
	// epoch when the store group-committed it with other writers — so the
	// attribution stays right under concurrency, and honours the request
	// context: a client that goes away while its batch is still queued is
	// excised without committing.
	res, err := st.ApplyCtx(r.Context(), req.Ops)
	tagEpoch(w, res.Epoch)
	if err != nil {
		applyError(w, err)
		return
	}
	sums := res.Summaries
	if sums == nil {
		sums = []dynhl.UpdateSummary{}
	}
	writeJSON(w, http.StatusOK, updatesResponse{Epoch: res.Epoch, Coalesced: res.Coalesced, Results: sums})
}

type edgeRequest struct {
	U uint32     `json:"u"`
	V uint32     `json:"v"`
	W dynhl.Dist `json:"w"` // optional; 0 means 1, >1 only on weighted oracles
}

// edgeResponse reports what the insertion did.
type edgeResponse struct {
	Affected       int `json:"affected"`
	EntriesAdded   int `json:"entries_added"`
	EntriesRemoved int `json:"entries_removed"`
}

func (s *Server) insertEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	res, err := st.ApplyCtx(r.Context(), []dynhl.Op{dynhl.InsertEdgeOp(req.U, req.V, req.W)})
	tagEpoch(w, res.Epoch)
	if err != nil {
		applyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       res.Summaries[0].Affected,
		EntriesAdded:   res.Summaries[0].EntriesAdded,
		EntriesRemoved: res.Summaries[0].EntriesRemoved,
	})
}

// deleteEdge serves DELETE /edges?u=U&v=V: the edge is removed and the
// labelling repaired with DecHL.
func (s *Server) deleteEdge(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	res, err := st.ApplyCtx(r.Context(), []dynhl.Op{dynhl.DeleteEdgeOp(u, v)})
	tagEpoch(w, res.Epoch)
	if err != nil {
		applyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       res.Summaries[0].Affected,
		EntriesAdded:   res.Summaries[0].EntriesAdded,
		EntriesRemoved: res.Summaries[0].EntriesRemoved,
	})
}

// deleteVertex serves DELETE /vertices?v=V: every incident edge of v is
// deleted, leaving the id behind as an isolated vertex.
func (s *Server) deleteVertex(w http.ResponseWriter, r *http.Request) {
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	res, err := st.ApplyCtx(r.Context(), []dynhl.Op{dynhl.DeleteVertexOp(v)})
	tagEpoch(w, res.Epoch)
	if err != nil {
		applyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       res.Summaries[0].Affected,
		EntriesAdded:   res.Summaries[0].EntriesAdded,
		EntriesRemoved: res.Summaries[0].EntriesRemoved,
	})
}

type vertexRequest struct {
	// Neighbors is the plain form: outgoing unit-weight arcs.
	Neighbors []uint32 `json:"neighbors"`
	// Arcs is the full form for weighted/directed oracles.
	Arcs []dynhl.Arc `json:"arcs"`
}

type vertexResponse struct {
	ID       uint32 `json:"id"`
	Affected int    `json:"affected"`
}

func (s *Server) insertVertex(w http.ResponseWriter, r *http.Request) {
	var req vertexRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	arcs := append(dynhl.Arcs(req.Neighbors...), req.Arcs...)
	res, err := st.ApplyCtx(r.Context(), []dynhl.Op{dynhl.InsertVertexOp(arcs...)})
	tagEpoch(w, res.Epoch)
	if err != nil {
		applyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, vertexResponse{ID: *res.Summaries[0].NewVertex, Affected: res.Summaries[0].Affected})
}

// saveLabels serves GET /labels: one snapshot's labelling as a binary
// stream. Snapshot and epoch header come from the same View, so the tag
// names exactly the version streamed — and because snapshots are immutable
// the download never blocks writers and stays internally consistent
// however long it takes, whatever publishes meanwhile.
func (s *Server) saveLabels(w http.ResponseWriter, r *http.Request) {
	st, ok := s.readStore(w, r)
	if !ok {
		return
	}
	view := st.Snapshot()
	tagEpoch(w, view.Epoch())
	sv, ok := view.(dynhl.Saver)
	if !ok {
		httpError(w, http.StatusNotImplemented, errors.ErrUnsupported)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := sv.Save(w); err != nil {
		if errors.Is(err, errors.ErrUnsupported) {
			httpError(w, http.StatusNotImplemented,
				fmt.Errorf("this oracle variant cannot serialise its labelling: %w", err))
			return
		}
		httpError(w, http.StatusInternalServerError, err)
	}
}

// loadLabels serves PUT /labels: replace the labelling from a stream saved
// over the same graph, published as a new epoch. The stream is bounded by
// MaxLabelBytes, not the JSON body cap — labellings of real indexes run to
// many megabytes.
func (s *Server) loadLabels(w http.ResponseWriter, r *http.Request) {
	st, ok := s.writeStore(w)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxLabelBytes)
	epoch, err := st.LoadEpoch(body)
	tagEpoch(w, epoch)
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, errors.ErrUnsupported):
		httpError(w, http.StatusNotImplemented,
			fmt.Errorf("this oracle variant cannot load a labelling: %w", err))
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("labelling stream exceeds the %d-byte cap", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	// A replica that has not bootstrapped yet has no index to describe, but
	// its replication state is exactly what a caller probing it wants.
	store := s.store
	if s.replica != nil {
		if store = s.replica.Store(); store == nil {
			rs := s.replica.ReplicationStats()
			writeJSON(w, http.StatusOK, statsResponse{
				Stats:  dynhl.Stats{Replication: &rs},
				Server: s.serverInfo(),
			})
			return
		}
	}
	// Store.Stats (not a snapshot's) so a durable server's WAL counters
	// ride along; its Epoch field names the snapshot it was taken from.
	st := store.Stats()
	tagEpoch(w, st.Epoch)
	writeJSON(w, http.StatusOK, statsResponse{Stats: st, Server: s.serverInfo()})
}

// healthResponse is the JSON shape of GET /healthz — the readiness signal
// a load balancer routes on.
type healthResponse struct {
	Status    string `json:"status"` // "ok" or "bootstrapping"
	Role      string `json:"role"`   // "standalone", "leader" or "follower"
	Ready     bool   `json:"ready"`
	Epoch     uint64 `json:"epoch"`
	LagEpochs uint64 `json:"lag_epochs,omitempty"`
	LagBytes  uint64 `json:"lag_bytes,omitempty"`
	Leader    string `json:"leader,omitempty"`
	// MappedBytes is the mmap'd checkpoint region the served labelling
	// still draws entries from — non-zero means this process booted
	// zero-copy and its labels page in on demand.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// Server carries uptime, build identity and runtime basics (obs.go).
	Server serverInfo `json:"server"`
}

// healthz reports readiness: 200 once the serving store exists (for a
// replica, once its bootstrap completed), 503 before — so a load balancer
// only routes to replicas that can actually answer. Role and lag ride
// along for operators and lag-aware routers.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Role: "standalone", Ready: true, Server: s.serverInfo()}
	if s.replica != nil {
		rs := s.replica.ReplicationStats()
		resp.Role, resp.Ready = rs.Role, rs.Ready
		resp.LagEpochs, resp.LagBytes = rs.LagEpochs, rs.LagBytes
		resp.Leader = rs.Leader
		if st := s.replica.Store(); st != nil {
			resp.Epoch = st.Epoch()
			resp.MappedBytes = st.Stats().MappedBytes
		}
		if !rs.Ready {
			resp.Status = "bootstrapping"
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	} else {
		resp.Epoch = s.store.Epoch()
		st := s.store.Stats()
		resp.MappedBytes = st.MappedBytes
		if rst := st.Replication; rst != nil {
			resp.Role = rst.Role
			resp.LagEpochs = rst.LagEpochs
		}
	}
	tagEpoch(w, resp.Epoch)
	writeJSON(w, http.StatusOK, resp)
}

// checkpointResponse is the JSON shape of POST /checkpoint.
type checkpointResponse struct {
	Epoch uint64 `json:"epoch"`
}

// checkpoint serves POST /checkpoint on durable servers: the current
// snapshot's full state is written and superseded log segments are
// truncated. The work runs against a pinned immutable snapshot, so
// in-flight queries and updates are never blocked.
func (s *Server) checkpoint(w http.ResponseWriter, r *http.Request) {
	if s.durability == nil {
		httpError(w, http.StatusNotImplemented,
			fmt.Errorf("this server has no durability layer (start it with a data directory): %w", errors.ErrUnsupported))
		return
	}
	epoch, err := s.durability.Checkpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	tagEpoch(w, epoch)
	writeJSON(w, http.StatusOK, checkpointResponse{Epoch: epoch})
}

// walStats serves GET /wal/stats on durable servers.
func (s *Server) walStats(w http.ResponseWriter, r *http.Request) {
	if s.durability == nil {
		httpError(w, http.StatusNotImplemented,
			fmt.Errorf("this server has no durability layer (start it with a data directory): %w", errors.ErrUnsupported))
		return
	}
	writeJSON(w, http.StatusOK, s.durability.DurabilityStats())
}

func jsonDist(d dynhl.Dist) *uint32 {
	if d == dynhl.Inf {
		return nil
	}
	dd := uint32(d)
	return &dd
}

func vertexParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return uint32(v), nil
}

// decodeJSON decodes a request body capped at maxBodyBytes, answering 413
// for oversized payloads and 400 for malformed ones. It reports whether the
// handler should proceed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte cap", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return false
	}
	return true
}

// updateError maps a mutation failure onto a status code through the dynhl
// sentinel errors.
// applyError maps write-path failures: a request context cancelled while
// the batch was still queued gets 499 ("client closed request"), exactly
// as batch reads already do; everything else is an update error.
func applyError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		httpError(w, 499, err)
		return
	}
	updateError(w, err)
}

func updateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dynhl.ErrNoSuchVertex), errors.Is(err, dynhl.ErrNoSuchEdge):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, dynhl.ErrEdgeExists):
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, errors.ErrUnsupported):
		httpError(w, http.StatusNotImplemented, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
