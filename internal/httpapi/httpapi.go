// Package httpapi exposes a dynamic distance index over HTTP with a small
// JSON API, turning the library into the kind of service the paper's
// motivating applications (context-aware search, social analysis, network
// management) would deploy:
//
//	GET  /distance?u=U&v=V   exact distance ("inf" when disconnected)
//	POST /edges              {"u":U,"v":V} — insert an edge, index repaired
//	POST /vertices           {"neighbors":[..]} — insert a vertex
//	GET  /stats              index size statistics
//	GET  /healthz            liveness
//
// The index is not safe for concurrent use, so a single mutex serialises
// queries and updates; queries are microseconds, so the lock is not a
// practical bottleneck for a demonstration service.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	dynhl "repro"
)

// Server wraps an index with HTTP handlers.
type Server struct {
	mu  sync.Mutex
	idx *dynhl.Index
}

// New returns a Server serving idx.
func New(idx *dynhl.Index) *Server { return &Server{idx: idx} }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distance", s.distance)
	mux.HandleFunc("POST /edges", s.insertEdge)
	mux.HandleFunc("POST /vertices", s.insertVertex)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// distanceResponse is the JSON shape of GET /distance.
type distanceResponse struct {
	U        uint32  `json:"u"`
	V        uint32  `json:"v"`
	Distance *uint32 `json:"distance"` // null when disconnected
}

func (s *Server) distance(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	n := s.idx.Graph().NumVertices()
	if int(u) >= n || int(v) >= n {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, fmt.Errorf("vertex out of range (have %d vertices)", n))
		return
	}
	d := s.idx.Query(u, v)
	s.mu.Unlock()
	resp := distanceResponse{U: u, V: v}
	if d != dynhl.Inf {
		dd := uint32(d)
		resp.Distance = &dd
	}
	writeJSON(w, http.StatusOK, resp)
}

type edgeRequest struct {
	U uint32 `json:"u"`
	V uint32 `json:"v"`
}

// edgeResponse reports what the insertion did.
type edgeResponse struct {
	Affected       int `json:"affected"`
	EntriesAdded   int `json:"entries_added"`
	EntriesRemoved int `json:"entries_removed"`
}

func (s *Server) insertEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	s.mu.Lock()
	st, err := s.idx.InsertEdge(req.U, req.V)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       st.AffectedUnion,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
	})
}

type vertexRequest struct {
	Neighbors []uint32 `json:"neighbors"`
}

type vertexResponse struct {
	ID       uint32 `json:"id"`
	Affected int    `json:"affected"`
}

func (s *Server) insertVertex(w http.ResponseWriter, r *http.Request) {
	var req vertexRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	s.mu.Lock()
	id, st, err := s.idx.InsertVertex(req.Neighbors)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, vertexResponse{ID: id, Affected: st.AffectedUnion})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.idx.Stats()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func vertexParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return uint32(v), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
