// Package httpapi exposes a dynamic distance oracle over HTTP with a small
// JSON API, turning the library into the kind of service the paper's
// motivating applications (context-aware search, social analysis, network
// management) would deploy. It is written against the dynhl.Oracle
// interface, so one handler set serves undirected, directed and weighted
// graphs alike:
//
//	GET  /distance?u=U&v=V   exact distance ("distance": null when
//	                         unreachable)
//	POST /distances          {"pairs":[{"u":U,"v":V},...]} — batch query,
//	                         answered by one worker-fanned QueryBatch
//	POST /edges              {"u":U,"v":V,"w":W} — insert an edge (weight
//	                         optional, weighted oracles only), index repaired
//	POST /vertices           {"neighbors":[..]} or {"arcs":[{"to":T,"w":W,
//	                         "in":B},..]} — insert a vertex
//	GET  /stats              index size statistics
//	GET  /healthz            liveness
//
// Queries are microsecond read-only lookups while IncHL+ repairs are rare
// writes, so the server wraps the oracle with dynhl.Concurrent: an RWMutex
// lets any number of in-flight reads run in parallel across cores and only
// updates take the exclusive lock.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	dynhl "repro"
)

// Server wraps an oracle with HTTP handlers.
type Server struct {
	o *dynhl.ConcurrentOracle
}

// New returns a Server serving o, wrapping it with dynhl.Concurrent (a
// no-op when o already is one).
func New(o dynhl.Oracle) *Server { return &Server{o: dynhl.Concurrent(o)} }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distance", s.distance)
	mux.HandleFunc("POST /distances", s.distances)
	mux.HandleFunc("POST /edges", s.insertEdge)
	mux.HandleFunc("POST /vertices", s.insertVertex)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// distanceResponse is the JSON shape of GET /distance.
type distanceResponse struct {
	U        uint32  `json:"u"`
	V        uint32  `json:"v"`
	Distance *uint32 `json:"distance"` // null when unreachable
}

func (s *Server) distance(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n := s.o.NumVertices()
	if int(u) >= n || int(v) >= n {
		httpError(w, http.StatusNotFound, fmt.Errorf("vertex out of range (have %d vertices)", n))
		return
	}
	d := s.o.Query(u, v)
	writeJSON(w, http.StatusOK, distanceResponse{U: u, V: v, Distance: jsonDist(d)})
}

// distancesRequest is the JSON shape of POST /distances.
type distancesRequest struct {
	Pairs []dynhl.Pair `json:"pairs"`
}

// distancesResponse answers pairs positionally; null marks unreachable.
type distancesResponse struct {
	Distances []*uint32 `json:"distances"`
}

func (s *Server) distances(w http.ResponseWriter, r *http.Request) {
	var req distancesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	n := s.o.NumVertices()
	for i, p := range req.Pairs {
		if int(p.U) >= n || int(p.V) >= n {
			httpError(w, http.StatusNotFound,
				fmt.Errorf("pair %d: vertex out of range (have %d vertices)", i, n))
			return
		}
	}
	ds := s.o.QueryBatch(req.Pairs)
	resp := distancesResponse{Distances: make([]*uint32, len(ds))}
	for i, d := range ds {
		resp.Distances[i] = jsonDist(d)
	}
	writeJSON(w, http.StatusOK, resp)
}

type edgeRequest struct {
	U uint32     `json:"u"`
	V uint32     `json:"v"`
	W dynhl.Dist `json:"w"` // optional; 0 means 1, >1 only on weighted oracles
}

// edgeResponse reports what the insertion did.
type edgeResponse struct {
	Affected       int `json:"affected"`
	EntriesAdded   int `json:"entries_added"`
	EntriesRemoved int `json:"entries_removed"`
}

func (s *Server) insertEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	st, err := s.o.InsertEdge(req.U, req.V, req.W)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       st.Affected,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
	})
}

type vertexRequest struct {
	// Neighbors is the plain form: outgoing unit-weight arcs.
	Neighbors []uint32 `json:"neighbors"`
	// Arcs is the full form for weighted/directed oracles.
	Arcs []dynhl.Arc `json:"arcs"`
}

type vertexResponse struct {
	ID       uint32 `json:"id"`
	Affected int    `json:"affected"`
}

func (s *Server) insertVertex(w http.ResponseWriter, r *http.Request) {
	var req vertexRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	arcs := append(dynhl.Arcs(req.Neighbors...), req.Arcs...)
	id, st, err := s.o.InsertVertex(arcs)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, vertexResponse{ID: id, Affected: st.Affected})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.o.Stats())
}

func jsonDist(d dynhl.Dist) *uint32 {
	if d == dynhl.Inf {
		return nil
	}
	dd := uint32(d)
	return &dd
}

func vertexParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return uint32(v), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
