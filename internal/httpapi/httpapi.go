// Package httpapi exposes a dynamic distance oracle over HTTP with a small
// JSON API, turning the library into the kind of service the paper's
// motivating applications (context-aware search, social analysis, network
// management) would deploy. It is written against the dynhl.Oracle
// interface, so one handler set serves undirected, directed and weighted
// graphs alike:
//
//	GET    /distance?u=U&v=V   exact distance ("distance": null when
//	                           unreachable)
//	POST   /distances          {"pairs":[{"u":U,"v":V},...]} — batch query,
//	                           answered by one worker-fanned QueryBatch
//	POST   /edges              {"u":U,"v":V,"w":W} — insert an edge (weight
//	                           optional, weighted oracles only), index
//	                           repaired with IncHL+
//	DELETE /edges?u=U&v=V      delete an edge, index repaired with DecHL
//	POST   /vertices           {"neighbors":[..]} or {"arcs":[{"to":T,"w":W,
//	                           "in":B},..]} — insert a vertex
//	DELETE /vertices?v=V       disconnect a vertex (all incident edges)
//	GET    /stats              index size statistics
//	GET    /healthz            liveness
//
// Mutation failures map onto status codes through the dynhl sentinel
// errors: unknown vertices and edges are 404, inserting an edge that
// already exists is 409, anything else the oracle rejects is 400. Untrusted
// input is bounded: request bodies beyond MaxBodyBytes and batches beyond
// MaxBatchPairs are rejected with 413 before any result allocation.
//
// Queries are microsecond read-only lookups while the IncHL+/DecHL repairs
// are rare writes, so the server wraps the oracle with dynhl.Concurrent: an
// RWMutex lets any number of in-flight reads run in parallel across cores
// and only updates take the exclusive lock.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	dynhl "repro"
)

// Limits on untrusted input, overridable per Server through Options.
const (
	// DefaultMaxBatchPairs bounds the number of pairs one POST /distances
	// may ask for; each pair costs a query and eight bytes of result.
	DefaultMaxBatchPairs = 10000
	// DefaultMaxBodyBytes bounds the size of any JSON request body.
	DefaultMaxBodyBytes = 1 << 20
)

// Option customises a Server.
type Option func(*Server)

// WithMaxBatchPairs caps the pair count of POST /distances (0 or negative
// restores the default).
func WithMaxBatchPairs(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatchPairs = n
		}
	}
}

// WithMaxBodyBytes caps JSON request body sizes (0 or negative restores the
// default).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBodyBytes = n
		}
	}
}

// Server wraps an oracle with HTTP handlers.
type Server struct {
	o             *dynhl.ConcurrentOracle
	maxBatchPairs int
	maxBodyBytes  int64
}

// New returns a Server serving o, wrapping it with dynhl.Concurrent (a
// no-op when o already is one).
func New(o dynhl.Oracle, opts ...Option) *Server {
	s := &Server{
		o:             dynhl.Concurrent(o),
		maxBatchPairs: DefaultMaxBatchPairs,
		maxBodyBytes:  DefaultMaxBodyBytes,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distance", s.distance)
	mux.HandleFunc("POST /distances", s.distances)
	mux.HandleFunc("POST /edges", s.insertEdge)
	mux.HandleFunc("DELETE /edges", s.deleteEdge)
	mux.HandleFunc("POST /vertices", s.insertVertex)
	mux.HandleFunc("DELETE /vertices", s.deleteVertex)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// distanceResponse is the JSON shape of GET /distance.
type distanceResponse struct {
	U        uint32  `json:"u"`
	V        uint32  `json:"v"`
	Distance *uint32 `json:"distance"` // null when unreachable
}

func (s *Server) distance(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n := s.o.NumVertices()
	if int(u) >= n || int(v) >= n {
		httpError(w, http.StatusNotFound, fmt.Errorf("vertex out of range (have %d vertices)", n))
		return
	}
	d := s.o.Query(u, v)
	writeJSON(w, http.StatusOK, distanceResponse{U: u, V: v, Distance: jsonDist(d)})
}

// distancesRequest is the JSON shape of POST /distances.
type distancesRequest struct {
	Pairs []dynhl.Pair `json:"pairs"`
}

// distancesResponse answers pairs positionally; null marks unreachable.
type distancesResponse struct {
	Distances []*uint32 `json:"distances"`
}

func (s *Server) distances(w http.ResponseWriter, r *http.Request) {
	var req distancesRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Pairs) > s.maxBatchPairs {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), s.maxBatchPairs))
		return
	}
	n := s.o.NumVertices()
	for i, p := range req.Pairs {
		if int(p.U) >= n || int(p.V) >= n {
			httpError(w, http.StatusNotFound,
				fmt.Errorf("pair %d: vertex out of range (have %d vertices)", i, n))
			return
		}
	}
	ds := s.o.QueryBatch(req.Pairs)
	resp := distancesResponse{Distances: make([]*uint32, len(ds))}
	for i, d := range ds {
		resp.Distances[i] = jsonDist(d)
	}
	writeJSON(w, http.StatusOK, resp)
}

type edgeRequest struct {
	U uint32     `json:"u"`
	V uint32     `json:"v"`
	W dynhl.Dist `json:"w"` // optional; 0 means 1, >1 only on weighted oracles
}

// edgeResponse reports what the insertion did.
type edgeResponse struct {
	Affected       int `json:"affected"`
	EntriesAdded   int `json:"entries_added"`
	EntriesRemoved int `json:"entries_removed"`
}

func (s *Server) insertEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	st, err := s.o.InsertEdge(req.U, req.V, req.W)
	if err != nil {
		updateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       st.Affected,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
	})
}

// deleteEdge serves DELETE /edges?u=U&v=V: the edge is removed and the
// labelling repaired with DecHL.
func (s *Server) deleteEdge(w http.ResponseWriter, r *http.Request) {
	u, err := vertexParam(r, "u")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.o.DeleteEdge(u, v)
	if err != nil {
		updateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       st.Affected,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
	})
}

// deleteVertex serves DELETE /vertices?v=V: every incident edge of v is
// deleted, leaving the id behind as an isolated vertex.
func (s *Server) deleteVertex(w http.ResponseWriter, r *http.Request) {
	v, err := vertexParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.o.DeleteVertex(v)
	if err != nil {
		updateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgeResponse{
		Affected:       st.Affected,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
	})
}

type vertexRequest struct {
	// Neighbors is the plain form: outgoing unit-weight arcs.
	Neighbors []uint32 `json:"neighbors"`
	// Arcs is the full form for weighted/directed oracles.
	Arcs []dynhl.Arc `json:"arcs"`
}

type vertexResponse struct {
	ID       uint32 `json:"id"`
	Affected int    `json:"affected"`
}

func (s *Server) insertVertex(w http.ResponseWriter, r *http.Request) {
	var req vertexRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	arcs := append(dynhl.Arcs(req.Neighbors...), req.Arcs...)
	id, st, err := s.o.InsertVertex(arcs)
	if err != nil {
		updateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, vertexResponse{ID: id, Affected: st.Affected})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.o.Stats())
}

func jsonDist(d dynhl.Dist) *uint32 {
	if d == dynhl.Inf {
		return nil
	}
	dd := uint32(d)
	return &dd
}

func vertexParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %w", raw, err)
	}
	return uint32(v), nil
}

// decodeJSON decodes a request body capped at maxBodyBytes, answering 413
// for oversized payloads and 400 for malformed ones. It reports whether the
// handler should proceed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte cap", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return false
	}
	return true
}

// updateError maps a mutation failure onto a status code through the dynhl
// sentinel errors.
func updateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dynhl.ErrNoSuchVertex), errors.Is(err, dynhl.ErrNoSuchEdge):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, dynhl.ErrEdgeExists):
		httpError(w, http.StatusConflict, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
