package httpapi

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	dynhl "repro"
	"repro/internal/obs"
)

// statsResponse is GET /stats: the store's own stats with the serving
// process's identity alongside.
type statsResponse struct {
	dynhl.Stats
	Server serverInfo `json:"server"`
}

// This file is the service's observability surface: the Prometheus
// text-format GET /metrics endpoint (hand-rolled exposition, no external
// deps — see internal/obs), the uptime/build/runtime enrichment of
// /stats and /healthz, and the structured access-log middleware.

// buildInfo resolves the binary's module version and VCS revision once;
// both are empty when the binary was built without module/VCS stamping.
var buildInfo = sync.OnceValues(func() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	version = bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, revision
})

// serverInfo is the "server" section of GET /stats: which binary is
// answering, for how long, and its runtime shape — so operators can
// correlate metrics with the process that produced them.
type serverInfo struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       string  `json:"version,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`
}

func (s *Server) serverInfo() serverInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	version, revision := buildInfo()
	return serverInfo{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Version:       version,
		Revision:      revision,
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     ms.HeapAlloc,
	}
}

// metricsRegistries gathers every registry this server speaks for: the
// store's own plus its attached layers (via Store.MetricsRegistries),
// and the process-wide runtime registry. Gathered per scrape, so layers
// attached after startup appear as soon as they exist; a replica that
// has not bootstrapped yet exposes its follower registry (lag, link
// state) and the runtime — exactly what a prober wants while it waits.
func (s *Server) metricsRegistries() []*obs.Registry {
	st := s.store
	if s.replica != nil {
		if st = s.replica.Store(); st == nil {
			regs := []*obs.Registry{}
			if ms, ok := s.replica.(interface{ MetricsRegistry() *obs.Registry }); ok {
				regs = append(regs, ms.MetricsRegistry())
			}
			return append(regs, obs.Runtime())
		}
	}
	return append(st.MetricsRegistries(), obs.Runtime())
}

// metrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = obs.WriteAll(w, s.metricsRegistries()...)
}

// MetricsHandler returns the /metrics endpoint on its own, for mounting
// on a debug listener alongside pprof (hlserver -debug-addr).
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.metrics) }

// statusWriter captures what the wrapped handler wrote, for the access
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// AccessLog wraps next with a structured access log: one line per
// request — method, path, status, response bytes, latency and the
// X-Oracle-Epoch the response carried — through logf. Off by default in
// hlserver; enabled with -access-log.
func AccessLog(logf func(format string, args ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		epoch := sw.Header().Get(epochHeader)
		if epoch == "" {
			epoch = "-"
		}
		logf("access: method=%s path=%s status=%d bytes=%d latency=%s epoch=%s",
			r.Method, r.URL.Path, status, sw.bytes, time.Since(start), epoch)
	})
}
