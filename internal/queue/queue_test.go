package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUint32FIFO(t *testing.T) {
	q := NewUint32(2)
	for i := uint32(0); i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len: got %d, want 10", q.Len())
	}
	if q.Peek() != 0 {
		t.Fatalf("Peek: got %d", q.Peek())
	}
	for i := uint32(0); i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop %d: got %d", i, got)
		}
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestUint32WrapAround(t *testing.T) {
	var q Uint32 // zero value usable
	for round := 0; round < 5; round++ {
		for i := uint32(0); i < 7; i++ {
			q.Push(i)
		}
		for i := uint32(0); i < 7; i++ {
			if got := q.Pop(); got != i {
				t.Fatalf("round %d pop: got %d, want %d", round, got, i)
			}
		}
	}
}

func TestUint32PopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue must panic")
		}
	}()
	var q Uint32
	q.Pop()
}

func TestUint32Reset(t *testing.T) {
	var q Uint32
	q.Push(1)
	q.Push(2)
	q.Reset()
	if !q.Empty() {
		t.Error("Reset must empty the queue")
	}
	q.Push(9)
	if q.Pop() != 9 {
		t.Error("queue unusable after Reset")
	}
}

func TestPairQueueFIFO(t *testing.T) {
	var q PairQueue
	for i := uint32(0); i < 20; i++ {
		q.Push(Pair{V: i, D: i * 2})
	}
	if q.Peek() != (Pair{0, 0}) {
		t.Fatalf("Peek: got %v", q.Peek())
	}
	for i := uint32(0); i < 20; i++ {
		p := q.Pop()
		if p.V != i || p.D != i*2 {
			t.Fatalf("Pop: got %v", p)
		}
	}
}

func TestPairQueuePanics(t *testing.T) {
	for name, fn := range map[string]func(*PairQueue){
		"Pop":  func(q *PairQueue) { q.Pop() },
		"Peek": func(q *PairQueue) { q.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue must panic", name)
				}
			}()
			var q PairQueue
			fn(&q)
		}()
	}
}

func TestQueueQuickMirrorsSlice(t *testing.T) {
	// Property: interleaved pushes and pops behave like a slice-backed FIFO.
	f := func(ops []uint16) bool {
		var q Uint32
		var ref []uint32
		for _, op := range ops {
			if op%3 == 0 && len(ref) > 0 {
				want := ref[0]
				ref = ref[1:]
				if q.Pop() != want {
					return false
				}
			} else {
				q.Push(uint32(op))
				ref = append(ref, uint32(op))
			}
		}
		if q.Len() != len(ref) {
			return false
		}
		for _, want := range ref {
			if q.Pop() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
