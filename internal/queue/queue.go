// Package queue provides ring-buffer FIFO queues used by the breadth-first
// searches throughout this repository. They avoid the per-element allocation
// of container/list and the head-slice churn of append/shift slices.
package queue

// Uint32 is a FIFO queue of uint32 values backed by a growable ring buffer.
// The zero value is ready to use.
type Uint32 struct {
	buf  []uint32
	head int
	tail int
	n    int
}

// NewUint32 returns a queue with capacity for at least n elements.
func NewUint32(n int) *Uint32 {
	if n < 4 {
		n = 4
	}
	return &Uint32{buf: make([]uint32, n)}
}

// Len reports the number of queued elements.
func (q *Uint32) Len() int { return q.n }

// Empty reports whether the queue holds no elements.
func (q *Uint32) Empty() bool { return q.n == 0 }

// Push appends v to the tail of the queue.
func (q *Uint32) Push(v uint32) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = v
	q.tail++
	if q.tail == len(q.buf) {
		q.tail = 0
	}
	q.n++
}

// Pop removes and returns the head of the queue.
// It panics if the queue is empty.
func (q *Uint32) Pop() uint32 {
	if q.n == 0 {
		panic("queue: Pop on empty Uint32 queue")
	}
	v := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return v
}

// Peek returns the head of the queue without removing it.
// It panics if the queue is empty.
func (q *Uint32) Peek() uint32 {
	if q.n == 0 {
		panic("queue: Peek on empty Uint32 queue")
	}
	return q.buf[q.head]
}

// Reset discards all elements but keeps the backing buffer.
func (q *Uint32) Reset() {
	q.head, q.tail, q.n = 0, 0, 0
}

func (q *Uint32) grow() {
	next := make([]uint32, max(4, 2*len(q.buf)))
	if q.n > 0 {
		if q.head < q.tail {
			copy(next, q.buf[q.head:q.tail])
		} else {
			k := copy(next, q.buf[q.head:])
			copy(next[k:], q.buf[:q.tail])
		}
	}
	q.buf = next
	q.head = 0
	q.tail = q.n
}

// Pair is a (vertex, depth) element for BFS frontiers that must carry an
// explicit depth, such as the jumped searches of IncHL+.
type Pair struct {
	V uint32
	D uint32
}

// PairQueue is a FIFO queue of Pair values backed by a growable ring buffer.
// The zero value is ready to use.
type PairQueue struct {
	buf  []Pair
	head int
	tail int
	n    int
}

// NewPairQueue returns a queue with capacity for at least n elements.
func NewPairQueue(n int) *PairQueue {
	if n < 4 {
		n = 4
	}
	return &PairQueue{buf: make([]Pair, n)}
}

// Len reports the number of queued elements.
func (q *PairQueue) Len() int { return q.n }

// Empty reports whether the queue holds no elements.
func (q *PairQueue) Empty() bool { return q.n == 0 }

// Push appends p to the tail of the queue.
func (q *PairQueue) Push(p Pair) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = p
	q.tail++
	if q.tail == len(q.buf) {
		q.tail = 0
	}
	q.n++
}

// Pop removes and returns the head of the queue.
// It panics if the queue is empty.
func (q *PairQueue) Pop() Pair {
	if q.n == 0 {
		panic("queue: Pop on empty PairQueue")
	}
	p := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return p
}

// Peek returns the head of the queue without removing it.
// It panics if the queue is empty.
func (q *PairQueue) Peek() Pair {
	if q.n == 0 {
		panic("queue: Peek on empty PairQueue")
	}
	return q.buf[q.head]
}

// Reset discards all elements but keeps the backing buffer.
func (q *PairQueue) Reset() {
	q.head, q.tail, q.n = 0, 0, 0
}

func (q *PairQueue) grow() {
	next := make([]Pair, max(4, 2*len(q.buf)))
	if q.n > 0 {
		if q.head < q.tail {
			copy(next, q.buf[q.head:q.tail])
		} else {
			k := copy(next, q.buf[q.head:])
			copy(next[k:], q.buf[:q.tail])
		}
	}
	q.buf = next
	q.head = 0
	q.tail = q.n
}
