package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 || s.Total != 15 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev: got %v", s.StdDev)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0: %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100: %v", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("p50: %v", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("singleton: %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestDurationsToMillis(t *testing.T) {
	ms := DurationsToMillis([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if ms[0] != 1 || ms[1] != 2.5 {
		t.Fatalf("got %v", ms)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.0 KB",
		44040192:        "42.0 MB",
		2620130000:      "2.44 GB",
		175019900000000: "162999.98 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d): got %q, want %q", in, got, want)
		}
	}
}

func TestFormatMillis(t *testing.T) {
	cases := map[float64]string{
		0.006:      "0.0060",
		0.194:      "0.1940",
		2.026:      "2.026",
		95.92:      "95.920",
		2018:       "2018.0",
		math.NaN(): "-",
	}
	for in, want := range cases {
		if got := FormatMillis(in); got != want {
			t.Errorf("FormatMillis(%v): got %q, want %q", in, got, want)
		}
	}
}
