// Package stats provides the small numeric and formatting helpers used by
// the experiment harness: summary statistics over timing samples and
// human-readable byte sizes matching the units of the paper's Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Mean           float64
	Min, Max       float64
	Median         float64
	P90, P99       float64
	StdDev         float64
	Total          float64
	SortedAscCache []float64
}

// Summarize computes summary statistics of xs (not modified).
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.SortedAscCache = sorted
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	for _, x := range sorted {
		s.Total += x
	}
	s.Mean = s.Total / float64(s.N)
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sortedAsc []float64, p float64) float64 {
	n := len(sortedAsc)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sortedAsc[0]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sortedAsc[lo]
	}
	frac := pos - float64(lo)
	return sortedAsc[lo]*(1-frac) + sortedAsc[hi]*frac
}

// DurationsToMillis converts timing samples to float milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// FormatBytes renders a byte count the way the paper's Table 1 does
// (42 MB, 2.44 GB, ...).
func FormatBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.2f GB", float64(b)/gb)
	case b >= mb:
		return fmt.Sprintf("%.1f MB", float64(b)/mb)
	case b >= kb:
		return fmt.Sprintf("%.1f KB", float64(b)/kb)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// FormatMillis renders a duration in milliseconds with sensible precision
// across the paper's 0.006ms–2018ms range.
func FormatMillis(ms float64) string {
	switch {
	case math.IsNaN(ms):
		return "-"
	case ms >= 100:
		return fmt.Sprintf("%.1f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.3f", ms)
	default:
		return fmt.Sprintf("%.4f", ms)
	}
}
