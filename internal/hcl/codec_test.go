package hcl

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/landmark"
	"repro/internal/testutil"
)

func TestCodecRoundTrip(t *testing.T) {
	g := testutil.RandomGraph(120, 220, 5)
	idx, err := Build(g, landmark.ByDegree(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if err := idx.EqualLabels(back); err != nil {
		t.Fatal(err)
	}
	// The restored index must answer queries.
	for u := uint32(0); u < 20; u++ {
		if got, want := back.Query(u, 100), idx.Query(u, 100); got != want {
			t.Fatalf("Query(%d,100): got %d, want %d", u, got, want)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	g := testutil.RandomGraph(10, 15, 1)
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE....",
		"truncated": "HCL1\x0a\x00\x00\x00",
	}
	for name, in := range cases {
		if _, err := ReadIndex(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCodecRejectsWrongGraph(t *testing.T) {
	g := testutil.RandomGraph(40, 60, 2)
	idx, err := Build(g, landmark.ByDegree(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := testutil.RandomGraph(41, 60, 3)
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("vertex-count mismatch must be rejected")
	}
}

func TestCodecCorruptedLabelRejected(t *testing.T) {
	g := testutil.RandomGraph(30, 50, 4)
	idx, err := Build(g, landmark.ByDegree(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a byte near the end (inside label entries).
	data[len(data)-3] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data), g); err == nil {
		t.Log("corruption in distance payload is not detectable by structure alone; ensure cover check catches it")
		back, err := ReadIndex(bytes.NewReader(data), g)
		if err == nil {
			if err := back.VerifyCover(); err == nil {
				t.Error("corrupted index passed both structural and cover checks")
			}
		}
	}
}
