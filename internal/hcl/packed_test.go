package hcl

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/testutil"
)

// chunkSharedWith reports whether chunk ci of p reuses chunk ci of o by
// reference — i.e. a delta repack left it shared with the parent.
func (p *Packed) chunkSharedWith(o *Packed, ci int) bool {
	if ci >= len(p.chunks) || ci >= len(o.chunks) {
		return false
	}
	a, b := p.chunks[ci].entries, o.chunks[ci].entries
	if len(a) == 0 || len(b) == 0 {
		// Empty arenas carry no distinguishing pointer; compare the
		// offset tables instead.
		return len(a) == len(b) && len(p.chunks[ci].off) > 0 && len(o.chunks[ci].off) > 0 &&
			&p.chunks[ci].off[0] == &o.chunks[ci].off[0]
	}
	return len(a) == len(b) && &a[0] == &b[0]
}

// randomLabels builds n sorted-by-rank labels with up to maxLen entries.
func randomLabels(n, maxLen int, seed int64) []Label {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]Label, n)
	for v := range labels {
		cnt := rng.Intn(maxLen + 1)
		var l Label
		r := 0
		for i := 0; i < cnt; i++ {
			r += 1 + rng.Intn(4)
			l = append(l, Entry{Rank: uint16(r), D: graph.Dist(rng.Intn(100))})
		}
		labels[v] = l
	}
	return labels
}

// TestPackLabelsRoundTrip pins that the packed form reproduces every label
// span exactly, across chunk boundaries (n > packChunkLen forces several
// chunks, including a partial last one).
func TestPackLabelsRoundTrip(t *testing.T) {
	n := 2*packChunkLen + 123
	labels := randomLabels(n, 6, 1)
	p := PackLabels(labels)
	if p.NumVertices() != n {
		t.Fatalf("NumVertices: %d, want %d", p.NumVertices(), n)
	}
	var want int64
	for v, l := range labels {
		got := p.Label(uint32(v))
		if len(got) != len(l) {
			t.Fatalf("vertex %d: packed span has %d entries, want %d", v, len(got), len(l))
		}
		for i := range l {
			if got[i] != l[i] {
				t.Fatalf("vertex %d entry %d: %v vs %v", v, i, got[i], l[i])
			}
		}
		want += int64(len(l))
		for _, e := range l {
			d, ok := p.Get(uint32(v), e.Rank)
			if !ok || d != e.D {
				t.Fatalf("vertex %d rank %d: Get = %d,%v, want %d", v, e.Rank, d, ok, e.D)
			}
		}
		if _, ok := p.Get(uint32(v), 60000); ok {
			t.Fatalf("vertex %d: Get of absent rank succeeded", v)
		}
	}
	if p.NumEntries() != want {
		t.Fatalf("NumEntries: %d, want %d", p.NumEntries(), want)
	}
	if p.ArenaBytes() <= want*EntryBytes {
		t.Fatalf("ArenaBytes %d must charge the offset index on top of %d entry bytes", p.ArenaBytes(), want*EntryBytes)
	}
}

// TestPackDeltaReusesChunks pins the delta-aware repack: chunks whose
// vertices were untouched since the parent pack are shared by reference,
// touched chunks are rebuilt, and the repacked form still answers from the
// new labels.
func TestPackDeltaReusesChunks(t *testing.T) {
	n := 3 * packChunkLen
	labels := randomLabels(n, 5, 2)
	parent := PackLabels(labels)

	// Fork-style state: all labels shared, then touch two vertices in the
	// middle chunk the way Index.ownLabel does.
	forked := append([]Label(nil), labels...)
	shared := bitset.NewAllSet(n)
	for _, v := range []uint32{uint32(packChunkLen) + 7, uint32(packChunkLen) + 900} {
		forked[v] = append(Label(nil), forked[v]...).Set(3, 9)
		shared.Clear(v)
	}

	repacked := Pack(forked, parent, shared)
	if !repacked.chunkSharedWith(parent, 0) {
		t.Error("untouched chunk 0 was rebuilt")
	}
	if repacked.chunkSharedWith(parent, 1) {
		t.Error("touched chunk 1 was shared with the parent")
	}
	if !repacked.chunkSharedWith(parent, 2) {
		t.Error("untouched chunk 2 was rebuilt")
	}
	for v := range forked {
		got := repacked.Label(uint32(v))
		if len(got) != len(forked[v]) {
			t.Fatalf("vertex %d: repacked span has %d entries, want %d", v, len(got), len(forked[v]))
		}
		for i := range got {
			if got[i] != forked[v][i] {
				t.Fatalf("vertex %d entry %d differs after delta repack", v, i)
			}
		}
	}

	// A grown label table (EnsureVertex) must never reuse a chunk beyond
	// the parent's coverage.
	grown := append(append([]Label(nil), forked...), randomLabels(100, 3, 3)...)
	shared.Grow(len(grown))
	p2 := Pack(grown, parent, shared)
	if p2.NumVertices() != len(grown) {
		t.Fatalf("grown pack covers %d vertices, want %d", p2.NumVertices(), len(grown))
	}
	if got := p2.Label(uint32(len(grown) - 1)); len(got) != len(grown[len(grown)-1]) {
		t.Fatal("grown pack lost the appended labels")
	}
}

// TestIndexPackLifecycle pins the publish contract on a real index: Build
// leaves the index unpacked, Pack freezes it, a label write drops the
// packed form, and packed and slice reads answer identically throughout.
func TestIndexPackLifecycle(t *testing.T) {
	g := testutil.RandomConnectedGraph(300, 600, 5)
	idx, err := Build(g, []uint32{3, 50, 99})
	if err != nil {
		t.Fatal(err)
	}
	if idx.PackedLabels() != nil {
		t.Fatal("freshly built index must start unpacked")
	}
	slice := make([]graph.Dist, 0, 300)
	for v := uint32(0); v < 300; v++ {
		slice = append(slice, idx.Query(0, v))
	}
	idx.Pack()
	if idx.PackedLabels() == nil {
		t.Fatal("Pack left the index unpacked")
	}
	idx.Pack() // idempotent
	for v := uint32(0); v < 300; v++ {
		if got := idx.Query(0, v); got != slice[v] {
			t.Fatalf("packed Query(0,%d) = %d, slice form said %d", v, got, slice[v])
		}
	}
	idx.SetEntry(7, 1, 2)
	if idx.PackedLabels() != nil {
		t.Fatal("label write must drop the packed form")
	}
}
