package hcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// The v2 index layout ("HCL3"): the mappable big-labelling format.
//
// The stream header is identical to HCL2 (magic | u32 |V| | u32 |R| |
// landmarks | highway) but the label block changes shape:
//
//	u64 total entries | u32 offPad | u32 entPad |
//	offPad zero bytes | offsets u64×(|V|+1) |
//	entPad zero bytes | entries 8B each (u16 rank | u16 zero | u32 dist)
//
// Three properties distinguish it from the HCL2 block:
//
//   - Offsets are u64, lifting the 2^32-entry ceiling WriteLabelBlock
//     refuses at.
//
//   - Entries are stored in the in-memory layout of Entry (8 bytes with
//     explicit rank padding, little-endian) instead of the 6-byte wire
//     form, so on little-endian hosts a loaded file's entry area IS a
//     valid []Entry and can be served straight out of an mmap.
//
//   - The explicit pads let a writer that knows its absolute position in
//     the enclosing file align the offset table to 8 bytes and the entry
//     area to a page boundary, which is what makes the in-place cast legal
//     and keeps a mapped boot from faulting entry pages it never reads.
//
// The pads are self-describing, so a reader never needs to know the
// writer's base offset; a mapped load simply checks the actual pointer
// alignment it got and falls back to copy-in if the block landed askew.
const codecMagicV2 = "HCL3"

// V2SaveThreshold is the entry count at which WriteTo switches from the
// HCL2 block (u32 offsets, 6-byte wire entries) to the v2 block. Past the
// u32 offset ceiling only v2 can represent the labelling; below it HCL2
// stays the default for its smaller wire size. A variable, not a
// constant, so tests can exercise the v2 pick without building 2^32
// entries.
var V2SaveThreshold uint64 = 1 << 32

// Span is an absolute byte range [Off, Off+Len) in the file a v2 stream
// was written into: the raw entry arenas. A mapped load serves these
// regions in place, and the v2 checkpoint CRC skips them so that boot
// never faults them in.
type Span struct{ Off, Len int64 }

// blockV2HeaderLen is the fixed prefix of a v2 label block: u64 total +
// u32 offPad + u32 entPad.
const blockV2HeaderLen = 16

// entryStride is the in-memory size of one Entry, the stride of the v2
// entry area. Asserted against unsafe.Sizeof in mapped.go.
const entryStride = 8

// maxV2Pad bounds the declared pads of an untrusted v2 block: enough for
// any page size in the wild, small enough to reject absurd skips.
const maxV2Pad = 1 << 20

// v2Geometry computes the layout of a v2 label block whose first byte
// lands at absolute offset base: the two pad lengths, the absolute entry
// offset and the total block length. align is the wanted alignment of the
// entry area (a power of two ≥ entryStride).
func v2Geometry(nv int, total uint64, base, align int64) (offPad, entPad, entOff, blockLen int64) {
	offStart := base + blockV2HeaderLen
	offPad = (8 - offStart%8) % 8
	offEnd := offStart + offPad + 8*int64(nv+1)
	entPad = (align - offEnd%align) % align
	entOff = offEnd + entPad
	blockLen = entOff + int64(total)*entryStride - base
	return
}

// WriteLabelBlockV2 appends the v2 label block of labels to bw. base is
// the absolute offset in the enclosing file at which the block's first
// byte lands and align the wanted alignment of the entry area; a writer
// that cannot know its base passes 0 and loses nothing but the mapped
// fast path (readers fall back to copy-in on misalignment). It returns
// the absolute span of the raw entry area and the total block length, so
// multi-block writers (dhcl) can compute the next block's base.
func WriteLabelBlockV2(bw *bufio.Writer, labels []Label, base, align int64) (Span, int64, error) {
	le := binary.LittleEndian
	var total uint64
	for _, l := range labels {
		total += uint64(len(l))
	}
	offPad, entPad, entOff, blockLen := v2Geometry(len(labels), total, base, align)
	var hdr [blockV2HeaderLen]byte
	le.PutUint64(hdr[0:], total)
	le.PutUint32(hdr[8:], uint32(offPad))
	le.PutUint32(hdr[12:], uint32(entPad))
	if _, err := bw.Write(hdr[:]); err != nil {
		return Span{}, 0, err
	}
	var zeros [8]byte
	if _, err := bw.Write(zeros[:offPad]); err != nil {
		return Span{}, 0, err
	}
	var buf [codecChunk * entryStride]byte
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		_, err := bw.Write(buf[:n])
		n = 0
		return err
	}
	var off uint64
	put64 := func(o uint64) error {
		if n+8 > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		le.PutUint64(buf[n:], o)
		n += 8
		return nil
	}
	for _, l := range labels {
		if err := put64(off); err != nil {
			return Span{}, 0, err
		}
		off += uint64(len(l))
	}
	if err := put64(off); err != nil {
		return Span{}, 0, err
	}
	if err := flush(); err != nil {
		return Span{}, 0, err
	}
	for pad := entPad; pad > 0; {
		w := pad
		if w > int64(len(zeros)) {
			w = int64(len(zeros))
		}
		if _, err := bw.Write(zeros[:w]); err != nil {
			return Span{}, 0, err
		}
		pad -= w
	}
	for _, l := range labels {
		for _, e := range l {
			if n+entryStride > len(buf) {
				if err := flush(); err != nil {
					return Span{}, 0, err
				}
			}
			le.PutUint16(buf[n:], e.Rank)
			le.PutUint16(buf[n+2:], 0)
			le.PutUint32(buf[n+4:], uint32(e.D))
			n += entryStride
		}
	}
	if err := flush(); err != nil {
		return Span{}, 0, err
	}
	return Span{Off: entOff, Len: int64(total) * entryStride}, blockLen, nil
}

// ReadLabelBlockV2 reads a v2 label block (copy-in path), validating
// exactly as ReadLabelBlock does for v1: monotonic offsets, per-vertex
// spans at most nr, entries sorted strictly by rank. Returns the entry
// arena and the u64 CSR offset index (length nv+1).
func ReadLabelBlockV2(br *bufio.Reader, nv, nr uint32) ([]Entry, []uint64, error) {
	le := binary.LittleEndian
	var hdr [blockV2HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("reading v2 label block header: %w", err)
	}
	total := le.Uint64(hdr[0:])
	offPad := int64(le.Uint32(hdr[8:]))
	entPad := int64(le.Uint32(hdr[12:]))
	if total > uint64(nv)*uint64(nr) {
		return nil, nil, fmt.Errorf("label block claims %d entries for %d vertices × %d landmarks", total, nv, nr)
	}
	if offPad > maxV2Pad || entPad > maxV2Pad {
		return nil, nil, fmt.Errorf("label block pads implausible (%d, %d)", offPad, entPad)
	}
	if _, err := io.CopyN(io.Discard, br, offPad); err != nil {
		return nil, nil, fmt.Errorf("skipping offset pad: %w", err)
	}
	off := make([]uint64, nv+1)
	raw := make([]byte, len(off)*8)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, nil, fmt.Errorf("reading label offsets: %w", err)
	}
	var prev uint64
	for i := range off {
		off[i] = le.Uint64(raw[i*8:])
		if off[i] < prev || off[i] > total || (i == 0 && off[0] != 0) {
			return nil, nil, fmt.Errorf("label offsets not monotonic at vertex %d", i)
		}
		if c := off[i] - prev; i > 0 && c > uint64(nr) {
			return nil, nil, fmt.Errorf("label %d has %d entries for %d landmarks", i-1, c, nr)
		}
		prev = off[i]
	}
	if off[nv] != total {
		return nil, nil, fmt.Errorf("label offsets cover %d of %d entries", off[nv], total)
	}
	if _, err := io.CopyN(io.Discard, br, entPad); err != nil {
		return nil, nil, fmt.Errorf("skipping entry pad: %w", err)
	}
	arena := make([]Entry, total)
	var block [codecChunk * entryStride]byte
	for done := uint64(0); done < total; {
		want := total - done
		if want > codecChunk {
			want = codecChunk
		}
		b := block[:want*entryStride]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, nil, fmt.Errorf("reading label arena at entry %d: %w", done, err)
		}
		for i := uint64(0); i < want; i++ {
			arena[done+i] = Entry{
				Rank: le.Uint16(b[i*entryStride:]),
				D:    graph.Dist(le.Uint32(b[i*entryStride+4:])),
			}
		}
		done += want
	}
	for v := uint32(0); v < nv; v++ {
		var prev int32 = -1
		for _, e := range arena[off[v]:off[v+1]] {
			if int32(e.Rank) <= prev || uint32(e.Rank) >= nr {
				return nil, nil, fmt.Errorf("label %d entries unsorted or out of range", v)
			}
			prev = int32(e.Rank)
		}
	}
	return arena, off, nil
}

// AttachArena64 is AttachArena for the u64 offset index of a v2 block:
// labels[v] becomes a capacity-clamped sub-slice of the arena and the
// returned Packed indexes the arena directly.
func AttachArena64(labels []Label, arena []Entry, off []uint64) *Packed {
	for v := range labels {
		if off[v] == off[v+1] {
			labels[v] = nil
			continue
		}
		labels[v] = arena[off[v]:off[v+1]:off[v+1]]
	}
	return packFromArena64(arena, off)
}

// packFromArena64 builds the packed read form over an arena with a u64
// offset index. Per-chunk offsets rebase to u32, which always fits: a
// chunk covers at most packChunkLen vertices of at most 2^16 entries each.
func packFromArena64(arena []Entry, off []uint64) *Packed {
	n := len(off) - 1
	p := &Packed{
		chunks:  make([]packChunk, (n+packChunkLen-1)/packChunkLen),
		n:       n,
		entries: int64(len(arena)),
	}
	for ci := range p.chunks {
		lo := ci * packChunkLen
		hi := min(lo+packChunkLen, n)
		base := off[lo]
		c := packChunk{
			entries: arena[base:off[hi]:off[hi]],
			off:     make([]uint32, hi-lo+1),
		}
		for i := range c.off {
			c.off[i] = uint32(off[lo+i] - base)
		}
		p.chunks[ci] = c
	}
	return p
}

// writeToV2 serialises the labelling in the HCL3 layout. base is the
// absolute offset of the stream's first byte in the enclosing file; the
// entry arena is padded to page alignment relative to it. Returns bytes
// written and the absolute entry-arena spans.
func (idx *Index) writeToV2(w io.Writer, base, align int64) (int64, []Span, error) {
	cw := &CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(codecMagicV2); err != nil {
		return cw.N, nil, err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(len(idx.L))); err != nil {
		return cw.N, nil, err
	}
	if err := writeU32(uint32(len(idx.Landmarks))); err != nil {
		return cw.N, nil, err
	}
	for _, v := range idx.Landmarks {
		if err := writeU32(v); err != nil {
			return cw.N, nil, err
		}
	}
	for _, d := range idx.H.mat {
		if err := writeU32(uint32(d)); err != nil {
			return cw.N, nil, err
		}
	}
	nr := int64(len(idx.Landmarks))
	blockBase := base + int64(len(codecMagicV2)) + 4 + 4 + 4*nr + 4*nr*nr
	span, _, err := WriteLabelBlockV2(bw, idx.L, blockBase, align)
	if err != nil {
		return cw.N, nil, err
	}
	if err := bw.Flush(); err != nil {
		return cw.N, nil, err
	}
	return cw.N, []Span{span}, nil
}

// WriteToMappable serialises the labelling in the HCL3 layout with the
// entry arena page-aligned, assuming the stream starts at absolute offset
// base of the destination file (0 for a file of its own). The returned
// spans name the raw entry regions a mapped load will serve in place.
func (idx *Index) WriteToMappable(w io.Writer, base int64) (int64, []Span, error) {
	return idx.writeToV2(w, base, int64(pageAlign()))
}
