package hcl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/testutil"
)

// pathGraph returns 0-1-2-...-(n-1).
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	return g
}

func TestBuildPathGraph(t *testing.T) {
	g := pathGraph(7)
	idx, err := Build(g, []uint32{0, 6})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := idx.H.Dist(0, 1); got != 6 {
		t.Errorf("highway 0-6: got %d, want 6", got)
	}
	// Every interior vertex lies on the single 0..6 path; its shortest path
	// to landmark 0 contains no other landmark, so it holds entries for
	// both landmarks.
	for v := uint32(1); v <= 5; v++ {
		if d, ok := idx.EntryDist(v, 0); !ok || d != graph.Dist(v) {
			t.Errorf("entry (0,%d): got %d,%v want %d", v, d, ok, v)
		}
		if d, ok := idx.EntryDist(v, 1); !ok || d != graph.Dist(6-v) {
			t.Errorf("entry (6,%d): got %d,%v want %d", v, d, ok, 6-v)
		}
	}
	for u := uint32(0); u < 7; u++ {
		for v := uint32(0); v < 7; v++ {
			want := graph.Dist(max(u, v) - min(u, v))
			if got := idx.Query(u, v); got != want {
				t.Errorf("Query(%d,%d): got %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestBuildCoveredVertexGetsNoEntry(t *testing.T) {
	// 0 - 1 - 2 - 3 with landmarks 0 and 2: every shortest path from 0 to 3
	// passes through landmark 2, so vertex 3 must have no entry for 0.
	g := pathGraph(4)
	idx, err := Build(g, []uint32{0, 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, ok := idx.EntryDist(3, 0); ok {
		t.Errorf("vertex 3 should be covered by landmark 2 w.r.t. landmark 0")
	}
	if d, ok := idx.EntryDist(3, 1); !ok || d != 1 {
		t.Errorf("entry (2,3): got %d,%v want 1", d, ok)
	}
	if got := idx.Query(0, 3); got != 3 {
		t.Errorf("Query(0,3): got %d, want 3", got)
	}
	if err := idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUncoveredParallelPathKeepsEntry(t *testing.T) {
	// Two parallel paths from 0 to 4: 0-1-2-3-4 (through landmark 2) and
	// 0-5-6-7-4 (landmark-free). Vertex 4 has a shortest path to 0 avoiding
	// landmark 2, but another one through it — the "some shortest path
	// contains a landmark" case, so the entry must be dropped.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}, {5, 6}, {6, 7}, {7, 4}} {
		g.MustAddEdge(e[0], e[1])
	}
	idx, err := Build(g, []uint32{0, 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, ok := idx.EntryDist(4, 0); ok {
		t.Errorf("vertex 4 is covered (a shortest 0-4 path passes landmark 2); entry must be absent")
	}
	if err := idx.VerifyCover(); err != nil {
		t.Fatal(err)
	}
	if got := idx.Query(0, 4); got != 4 {
		t.Errorf("Query(0,4): got %d, want 4", got)
	}
}

func TestBuildDisconnected(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4) // separate component, no landmark
	idx, err := Build(g, []uint32{0})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := idx.Query(3, 4); got != 1 {
		t.Errorf("Query(3,4): got %d, want 1 (found by sparsified search)", got)
	}
	if got := idx.Query(0, 3); got != graph.Inf {
		t.Errorf("Query(0,3): got %d, want Inf", got)
	}
	if got := idx.Query(5, 5); got != 0 {
		t.Errorf("Query(5,5): got %d, want 0", got)
	}
	if _, ok := idx.EntryDist(3, 0); ok {
		t.Errorf("unreachable vertex must have no entries")
	}
}

func TestBuildErrors(t *testing.T) {
	g := pathGraph(3)
	if _, err := Build(g, nil); err == nil {
		t.Error("Build with no landmarks should fail")
	}
	if _, err := Build(g, []uint32{0, 0}); err == nil {
		t.Error("Build with duplicate landmarks should fail")
	}
	if _, err := Build(g, []uint32{9}); err == nil {
		t.Error("Build with unknown landmark vertex should fail")
	}
}

func TestBuildRandomVerifyCover(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := testutil.RandomGraph(80, 160, seed)
		lm := landmark.ByDegree(g, 5)
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := idx.VerifyMinimal(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestQueryMatchesBFSOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := testutil.RandomGraph(60, 110, 100+seed)
		lm := landmark.ByDegree(g, 4)
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		oracle := testutil.AllPairsOracle(g)
		for u := 0; u < 60; u++ {
			for v := 0; v < 60; v++ {
				if got := idx.Query(uint32(u), uint32(v)); got != oracle[u][v] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, u, v, got, oracle[u][v])
				}
			}
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomConnectedGraph(120, 200, 200+seed)
		lm := landmark.ByDegree(g, 8)
		serial, err := Build(g, lm)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			par, err := BuildParallel(g, lm, workers)
			if err != nil {
				t.Fatalf("BuildParallel(%d): %v", workers, err)
			}
			if err := serial.EqualLabels(par); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
	}
}

func TestUpperBoundIsUpperBound(t *testing.T) {
	g := testutil.RandomConnectedGraph(70, 140, 7)
	lm := landmark.ByDegree(g, 5)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for u := uint32(0); u < 70; u++ {
		for v := uint32(0); v < 70; v++ {
			d := bfs.Dist(g, u, v)
			top := idx.UpperBound(u, v)
			if top < d {
				t.Fatalf("UpperBound(%d,%d)=%d below true distance %d", u, v, top, d)
			}
		}
	}
}

func TestUpperBoundExactWhenPathMeetsLandmark(t *testing.T) {
	// Star graph: centre 0 is the landmark; every path between leaves goes
	// through it, so the upper bound must already be exact.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := uint32(1); i < 6; i++ {
		g.MustAddEdge(0, i)
	}
	idx, err := Build(g, []uint32{0})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := idx.UpperBound(1, 2); got != 2 {
		t.Errorf("UpperBound(1,2): got %d, want 2", got)
	}
	if got := idx.Query(1, 2); got != 2 {
		t.Errorf("Query(1,2): got %d, want 2", got)
	}
}

func TestLabelSetGetRemove(t *testing.T) {
	var l Label
	l = l.Set(3, 5)
	l = l.Set(1, 7)
	l = l.Set(2, 9)
	l = l.Set(1, 4) // overwrite
	want := Label{{1, 4}, {2, 9}, {3, 5}}
	if !l.Equal(want) {
		t.Fatalf("label after sets: got %v, want %v", l, want)
	}
	if d, ok := l.Get(2); !ok || d != 9 {
		t.Errorf("Get(2): got %d,%v", d, ok)
	}
	if _, ok := l.Get(8); ok {
		t.Errorf("Get(8) should miss")
	}
	l, removed := l.Remove(2)
	if !removed {
		t.Error("remove(2) should report true")
	}
	if _, removed = l.Remove(2); removed {
		t.Error("second remove(2) should report false")
	}
	if !l.Equal(Label{{1, 4}, {3, 5}}) {
		t.Fatalf("label after remove: got %v", l)
	}
}

func TestLabelQuickProperty(t *testing.T) {
	// Property: a label behaves like a map from rank to distance, stays
	// sorted, and Get mirrors the map.
	f := func(ops []struct {
		Rank uint16
		D    uint32
		Del  bool
	}) bool {
		var l Label
		m := map[uint16]graph.Dist{}
		for _, op := range ops {
			r := op.Rank % 64
			if op.Del {
				l, _ = l.Remove(r)
				delete(m, r)
			} else {
				l = l.Set(r, op.D)
				m[r] = op.D
			}
		}
		if len(l) != len(m) {
			return false
		}
		for i := 1; i < len(l); i++ {
			if l[i-1].Rank >= l[i].Rank {
				return false
			}
		}
		for r, d := range m {
			got, ok := l.Get(r)
			if !ok || got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestHighway(t *testing.T) {
	h := NewHighway(3)
	if got := h.Dist(1, 1); got != 0 {
		t.Errorf("diagonal: got %d, want 0", got)
	}
	if got := h.Dist(0, 2); got != graph.Inf {
		t.Errorf("unset: got %d, want Inf", got)
	}
	h.Set(0, 2, 7)
	if h.Dist(0, 2) != 7 || h.Dist(2, 0) != 7 {
		t.Error("Set must be symmetric")
	}
	c := h.Clone()
	c.Set(0, 2, 9)
	if h.Dist(0, 2) != 7 {
		t.Error("Clone must not share storage")
	}
	if h.Bytes() != 9*4 {
		t.Errorf("Bytes: got %d, want 36", h.Bytes())
	}
}

func TestIndexBytesAndAvg(t *testing.T) {
	g := pathGraph(5)
	idx, err := Build(g, []uint32{0})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Vertices 1..4 each hold one entry for landmark 0.
	if got := idx.NumEntries(); got != 4 {
		t.Errorf("NumEntries: got %d, want 4", got)
	}
	if got := idx.Bytes(); got != 4*EntryBytes+4 {
		t.Errorf("Bytes: got %d, want %d", got, 4*EntryBytes+4)
	}
	if got := idx.AvgLabelSize(); got != 0.8 {
		t.Errorf("AvgLabelSize: got %v, want 0.8", got)
	}
}
