package hcl

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// VerifyCover checks the highway cover property (Definition 3.2) and the
// exactness of the highway against ground-truth BFS distances: for every
// landmark r and vertex v, min over entries of δ_L(r_i,v) + δ_H(r,r_i) must
// equal d_G(r,v), and δ_H must hold exact landmark distances. It is O(|R|·m)
// and intended for tests and offline validation.
func (idx *Index) VerifyCover() error {
	n := idx.G.NumVertices()
	dist := make([]graph.Dist, n)
	for r := range idx.Landmarks {
		bfs.All(idx.G, idx.Landmarks[r], dist)
		for v := 0; v < n; v++ {
			got := idx.LandmarkDist(uint16(r), uint32(v))
			if got != dist[v] {
				return fmt.Errorf("hcl: cover violated: landmark %d (rank %d) to vertex %d: label says %s, BFS says %s",
					idx.Landmarks[r], r, v, distString(got), distString(dist[v]))
			}
		}
	}
	return nil
}

// VerifyMinimal checks minimality by rebuilding the labelling from scratch
// and requiring the label sets and highway to be identical: the minimal
// highway cover labelling of a graph for a fixed landmark set is unique (an
// entry (r,v) exists iff no shortest r–v path contains another landmark),
// so equality — not just equal size — must hold.
func (idx *Index) VerifyMinimal() error {
	fresh, err := Build(idx.G, idx.Landmarks)
	if err != nil {
		return fmt.Errorf("hcl: rebuilding for minimality check: %w", err)
	}
	return idx.EqualLabels(fresh)
}

// EqualLabels reports whether two indexes hold identical labels and highway,
// returning a descriptive error on the first difference.
func (idx *Index) EqualLabels(o *Index) error {
	if len(idx.L) != len(o.L) {
		return fmt.Errorf("hcl: label table size differs: %d vs %d", len(idx.L), len(o.L))
	}
	for v := range idx.L {
		if !idx.L[v].Equal(o.L[v]) {
			return fmt.Errorf("hcl: label of vertex %d differs: %v vs %v", v, idx.L[v], o.L[v])
		}
	}
	if idx.H.k != o.H.k {
		return fmt.Errorf("hcl: highway size differs: %d vs %d", idx.H.k, o.H.k)
	}
	for i := range idx.H.mat {
		if idx.H.mat[i] != o.H.mat[i] {
			return fmt.Errorf("hcl: highway entry %d differs: %s vs %s", i, distString(idx.H.mat[i]), distString(o.H.mat[i]))
		}
	}
	return nil
}

func distString(d graph.Dist) string {
	if d == graph.Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", d)
}
