package hcl

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/queue"
)

// Build constructs the minimal highway cover labelling of g for the given
// landmark set.
//
// For each landmark r it runs one breadth-first search computing exact
// distances together with a "covered" flag propagated along shortest-path
// DAG edges: covered(v) holds iff some shortest r–v path contains a landmark
// other than r. Vertex v ∉ R receives the entry (r, d_G(r,v)) iff it is not
// covered — exactly the minimal labelling characterised in the paper
// (Theorem 5.1/5.2: an entry exists iff the shortest paths P_G(r,v) contain
// no landmark besides r). Landmark-to-landmark distances feed the highway.
func Build(g *graph.Graph, landmarks []uint32) (*Index, error) {
	if err := checkLandmarks(g, landmarks); err != nil {
		return nil, err
	}
	idx := newIndex(g, landmarks)
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	covered := make([]bool, n)
	var q queue.Uint32
	for r := range idx.Landmarks {
		bfsLandmark(g, idx, uint16(r), dist, covered, &q, func(v uint32, d graph.Dist) {
			idx.L[v] = append(idx.L[v], Entry{Rank: uint16(r), D: d})
		})
	}
	return idx, nil
}

// BuildParallel is Build with the per-landmark searches fanned out over
// workers goroutines (0 means GOMAXPROCS). The resulting index is identical
// to the serial one: per-landmark entry lists are merged in rank order.
func BuildParallel(g *graph.Graph, landmarks []uint32, workers int) (*Index, error) {
	if err := checkLandmarks(g, landmarks); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := newIndex(g, landmarks)
	k := len(landmarks)
	if workers > k {
		workers = k
	}
	type entryList struct {
		v []uint32
		d []graph.Dist
	}
	perRank := make([]entryList, k)
	ranks := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards the highway writes
	n := g.NumVertices()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]graph.Dist, n)
			covered := make([]bool, n)
			var q queue.Uint32
			for r := range ranks {
				el := &perRank[r]
				bfsLandmarkLocked(g, idx, uint16(r), dist, covered, &q, &mu, func(v uint32, d graph.Dist) {
					el.v = append(el.v, v)
					el.d = append(el.d, d)
				})
			}
		}()
	}
	for r := 0; r < k; r++ {
		ranks <- r
	}
	close(ranks)
	wg.Wait()
	for r := 0; r < k; r++ {
		el := &perRank[r]
		for i, v := range el.v {
			idx.L[v] = append(idx.L[v], Entry{Rank: uint16(r), D: el.d[i]})
		}
	}
	return idx, nil
}

func checkLandmarks(g *graph.Graph, landmarks []uint32) error {
	if len(landmarks) == 0 {
		return fmt.Errorf("hcl: need at least one landmark")
	}
	if len(landmarks) > 1<<16 {
		return fmt.Errorf("hcl: at most %d landmarks supported, got %d", 1<<16, len(landmarks))
	}
	seen := make(map[uint32]bool, len(landmarks))
	for _, v := range landmarks {
		if !g.HasVertex(v) {
			return fmt.Errorf("hcl: landmark %d is not a vertex of the graph", v)
		}
		if seen[v] {
			return fmt.Errorf("hcl: duplicate landmark %d", v)
		}
		seen[v] = true
	}
	return nil
}

// bfsLandmark runs the covered-flag BFS from landmark rank r, reporting each
// uncovered non-landmark vertex through emit and recording highway distances.
func bfsLandmark(g *graph.Graph, idx *Index, r uint16, dist []graph.Dist, covered []bool, q *queue.Uint32, emit func(v uint32, d graph.Dist)) {
	root := idx.Landmarks[r]
	for i := range dist {
		dist[i] = graph.Inf
	}
	order := make([]uint32, 0, 256)
	dist[root] = 0
	covered[root] = false
	q.Reset()
	q.Push(root)
	order = append(order, root)
	for !q.Empty() {
		v := q.Pop()
		dv := dist[v]
		cv := covered[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				covered[w] = cv || (idx.IsLandmark(w) && w != root)
				q.Push(w)
				order = append(order, w)
			case dist[w] == dv+1 && cv:
				covered[w] = true
			}
		}
	}
	for _, v := range order {
		if v == root {
			continue
		}
		if s, isL := idx.Rank(v); isL {
			idx.H.Set(r, s, dist[v])
			continue
		}
		if !covered[v] {
			emit(v, dist[v])
		}
	}
}

// bfsLandmarkLocked is bfsLandmark with highway writes serialised by mu, for
// the parallel builder.
func bfsLandmarkLocked(g *graph.Graph, idx *Index, r uint16, dist []graph.Dist, covered []bool, q *queue.Uint32, mu *sync.Mutex, emit func(v uint32, d graph.Dist)) {
	root := idx.Landmarks[r]
	for i := range dist {
		dist[i] = graph.Inf
	}
	order := make([]uint32, 0, 256)
	dist[root] = 0
	covered[root] = false
	q.Reset()
	q.Push(root)
	order = append(order, root)
	for !q.Empty() {
		v := q.Pop()
		dv := dist[v]
		cv := covered[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case dist[w] == graph.Inf:
				dist[w] = dv + 1
				covered[w] = cv || (idx.IsLandmark(w) && w != root)
				q.Push(w)
				order = append(order, w)
			case dist[w] == dv+1 && cv:
				covered[w] = true
			}
		}
	}
	for _, v := range order {
		if v == root {
			continue
		}
		if s, isL := idx.Rank(v); isL {
			mu.Lock()
			idx.H.Set(r, s, dist[v])
			mu.Unlock()
			continue
		}
		if !covered[v] {
			emit(v, dist[v])
		}
	}
}
