package hcl

import (
	"repro/internal/arena"
	"repro/internal/bfs"
	"repro/internal/bitset"
	"repro/internal/graph"
)

// Index is a highway cover labelling Γ = (H, L) over a graph G: a set of
// landmarks R, the highway of exact landmark-to-landmark distances, and one
// distance label per vertex. It answers exact distance queries and is the
// structure that IncHL+ maintains under insertions.
//
// Queries are safe for any number of concurrent readers (each in-flight
// query draws its own scratch from a pool); mutations (IncHL+ repairs,
// EnsureVertex) require exclusive access.
type Index struct {
	G         *graph.Graph
	Landmarks []uint32 // rank -> vertex id
	H         *Highway
	L         []Label // vertex id -> label

	rankOf  map[uint32]uint16 // landmark vertex id -> rank
	rankArr []uint16          // vertex id -> rank, noRank if not a landmark

	// shared is non-nil only on forks: a set bit means L[v]'s backing array
	// still belongs to the parent index and is copied before the first
	// label write (see Fork).
	shared *bitset.Set

	// packed is the CSR read representation of L, non-nil only while the
	// index is publishable (built by Pack, dropped by the first label
	// write); queries prefer it. parent remembers the index this fork was
	// taken from until the fork's own Pack runs, which reads the parent's
	// packed form then — not at fork time — so a fork taken while its
	// parent is still packing (the pipelined Store repairs epoch N+1 while
	// N packs) still gets the delta repack. Pack clears it so ancestor
	// chains are not pinned.
	packed *Packed
	parent *Index

	// mapRef pins the mmap'd checkpoint this index was attached to by
	// ReadIndexMapped, if any. Label slices and packed chunks may alias the
	// mapped bytes for the rest of the index's life (copy-on-write repairs
	// migrate labels to the heap one at a time, never all at once), so
	// every fork inherits the reference and the region is unmapped only
	// when the last descendant snapshot is collected.
	mapRef *arena.Mapping

	// Workers bounds the fan-out of Pack's per-chunk flattening: 0 (the
	// default) resolves to GOMAXPROCS, 1 forces the serial path. The packed
	// form is identical for every worker count. The per-landmark repair
	// fan-out is tuned separately, on inchl.Updater.
	Workers int

	scratch bfs.SpacePool
}

// noRank marks non-landmark vertices in the rank lookup table.
const noRank = ^uint16(0)

// newIndex allocates the skeleton of an index over g with the given
// landmark set (labels empty, highway diagonal only).
func newIndex(g *graph.Graph, landmarks []uint32) *Index {
	idx := &Index{
		G:         g,
		Landmarks: append([]uint32(nil), landmarks...),
		H:         NewHighway(len(landmarks)),
		L:         make([]Label, g.NumVertices()),
		rankOf:    make(map[uint32]uint16, len(landmarks)),
	}
	idx.rankArr = make([]uint16, g.NumVertices())
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankOf[v] = uint16(r)
		idx.rankArr[v] = uint16(r)
	}
	return idx
}

// NumLandmarks returns |R|.
func (idx *Index) NumLandmarks() int { return len(idx.Landmarks) }

// Rank returns the landmark rank of vertex v, if v is a landmark.
func (idx *Index) Rank(v uint32) (uint16, bool) {
	r := idx.rankArr[v]
	return r, r != noRank
}

// IsLandmark reports whether v is a landmark.
func (idx *Index) IsLandmark(v uint32) bool {
	return idx.rankArr[v] != noRank
}

// EnsureVertex grows the label table to cover vertex v, for use after the
// underlying graph gained vertices.
func (idx *Index) EnsureVertex(v uint32) {
	if uint32(len(idx.L)) <= v {
		idx.packed = nil // the packed form no longer covers every vertex
	}
	for uint32(len(idx.L)) <= v {
		idx.L = append(idx.L, nil)
		idx.rankArr = append(idx.rankArr, noRank)
	}
	if idx.shared != nil {
		idx.shared.Grow(len(idx.L)) // new bits are clear: the fork owns new labels
	}
}

// EntryDist returns the label entry distance of landmark rank r at vertex v.
func (idx *Index) EntryDist(v uint32, r uint16) (graph.Dist, bool) {
	return FindEntry(idx.label(v), r)
}

// SetEntry adds or modifies the entry of landmark rank r in L(v).
func (idx *Index) SetEntry(v uint32, r uint16, d graph.Dist) {
	idx.packed = nil // the slice form is the write representation
	idx.ownLabel(v)
	idx.L[v] = idx.L[v].Set(r, d)
}

// RemoveEntry removes the entry of landmark rank r from L(v) if present.
func (idx *Index) RemoveEntry(v uint32, r uint16) bool {
	if _, present := idx.L[v].Get(r); !present {
		return false
	}
	idx.packed = nil // the slice form is the write representation
	idx.ownLabel(v)
	l, ok := idx.L[v].Remove(r)
	idx.L[v] = l
	return ok
}

// ownLabel makes L[v] writable on a fork, copying the shared backing array
// on first touch. A no-op on plain indexes and already-owned labels.
func (idx *Index) ownLabel(v uint32) {
	if idx.shared == nil || !idx.shared.Get(v) {
		return
	}
	idx.L[v] = append(make(Label, 0, len(idx.L[v])+1), idx.L[v]...)
	idx.shared.Clear(v)
}

// Pack builds the packed read representation of the current labelling (see
// Packed). On an index forked from a packed parent it is delta-aware:
// chunks whose labels the fork never touched are reused from the parent's
// arena by reference. Pack is idempotent — a second call on an unchanged
// index is a no-op — and any subsequent label write drops the packed form
// again, so it is meaningful only on indexes about to be frozen (an epoch
// publish, or a read-mostly plain index).
func (idx *Index) Pack() {
	if idx.packed != nil {
		return
	}
	var parentPacked *Packed
	if idx.parent != nil {
		parentPacked = idx.parent.packed
	}
	idx.packed = PackParallel(idx.L, parentPacked, idx.shared, idx.Workers)
	idx.parent = nil
}

// PackedLabels returns the packed read representation, or nil when the
// index has unpublished label writes (or was never packed).
func (idx *Index) PackedLabels() *Packed { return idx.packed }

// MappedBytes returns the size of the mmap'd checkpoint region this index
// still holds alive, or 0 for a fully heap-resident index — the mapped
// half of the Stats PackedBytes/MappedBytes pair.
func (idx *Index) MappedBytes() int64 {
	if idx.mapRef != nil {
		return idx.mapRef.Len()
	}
	if idx.packed != nil {
		return idx.packed.MappedBytes()
	}
	return 0
}

// label returns the entry span of vertex v from the packed arena when the
// index is packed, else from the mutable label table. The query path reads
// labels only through this helper, so both representations answer
// identically.
func (idx *Index) label(v uint32) []Entry {
	if p := idx.packed; p != nil {
		return p.Label(v)
	}
	return idx.L[v]
}

// NumEntries returns size(L), the total number of label entries.
func (idx *Index) NumEntries() int64 {
	var n int64
	for _, l := range idx.L {
		n += int64(len(l))
	}
	return n
}

// Bytes returns the storage charged for the labelling: EntryBytes per label
// entry plus the highway matrix.
func (idx *Index) Bytes() int64 {
	return idx.NumEntries()*EntryBytes + idx.H.Bytes()
}

// AvgLabelSize returns size(L)/|V|, the l of the paper's complexity analysis.
func (idx *Index) AvgLabelSize() float64 {
	n := idx.G.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(idx.NumEntries()) / float64(n)
}

// Fork returns a copy-on-write copy of the index bound to g, which must be
// a fork of idx.G taken at the same moment. The label-table header and rank
// array are copied (O(|V|)) and the small highway matrix is cloned, but
// every per-vertex label's backing array stays shared with idx until the
// fork first writes to it — an update batch therefore copies only the
// labels it actually touches, while idx keeps serving queries unchanged.
//
// Snapshot discipline applies: idx must be treated as frozen once forked.
func (idx *Index) Fork(g *graph.Graph) *Index {
	return &Index{
		G:         g,
		Landmarks: idx.Landmarks, // immutable after construction
		H:         idx.H.Clone(),
		L:         append([]Label(nil), idx.L...),
		rankOf:    idx.rankOf, // immutable after construction
		rankArr:   append([]uint16(nil), idx.rankArr...),
		shared:    bitset.NewAllSet(len(idx.L)),
		mapRef:    idx.mapRef, // label slices may still alias the mapping
		Workers:   idx.Workers,

		// The fork mutates, so it starts unpacked; remembering the parent
		// lets its Pack reuse whatever chunks the parent's arena holds by
		// the time the fork itself is frozen.
		parent: idx,
	}
}

// Clone deep-copies the index (sharing the graph pointer), for test oracles
// that compare incremental maintenance against rebuilds.
func (idx *Index) Clone() *Index {
	c := newIndex(idx.G, idx.Landmarks)
	c.H = idx.H.Clone()
	for v, l := range idx.L {
		if len(l) > 0 {
			c.L[v] = append(Label(nil), l...)
		}
	}
	return c
}
