package hcl

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

func benchKernelIndex(b *testing.B) (*Index, []struct{ u, v uint32 }) {
	b.Helper()
	g := testutil.RandomConnectedGraph(50_000, 100_000, 9)
	lms := make([]uint32, 20)
	for i := range lms {
		lms[i] = uint32(i * 601)
	}
	idx, err := Build(g, lms)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	pairs := make([]struct{ u, v uint32 }, 4096)
	for i := range pairs {
		pairs[i] = struct{ u, v uint32 }{uint32(rng.Intn(50_000)), uint32(rng.Intn(50_000))}
	}
	return idx, pairs
}

// BenchmarkUpperBound isolates the Equation 2 label-read kernel — the part
// of a query the packed arena accelerates (the bounded BFS that follows it
// is representation-independent). Each sub-benchmark pins the index to one
// representation of the same labelling, so the numbers compare layouts,
// not workloads.
func BenchmarkUpperBound(b *testing.B) {
	idx, pairs := benchKernelIndex(b)
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			idx.UpperBound(p.u, p.v)
		}
	}
	b.Run("slice", func(b *testing.B) {
		idx.packed = nil
		run(b)
	})
	b.Run("packed", func(b *testing.B) {
		idx.Pack()
		run(b)
	})
}

// BenchmarkPack measures the flatten itself: a full pack of 50k labels
// versus the delta-aware repack after a fork touched ten vertices (chunks
// outside the touched ranges are reused from the parent by reference).
// The delta loop re-arms one prepared fork instead of re-forking per
// iteration, so the timed region is exactly the repack.
func BenchmarkPack(b *testing.B) {
	idx, _ := benchKernelIndex(b)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PackLabels(idx.L)
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("full-parallel/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PackParallel(idx.L, nil, nil, w)
			}
		})
	}
	idx.Pack()
	fork := idx.Fork(idx.G) // packing-only use: the graph is never mutated
	for v := uint32(100); v < 110; v++ {
		fork.SetEntry(v, 3, 4)
	}
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fork.packed = nil
			fork.parent = idx
			fork.Pack()
		}
	})
}
