package hcl

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arena"
	"repro/internal/landmark"
	"repro/internal/testutil"
)

// forceV2 makes WriteTo pick the v2 block regardless of entry count for
// the duration of the test (2^32 entries cannot be built in a test).
func forceV2(t *testing.T) {
	t.Helper()
	old := V2SaveThreshold
	V2SaveThreshold = 0
	t.Cleanup(func() { V2SaveThreshold = old })
}

func TestCodecV2RoundTrip(t *testing.T) {
	g := testutil.RandomGraph(120, 220, 5)
	idx, err := Build(g, landmark.ByDegree(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	forceV2(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if got := string(buf.Bytes()[:4]); got != codecMagicV2 {
		t.Fatalf("WriteTo above threshold wrote %q, want %q", got, codecMagicV2)
	}
	back, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if err := idx.EqualLabels(back); err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 20; u++ {
		if got, want := back.Query(u, 100), idx.Query(u, 100); got != want {
			t.Fatalf("Query(%d,100): got %d, want %d", u, got, want)
		}
	}
}

func TestCodecFormatPick(t *testing.T) {
	g := testutil.RandomGraph(60, 100, 3)
	idx, err := Build(g, landmark.ByDegree(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:4]); got != codecMagic {
		t.Fatalf("small labelling wrote %q, want %q", got, codecMagic)
	}
}

func TestWriteToMappableSpans(t *testing.T) {
	g := testutil.RandomGraph(200, 400, 7)
	idx, err := Build(g, landmark.ByDegree(g, 6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, spans, err := idx.WriteToMappable(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Off%int64(pageAlign()) != 0 {
		t.Fatalf("entry span at %d not page-aligned (page %d)", sp.Off, pageAlign())
	}
	if sp.Len != idx.NumEntries()*entryStride {
		t.Fatalf("span length %d, want %d entries × %d", sp.Len, idx.NumEntries(), entryStride)
	}
	if sp.Off+sp.Len > n {
		t.Fatalf("span [%d,+%d) past stream end %d", sp.Off, sp.Len, n)
	}
	// The span really is the raw native entry area: decode the first
	// non-empty label straight out of it.
	le := binary.LittleEndian
	for v := uint32(0); int(v) < len(idx.L); v++ {
		if len(idx.L[v]) == 0 {
			continue
		}
		var at int64
		for u := uint32(0); u < v; u++ {
			at += int64(len(idx.L[u]))
		}
		raw := buf.Bytes()[sp.Off+at*entryStride:]
		if r := le.Uint16(raw); r != idx.L[v][0].Rank {
			t.Fatalf("span entry rank %d, want %d", r, idx.L[v][0].Rank)
		}
		if d := le.Uint32(raw[4:]); d != uint32(idx.L[v][0].D) {
			t.Fatalf("span entry dist %d, want %d", d, idx.L[v][0].D)
		}
		break
	}
}

// writeMappableFile serialises idx to a file in the mappable layout.
func writeMappableFile(t *testing.T, idx *Index) string {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := idx.WriteToMappable(&buf, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.v2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadIndexMapped(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	g := testutil.RandomGraph(300, 700, 11)
	idx, err := Build(g, landmark.ByDegree(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	m, err := arena.MapFile(writeMappableFile(t, idx))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndexMapped(m, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(back); err != nil {
		t.Fatal(err)
	}
	if back.PackedLabels() == nil {
		t.Fatal("mapped index not packed")
	}
	if got := back.MappedBytes(); got != m.Len() {
		t.Fatalf("MappedBytes = %d, want %d", got, m.Len())
	}
	if got := back.PackedLabels().MappedBytes(); got != m.Len() {
		t.Fatalf("Packed.MappedBytes = %d, want %d", got, m.Len())
	}
	for u := uint32(0); u < 50; u++ {
		for v := uint32(250); v < 300; v++ {
			if got, want := back.Query(u, v), idx.Query(u, v); got != want {
				t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestReadIndexMappedRejectsV1Stream(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	g := testutil.RandomGraph(40, 80, 2)
	idx, err := Build(g, landmark.ByDegree(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil { // HCL2: not mappable
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.v1")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := arena.MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := ReadIndexMapped(m, 0, g); err != ErrNotMappable {
		t.Fatalf("got %v, want ErrNotMappable", err)
	}
}

// TestMappedForkRepack pins the mixed heap/mapped chunk ownership: a fork
// of a mapped index touches one chunk, repacks, and the delta pack must
// reuse the untouched mapped chunk while rebuilding the touched one on
// the heap — and still answer exactly like a copy-in index given the same
// churn.
func TestMappedForkRepack(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	// Two packed chunks: vertices [0,4096) and [4096,5000).
	g := testutil.RandomGraph(5000, 9000, 3)
	idx, err := Build(g, landmark.ByDegree(g, 6))
	if err != nil {
		t.Fatal(err)
	}
	path := writeMappableFile(t, idx)
	m, err := arena.MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := ReadIndexMapped(m, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	copyIn, err := func() (*Index, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadIndex(f, g)
	}()
	if err != nil {
		t.Fatal(err)
	}

	churn := func(x *Index) *Index {
		f := x.Fork(x.G)
		// Touch labels only in the second chunk.
		f.SetEntry(4500, 0, 3)
		f.SetEntry(4600, 1, 5)
		f.RemoveEntry(4700, 0)
		f.Pack()
		return f
	}
	fm, fc := churn(mapped), churn(copyIn)
	if err := fm.EqualLabels(fc); err != nil {
		t.Fatal(err)
	}
	// The untouched chunk was reused from the mapped parent, so the fork's
	// packed form still pins the mapping.
	if got := fm.PackedLabels().MappedBytes(); got != m.Len() {
		t.Fatalf("fork Packed.MappedBytes = %d, want %d (chunk 0 should still be mapped)", got, m.Len())
	}
	if fc.PackedLabels().MappedBytes() != 0 {
		t.Fatal("copy-in fork claims mapped bytes")
	}
	for u := uint32(4400); u < 4800; u += 7 {
		if got, want := fm.Query(0, u), fc.Query(0, u); got != want {
			t.Fatalf("Query(0,%d): mapped fork %d, copy-in fork %d", u, got, want)
		}
	}
}

func TestV2CodecCorruptionRejected(t *testing.T) {
	g := testutil.RandomGraph(80, 160, 9)
	idx, err := Build(g, landmark.ByDegree(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	forceV2(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	if _, err := ReadIndex(bytes.NewReader(pristine), g); err != nil {
		t.Fatalf("pristine stream must load: %v", err)
	}
	nr := int64(len(idx.Landmarks))
	blockOff := 4 + 4 + 4 + 4*nr + 4*nr*nr // header before the label block
	le := binary.LittleEndian
	corrupt := map[string]func(b []byte) []byte{
		"total beyond nv*nr": func(b []byte) []byte {
			le.PutUint64(b[blockOff:], 1<<40)
			return b
		},
		"implausible pads": func(b []byte) []byte {
			le.PutUint32(b[blockOff+8:], 1<<24)
			return b
		},
		"offsets not monotonic": func(b []byte) []byte {
			// Second offset slot, pushed past total.
			offStart := blockOff + blockV2HeaderLen + int64(le.Uint32(b[blockOff+8:]))
			le.PutUint64(b[offStart+8:], 1<<50)
			return b
		},
		"truncated arena": func(b []byte) []byte {
			return b[:len(b)-5]
		},
		"unsorted entries": func(b []byte) []byte {
			// Duplicate the rank of the second entry of the first label
			// with ≥2 entries: ranks must strictly increase.
			offStart := blockOff + blockV2HeaderLen + int64(le.Uint32(b[blockOff+8:]))
			entPad := int64(le.Uint32(b[blockOff+12:]))
			entStart := offStart + 8*int64(len(idx.L)+1) + entPad
			for v := 0; v < len(idx.L); v++ {
				if len(idx.L[v]) >= 2 {
					var at int64
					for u := 0; u < v; u++ {
						at += int64(len(idx.L[u]))
					}
					le.PutUint16(b[entStart+(at+1)*entryStride:], idx.L[v][0].Rank)
					return b
				}
			}
			t.Fatal("no label with two entries in test graph")
			return b
		},
	}
	for name, mut := range corrupt {
		data := mut(append([]byte(nil), pristine...))
		if _, err := ReadIndex(bytes.NewReader(data), g); err == nil {
			t.Errorf("%s: corrupted v2 stream loaded without error", name)
		}
	}
}
