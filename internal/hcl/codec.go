package hcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Binary index format (version 2, CSR):
//
//	magic "HCL2" | u32 |V| | u32 |R| | landmarks u32×|R| |
//	highway u32×|R|² | label block (see WriteLabelBlock)
//
// The label block stores the packed arena directly: one u64 entry count,
// the CSR offset index, then every entry back to back. Loading is two bulk
// reads plus a tight decode loop instead of the per-vertex count/entries
// round trips of the legacy "HCL1" layout (still readable below), which is
// what makes checkpoint recovery a bulk copy. All integers little-endian.
// The graph itself is serialised separately (graph.WriteEdgeList) — an
// index only makes sense next to its graph, and WriteTo/ReadFrom keep the
// two artefacts independently inspectable.
const codecMagic = "HCL2"

// codecMagicV1 is the legacy per-vertex layout, accepted by ReadIndex so
// checkpoints and label downloads from older versions keep loading.
const codecMagicV1 = "HCL1"

// entryWire is the on-wire size of one label entry: u16 rank + u32 distance.
const entryWire = 6

// codecChunk is the number of entries encoded or decoded per buffered
// block on the bulk paths (24 KiB of wire data).
const codecChunk = 4096

// WriteLabelBlock appends the CSR label block of labels to bw:
//
//	u64 total entries | offsets u32×(len(labels)+1) | entries 6B each
//
// It is the one label serialiser shared by the hcl, dhcl and whcl codecs.
func WriteLabelBlock(bw *bufio.Writer, labels []Label) error {
	le := binary.LittleEndian
	var total uint64
	for _, l := range labels {
		total += uint64(len(l))
	}
	if total >= 1<<32 {
		// The offset index is u32; past 2^32 entries the offsets would
		// silently wrap and the block could never be loaded back.
		return fmt.Errorf("label block with %d entries exceeds the u32 offset format", total)
	}
	var u64 [8]byte
	le.PutUint64(u64[:], total)
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	// Offsets, then entries, each streamed through one scratch block so the
	// underlying writer sees large writes.
	var buf [codecChunk * entryWire]byte
	n := 0
	var off uint64
	flush := func() error {
		if n == 0 {
			return nil
		}
		_, err := bw.Write(buf[:n])
		n = 0
		return err
	}
	putOff := func(o uint64) error {
		if n+4 > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		le.PutUint32(buf[n:], uint32(o))
		n += 4
		return nil
	}
	for _, l := range labels {
		if err := putOff(off); err != nil {
			return err
		}
		off += uint64(len(l))
	}
	if err := putOff(off); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	for _, l := range labels {
		for _, e := range l {
			if n+entryWire > len(buf) {
				if err := flush(); err != nil {
					return err
				}
			}
			le.PutUint16(buf[n:], e.Rank)
			le.PutUint32(buf[n+2:], uint32(e.D))
			n += entryWire
		}
	}
	return flush()
}

// ReadLabelBlock reads a block written by WriteLabelBlock for nv vertices,
// validating against nr landmarks: per-vertex spans within bounds and
// sorted strictly by rank, total entries at most nv·nr (the allocation
// bound for untrusted streams). It returns the contiguous entry arena and
// the CSR offset index (length nv+1).
func ReadLabelBlock(br *bufio.Reader, nv, nr uint32) ([]Entry, []uint32, error) {
	le := binary.LittleEndian
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, nil, fmt.Errorf("reading label block header: %w", err)
	}
	total := le.Uint64(u64[:])
	if total > uint64(nv)*uint64(nr) {
		return nil, nil, fmt.Errorf("label block claims %d entries for %d vertices × %d landmarks", total, nv, nr)
	}
	off := make([]uint32, nv+1)
	raw := make([]byte, (len(off))*4)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, nil, fmt.Errorf("reading label offsets: %w", err)
	}
	prev := uint32(0)
	for i := range off {
		off[i] = le.Uint32(raw[i*4:])
		if off[i] < prev || uint64(off[i]) > total || (i == 0 && off[0] != 0) {
			return nil, nil, fmt.Errorf("label offsets not monotonic at vertex %d", i)
		}
		if c := off[i] - prev; i > 0 && c > nr {
			return nil, nil, fmt.Errorf("label %d has %d entries for %d landmarks", i-1, c, nr)
		}
		prev = off[i]
	}
	if uint64(off[nv]) != total {
		return nil, nil, fmt.Errorf("label offsets cover %d of %d entries", off[nv], total)
	}
	arena := make([]Entry, total)
	var block [codecChunk * entryWire]byte
	for done := uint64(0); done < total; {
		want := total - done
		if want > codecChunk {
			want = codecChunk
		}
		b := block[:want*entryWire]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, nil, fmt.Errorf("reading label arena at entry %d: %w", done, err)
		}
		for i := uint64(0); i < want; i++ {
			arena[done+i] = Entry{
				Rank: le.Uint16(b[i*entryWire:]),
				D:    graph.Dist(le.Uint32(b[i*entryWire+2:])),
			}
		}
		done += want
	}
	for v := uint32(0); v < nv; v++ {
		var prev int32 = -1
		for _, e := range arena[off[v]:off[v+1]] {
			if int32(e.Rank) <= prev || uint32(e.Rank) >= nr {
				return nil, nil, fmt.Errorf("label %d entries unsorted or out of range", v)
			}
			prev = int32(e.Rank)
		}
	}
	return arena, off, nil
}

// AttachArena installs a loaded label arena as both representations of a
// label table: labels[v] becomes a capacity-clamped sub-slice of the arena
// (a future Set copies out instead of bleeding into the neighbour's span)
// and the returned Packed indexes the arena directly. It is the one
// arena-attach shared by the hcl, dhcl and whcl codec load paths.
func AttachArena(labels []Label, arena []Entry, off []uint32) *Packed {
	for v := range labels {
		if off[v] == off[v+1] {
			labels[v] = nil
			continue
		}
		labels[v] = arena[off[v]:off[v+1]:off[v+1]]
	}
	return packFromArena(arena, off)
}

// packFromArena builds the packed read form directly over a loaded arena:
// chunks alias sub-ranges of it, with offsets rebased per chunk.
func packFromArena(arena []Entry, off []uint32) *Packed {
	n := len(off) - 1
	p := &Packed{
		chunks:  make([]packChunk, (n+packChunkLen-1)/packChunkLen),
		n:       n,
		entries: int64(len(arena)),
	}
	for ci := range p.chunks {
		lo := ci * packChunkLen
		hi := min(lo+packChunkLen, n)
		base := off[lo]
		c := packChunk{
			entries: arena[base:off[hi]:off[hi]],
			off:     make([]uint32, hi-lo+1),
		}
		for i := range c.off {
			c.off[i] = off[lo+i] - base
		}
		p.chunks[ci] = c
	}
	return p
}

// attachArena installs a loaded arena as both representations of idx.
func attachArena(idx *Index, arena []Entry, off []uint32) {
	idx.packed = AttachArena(idx.L, arena, off)
}

// WriteTo serialises the labelling (landmarks, highway, labels) to w. The
// format is picked from the entry count: below V2SaveThreshold the HCL2
// block (u32 offsets, compact 6-byte wire entries), at or above it the
// HCL3 v2 block, whose u64 offsets are the only representation past the
// u32 ceiling. ReadIndex accepts every version forever.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var total uint64
	for _, l := range idx.L {
		total += uint64(len(l))
	}
	if total >= V2SaveThreshold {
		n, _, err := idx.WriteToMappable(w, 0)
		return n, err
	}
	cw := &CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return cw.N, err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(len(idx.L))); err != nil {
		return cw.N, err
	}
	if err := writeU32(uint32(len(idx.Landmarks))); err != nil {
		return cw.N, err
	}
	for _, v := range idx.Landmarks {
		if err := writeU32(v); err != nil {
			return cw.N, err
		}
	}
	for _, d := range idx.H.mat {
		if err := writeU32(uint32(d)); err != nil {
			return cw.N, err
		}
	}
	if err := WriteLabelBlock(bw, idx.L); err != nil {
		return cw.N, err
	}
	if err := bw.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, nil
}

// CountingWriter tracks bytes written through a bufio layer so the WriteTo
// of each variant codec reports a byte count net of buffering.
type CountingWriter struct {
	W io.Writer
	N int64
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}

// ReadIndex deserialises a labelling written by WriteTo and attaches it to
// g, which must be the graph the index was built over (vertex count is
// checked; callers needing a stronger guarantee can run VerifyCover). The
// loaded index is already packed: the label block is the arena. The legacy
// HCL1 per-vertex layout is accepted too.
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hcl: reading index header: %w", err)
	}
	legacy, v2 := false, false
	switch string(magic) {
	case codecMagic:
	case codecMagicV1:
		legacy = true
	case codecMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("hcl: bad index magic %q", magic)
	}
	var nv, nr uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, fmt.Errorf("hcl: reading vertex count: %w", err)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("hcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if err := binary.Read(br, binary.LittleEndian, &nr); err != nil {
		return nil, fmt.Errorf("hcl: reading landmark count: %w", err)
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("hcl: implausible landmark count %d", nr)
	}
	landmarks := make([]uint32, nr)
	if err := binary.Read(br, binary.LittleEndian, landmarks); err != nil {
		return nil, fmt.Errorf("hcl: reading landmarks: %w", err)
	}
	for _, v := range landmarks {
		if v >= nv {
			return nil, fmt.Errorf("hcl: landmark %d out of range", v)
		}
	}
	idx := newIndex(g, landmarks)
	if err := binary.Read(br, binary.LittleEndian, idx.H.mat); err != nil {
		return nil, fmt.Errorf("hcl: reading highway: %w", err)
	}
	if legacy {
		if err := readLabelsV1(br, idx, nv, nr); err != nil {
			return nil, err
		}
		idx.Pack()
		return idx, nil
	}
	if v2 {
		arena, off, err := ReadLabelBlockV2(br, nv, nr)
		if err != nil {
			return nil, fmt.Errorf("hcl: %w", err)
		}
		idx.packed = AttachArena64(idx.L, arena, off)
		return idx, nil
	}
	arena, off, err := ReadLabelBlock(br, nv, nr)
	if err != nil {
		return nil, fmt.Errorf("hcl: %w", err)
	}
	attachArena(idx, arena, off)
	return idx, nil
}

// readLabelsV1 decodes the legacy per-vertex label layout.
func readLabelsV1(br *bufio.Reader, idx *Index, nv, nr uint32) error {
	var scratch [6]byte
	le := binary.LittleEndian
	for v := uint32(0); v < nv; v++ {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return fmt.Errorf("hcl: reading label %d: %w", v, err)
		}
		cnt := le.Uint32(scratch[:4])
		if cnt > nr {
			return fmt.Errorf("hcl: label %d has %d entries for %d landmarks", v, cnt, nr)
		}
		if cnt == 0 {
			continue
		}
		l := make(Label, cnt)
		var prev int32 = -1
		for i := range l {
			if _, err := io.ReadFull(br, scratch[:6]); err != nil {
				return fmt.Errorf("hcl: reading label %d entry %d: %w", v, i, err)
			}
			l[i].Rank = le.Uint16(scratch[0:2])
			l[i].D = graph.Dist(le.Uint32(scratch[2:6]))
			if int32(l[i].Rank) <= prev || uint32(l[i].Rank) >= nr {
				return fmt.Errorf("hcl: label %d entries unsorted or out of range", v)
			}
			prev = int32(l[i].Rank)
		}
		idx.L[v] = l
	}
	return nil
}
