package hcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Binary index format:
//
//	magic "HCL1" | u32 |V| | u32 |R| | landmarks u32×|R| |
//	highway u32×|R|² | per vertex: u32 count, then (u16 rank, u32 dist)×count
//
// All integers little-endian. The graph itself is serialised separately
// (graph.WriteEdgeList) — an index only makes sense next to its graph, and
// WriteTo/ReadFrom keep the two artefacts independently inspectable.
const codecMagic = "HCL1"

// WriteTo serialises the labelling (landmarks, highway, labels) to w.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(codecMagic); err != nil {
		return n, err
	}
	n += int64(len(codecMagic))
	if err := write(uint32(len(idx.L))); err != nil {
		return n, err
	}
	if err := write(uint32(len(idx.Landmarks))); err != nil {
		return n, err
	}
	if err := write(idx.Landmarks); err != nil {
		return n, err
	}
	if err := write(idx.H.mat); err != nil {
		return n, err
	}
	// The per-entry loop is the hot path — serialisation time bounds both
	// labelling downloads and durability checkpoints — so entries are
	// packed by hand instead of through binary.Write's per-call reflection.
	var scratch [6]byte
	le := binary.LittleEndian
	for _, l := range idx.L {
		le.PutUint32(scratch[:4], uint32(len(l)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return n, err
		}
		n += 4
		for _, e := range l {
			le.PutUint16(scratch[0:2], e.Rank)
			le.PutUint32(scratch[2:6], uint32(e.D))
			if _, err := bw.Write(scratch[:6]); err != nil {
				return n, err
			}
			n += 6
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadIndex deserialises a labelling written by WriteTo and attaches it to
// g, which must be the graph the index was built over (vertex count is
// checked; callers needing a stronger guarantee can run VerifyCover).
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hcl: reading index header: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("hcl: bad index magic %q", magic)
	}
	var nv, nr uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, fmt.Errorf("hcl: reading vertex count: %w", err)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("hcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if err := binary.Read(br, binary.LittleEndian, &nr); err != nil {
		return nil, fmt.Errorf("hcl: reading landmark count: %w", err)
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("hcl: implausible landmark count %d", nr)
	}
	landmarks := make([]uint32, nr)
	if err := binary.Read(br, binary.LittleEndian, landmarks); err != nil {
		return nil, fmt.Errorf("hcl: reading landmarks: %w", err)
	}
	for _, v := range landmarks {
		if v >= nv {
			return nil, fmt.Errorf("hcl: landmark %d out of range", v)
		}
	}
	idx := newIndex(g, landmarks)
	if err := binary.Read(br, binary.LittleEndian, idx.H.mat); err != nil {
		return nil, fmt.Errorf("hcl: reading highway: %w", err)
	}
	// Hand-decoded entries, mirroring WriteTo: recovery time rides on this
	// loop, and binary.Read's reflection would dominate it.
	var scratch [6]byte
	le := binary.LittleEndian
	for v := uint32(0); v < nv; v++ {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("hcl: reading label %d: %w", v, err)
		}
		cnt := le.Uint32(scratch[:4])
		if cnt > nr {
			return nil, fmt.Errorf("hcl: label %d has %d entries for %d landmarks", v, cnt, nr)
		}
		if cnt == 0 {
			continue
		}
		l := make(Label, cnt)
		var prev int32 = -1
		for i := range l {
			if _, err := io.ReadFull(br, scratch[:6]); err != nil {
				return nil, fmt.Errorf("hcl: reading label %d entry %d: %w", v, i, err)
			}
			l[i].Rank = le.Uint16(scratch[0:2])
			l[i].D = graph.Dist(le.Uint32(scratch[2:6]))
			if int32(l[i].Rank) <= prev || uint32(l[i].Rank) >= nr {
				return nil, fmt.Errorf("hcl: label %d entries unsorted or out of range", v)
			}
			prev = int32(l[i].Rank)
		}
		idx.L[v] = l
	}
	return idx, nil
}
