package hcl

import "repro/internal/graph"

// Highway stores the exact pairwise distances δ_H between landmarks as a
// dense symmetric |R|×|R| matrix: δ_H(r1,r2) = d_G(r1,r2) by definition 3.2
// of the paper.
type Highway struct {
	k   int
	mat []graph.Dist
}

// NewHighway returns a highway over k landmarks with all distances Inf
// except the zero diagonal.
func NewHighway(k int) *Highway {
	h := &Highway{k: k, mat: make([]graph.Dist, k*k)}
	for i := range h.mat {
		h.mat[i] = graph.Inf
	}
	for i := 0; i < k; i++ {
		h.mat[i*k+i] = 0
	}
	return h
}

// K returns the number of landmarks.
func (h *Highway) K() int { return h.k }

// Dist returns δ_H(i,j).
func (h *Highway) Dist(i, j uint16) graph.Dist {
	return h.mat[int(i)*h.k+int(j)]
}

// Row returns the distance row δ_H(i,·), aliasing the matrix. The query
// kernels hoist one row per outer label entry so the inner loop indexes a
// k-element slice instead of recomputing the matrix position per pair.
func (h *Highway) Row(i uint16) []graph.Dist {
	return h.mat[int(i)*h.k : int(i)*h.k+h.k]
}

// Set records δ_H(i,j) = δ_H(j,i) = d.
func (h *Highway) Set(i, j uint16, d graph.Dist) {
	h.mat[int(i)*h.k+int(j)] = d
	h.mat[int(j)*h.k+int(i)] = d
}

// Clone returns a deep copy.
func (h *Highway) Clone() *Highway {
	c := &Highway{k: h.k, mat: make([]graph.Dist, len(h.mat))}
	copy(c.mat, h.mat)
	return c
}

// Bytes is the storage charged for the highway matrix.
func (h *Highway) Bytes() int64 { return int64(len(h.mat)) * 4 }
