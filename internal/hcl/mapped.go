package hcl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"unsafe"

	"repro/internal/arena"
	"repro/internal/graph"
)

// The mapped load path: interpret a v2 label block inside an mmap'd
// checkpoint as a live []Entry without decoding. The in-place cast is
// legal only when the in-memory layout of Entry matches the v2 wire
// layout (8-byte stride, distance at byte 4, little-endian host) and the
// mapped bytes happen to be 8-aligned; entryLayoutOK gates the former
// once at startup and every attach checks the latter, falling back to the
// copy-in decoder when either fails. Offset tables are fully validated on
// attach (they are O(|V|), touched at boot anyway); the entry spans are
// served as-is — a mapped boot that validated every entry would fault
// every page and be a slow copy-in load with extra steps. Checkpoints are
// local trusted state; the v2 checkpoint CRC covers everything around the
// arena spans.

// ErrNotMappable reports that a stream cannot be served in place — wrong
// format version, unsupported host layout, or misaligned placement — and
// the caller should fall back to the copy-in load.
var ErrNotMappable = errors.New("hcl: stream not mappable in place")

// entryLayoutOK reports whether the in-memory Entry layout matches the v2
// wire layout, the precondition for serving a mapped entry area as
// []Entry.
var entryLayoutOK = func() bool {
	var e Entry
	if unsafe.Sizeof(e) != entryStride || unsafe.Offsetof(e.D) != 4 || unsafe.Offsetof(e.Rank) != 0 {
		return false
	}
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1 // little-endian host
}()

// pageAlign is the alignment target for mappable entry areas.
func pageAlign() int { return os.Getpagesize() }

// PageAlign is pageAlign for the dhcl and whcl codecs, which lay out their
// own v2 blocks.
func PageAlign() int64 { return int64(pageAlign()) }

// MapLabelBlock interprets the v2 label block at the start of data in
// place: the returned arena and offset index alias data (which must stay
// mapped for their lifetime). blockLen is the total block size, so a
// caller can locate a following block. Returns ErrNotMappable when the
// host layout or the block's actual alignment rules out the cast.
func MapLabelBlock(data []byte, nv, nr uint32) (entries []Entry, off []uint64, blockLen int64, err error) {
	if !entryLayoutOK {
		return nil, nil, 0, ErrNotMappable
	}
	le := binary.LittleEndian
	if int64(len(data)) < blockV2HeaderLen {
		return nil, nil, 0, fmt.Errorf("hcl: v2 label block truncated")
	}
	total := le.Uint64(data[0:])
	offPad := int64(le.Uint32(data[8:]))
	entPad := int64(le.Uint32(data[12:]))
	if total > uint64(nv)*uint64(nr) {
		return nil, nil, 0, fmt.Errorf("hcl: label block claims %d entries for %d vertices × %d landmarks", total, nv, nr)
	}
	if offPad > maxV2Pad || entPad > maxV2Pad {
		return nil, nil, 0, fmt.Errorf("hcl: label block pads implausible (%d, %d)", offPad, entPad)
	}
	offStart := blockV2HeaderLen + offPad
	offLen := 8 * int64(nv+1)
	entStart := offStart + offLen + entPad
	entLen := int64(total) * entryStride
	blockLen = entStart + entLen
	if int64(len(data)) < blockLen {
		return nil, nil, 0, fmt.Errorf("hcl: v2 label block truncated: have %d of %d bytes", len(data), blockLen)
	}
	offPtr := unsafe.Pointer(&data[offStart])
	if uintptr(offPtr)%8 != 0 {
		return nil, nil, 0, ErrNotMappable
	}
	off = unsafe.Slice((*uint64)(offPtr), nv+1)
	var prev uint64
	for i := range off {
		if off[i] < prev || off[i] > total || (i == 0 && off[0] != 0) {
			return nil, nil, 0, fmt.Errorf("hcl: label offsets not monotonic at vertex %d", i)
		}
		if c := off[i] - prev; i > 0 && c > uint64(nr) {
			return nil, nil, 0, fmt.Errorf("hcl: label %d has %d entries for %d landmarks", i-1, c, nr)
		}
		prev = off[i]
	}
	if off[nv] != total {
		return nil, nil, 0, fmt.Errorf("hcl: label offsets cover %d of %d entries", off[nv], total)
	}
	if total == 0 {
		return nil, off, blockLen, nil
	}
	entPtr := unsafe.Pointer(&data[entStart])
	if uintptr(entPtr)%uintptr(unsafe.Alignof(Entry{})) != 0 {
		return nil, nil, 0, ErrNotMappable
	}
	entries = unsafe.Slice((*Entry)(entPtr), total)
	return entries, off, blockLen, nil
}

// AttachMapped installs a mapped arena as both representations of a label
// table, like AttachArena, and pins the mapping into the returned Packed:
// as long as any fork, snapshot or chunk-reusing repack descends from this
// attach, m stays reachable and therefore mapped.
func AttachMapped(labels []Label, entries []Entry, off []uint64, m *arena.Mapping) *Packed {
	p := AttachArena64(labels, entries, off)
	p.ref = m
	return p
}

// ReadIndexMapped attaches the HCL3 index stream at offset streamOff of
// the mapping m to g, serving the entry arena straight out of the mapped
// bytes. The small header (landmarks, highway, offsets) is validated and
// copied; the entries are not decoded at all. Returns ErrNotMappable for
// a v1/v2 stream or an unmappable layout — callers fall back to ReadIndex.
func ReadIndexMapped(m *arena.Mapping, streamOff int64, g *graph.Graph) (*Index, error) {
	data := m.Data()
	if streamOff < 0 || streamOff > int64(len(data)) {
		return nil, fmt.Errorf("hcl: stream offset %d out of range", streamOff)
	}
	data = data[streamOff:]
	hdr := int64(len(codecMagicV2) + 4 + 4)
	if int64(len(data)) < hdr {
		return nil, fmt.Errorf("hcl: mapped index header truncated")
	}
	if string(data[:len(codecMagicV2)]) != codecMagicV2 {
		return nil, ErrNotMappable
	}
	le := binary.LittleEndian
	nv := le.Uint32(data[4:])
	nr := le.Uint32(data[8:])
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("hcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("hcl: implausible landmark count %d", nr)
	}
	need := hdr + 4*int64(nr) + 4*int64(nr)*int64(nr)
	if int64(len(data)) < need {
		return nil, fmt.Errorf("hcl: mapped index header truncated")
	}
	landmarks := make([]uint32, nr)
	for i := range landmarks {
		landmarks[i] = le.Uint32(data[hdr+4*int64(i):])
		if landmarks[i] >= nv {
			return nil, fmt.Errorf("hcl: landmark %d out of range", landmarks[i])
		}
	}
	idx := newIndex(g, landmarks)
	hwy := hdr + 4*int64(nr)
	for i := range idx.H.mat {
		idx.H.mat[i] = graph.Dist(le.Uint32(data[hwy+4*int64(i):]))
	}
	entries, off, _, err := MapLabelBlock(data[need:], nv, nr)
	if err != nil {
		return nil, err
	}
	idx.packed = AttachMapped(idx.L, entries, off, m)
	idx.mapRef = m
	return idx, nil
}
