package hcl

import (
	"repro/internal/arena"
	"repro/internal/bitset"
	"repro/internal/fanout"
	"repro/internal/graph"
)

// The packed read representation. A labelling lives in two forms:
//
//   - The mutable build/update form, []Label — one heap-allocated entry
//     slice per vertex. IncHL+/DecHL repairs mutate it in place (under
//     copy-on-write ownership on forks) and it stays the source of truth.
//
//   - The packed read form, Packed — the label entries of a vertex range
//     flattened into contiguous arenas indexed by a CSR offset table. A
//     query reads a label as one bounds-computed sub-slice of a shared
//     arena: no per-vertex pointer chase, no slice-header traffic, and the
//     garbage collector sees a handful of large arrays instead of millions
//     of tiny ones.
//
// Store publishes the packed form at epoch-commit time (see Index.Pack);
// any label write invalidates it, so a mutable index never serves stale
// packed data.
//
// The arena is chunked by vertex id ranges of packChunkLen so that
// repacking after a batch is proportional to the chunks the batch touched,
// not to |V|: Pack reuses every chunk of the previous epoch's Packed whose
// vertices are all still shared with the parent fork (their copy-on-write
// bits are set), and rebuilds only the rest.

// packShift sets the chunk granularity of the packed arena: 1<<packShift
// vertices per chunk. 4096 vertices balances repack granularity (an epoch
// touching k vertices rebuilds at most k, plus partial-chunk overlap)
// against per-chunk bookkeeping.
const packShift = 12

// packChunkLen is the number of vertices covered by one arena chunk.
const packChunkLen = 1 << packShift

const packMask = packChunkLen - 1

// packChunk is the CSR slab of one vertex range: the entries of vertices
// [base, base+len(off)-1) laid out back to back, with off[i] the arena
// offset of the i-th vertex's first entry.
type packChunk struct {
	entries []Entry
	off     []uint32 // len = vertices in chunk + 1; off[0] == 0
}

// Packed is the CSR-flattened, read-only form of a label table. It is
// immutable once built and safe for any number of concurrent readers.
type Packed struct {
	chunks  []packChunk
	n       int   // vertices covered
	entries int64 // total entries across all chunks

	// ref pins the mmap'd checkpoint region some or all chunks alias (see
	// AttachMapped): while this Packed — or any later Packed that reused
	// one of its chunks — is reachable, the mapping stays alive. Nil for a
	// fully heap-resident arena.
	ref *arena.Mapping
}

// NumVertices returns the number of vertices the packed form covers.
func (p *Packed) NumVertices() int { return p.n }

// NumEntries returns the total number of label entries in the arena.
func (p *Packed) NumEntries() int64 { return p.entries }

// ArenaBytes is the storage charged for the packed form: EntryBytes per
// entry plus four bytes per offset slot, the accounting used by
// Stats.PackedBytes across all variants.
func (p *Packed) ArenaBytes() int64 {
	var off int64
	for i := range p.chunks {
		off += int64(len(p.chunks[i].off))
	}
	return p.entries*EntryBytes + off*4
}

// MappedBytes returns the size of the mmap'd region backing this arena,
// or 0 when it is fully heap-resident. The granularity is the whole
// mapping: chunks migrate to the heap one delta repack at a time, but the
// mapping is a single region that stays until the last aliasing snapshot
// drops.
func (p *Packed) MappedBytes() int64 {
	if p.ref == nil {
		return 0
	}
	return p.ref.Len()
}

// Label returns the entry span of vertex v — the packed equivalent of
// indexing the mutable label table. The span aliases the arena and must be
// treated as read-only.
func (p *Packed) Label(v uint32) []Entry {
	c := &p.chunks[v>>packShift]
	i := v & packMask
	return c.entries[c.off[i]:c.off[i+1]]
}

// Get returns the distance recorded for landmark rank r at vertex v.
func (p *Packed) Get(v uint32, r uint16) (graph.Dist, bool) {
	return FindEntry(p.Label(v), r)
}

// PackLabels flattens labels into a fresh packed form, one pass per chunk.
func PackLabels(labels []Label) *Packed {
	return Pack(labels, nil, nil)
}

// Pack flattens labels into the packed read form. prev and shared make it
// delta-aware for epoch publishes: prev is the packed form of the parent
// the label table was forked from and shared its copy-on-write bitset (a
// set bit marks a label still backed by the parent). Chunks whose vertices
// are all still shared are reused from prev by reference — packing an
// epoch that touched k vertices costs O(k + touched-chunk slack), not
// O(|V|). With prev or shared nil every chunk is rebuilt.
func Pack(labels []Label, prev *Packed, shared *bitset.Set) *Packed {
	return PackParallel(labels, prev, shared, 1)
}

// PackParallel is Pack with the per-chunk flattening fanned across workers
// (0 = GOMAXPROCS, 1 = serial). The reuse decisions run serially first —
// they are cheap bitset scans and fix the exact rebuild set — then the
// touched chunks fill concurrently; each chunk is an independent slab, so
// the result is identical for every worker count. Entry totals are summed
// in chunk order after the barrier.
func PackParallel(labels []Label, prev *Packed, shared *bitset.Set, workers int) *Packed {
	n := len(labels)
	p := &Packed{
		chunks: make([]packChunk, (n+packChunkLen-1)/packChunkLen),
		n:      n,
	}
	rebuild := make([]int, 0, len(p.chunks))
	for ci := range p.chunks {
		lo := ci * packChunkLen
		hi := min(lo+packChunkLen, n)
		if prev != nil && shared != nil && hi <= prev.n && shared.AllSet(lo, hi) {
			// Every label in [lo,hi) is still the parent's: the parent's
			// chunk is byte-identical, share it. A reused chunk may alias
			// the parent's mapped checkpoint region, so the child inherits
			// the mapping reference — touched chunks are rebuilt onto the
			// heap below, which is the chunk-at-a-time migration off the
			// mapping.
			p.chunks[ci] = prev.chunks[ci]
			p.ref = prev.ref
			continue
		}
		rebuild = append(rebuild, ci)
	}
	fanout.Run(fanout.Resolve(workers), len(rebuild), func(_, t int) {
		ci := rebuild[t]
		lo := ci * packChunkLen
		hi := min(lo+packChunkLen, n)
		var cnt int
		for _, l := range labels[lo:hi] {
			cnt += len(l)
		}
		c := packChunk{
			entries: make([]Entry, 0, cnt),
			off:     make([]uint32, hi-lo+1),
		}
		for i, l := range labels[lo:hi] {
			c.off[i] = uint32(len(c.entries))
			c.entries = append(c.entries, l...)
		}
		c.off[hi-lo] = uint32(len(c.entries))
		p.chunks[ci] = c
	})
	for ci := range p.chunks {
		c := &p.chunks[ci]
		p.entries += int64(c.off[len(c.off)-1])
	}
	return p
}
