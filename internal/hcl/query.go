package hcl

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// UpperBound computes d⊤(u,v), the smallest distance achievable through the
// highway network (Equation 2 of the paper): the minimum over label entry
// pairs of δ_L(r_i,u) + δ_H(r_i,r_j) + δ_L(r_j,v). Landmark endpoints are
// resolved through the highway directly (Equation 1).
func (idx *Index) UpperBound(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	ru, uIsL := idx.Rank(u)
	rv, vIsL := idx.Rank(v)
	switch {
	case uIsL && vIsL:
		return idx.H.Dist(ru, rv)
	case uIsL:
		return idx.landmarkToVertex(ru, v)
	case vIsL:
		return idx.landmarkToVertex(rv, u)
	}
	best := graph.Inf
	for _, eu := range idx.L[u] {
		for _, ev := range idx.L[v] {
			t := graph.AddDist(eu.D, graph.AddDist(idx.H.Dist(eu.Rank, ev.Rank), ev.D))
			if t < best {
				best = t
			}
		}
	}
	return best
}

// landmarkToVertex evaluates Equation 1: d_G(r, v) for landmark rank r and
// non-landmark v, via v's label and the highway.
func (idx *Index) landmarkToVertex(r uint16, v uint32) graph.Dist {
	best := graph.Inf
	for _, e := range idx.L[v] {
		t := graph.AddDist(idx.H.Dist(r, e.Rank), e.D)
		if t < best {
			best = t
		}
	}
	return best
}

// LandmarkDist returns d_G(r, v) for landmark rank r and any vertex v,
// exactly, using the highway for landmark v and Equation 1 otherwise. This
// is the Q(r, ·, Γ) primitive that drives Algorithm 2 of IncHL+.
func (idx *Index) LandmarkDist(r uint16, v uint32) graph.Dist {
	if s, ok := idx.Rank(v); ok {
		return idx.H.Dist(r, s)
	}
	return idx.landmarkToVertex(r, v)
}

// Query answers an exact distance query Q(u,v,Γ): it computes the highway
// upper bound d⊤ and then runs a d⊤-bounded bidirectional BFS over the
// landmark-sparsified graph G[V\R]; the smaller of the two is the exact
// distance (Section 3 of the paper).
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	top := idx.UpperBound(u, v)
	if top <= 1 {
		// Either the vertices are adjacent through a landmark path of
		// length 1 (impossible for distinct non-landmarks, so this is a
		// landmark endpoint case) — no shorter path can exist.
		return top
	}
	if _, uIsL := idx.Rank(u); uIsL {
		return top // Equation 1 is already exact for landmark endpoints
	}
	if _, vIsL := idx.Rank(v); vIsL {
		return top
	}
	s := idx.scratch.Get(idx.G.NumVertices())
	sp := bfs.Sparsified(idx.G, u, v, top, idx.IsLandmark, s.DistU, s.DistV, &s.Touched)
	idx.scratch.Put(s)
	if sp < top {
		return sp
	}
	return top
}
