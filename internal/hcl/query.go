package hcl

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// UpperBound computes d⊤(u,v), the smallest distance achievable through the
// highway network (Equation 2 of the paper): the minimum over label entry
// pairs of δ_L(r_i,u) + δ_H(r_i,r_j) + δ_L(r_j,v). Landmark endpoints are
// resolved through the highway directly (Equation 1).
func (idx *Index) UpperBound(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	ru, uIsL := idx.Rank(u)
	rv, vIsL := idx.Rank(v)
	switch {
	case uIsL && vIsL:
		return idx.H.Dist(ru, rv)
	case uIsL:
		return idx.landmarkToVertex(ru, v)
	case vIsL:
		return idx.landmarkToVertex(rv, u)
	}
	return UpperBoundVia(idx.H, idx.label(u), idx.label(v))
}

// UpperBoundVia is the Equation 2 kernel over two entry spans: the minimum
// of eu.D + δ_H(eu,ev) + ev.D over all entry pairs. It is shared by the
// packed and slice read paths (spans of the arena or whole labels — the
// layouts are identical) and streams one highway row per outer entry, so a
// query touches at most two contiguous entry streams plus |L(u)| rows.
func UpperBoundVia(h *Highway, lu, lv []Entry) graph.Dist {
	return UpperBoundMat(h.mat, h.k, lu, lv)
}

// UpperBoundMat is the same kernel over a flat k×k row-major distance
// matrix — the form the directed and weighted variants store their highways
// in, so all three share this one inner loop. For the directed variant lu
// is the backward label of the source (mat rows are indexed by its ranks)
// and lv the forward label of the target.
func UpperBoundMat(mat []graph.Dist, k int, lu, lv []Entry) graph.Dist {
	best := graph.Inf
	for _, eu := range lu {
		if eu.D >= best {
			continue // every sum through eu is at least eu.D
		}
		row := mat[int(eu.Rank)*k : int(eu.Rank)*k+k]
		for _, ev := range lv {
			t := graph.AddDist(eu.D, graph.AddDist(row[ev.Rank], ev.D))
			if t < best {
				best = t
			}
		}
	}
	return best
}

// landmarkToVertex evaluates Equation 1: d_G(r, v) for landmark rank r and
// non-landmark v, via v's label and the highway.
func (idx *Index) landmarkToVertex(r uint16, v uint32) graph.Dist {
	return LandmarkVia(idx.H.Row(r), idx.label(v))
}

// LandmarkVia is the Equation 1 kernel: the minimum of δ_H(r, e) + e.D over
// the entry span, with row the highway row of landmark rank r.
func LandmarkVia(row []graph.Dist, lv []Entry) graph.Dist {
	best := graph.Inf
	for _, e := range lv {
		t := graph.AddDist(row[e.Rank], e.D)
		if t < best {
			best = t
		}
	}
	return best
}

// LandmarkDist returns d_G(r, v) for landmark rank r and any vertex v,
// exactly, using the highway for landmark v and Equation 1 otherwise. This
// is the Q(r, ·, Γ) primitive that drives Algorithm 2 of IncHL+.
func (idx *Index) LandmarkDist(r uint16, v uint32) graph.Dist {
	if s, ok := idx.Rank(v); ok {
		return idx.H.Dist(r, s)
	}
	return idx.landmarkToVertex(r, v)
}

// Query answers an exact distance query Q(u,v,Γ): it computes the highway
// upper bound d⊤ and then runs a d⊤-bounded bidirectional BFS over the
// landmark-sparsified graph G[V\R]; the smaller of the two is the exact
// distance (Section 3 of the paper).
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	top := idx.UpperBound(u, v)
	if top <= 1 {
		// Either the vertices are adjacent through a landmark path of
		// length 1 (impossible for distinct non-landmarks, so this is a
		// landmark endpoint case) — no shorter path can exist.
		return top
	}
	if _, uIsL := idx.Rank(u); uIsL {
		return top // Equation 1 is already exact for landmark endpoints
	}
	if _, vIsL := idx.Rank(v); vIsL {
		return top
	}
	s := idx.scratch.Get(idx.G.NumVertices())
	sp := bfs.Sparsified(idx.G, u, v, top, idx.IsLandmark, s)
	idx.scratch.Put(s)
	if sp < top {
		return sp
	}
	return top
}
