package hcl

import (
	"testing"

	"repro/internal/graph"
)

// forkFixture builds a small labelled index to fork.
func forkFixture(t *testing.T) *Index {
	t.Helper()
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 7; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(0, 4)
	idx, err := Build(g, []uint32{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// snapshotLabels captures a deep copy of the labelling for later comparison.
func snapshotLabels(idx *Index) []Label {
	out := make([]Label, len(idx.L))
	for v, l := range idx.L {
		out[v] = append(Label(nil), l...)
	}
	return out
}

// TestForkLabelIsolation pins that label writes on a fork copy-on-write the
// touched label only and never change the parent's labelling or highway.
func TestForkLabelIsolation(t *testing.T) {
	idx := forkFixture(t)
	before := snapshotLabels(idx)
	hBefore := idx.H.Clone()

	f := idx.Fork(idx.G.Fork())
	f.SetEntry(6, 0, 1) // overwrite an entry in place (the dangerous path)
	f.SetEntry(7, 1, 9) // insert a fresh entry
	f.RemoveEntry(5, 0) // drop an entry
	f.H.Set(0, 1, 99)   // highway write
	f.EnsureVertex(9)   // grow the fork's tables
	f.SetEntry(9, 0, 3)

	for v := range before {
		if !idx.L[v].Equal(before[v]) {
			t.Fatalf("parent label of %d changed: %v != %v", v, idx.L[v], before[v])
		}
	}
	for i := uint16(0); i < 2; i++ {
		for j := uint16(0); j < 2; j++ {
			if idx.H.Dist(i, j) != hBefore.Dist(i, j) {
				t.Fatalf("parent highway (%d,%d) changed", i, j)
			}
		}
	}
	if len(idx.L) != 8 {
		t.Fatalf("parent label table grew to %d", len(idx.L))
	}
	if d, ok := f.EntryDist(9, 0); !ok || d != 3 {
		t.Fatalf("fork entry (9,0): %d %v", d, ok)
	}
	if d, ok := f.EntryDist(6, 0); !ok || d != 1 {
		t.Fatalf("fork overwrite (6,0): %d %v", d, ok)
	}
	if f.H.Dist(0, 1) != 99 {
		t.Fatalf("fork highway write lost: %d", f.H.Dist(0, 1))
	}
}

// TestForkSharesUntouchedLabels pins the economy of the fork: labels the
// fork never writes share their backing array with the parent.
func TestForkSharesUntouchedLabels(t *testing.T) {
	idx := forkFixture(t)
	f := idx.Fork(idx.G.Fork())
	f.SetEntry(6, 0, 1)
	touched, shared := 0, 0
	for v := range idx.L {
		if len(idx.L[v]) == 0 {
			continue
		}
		if &idx.L[v][0] == &f.L[v][0] {
			shared++
		} else {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("expected exactly one copied label, got %d (shared %d)", touched, shared)
	}
	if shared == 0 {
		t.Fatal("no labels shared with the parent — copy-on-write is not sharing")
	}
}
