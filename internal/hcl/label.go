// Package hcl implements highway cover labelling (Farhan et al., EDBT 2019),
// the distance-labelling substrate that IncHL+ (Farhan & Wang, EDBT 2021)
// maintains incrementally: per-vertex landmark distance labels, the
// landmark-to-landmark highway, static construction, and the exact
// upper-bound + bounded-search query of Section 3 of the paper.
package hcl

import (
	"sort"

	"repro/internal/graph"
)

// Entry is one distance entry (r_i, δ_L(r_i, v)) of a vertex label. The
// landmark is identified by its rank (index into Index.Landmarks), not by
// vertex id, so entries pack into six meaningful bytes as in compact C++
// implementations.
type Entry struct {
	Rank uint16     // landmark rank in Index.Landmarks
	D    graph.Dist // exact distance d_G(landmark, v)
}

// EntryBytes is the storage cost charged per label entry when reporting
// labelling sizes (2-byte landmark rank + 4-byte distance), mirroring how
// the paper's implementation accounts for label storage.
const EntryBytes = 6

// Label is the sorted-by-rank set of distance entries of one vertex.
type Label []Entry

// Get returns the distance recorded for landmark rank r, if present.
func (l Label) Get(r uint16) (graph.Dist, bool) { return FindEntry(l, r) }

// entryScanMax is the span length above which FindEntry switches from the
// early-exit linear scan to binary search. Labels are usually a handful of
// entries (bounded by |R|), where the scan's lack of branch mispredictions
// wins; large-|R| deployments cross into sort.Search territory.
const entryScanMax = 16

// FindEntry returns the distance recorded for landmark rank r in the
// sorted-by-rank entry span es. It is the one shared lookup behind
// Label.Get, Packed.Get and the dhcl/whcl read paths — both label
// representations and all three variants resolve entries through it.
func FindEntry(es []Entry, r uint16) (graph.Dist, bool) {
	if len(es) > entryScanMax {
		// sort.Search specialised to the span, saving the indirect
		// comparison call on a path run once per label lookup.
		lo, hi := 0, len(es)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if es[mid].Rank < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(es) && es[lo].Rank == r {
			return es[lo].D, true
		}
		return graph.Inf, false
	}
	for _, e := range es {
		if e.Rank == r {
			return e.D, true
		}
		if e.Rank > r {
			break
		}
	}
	return graph.Inf, false
}

// Set inserts or updates the entry for rank r, keeping the label sorted,
// returning the updated label (append semantics, like the built-in append).
func (l Label) Set(r uint16, d graph.Dist) Label {
	i := sort.Search(len(l), func(i int) bool { return l[i].Rank >= r })
	if i < len(l) && l[i].Rank == r {
		l[i].D = d
		return l
	}
	l = append(l, Entry{})
	copy(l[i+1:], l[i:])
	l[i] = Entry{Rank: r, D: d}
	return l
}

// Remove deletes the entry for rank r if present, reporting whether it was,
// returning the updated label.
func (l Label) Remove(r uint16) (Label, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i].Rank >= r })
	if i >= len(l) || l[i].Rank != r {
		return l, false
	}
	copy(l[i:], l[i+1:])
	return l[:len(l)-1], true
}

// Equal reports whether two labels hold identical entries.
func (l Label) Equal(o Label) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}
