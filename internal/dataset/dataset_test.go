package dataset

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestRegistryComplete(t *testing.T) {
	if len(Specs) != 12 {
		t.Fatalf("want the paper's 12 datasets, have %d", len(Specs))
	}
	seen := map[string]bool{}
	for _, s := range Specs {
		if seen[s.Name] {
			t.Errorf("duplicate dataset %s", s.Name)
		}
		seen[s.Name] = true
		if s.Landmarks == 0 {
			t.Errorf("%s: landmark count unset", s.Name)
		}
	}
	if Specs[11].Name != "Clueweb09" || Specs[11].Landmarks != 150 {
		t.Error("Clueweb09 must use |R|=150 per Section 6")
	}
	if Specs[11].FDFeasible {
		t.Error("IncFD did not complete on Clueweb09 in the paper")
	}
	pll := 0
	for _, s := range Specs {
		if s.PLLFeasible {
			pll++
		}
	}
	if pll != 5 {
		t.Errorf("IncPLL completed on 5 of 12 datasets in Table 1, registry says %d", pll)
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("Twitter")
	if err != nil || s.Name != "Twitter" {
		t.Fatalf("Lookup(Twitter): %v %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestGenerateDeterministicAndScaled(t *testing.T) {
	spec, _ := Lookup("Skitter")
	a := Generate(spec, 0.1, 7)
	b := Generate(spec, 0.1, 7)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same inputs must generate the same graph")
	}
	full := Generate(spec, 0.2, 7)
	if full.NumVertices() <= a.NumVertices() {
		t.Error("larger scale must give more vertices")
	}
	if got := a.NumVertices(); got != 1200 {
		t.Errorf("scale 0.1 of 12000: got %d vertices", got)
	}
}

func TestProxiesMatchPaperRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("generates mid-sized graphs")
	}
	// At modest scale the proxies must land in the right degree ballpark
	// and preserve the social-short vs web-long distance split.
	for _, name := range []string{"Skitter", "Hollywood", "Indochina", "Clueweb09"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		g := Generate(spec, 0.25, 1)
		sum := Summarize(spec, g, 12, 1)
		ratio := sum.AvgDeg / spec.PaperAvgDeg
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: proxy avg degree %.1f vs paper %.1f (ratio %.2f)",
				name, sum.AvgDeg, spec.PaperAvgDeg, ratio)
		}
		if spec.Kind == Web && sum.AvgDist < 4.0 {
			t.Errorf("%s: web proxy too short: avg dist %.2f", name, sum.AvgDist)
		}
		if spec.Kind != Web && sum.AvgDist > 6.0 {
			t.Errorf("%s: social proxy too long: avg dist %.2f", name, sum.AvgDist)
		}
		if graph.LargestComponentSize(g) < g.NumVertices()*9/10 {
			t.Errorf("%s: proxy is badly disconnected", name)
		}
	}
}

func TestSummarize(t *testing.T) {
	spec, _ := Lookup("Flickr")
	g := Generate(spec, 0.05, 3)
	s := Summarize(spec, g, 5, 3)
	if s.V != g.NumVertices() || s.E != g.NumEdges() {
		t.Error("summary counts wrong")
	}
	if math.IsNaN(s.AvgDist) || s.AvgDist <= 0 {
		t.Errorf("AvgDist: %v", s.AvgDist)
	}
}

func TestSortedByName(t *testing.T) {
	s := SortedByName()
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatal("not sorted")
		}
	}
	if len(Specs) != 12 {
		t.Fatal("SortedByName must not mutate Specs")
	}
}
