// Package dataset defines scaled-down synthetic proxies for the 12
// real-world networks of the paper's evaluation (Table 2). The real
// datasets span 1.7M–1.7B vertices and are neither redistributable nor
// tractable here, so each is replaced by a deterministic generator matched
// on average degree and qualitative average-distance regime (see DESIGN.md
// §3 for the substitution rationale). Relative behaviour between datasets —
// social graphs with short distances versus long web crawls — is what the
// paper's experiments exercise, and is preserved.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Kind is the generator family of a proxy.
type Kind string

// Proxy generator families.
const (
	Social Kind = "social" // preferential attachment (short distances)
	Comp   Kind = "comp"   // computer/internet topology (BA, sparser)
	Web    Kind = "web"    // locality web model (long distances)
)

// Spec describes one paper dataset and its proxy.
type Spec struct {
	Name string
	Kind Kind

	// Paper-reported values, for Table 2 and EXPERIMENTS.md comparisons.
	PaperV       string
	PaperE       string
	PaperAvgDeg  float64
	PaperAvgDist float64

	// Proxy parameters at scale 1.0.
	N        int     // vertices
	BADegree int     // BA attachment edges (social/comp)
	WebDeg   int     // web generator degree
	WebSpan  int     // web generator locality window
	HubFrac  float64 // web generator hub fraction

	// Landmarks is the |R| used for this dataset in Table 1 (20 for all,
	// 150 for Clueweb09, following Section 6).
	Landmarks int

	// PLLFeasible/FDFeasible mirror which baselines completed on the
	// dataset in the paper's Table 1 (IncPLL failed on 7 of 12, IncFD on
	// Clueweb09); the harness reports "-" for infeasible combinations.
	PLLFeasible bool
	FDFeasible  bool
}

// Specs lists the 12 datasets in the paper's Table 1/2 order.
var Specs = []Spec{
	{Name: "Skitter", Kind: Comp, PaperV: "1.7M", PaperE: "11M", PaperAvgDeg: 13.081, PaperAvgDist: 5.1,
		N: 12000, BADegree: 7, Landmarks: 20, PLLFeasible: true, FDFeasible: true},
	{Name: "Flickr", Kind: Social, PaperV: "1.7M", PaperE: "16M", PaperAvgDeg: 18.133, PaperAvgDist: 5.3,
		N: 12000, BADegree: 9, Landmarks: 20, PLLFeasible: true, FDFeasible: true},
	{Name: "Hollywood", Kind: Social, PaperV: "1.1M", PaperE: "114M", PaperAvgDeg: 98.913, PaperAvgDist: 3.9,
		N: 7000, BADegree: 49, Landmarks: 20, PLLFeasible: true, FDFeasible: true},
	{Name: "Orkut", Kind: Social, PaperV: "3.1M", PaperE: "117M", PaperAvgDeg: 76.281, PaperAvgDist: 4.2,
		N: 10000, BADegree: 38, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "Enwiki", Kind: Social, PaperV: "4.2M", PaperE: "101M", PaperAvgDeg: 43.746, PaperAvgDist: 3.4,
		N: 10000, BADegree: 22, Landmarks: 20, PLLFeasible: true, FDFeasible: true},
	{Name: "Livejournal", Kind: Social, PaperV: "4.8M", PaperE: "69M", PaperAvgDeg: 17.679, PaperAvgDist: 5.6,
		N: 14000, BADegree: 9, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "Indochina", Kind: Web, PaperV: "7.4M", PaperE: "194M", PaperAvgDeg: 40.725, PaperAvgDist: 7.7,
		N: 14000, WebDeg: 40, WebSpan: 700, HubFrac: 0.01, Landmarks: 20, PLLFeasible: true, FDFeasible: true},
	{Name: "IT", Kind: Web, PaperV: "41M", PaperE: "1.2B", PaperAvgDeg: 49.768, PaperAvgDist: 7.0,
		N: 16000, WebDeg: 50, WebSpan: 900, HubFrac: 0.01, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "Twitter", Kind: Social, PaperV: "42M", PaperE: "1.5B", PaperAvgDeg: 57.741, PaperAvgDist: 3.6,
		N: 16000, BADegree: 29, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "Friendster", Kind: Social, PaperV: "66M", PaperE: "1.8B", PaperAvgDeg: 55.056, PaperAvgDist: 5.0,
		N: 20000, BADegree: 28, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "UK", Kind: Web, PaperV: "106M", PaperE: "3.7B", PaperAvgDeg: 62.772, PaperAvgDist: 6.9,
		N: 20000, WebDeg: 62, WebSpan: 1100, HubFrac: 0.008, Landmarks: 20, PLLFeasible: false, FDFeasible: true},
	{Name: "Clueweb09", Kind: Web, PaperV: "1.7B", PaperE: "7.8B", PaperAvgDeg: 9.27, PaperAvgDist: 7.4,
		N: 24000, WebDeg: 9, WebSpan: 1300, HubFrac: 0.008, Landmarks: 150, PLLFeasible: false, FDFeasible: false},
}

// Names returns the dataset names in canonical order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// Lookup finds a spec by case-sensitive name.
func Lookup(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
}

// Generate builds the proxy graph for spec at the given scale factor
// (scale 1.0 = the registry size; 0.25 = a quarter of the vertices, degree
// parameters preserved, locality window shrunk proportionally).
// Deterministic for a given (spec, scale, seed).
func Generate(spec Spec, scale float64, seed int64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(spec.N) * scale)
	if n < 64 {
		n = 64
	}
	switch spec.Kind {
	case Web:
		span := int(float64(spec.WebSpan) * scale)
		if span < 8 {
			span = 8
		}
		return gen.WebLocality(n, spec.WebDeg, span, spec.HubFrac, seed)
	default:
		m := spec.BADegree
		if m < 1 {
			m = 1
		}
		return gen.BarabasiAlbert(n, m, seed)
	}
}

// Summary holds measured statistics of a generated proxy, the rows of the
// reproduced Table 2.
type Summary struct {
	Spec    Spec
	V       int
	E       uint64
	AvgDeg  float64
	AvgDist float64
}

// Summarize measures a generated graph, sampling avg distance from the
// given number of BFS sources.
func Summarize(spec Spec, g *graph.Graph, distSamples int, seed int64) Summary {
	return Summary{
		Spec:    spec,
		V:       g.NumVertices(),
		E:       g.NumEdges(),
		AvgDeg:  graph.AvgDegree(g),
		AvgDist: graph.AvgDistance(g, distSamples, seed),
	}
}

// SortedByName returns a copy of Specs sorted by name, for deterministic
// subsetting in tests.
func SortedByName() []Spec {
	out := append([]Spec(nil), Specs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
