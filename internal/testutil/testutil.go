// Package testutil provides deterministic random graphs and ground-truth
// oracles shared by the test suites of the labelling packages.
package testutil

import (
	"math/rand"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// RandomGraph returns a graph with n vertices and approximately m distinct
// random edges (self-loops and duplicates are skipped, so fewer edges may
// result on dense requests). Deterministic for a given seed.
func RandomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		_, _ = g.AddEdge(u, v)
	}
	return g
}

// RandomConnectedGraph returns a connected graph: a random spanning tree
// plus extra random edges.
func RandomConnectedGraph(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := uint32(perm[i])
		v := uint32(perm[rng.Intn(i)])
		_, _ = g.AddEdge(u, v)
	}
	for i := 0; i < extra; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v)
		}
	}
	return g
}

// NonEdges returns up to count vertex pairs that are not edges of g,
// deterministically for a seed, without duplicates.
func NonEdges(g *graph.Graph, count int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	seen := make(map[[2]uint32]bool)
	var out [][2]uint32
	for tries := 0; len(out) < count && tries < count*200; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		key := [2]uint32{min(u, v), max(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, [2]uint32{u, v})
	}
	return out
}

// AllPairsOracle computes the exact all-pairs distances of g with one BFS
// per vertex. Quadratic memory: test-sized graphs only.
func AllPairsOracle(g *graph.Graph) [][]graph.Dist {
	n := g.NumVertices()
	d := make([][]graph.Dist, n)
	for v := 0; v < n; v++ {
		d[v] = bfs.Distances(g, uint32(v))
	}
	return d
}
