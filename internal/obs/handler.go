package obs

import (
	"io"
	"net/http"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteAll renders the given registries back to back — one scrape body.
func WriteAll(w io.Writer, regs ...*Registry) error {
	for _, r := range regs {
		if r == nil {
			continue
		}
		if err := r.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves a /metrics endpoint over the registries returned by
// gather. The function is called per scrape so late-attached layers
// (durability, replication) show up as soon as they exist.
func Handler(gather func() []*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = WriteAll(w, gather()...)
	})
}
