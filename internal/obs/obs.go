// Package obs is the observability core: low-overhead counters, gauges and
// fixed-bucket log-scale histograms, collected in registries and exposed in
// the Prometheus text format — hand-rolled like the rest of the codebase,
// no external dependencies.
//
// The hot-path contract is the whole point of the package: Counter.Add and
// Histogram.Observe are a handful of uncontended atomic adds — no locks, no
// maps, no allocations — so they are safe on the CI-gated zero-allocation
// query path and inside the store's commit pipeline. All coordination
// (naming, help strings, family grouping) happens once at registration;
// recording touches only the metric's own atomics.
//
// # Naming scheme
//
// Metrics follow the Prometheus conventions: a dynhl_ namespace, a
// subsystem (query, apply, wal, repl, arena), _seconds histograms recorded
// in nanoseconds and exposed in seconds, _total counters, plain nouns for
// gauges. Per-variant series carry a variant="undirected|directed|weighted"
// label; write-pipeline stages a stage= label. Runtime basics (goroutines,
// heap, GC) live in the shared Runtime registry under go_ / process_.
//
// # Histograms
//
// A Histogram has fixed log-scale buckets: bucket i counts observations
// whose value v satisfies 2^(i-1) <= v < 2^i (bucket 0 holds v == 0), i.e.
// the bucket index is simply bits.Len64(v). One atomic add finds the
// bucket, one more accumulates the sum; there is no separate count — the
// exposition derives it from the buckets, so a scraped histogram is always
// internally consistent. 40 buckets cover 1ns..~275s for durations and
// 1..~2.7e11 for value distributions; everything beyond clamps into the
// last bucket, exposed as +Inf.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed bucket count of every Histogram: indices
// 0..numBuckets-2 have finite upper bounds, the last bucket is +Inf.
const numBuckets = 40

// bucketOf maps a recorded value onto its bucket index.
func bucketOf(v uint64) int {
	i := bits.Len64(v)
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's inclusive upper bound in the recorded
// unit (2^i - 1); the last bucket is unbounded and reported as +Inf.
func bucketBound(i int) uint64 { return 1<<uint(i) - 1 }

// Counter is a monotonically increasing counter. The zero value is ready;
// registry constructors hand out registered instances.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket log-scale distribution. Observe is two
// uncontended atomic adds: one bucket increment, one sum accumulation —
// no locks, no allocations, safe for any number of concurrent recorders.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Uint64
	// scale converts the recorded unit into the exposed unit (1e-9 for
	// nanosecond recordings exposed as seconds, 1 for plain values).
	scale float64
}

// Observe records one value in the histogram's native unit.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d (negative durations clamp to zero — a
// backwards clock step must not corrupt the sum).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Since records the time elapsed since start — the one-liner for stage
// timings: defer-free, allocation-free.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations (the sum over all buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the accumulated total in the recorded unit.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }
