package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// memStats caches runtime.ReadMemStats across the gauge funcs of one
// scrape (and across near-simultaneous scrapes): ReadMemStats stops the
// world briefly, so four gauges must not mean four stops.
var memCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func memStats() runtime.MemStats {
	memCache.mu.Lock()
	defer memCache.mu.Unlock()
	if time.Since(memCache.at) > 500*time.Millisecond {
		runtime.ReadMemStats(&memCache.stat)
		memCache.at = time.Now()
	}
	return memCache.stat
}

// majorFaults reads the process's cumulative major page-fault count from
// /proc/self/stat (field 12, majflt). On a mapped-checkpoint deployment
// this is the page-touch proxy for arena reads that actually hit disk:
// mapped bytes say how much could fault, majflt says how much did.
// Returns 0 on platforms without procfs.
func majorFaults() uint64 {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	// comm (field 2) may contain spaces; everything after the closing
	// paren is space-separated, with majflt at index 9 of that tail
	// (fields 3..; majflt is field 12 overall).
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 10 {
		return 0
	}
	n, err := strconv.ParseUint(fields[9], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

var (
	runtimeOnce sync.Once
	runtimeReg  *Registry
)

// Runtime returns the process-wide runtime registry: goroutine count,
// heap and total memory, GC cycle/pause totals, and the major page-fault
// counter that proxies arena page touches. Built once, shared by every
// /metrics handler in the process.
func Runtime() *Registry {
	runtimeOnce.Do(func() {
		r := NewRegistry()
		r.GaugeFunc("go_goroutines", "Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
			func() float64 { m := memStats(); return float64(m.HeapAlloc) })
		r.GaugeFunc("go_sys_bytes", "Bytes of memory obtained from the OS.",
			func() float64 { m := memStats(); return float64(m.Sys) })
		r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
			func() uint64 { m := memStats(); return uint64(m.NumGC) })
		r.FloatCounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
			func() float64 { m := memStats(); return float64(m.PauseTotalNs) * 1e-9 })
		r.CounterFunc("process_major_page_faults_total",
			"Major page faults (mapped-checkpoint page touches that hit disk).",
			majorFaults)
		runtimeReg = r
	})
	return runtimeReg
}
