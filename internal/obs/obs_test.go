package obs

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log2 bucketing: bucket 0 holds zero,
// bucket i holds 2^(i-1)..2^i-1, and everything past the last finite
// bound clamps into the final (+Inf) bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{1<<39 - 1, 39},
		{1 << 39, numBuckets - 1},
		{1 << 62, numBuckets - 1},
		{^uint64(0), numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in the bucket whose bound contains it.
	for i := 0; i < numBuckets-1; i++ {
		ub := bucketBound(i)
		if got := bucketOf(ub); got != i {
			t.Errorf("upper bound %d of bucket %d lands in bucket %d", ub, i, got)
		}
		if got := bucketOf(ub + 1); got != i+1 {
			t.Errorf("value %d just past bucket %d lands in bucket %d, want %d", ub+1, i, got, i+1)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (meaningful under -race: Observe must be lock-free and
// data-race-free) and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{scale: 1}
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < perWorker; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(x >> 40)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramSnapshotConsistency scrapes while writers are recording
// and asserts every exposition is internally consistent: buckets are
// cumulative and non-decreasing, +Inf equals _count, and successive
// scrapes never go backwards.
func TestHistogramSnapshotConsistency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Values("test_dist", "test distribution")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(x >> 45)
			}
		}(uint64(w))
	}
	var prevCount uint64
	for scrape := 0; scrape < 50; scrape++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		var lastCum, inf, count uint64
		haveCount := false
		sc := bufio.NewScanner(strings.NewReader(sb.String()))
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "#") {
				continue
			}
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed line %q", line)
			}
			if name == "test_dist_sum" {
				continue
			}
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("non-integer value in %q: %v", line, err)
			}
			switch {
			case strings.Contains(name, `le="+Inf"`):
				inf = n
			case strings.HasPrefix(name, "test_dist_bucket"):
				if n < lastCum {
					t.Fatalf("bucket regression: %q after cum %d", line, lastCum)
				}
				lastCum = n
			case name == "test_dist_count":
				count, haveCount = n, true
			}
		}
		if !haveCount {
			t.Fatal("no _count line in exposition")
		}
		if inf != count {
			t.Fatalf("scrape %d: +Inf bucket %d != count %d", scrape, inf, count)
		}
		if inf < lastCum {
			t.Fatalf("scrape %d: +Inf %d below last finite bucket %d", scrape, inf, lastCum)
		}
		if count < prevCount {
			t.Fatalf("scrape %d: count went backwards %d -> %d", scrape, prevCount, count)
		}
		prevCount = count
	}
	close(stop)
	wg.Wait()
}

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops", Label{"kind", "write"})
	c.Add(7)
	g := reg.Gauge("test_depth", "queue depth")
	g.Set(42)
	g.Add(-2)
	reg.CounterFunc("test_fn_total", "fn counter", func() uint64 { return 11 })
	reg.GaugeFunc("test_ratio", "fn gauge", func() float64 { return 0.5 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		`test_ops_total{kind="write"} 7`,
		"# TYPE test_depth gauge",
		"test_depth 40",
		"test_fn_total 11",
		"test_ratio 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryIdempotentRegistration: registering the same name+labels
// twice returns the same metric, and distinct label sets get distinct
// series under one family header.
func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_total", "t", Label{"v", "x"})
	b := reg.Counter("test_total", "t", Label{"v", "x"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := reg.Counter("test_total", "t", Label{"v", "y"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	c.Add(2)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE test_total counter") != 1 {
		t.Fatalf("family header not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `test_total{v="x"} 1`) || !strings.Contains(out, `test_total{v="y"} 2`) {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestDurationHistogramScale(t *testing.T) {
	reg := NewRegistry()
	h := reg.Duration("test_seconds", "latency")
	h.ObserveDuration(1500 * time.Nanosecond)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test_seconds_sum 1.5e-06") {
		t.Errorf("sum not scaled to seconds:\n%s", out)
	}
	if !strings.Contains(out, "test_seconds_count 1") {
		t.Errorf("missing count:\n%s", out)
	}
	// Negative durations clamp instead of corrupting the sum.
	h.ObserveDuration(-time.Second)
	if h.Count() != 2 || h.Sum() != 1500 {
		t.Errorf("negative duration mishandled: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestEmptyHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Duration("test_seconds", "latency")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_seconds_bucket{le="+Inf"} 0`,
		"test_seconds_sum 0",
		"test_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty histogram missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeRegistry(t *testing.T) {
	var sb strings.Builder
	if err := Runtime().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime registry missing %s:\n%s", want, out)
		}
	}
}
