package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance inside a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels string // rendered label set, `variant="undirected"` — may be empty
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64  // CounterFunc
	gf     func() float64 // GaugeFunc
}

// family groups all series sharing a metric name: one # HELP / # TYPE
// header, many labeled series.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry is a named collection of metrics. Registration takes a lock
// and happens once at setup; the metrics it hands out are free-standing
// atomics, so recording never touches the registry. Each component owns
// its registry (store, WAL layer, replication role) and the HTTP layer
// gathers them per scrape.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byKey    map[string]*series
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*series),
		byName: make(map[string]*family),
	}
}

// Label is one name="value" pair attached to a series at registration.
type Label struct {
	Name, Value string
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the series for (name, labels), creating the family on
// first sight. Re-registering the same name+labels returns the existing
// series — registration is idempotent so layered constructors can't
// collide with themselves.
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	if s, ok := r.byKey[key]; ok {
		return s
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	r.byKey[key] = s
	return s
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters kept elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	s.cf = fn
}

// FloatCounterFunc registers a float-valued counter read from fn at
// scrape time (cumulative seconds totals).
func (r *Registry) FloatCounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	s.gf = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, labels)
	s.gf = fn
}

// Duration registers a latency histogram: recorded in nanoseconds,
// exposed in seconds. Name it *_seconds by convention.
func (r *Registry) Duration(name, help string, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{scale: 1e-9}
	}
	return s.h
}

// Values registers a plain value histogram (group sizes, batch sizes,
// byte counts): recorded and exposed 1:1.
func (r *Registry) Values(name, help string, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{scale: 1}
	}
	return s.h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format 0.0.4:
// a # HELP and # TYPE header per family, then one line per series (or
// the _bucket/_sum/_count triplet for histograms). Histogram buckets are
// cumulative; empty leading and trailing buckets are trimmed but +Inf is
// always present, and the count is derived from the buckets themselves
// so count and buckets can never disagree within one scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.h != nil:
		return writeHistogram(w, f.name, s.labels, s.h)
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.c.Value())
		return err
	case s.cf != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.cf())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.g.Value())
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, s.labels), formatFloat(s.gf()))
		return err
	}
	return nil
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func bucketName(name, labels, le string) string {
	if labels == "" {
		return name + `_bucket{le="` + le + `"}`
	}
	return name + `_bucket{` + labels + `,le="` + le + `"}`
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	// Load the buckets once; everything below (cumulative lines, count)
	// derives from this single snapshot, so the triplet is consistent.
	var counts [numBuckets]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	first, last := -1, -1
	for i, c := range counts {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	if first >= 0 {
		for i := first; i <= last; i++ {
			cum += counts[i]
			// The final populated bucket folds into +Inf below; finite
			// bounds are only emitted for buckets strictly before it.
			if i == last || i == numBuckets-1 {
				break
			}
			le := formatFloat(float64(bucketBound(i)) * h.scale)
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(name, labels, le), cum); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(name, labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(float64(h.Sum())*h.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), cum)
	return err
}
