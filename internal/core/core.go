// Package core anchors the paper's primary contribution in the canonical
// repository layout: IncHL+ — online incremental maintenance of a highway
// cover labelling. The algorithmic code lives in two sibling packages and
// is re-exported here:
//
//   - repro/internal/hcl: the highway cover labelling substrate (static
//     construction, highway, labels, exact queries — Section 3).
//   - repro/internal/inchl: the IncHL+ update algorithms (FindAffected /
//     RepairAffected — Section 4).
package core

import (
	"repro/internal/hcl"
	"repro/internal/inchl"
)

// Index is the highway cover labelling Γ = (H, L).
type Index = hcl.Index

// Updater maintains an Index under insertions (IncHL+).
type Updater = inchl.Updater

// Stats reports per-update instrumentation.
type Stats = inchl.Stats

// Build constructs the minimal labelling (see hcl.Build).
var Build = hcl.Build

// BuildParallel is the concurrent builder (see hcl.BuildParallel).
var BuildParallel = hcl.BuildParallel

// New wraps an Index in an Updater (see inchl.New).
var New = inchl.New
