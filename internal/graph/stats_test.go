package graph

import (
	"math"
	"testing"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1))
	}
	return g
}

func TestAvgDegree(t *testing.T) {
	g := path(5) // 4 edges, 5 vertices
	if got := AvgDegree(g); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("AvgDegree: got %v, want 1.6", got)
	}
	if got := AvgDegree(New(0)); got != 0 {
		t.Errorf("AvgDegree empty: got %v", got)
	}
}

func TestAvgDistancePath(t *testing.T) {
	// On a path of 5 vertices the all-pairs average distance is 2.0;
	// sampling every vertex as a source must reproduce it exactly.
	g := path(5)
	if got := AvgDistance(g, 5, 1); math.Abs(got-2.0) > 0.35 {
		t.Errorf("AvgDistance: got %v, want ≈2.0", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	comp, n := ConnectedComponents(g)
	if n != 3 {
		t.Fatalf("components: got %d, want 3", n)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Errorf("component assignment wrong: %v", comp)
	}
	if got := LargestComponentSize(g); got != 3 {
		t.Errorf("LargestComponentSize: got %d, want 3", got)
	}
}
