package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexAndEdge(t *testing.T) {
	g := New(4)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("new graph must be empty")
	}
	a := g.AddVertex()
	b := g.AddVertex()
	if a != 0 || b != 1 {
		t.Fatalf("vertex ids: got %d,%d", a, b)
	}
	ok, err := g.AddEdge(a, b)
	if err != nil || !ok {
		t.Fatalf("AddEdge: %v %v", ok, err)
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("edge must be undirected")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges: got %d, want 1", g.NumEdges())
	}
	ok, err = g.AddEdge(a, b)
	if err != nil || ok {
		t.Errorf("duplicate AddEdge: got %v,%v want false,nil", ok, err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges after duplicate: got %d", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	g.AddVertex()
	g.AddVertex()
	if _, err := g.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v", err)
	}
	if _, err := g.AddEdge(0, 5); !errors.Is(err, ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v", err)
	}
}

func TestEnsureVertex(t *testing.T) {
	g := New(0)
	g.EnsureVertex(4)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices: got %d, want 5", g.NumVertices())
	}
	g.EnsureVertex(2) // no shrink
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices after smaller ensure: got %d", g.NumVertices())
	}
	if !g.HasVertex(4) || g.HasVertex(5) {
		t.Error("HasVertex wrong")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	ns := g.Neighbors(0)
	if len(ns) != 2 {
		t.Fatalf("Neighbors(0): %v", ns)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("mutating clone leaked into original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Errorf("edge counts: clone %d orig %d", c.NumEdges(), g.NumEdges())
	}
}

func TestEdgesIteratesOnce(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(3, 0)
	seen := map[[2]uint32]int{}
	g.Edges(func(u, v uint32) {
		if u >= v {
			t.Errorf("Edges must yield u < v, got (%d,%d)", u, v)
		}
		seen[[2]uint32{u, v}]++
	})
	if len(seen) != 3 {
		t.Fatalf("Edges yielded %d pairs, want 3", len(seen))
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %v yielded %d times", e, c)
		}
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 3)
	if got := g.MaxDegreeVertex(); got != 2 {
		t.Errorf("MaxDegreeVertex: got %d, want 2", got)
	}
}

func TestAddDistSaturates(t *testing.T) {
	cases := []struct{ a, b, want Dist }{
		{1, 2, 3},
		{Inf, 1, Inf},
		{1, Inf, Inf},
		{Inf, Inf, Inf},
		{Inf - 1, 2, Inf},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := AddDist(c.a, c.b); got != c.want {
			t.Errorf("AddDist(%d,%d): got %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHasEdgeQuickMirrorsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(12)
		for i := 0; i < 12; i++ {
			g.AddVertex()
		}
		m := map[[2]uint32]bool{}
		for i := 0; i < 40; i++ {
			u := uint32(rng.Intn(12))
			v := uint32(rng.Intn(12))
			if u == v {
				continue
			}
			_, _ = g.AddEdge(u, v)
			a, b := min(u, v), max(u, v)
			m[[2]uint32{a, b}] = true
		}
		for u := uint32(0); u < 12; u++ {
			for v := uint32(0); v < 12; v++ {
				if u == v {
					continue
				}
				a, b := min(u, v), max(u, v)
				if g.HasEdge(u, v) != m[[2]uint32{a, b}] {
					return false
				}
			}
		}
		return uint64(len(m)) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("edge survived removal")
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges: got %d, want 2", g.NumEdges())
	}
	if err := g.RemoveEdge(1, 2); !errors.Is(err, ErrEdgeUnknown) {
		t.Errorf("double delete: got %v, want ErrEdgeUnknown", err)
	}
	if err := g.RemoveEdge(0, 9); !errors.Is(err, ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v, want ErrVertexUnknown", err)
	}
	if err := g.RemoveEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop: got %v, want ErrSelfLoop", err)
	}
	// Removed edges can be reinserted.
	if ok, err := g.AddEdge(1, 2); !ok || err != nil {
		t.Fatalf("reinsert after delete: %v %v", ok, err)
	}
}

func TestRemoveEdgeRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		g := New(10)
		for i := 0; i < 10; i++ {
			g.AddVertex()
		}
		m := map[[2]uint32]bool{}
		for i := 0; i < 60; i++ {
			u := uint32(rng.Intn(10))
			v := uint32(rng.Intn(10))
			if u == v {
				continue
			}
			a, b := min(u, v), max(u, v)
			if rng.Float64() < 0.4 && m[[2]uint32{a, b}] {
				if err := g.RemoveEdge(u, v); err != nil {
					return false
				}
				delete(m, [2]uint32{a, b})
			} else {
				_, _ = g.AddEdge(u, v)
				m[[2]uint32{a, b}] = true
			}
		}
		for u := uint32(0); u < 10; u++ {
			for v := uint32(0); v < 10; v++ {
				if u == v {
					continue
				}
				a, b := min(u, v), max(u, v)
				if g.HasEdge(u, v) != m[[2]uint32{a, b}] {
					return false
				}
			}
		}
		return uint64(len(m)) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
