package graph

import (
	"testing"
)

// TestForkIsolation pins the copy-on-write contract: mutations on a fork
// never change the parent's adjacency, edge count, or any neighbour list
// the fork and parent still share.
func TestForkIsolation(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	edges := [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	wantAdj := make(map[uint32][]uint32)
	for v := uint32(0); v < 6; v++ {
		wantAdj[v] = append([]uint32(nil), g.Neighbors(v)...)
	}
	wantEdges := g.NumEdges()

	f := g.Fork()
	if _, err := f.AddEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	nv := f.AddVertex()
	if _, err := f.AddEdge(nv, 2); err != nil {
		t.Fatal(err)
	}

	if g.NumEdges() != wantEdges {
		t.Fatalf("parent edge count changed: %d != %d", g.NumEdges(), wantEdges)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("parent vertex count changed: %d", g.NumVertices())
	}
	for v := uint32(0); v < 6; v++ {
		got := g.Neighbors(v)
		want := wantAdj[v]
		if len(got) != len(want) {
			t.Fatalf("parent adjacency of %d changed: %v != %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parent adjacency of %d changed: %v != %v", v, got, want)
			}
		}
	}
	if g.HasEdge(1, 4) || !f.HasEdge(1, 4) {
		t.Fatal("insert leaked into parent or missed the fork")
	}
	if !g.HasEdge(0, 1) || f.HasEdge(0, 1) {
		t.Fatal("delete leaked into parent or missed the fork")
	}
	if f.NumEdges() != wantEdges+1 { // +2 inserts, -1 delete
		t.Fatalf("fork edge count: %d", f.NumEdges())
	}
}

// TestForkOfFork pins that chained forks stay independent: each generation
// only sees its own mutations plus those of its ancestors at fork time.
func TestForkOfFork(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)

	f1 := g.Fork()
	f1.MustAddEdge(2, 3)
	f2 := f1.Fork()
	if err := f2.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}

	if !f1.HasEdge(0, 1) {
		t.Fatal("grandchild delete leaked into child")
	}
	if !f1.HasEdge(2, 3) || !f2.HasEdge(2, 3) {
		t.Fatal("child insert lost")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("child insert leaked into parent")
	}
}
