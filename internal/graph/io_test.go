package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment

0 1
1 2 extra-ignored
2 0
2 2
0 1
5 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("NumVertices: got %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges: got %d, want 4 (self-loop and duplicate dropped)", g.NumEdges())
	}
	if !g.HasEdge(5, 1) {
		t.Error("edge (5,1) missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0", "x 1", "1 y", "1 99999999999999999999"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if back.NumEdges() != g.NumEdges() || back.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	g.Edges(func(u, v uint32) {
		if !back.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost in round trip", u, v)
		}
	})
}
