package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list, one "u v" pair per
// line. Lines that are empty or start with '#' or '%' are skipped (the
// comment conventions of SNAP and KONECT dumps). Vertices are created as
// needed; duplicate edges and self-loops are silently dropped, matching how
// the paper treats its inputs as simple undirected graphs.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", line, fields[1], err)
		}
		if u == v {
			continue
		}
		g.EnsureVertex(uint32(u))
		g.EnsureVertex(uint32(v))
		if _, err := g.AddEdge(uint32(u), uint32(v)); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as a "u v" edge list with a header comment,
// the inverse of ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v uint32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return nil
}
