package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ForEachEdge parses the whitespace-separated edge-list format shared by
// the graph variants: one "u v [extra...]" line per edge, where lines that
// are empty or start with '#' or '%' are skipped (the comment conventions
// of SNAP and KONECT dumps) and self-loops are silently dropped. add is
// called once per remaining line with any extra fields; its errors are
// wrapped with the line number. name prefixes errors ("graph", "digraph",
// "wgraph").
func ForEachEdge(r io.Reader, name string, add func(u, v uint32, extra []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("%s: line %d: want at least two fields, got %q", name, line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("%s: line %d: bad vertex %q: %w", name, line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("%s: line %d: bad vertex %q: %w", name, line, fields[1], err)
		}
		if u == v {
			continue
		}
		if err := add(uint32(u), uint32(v), fields[2:]); err != nil {
			return fmt.Errorf("%s: line %d: %w", name, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: reading edge list: %w", name, err)
	}
	return nil
}

// ReadEdgeList parses a whitespace-separated edge list, one "u v" pair per
// line, in the ForEachEdge format. Vertices are created as needed;
// duplicate edges and self-loops are silently dropped, matching how the
// paper treats its inputs as simple undirected graphs.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New(0)
	err := ForEachEdge(r, "graph", func(u, v uint32, _ []string) error {
		g.EnsureVertex(u)
		g.EnsureVertex(v)
		_, err := g.AddEdge(u, v)
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes the graph as a "u v" edge list with a header comment,
// the inverse of ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v uint32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return nil
}
