// Package graph implements the dynamic graph substrate for the IncHL+
// reproduction: an undirected, unweighted graph stored as adjacency lists
// that supports online vertex and edge insertions, the update model of
// Farhan & Wang (EDBT 2021).
package graph

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Dist is a shortest-path distance in hops. Unreachable pairs have distance
// Inf; all distance arithmetic in this repository saturates at Inf.
type Dist = uint32

// Inf is the distance between disconnected vertices.
const Inf Dist = ^Dist(0)

// AddDist returns a+b, saturating at Inf.
func AddDist(a, b Dist) Dist {
	if a == Inf || b == Inf {
		return Inf
	}
	if c := a + b; c >= a { // no wrap
		return c
	}
	return Inf
}

// Errors reported by mutating operations. They are shared as sentinels by
// the directed and weighted substrates too, so every layer up to the HTTP
// service can classify failures with errors.Is instead of string matching.
var (
	ErrSelfLoop      = errors.New("graph: self-loops are not supported")
	ErrVertexUnknown = errors.New("graph: vertex does not exist")
	ErrEdgeUnknown   = errors.New("graph: edge does not exist")
	ErrEdgeExists    = errors.New("graph: edge already exists")
)

// Graph is an undirected, unweighted dynamic graph over vertices
// 0..NumVertices-1. The zero value is an empty graph ready to use.
//
// Parallel edges are rejected (AddEdge reports false), matching the paper's
// edge-insertion model where (a,b) ∉ E.
type Graph struct {
	adj   [][]uint32
	edges uint64

	// shared is non-nil only on forks: bit v set means adj[v]'s backing
	// array still belongs to the parent and must be copied before the first
	// mutation (see Fork). Plain graphs skip the check entirely.
	shared *bitset.Set
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]uint32, 0, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of (undirected) edges.
func (g *Graph) NumEdges() uint64 { return g.edges }

// AddVertex appends a new isolated vertex and returns its id.
func (g *Graph) AddVertex() uint32 {
	g.adj = append(g.adj, nil)
	if g.shared != nil {
		g.shared.Grow(len(g.adj)) // new bits are clear: the fork owns new vertices
	}
	return uint32(len(g.adj) - 1)
}

// EnsureVertex grows the graph so that vertex v exists.
func (g *Graph) EnsureVertex(v uint32) {
	for uint32(len(g.adj)) <= v {
		g.adj = append(g.adj, nil)
	}
	if g.shared != nil {
		g.shared.Grow(len(g.adj))
	}
}

// HasVertex reports whether v is a vertex of the graph.
func (g *Graph) HasVertex(v uint32) bool { return int(v) < len(g.adj) }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v uint32) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified; it may be invalidated by AddEdge.
func (g *Graph) Neighbors(v uint32) []uint32 { return g.adj[v] }

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v uint32) bool {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false
	}
	a, b := u, v
	// Scan the shorter list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u,v). It reports whether the edge was
// new. It returns ErrSelfLoop for u == v and ErrVertexUnknown when either
// endpoint does not exist.
func (g *Graph) AddEdge(u, v uint32) (bool, error) {
	if u == v {
		return false, ErrSelfLoop
	}
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false, fmt.Errorf("%w: edge (%d,%d) with %d vertices", ErrVertexUnknown, u, v, len(g.adj))
	}
	if g.HasEdge(u, v) {
		return false, nil
	}
	g.own(u)
	g.own(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return true, nil
}

// RemoveEdge deletes the undirected edge (u,v). It returns ErrSelfLoop for
// u == v, ErrVertexUnknown when either endpoint does not exist and
// ErrEdgeUnknown when the edge is not present.
func (g *Graph) RemoveEdge(u, v uint32) error {
	if u == v {
		return ErrSelfLoop
	}
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return fmt.Errorf("%w: edge (%d,%d) with %d vertices", ErrVertexUnknown, u, v, len(g.adj))
	}
	if !g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeUnknown, u, v)
	}
	g.own(u)
	g.own(v)
	RemoveFromList(&g.adj[u], v)
	RemoveFromList(&g.adj[v], u)
	g.edges--
	return nil
}

// RemoveFromList deletes the first occurrence of x from *list, reporting
// whether it was present. Order is not preserved (swap-with-last), which is
// fine: adjacency order is unspecified. Shared with the directed substrate.
func RemoveFromList(list *[]uint32, x uint32) bool {
	l := *list
	for i, w := range l {
		if w == x {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// MustAddEdge inserts (u,v), growing the vertex set as needed, and panics on
// a self-loop. It is a convenience for generators and tests.
func (g *Graph) MustAddEdge(u, v uint32) bool {
	g.EnsureVertex(u)
	g.EnsureVertex(v)
	ok, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return ok
}

// Fork returns a copy-on-write copy of the graph: the per-vertex adjacency
// headers are copied (O(|V|)) but every neighbour list's backing array stays
// shared with g until the fork first mutates it, at which point only that
// one list is copied. Mutating the fork therefore never writes to memory
// reachable from g, which is what lets an immutable published snapshot keep
// answering queries while its fork absorbs a batch of updates.
//
// The fork assumes g itself is frozen from the moment of the fork: callers
// must not mutate g afterwards (snapshot discipline — only the newest fork
// is ever written).
func (g *Graph) Fork() *Graph {
	return &Graph{
		adj:    append([][]uint32(nil), g.adj...),
		edges:  g.edges,
		shared: bitset.NewAllSet(len(g.adj)),
	}
}

// own makes adj[v] writable on a fork, copying the shared backing array on
// first touch. A no-op on plain graphs and already-owned lists.
func (g *Graph) own(v uint32) {
	if g.shared == nil || !g.shared.Get(v) {
		return
	}
	g.adj[v] = append(make([]uint32, 0, len(g.adj[v])+1), g.adj[v]...)
	g.shared.Clear(v)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]uint32, len(g.adj)), edges: g.edges}
	for v, ns := range g.adj {
		if len(ns) == 0 {
			continue
		}
		c.adj[v] = append([]uint32(nil), ns...)
	}
	return c
}

// Edges calls fn for every undirected edge exactly once, with u < v.
func (g *Graph) Edges(fn func(u, v uint32)) {
	for u, ns := range g.adj {
		for _, v := range ns {
			if uint32(u) < v {
				fn(uint32(u), v)
			}
		}
	}
}

// MaxDegreeVertex returns the vertex with the largest degree, breaking ties
// by smaller id. It returns 0 for an empty graph.
func (g *Graph) MaxDegreeVertex() uint32 {
	best, bestDeg := uint32(0), -1
	for v, ns := range g.adj {
		if len(ns) > bestDeg {
			best, bestDeg = uint32(v), len(ns)
		}
	}
	return best
}
