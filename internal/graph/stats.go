package graph

import (
	"math/rand"

	"repro/internal/queue"
)

// AvgDegree returns the average vertex degree (2|E|/|V|).
func AvgDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// AvgDistance estimates the average shortest-path distance over connected
// pairs by running BFS from up to samples random sources (deterministic for
// a given seed). It mirrors the "avg. dist" column of Table 2 in the paper.
func AvgDistance(g *Graph, samples int, seed int64) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	dist := make([]Dist, n)
	var q queue.Uint32
	var sum float64
	var count uint64
	for s := 0; s < samples; s++ {
		src := uint32(rng.Intn(n))
		for i := range dist {
			dist[i] = Inf
		}
		dist[src] = 0
		q.Reset()
		q.Push(src)
		for !q.Empty() {
			v := q.Pop()
			dv := dist[v]
			for _, w := range g.Neighbors(v) {
				if dist[w] == Inf {
					dist[w] = dv + 1
					q.Push(w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if uint32(v) != src && dist[v] != Inf {
				sum += float64(dist[v])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// ConnectedComponents returns the component id of every vertex and the
// number of components.
func ConnectedComponents(g *Graph) (comp []int, n int) {
	comp = make([]int, g.NumVertices())
	for i := range comp {
		comp[i] = -1
	}
	var q queue.Uint32
	for s := range comp {
		if comp[s] != -1 {
			continue
		}
		comp[s] = n
		q.Reset()
		q.Push(uint32(s))
		for !q.Empty() {
			v := q.Pop()
			for _, w := range g.Neighbors(v) {
				if comp[w] == -1 {
					comp[w] = n
					q.Push(w)
				}
			}
		}
		n++
	}
	return comp, n
}

// LargestComponentSize returns the vertex count of the largest connected
// component.
func LargestComponentSize(g *Graph) int {
	comp, n := ConnectedComponents(g)
	if n == 0 {
		return 0
	}
	sizes := make([]int, n)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}
