package whcl

import (
	"testing"

	"repro/internal/hcl"
	"repro/internal/wgraph"
)

// TestForkUpdateIsolation runs full weighted IncHL+/DecHL repairs on a fork
// and pins that the parent's labels, highway and graph stay untouched while
// the fork remains exact.
func TestForkUpdateIsolation(t *testing.T) {
	g := wgraph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for i := uint32(0); i < 7; i++ {
		g.MustAddEdge(i, i+1, 2)
	}
	g.MustAddEdge(0, 4, 5)
	idx, err := Build(g, []uint32{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]hcl.Label, len(idx.L))
	for v, l := range idx.L {
		labels[v] = append(hcl.Label(nil), l...)
	}
	hw := append([]uint32(nil), idx.hw...)
	edges := g.NumEdges()

	f := idx.Fork(idx.G.Fork())
	if _, err := f.InsertEdge(1, 6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InsertVertex([]wgraph.Arc{{To: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}

	for v := range labels {
		if !idx.L[v].Equal(labels[v]) {
			t.Fatalf("parent label of %d changed: %v != %v", v, idx.L[v], labels[v])
		}
	}
	for i := range hw {
		if idx.hw[i] != hw[i] {
			t.Fatalf("parent highway cell %d changed", i)
		}
	}
	if idx.G.NumEdges() != edges || idx.G.NumVertices() != 8 {
		t.Fatalf("parent graph changed: %d edges, %d vertices", idx.G.NumEdges(), idx.G.NumVertices())
	}
	if err := idx.VerifyCover(); err != nil {
		t.Fatalf("parent no longer verifies: %v", err)
	}
	if err := f.VerifyCover(); err != nil {
		t.Fatalf("fork does not verify: %v", err)
	}
}
