package whcl

import (
	"bytes"
	"testing"
)

// TestCodecRoundTrip pins that WriteTo → ReadIndex reproduces the weighted
// labelling exactly, that the loaded index arrives packed, and that a
// second save is byte-identical to the first.
func TestCodecRoundTrip(t *testing.T) {
	g := randomWeighted(120, 400, 7, 51)
	idx, err := Build(g, topLandmarks(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.EqualLabels(idx); err != nil {
		t.Fatal(err)
	}
	if loaded.PackedLabels() == nil {
		t.Fatal("loaded index must arrive packed")
	}
	for u := uint32(0); u < 120; u += 7 {
		for v := uint32(0); v < 120; v += 11 {
			if got, want := loaded.Query(u, v), idx.Query(u, v); got != want {
				t.Fatalf("loaded Query(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-saving a loaded labelling must be byte-identical")
	}
	if err := loaded.VerifyCover(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecRejectsCorruption pins the untrusted-stream validation.
func TestCodecRejectsCorruption(t *testing.T) {
	g := randomWeighted(40, 120, 5, 53)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	bad := append([]byte(nil), blob...)
	copy(bad, "XXXX")
	if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(blob[:len(blob)/2]), g); err == nil {
		t.Error("truncated stream accepted")
	}
	other := randomWeighted(41, 120, 5, 54)
	if _, err := ReadIndex(bytes.NewReader(blob), other); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
}
