package whcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/wgraph"
)

// Binary index format:
//
//	magic "WHL1" | u32 |V| | u32 |R| | landmarks u32×|R| |
//	highway u32×|R|² (symmetric weighted distances) | label block
//
// The label block is the shared CSR layout of hcl.WriteLabelBlock, so a
// load is one bulk arena read and the loaded index is already packed. All
// integers little-endian; the graph is serialised separately.
const codecMagic = "WHL1"

// WriteTo serialises the weighted labelling (landmarks, highway, labels)
// to w. Below hcl.V2SaveThreshold entries it writes the WHL1 layout; at or
// above it the mappable WHL2 layout, whose u64 offsets are the only
// representation past the u32 ceiling.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var total uint64
	for _, l := range idx.L {
		total += uint64(len(l))
	}
	if total >= hcl.V2SaveThreshold {
		n, _, err := idx.WriteToMappable(w, 0)
		return n, err
	}
	cw := &hcl.CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return cw.N, err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(len(idx.L))); err != nil {
		return cw.N, err
	}
	if err := writeU32(uint32(idx.k)); err != nil {
		return cw.N, err
	}
	for _, v := range idx.Landmarks {
		if err := writeU32(v); err != nil {
			return cw.N, err
		}
	}
	for _, d := range idx.hw {
		if err := writeU32(uint32(d)); err != nil {
			return cw.N, err
		}
	}
	if err := hcl.WriteLabelBlock(bw, idx.L); err != nil {
		return cw.N, err
	}
	if err := bw.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, nil
}

// ReadIndex deserialises a labelling written by WriteTo and attaches it to
// g, which must be the graph the index was built over (vertex count is
// checked; callers needing a stronger guarantee can run VerifyCover). The
// loaded index is already packed: the label block is the arena.
func ReadIndex(r io.Reader, g *wgraph.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("whcl: reading index header: %w", err)
	}
	v2 := false
	switch string(magic) {
	case codecMagic:
	case codecMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("whcl: bad index magic %q", magic)
	}
	var nv, nr uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, fmt.Errorf("whcl: reading vertex count: %w", err)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("whcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if err := binary.Read(br, binary.LittleEndian, &nr); err != nil {
		return nil, fmt.Errorf("whcl: reading landmark count: %w", err)
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("whcl: implausible landmark count %d", nr)
	}
	landmarks := make([]uint32, nr)
	if err := binary.Read(br, binary.LittleEndian, landmarks); err != nil {
		return nil, fmt.Errorf("whcl: reading landmarks: %w", err)
	}
	for _, v := range landmarks {
		if v >= nv {
			return nil, fmt.Errorf("whcl: landmark %d out of range", v)
		}
	}
	k := int(nr)
	idx := &Index{
		G:         g,
		Landmarks: landmarks,
		L:         make([]hcl.Label, nv),
		hw:        make([]graph.Dist, k*k),
		k:         k,
		rankArr:   make([]uint16, nv),
	}
	if err := binary.Read(br, binary.LittleEndian, idx.hw); err != nil {
		return nil, fmt.Errorf("whcl: reading highway: %w", err)
	}
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankArr[v] = uint16(r)
	}
	if v2 {
		arena, off, err := hcl.ReadLabelBlockV2(br, nv, nr)
		if err != nil {
			return nil, fmt.Errorf("whcl: %w", err)
		}
		idx.packed = hcl.AttachArena64(idx.L, arena, off)
		return idx, nil
	}
	arena, off, err := hcl.ReadLabelBlock(br, nv, nr)
	if err != nil {
		return nil, fmt.Errorf("whcl: %w", err)
	}
	idx.packed = hcl.AttachArena(idx.L, arena, off)
	return idx, nil
}
