package whcl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/arena"
	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/wgraph"
)

// The v2 weighted layout ("WHL2"): the same header as WHL1 followed by one
// v2 label block (see the HCL3 description in internal/hcl) with a
// page-aligned entry area, so ReadIndexMapped can serve it straight out of
// an mmap'd file.
const codecMagicV2 = "WHL2"

// WriteToMappable serialises the weighted labelling in the WHL2 layout,
// assuming the stream starts at absolute offset base of the destination
// file. The returned span names the raw entry area.
func (idx *Index) WriteToMappable(w io.Writer, base int64) (int64, []hcl.Span, error) {
	cw := &hcl.CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(codecMagicV2); err != nil {
		return cw.N, nil, err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(len(idx.L))); err != nil {
		return cw.N, nil, err
	}
	if err := writeU32(uint32(idx.k)); err != nil {
		return cw.N, nil, err
	}
	for _, v := range idx.Landmarks {
		if err := writeU32(v); err != nil {
			return cw.N, nil, err
		}
	}
	for _, d := range idx.hw {
		if err := writeU32(uint32(d)); err != nil {
			return cw.N, nil, err
		}
	}
	k := int64(idx.k)
	blockBase := base + int64(len(codecMagicV2)) + 4 + 4 + 4*k + 4*k*k
	span, _, err := hcl.WriteLabelBlockV2(bw, idx.L, blockBase, hcl.PageAlign())
	if err != nil {
		return cw.N, nil, err
	}
	if err := bw.Flush(); err != nil {
		return cw.N, nil, err
	}
	return cw.N, []hcl.Span{span}, nil
}

// ReadIndexMapped attaches the WHL2 index stream at offset streamOff of
// the mapping m to g, serving the entry arena straight out of the mapped
// bytes. Returns hcl.ErrNotMappable for other format versions or an
// unmappable layout — callers fall back to ReadIndex.
func ReadIndexMapped(m *arena.Mapping, streamOff int64, g *wgraph.Graph) (*Index, error) {
	data := m.Data()
	if streamOff < 0 || streamOff > int64(len(data)) {
		return nil, fmt.Errorf("whcl: stream offset %d out of range", streamOff)
	}
	data = data[streamOff:]
	hdr := int64(len(codecMagicV2) + 4 + 4)
	if int64(len(data)) < hdr {
		return nil, fmt.Errorf("whcl: mapped index header truncated")
	}
	if string(data[:len(codecMagicV2)]) != codecMagicV2 {
		return nil, hcl.ErrNotMappable
	}
	le := binary.LittleEndian
	nv := le.Uint32(data[4:])
	nr := le.Uint32(data[8:])
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("whcl: index has %d vertices, graph has %d", nv, g.NumVertices())
	}
	if nr == 0 || nr > 1<<16 {
		return nil, fmt.Errorf("whcl: implausible landmark count %d", nr)
	}
	need := hdr + 4*int64(nr) + 4*int64(nr)*int64(nr)
	if int64(len(data)) < need {
		return nil, fmt.Errorf("whcl: mapped index header truncated")
	}
	landmarks := make([]uint32, nr)
	for i := range landmarks {
		landmarks[i] = le.Uint32(data[hdr+4*int64(i):])
		if landmarks[i] >= nv {
			return nil, fmt.Errorf("whcl: landmark %d out of range", landmarks[i])
		}
	}
	k := int(nr)
	idx := &Index{
		G:         g,
		Landmarks: landmarks,
		L:         make([]hcl.Label, nv),
		hw:        make([]graph.Dist, k*k),
		k:         k,
		rankArr:   make([]uint16, nv),
	}
	hwy := hdr + 4*int64(nr)
	for i := range idx.hw {
		idx.hw[i] = graph.Dist(le.Uint32(data[hwy+4*int64(i):]))
	}
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankArr[v] = uint16(r)
	}
	entries, off, _, err := hcl.MapLabelBlock(data[need:], nv, nr)
	if err != nil {
		return nil, fmt.Errorf("whcl: label block: %w", err)
	}
	idx.packed = hcl.AttachMapped(idx.L, entries, off, m)
	idx.mapRef = m
	return idx, nil
}
