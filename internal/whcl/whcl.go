// Package whcl implements the weighted extension of highway cover
// labelling and IncHL+ sketched in Section 5 of Farhan & Wang (EDBT 2021):
// Dijkstra searches replace BFS throughout. The label semantics, the
// covered/uncovered classification of Lemma 4.6 and the minimality argument
// carry over unchanged because edge weights are positive integers: a
// shortest-path parent always has a strictly smaller distance, so
// processing vertices in distance order is well-founded.
package whcl

import (
	"fmt"
	"time"

	"repro/internal/arena"
	"repro/internal/bitset"
	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/hcl"
	"repro/internal/wgraph"
)

// noRank marks non-landmark vertices.
const noRank = ^uint16(0)

// Index is a weighted highway cover labelling.
// Queries are safe for any number of concurrent readers (each in-flight
// query draws its own Dijkstra scratch from a pool); mutations require
// exclusive access.
type Index struct {
	G         *wgraph.Graph
	Landmarks []uint32
	L         []hcl.Label

	hw      []graph.Dist // k×k symmetric highway of exact weighted distances
	k       int
	rankArr []uint16

	// shared is non-nil only on forks: a set bit means L[v]'s backing array
	// still belongs to the parent and is copied before the first write.
	shared *bitset.Set

	// packed is the CSR read representation of L, non-nil only while the
	// index is publishable (built by Pack, dropped by the first label
	// write); queries prefer it. parent remembers the forked-from index
	// until the fork's own Pack runs, which reads the parent's packed form
	// then — not at fork time — so a fork taken while its parent is still
	// packing keeps the delta repack. Pack clears it so ancestor chains
	// are not pinned.
	packed *hcl.Packed
	parent *Index

	// mapRef pins the mmap'd checkpoint this index was attached to by
	// ReadIndexMapped, if any; forks inherit it because their label slices
	// may alias the mapped bytes indefinitely (see hcl.Index.mapRef).
	mapRef *arena.Mapping

	scratch wgraph.SpacePool

	// Workers bounds the per-landmark fan-out of InsertEdge/DeleteEdge
	// repairs: 0 (the default) resolves to GOMAXPROCS, 1 forces the serial
	// path, any other value is used as given. Every worker count produces a
	// byte-identical labelling and identical Stats (see parallel.go).
	Workers int

	// RepairTimer, when non-nil, observes the wall time of every
	// per-landmark repair task. It is called from worker goroutines and must
	// be safe for concurrent use.
	RepairTimer func(time.Duration)

	// del is worker 0's rebuild scratch, reused across updates (mutations
	// hold exclusive access); extra workers draw pooled scratches.
	del    passScratch
	finds  []findResult
	deltas []repairDelta
}

// Build constructs the minimal weighted labelling with one covered-flag
// Dijkstra per landmark.
func Build(g *wgraph.Graph, landmarks []uint32) (*Index, error) {
	return BuildParallel(g, landmarks, 1)
}

// BuildParallel constructs the same labelling as Build, fanning the
// per-landmark construction Dijkstras across workers (0 = GOMAXPROCS,
// 1 = serial). The result is byte-identical for every worker count: tasks
// only buffer deltas against the empty labelling and a single-threaded
// merge applies them in rank order.
func BuildParallel(g *wgraph.Graph, landmarks []uint32, workers int) (*Index, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("whcl: need at least one landmark")
	}
	seen := make(map[uint32]bool, len(landmarks))
	for _, v := range landmarks {
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("whcl: landmark %d is not a vertex of the graph", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("whcl: duplicate landmark %d", v)
		}
		seen[v] = true
	}
	n := g.NumVertices()
	k := len(landmarks)
	idx := &Index{
		G:         g,
		Landmarks: append([]uint32(nil), landmarks...),
		L:         make([]hcl.Label, n),
		hw:        make([]graph.Dist, k*k),
		k:         k,
		rankArr:   make([]uint16, n),
	}
	for i := range idx.hw {
		idx.hw[i] = graph.Inf
	}
	for i := 0; i < k; i++ {
		idx.hw[i*k+i] = 0
	}
	for i := range idx.rankArr {
		idx.rankArr[i] = noRank
	}
	for r, v := range idx.Landmarks {
		idx.rankArr[v] = uint16(r)
	}
	var st Stats
	// rebuildLandmarks on an empty labelling is exactly the construction
	// pass; it is shared with the decremental repair path.
	ranks := make([]uint16, k)
	for r := range ranks {
		ranks[r] = uint16(r)
	}
	idx.rebuildLandmarks(fanout.Resolve(workers), ranks, &st)
	return idx, nil
}

// rebuildLandmarks fans the covered-flag Dijkstra of the given landmark
// ranks across workers — construction on an empty labelling, decremental
// repair after a deletion — and merges their buffered deltas in task order.
func (idx *Index) rebuildLandmarks(workers int, ranks []uint16, st *Stats) {
	idx.sizeDeltas(len(ranks))
	idx.fan(workers, len(ranks), func(ws *passScratch, t int) {
		d := &idx.deltas[t]
		d.reset()
		idx.rebuildLandmarkDelta(ranks[t], ws, d)
	})
	for t, r := range ranks {
		idx.applyRebuild(r, &idx.deltas[t], st)
	}
}

// Highway returns the exact weighted distance between landmark ranks.
func (idx *Index) Highway(i, j uint16) graph.Dist { return idx.hw[int(i)*idx.k+int(j)] }

func (idx *Index) setHighway(i, j uint16, d graph.Dist) {
	idx.hw[int(i)*idx.k+int(j)] = d
	idx.hw[int(j)*idx.k+int(i)] = d
}

// Rank returns the landmark rank of v, if any.
func (idx *Index) Rank(v uint32) (uint16, bool) {
	r := idx.rankArr[v]
	return r, r != noRank
}

// label returns the entry span of vertex v from the packed arena when the
// index is packed, else from the mutable label table. The query path reads
// labels only through this helper, so both representations answer
// identically.
func (idx *Index) label(v uint32) []hcl.Entry {
	if p := idx.packed; p != nil {
		return p.Label(v)
	}
	return idx.L[v]
}

// LandmarkDist returns the exact weighted distance from landmark rank r to
// any vertex v (Equation 1 with Dijkstra distances).
func (idx *Index) LandmarkDist(r uint16, v uint32) graph.Dist {
	if s := idx.rankArr[v]; s != noRank {
		return idx.Highway(r, s)
	}
	return hcl.LandmarkVia(idx.hw[int(r)*idx.k:int(r)*idx.k+idx.k], idx.label(v))
}

// UpperBound returns the best u–v distance through the highway network.
func (idx *Index) UpperBound(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	ru, uIsL := idx.Rank(u)
	rv, vIsL := idx.Rank(v)
	switch {
	case uIsL && vIsL:
		return idx.Highway(ru, rv)
	case uIsL:
		return idx.LandmarkDist(ru, v)
	case vIsL:
		return idx.LandmarkDist(rv, u)
	}
	return hcl.UpperBoundMat(idx.hw, idx.k, idx.label(u), idx.label(v))
}

// Query answers an exact weighted distance query: the highway upper bound
// refined by a bounded bidirectional Dijkstra on the sparsified graph.
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	top := idx.UpperBound(u, v)
	if _, isL := idx.Rank(u); isL {
		return top
	}
	if _, isL := idx.Rank(v); isL {
		return top
	}
	avoid := func(x uint32) bool { return idx.rankArr[x] != noRank }
	s := idx.scratch.Get(idx.G.NumVertices())
	sp := idx.G.Sparsified(u, v, top, avoid, s)
	idx.scratch.Put(s)
	if sp < top {
		return sp
	}
	return top
}

// NumEntries returns size(L).
func (idx *Index) NumEntries() int64 {
	var n int64
	for _, l := range idx.L {
		n += int64(len(l))
	}
	return n
}

// Bytes returns the storage charged for the labelling and the highway.
func (idx *Index) Bytes() int64 {
	_, bytes := idx.Sizes()
	return bytes
}

// Sizes returns NumEntries and Bytes with a single label scan.
func (idx *Index) Sizes() (entries, bytes int64) {
	entries = idx.NumEntries()
	return entries, entries*hcl.EntryBytes + int64(len(idx.hw))*4
}

// EnsureVertex grows the label table to cover v.
func (idx *Index) EnsureVertex(v uint32) {
	if uint32(len(idx.L)) <= v {
		idx.packed = nil // the packed form no longer covers every vertex
	}
	for uint32(len(idx.L)) <= v {
		idx.L = append(idx.L, nil)
		idx.rankArr = append(idx.rankArr, noRank)
	}
	if idx.shared != nil {
		idx.shared.Grow(len(idx.L)) // new bits are clear: the fork owns new labels
	}
}

// Fork returns a copy-on-write copy of the index bound to g, which must be
// a fork of idx.G taken at the same moment. The label-table header, rank
// array and small highway matrix are copied (O(|V| + k²)), but every
// per-vertex label's backing array stays shared with idx until the fork
// first writes to it. Snapshot discipline: idx is frozen once forked.
func (idx *Index) Fork(g *wgraph.Graph) *Index {
	return &Index{
		G:           g,
		Landmarks:   idx.Landmarks, // immutable after construction
		L:           append([]hcl.Label(nil), idx.L...),
		hw:          append([]graph.Dist(nil), idx.hw...),
		k:           idx.k,
		rankArr:     append([]uint16(nil), idx.rankArr...),
		shared:      bitset.NewAllSet(len(idx.L)),
		mapRef:      idx.mapRef, // label slices may still alias the mapping
		Workers:     idx.Workers,
		RepairTimer: idx.RepairTimer,
		// The fork mutates, so it starts unpacked; remembering the parent
		// lets its Pack reuse whatever chunks the parent's arena holds by
		// the time the fork itself is frozen.
		parent: idx,
	}
}

// Pack builds the packed read representation of the current labelling (see
// hcl.Packed). On an index forked from a packed parent it is delta-aware:
// chunks whose labels the fork never touched are reused from the parent's
// arena by reference. Idempotent; any subsequent label write drops the
// packed form again.
func (idx *Index) Pack() {
	if idx.packed != nil {
		return
	}
	var parentPacked *hcl.Packed
	if idx.parent != nil {
		parentPacked = idx.parent.packed
	}
	idx.packed = hcl.PackParallel(idx.L, parentPacked, idx.shared, idx.Workers)
	idx.parent = nil
}

// PackedLabels returns the packed read form, or nil when the index has
// unpublished label writes (or was never packed).
func (idx *Index) PackedLabels() *hcl.Packed { return idx.packed }

// MappedBytes returns the size of the mmap'd checkpoint region this index
// still holds alive, or 0 for a fully heap-resident index.
func (idx *Index) MappedBytes() int64 {
	if idx.mapRef != nil {
		return idx.mapRef.Len()
	}
	if idx.packed != nil {
		return idx.packed.MappedBytes()
	}
	return 0
}

// ownLabel makes L[v] writable on a fork, copying the shared backing array
// on first touch. Every label write goes through here, so it also drops the
// packed read form — the slice form is the write representation.
func (idx *Index) ownLabel(v uint32) {
	idx.packed = nil
	if idx.shared == nil || !idx.shared.Get(v) {
		return
	}
	idx.L[v] = append(make(hcl.Label, 0, len(idx.L[v])+1), idx.L[v]...)
	idx.shared.Clear(v)
}

// VerifyCover checks Equation 1 against ground-truth Dijkstra distances.
func (idx *Index) VerifyCover() error {
	n := idx.G.NumVertices()
	dist := make([]graph.Dist, n)
	for r := range idx.Landmarks {
		idx.G.Dijkstra(idx.Landmarks[r], dist)
		for v := 0; v < n; v++ {
			if got := idx.LandmarkDist(uint16(r), uint32(v)); got != dist[v] {
				return fmt.Errorf("whcl: cover violated: landmark %d to %d: label %d, Dijkstra %d",
					idx.Landmarks[r], v, got, dist[v])
			}
		}
	}
	return nil
}

// EqualLabels reports whether two indexes are identical (labels + highway).
func (idx *Index) EqualLabels(o *Index) error {
	if len(idx.L) != len(o.L) {
		return fmt.Errorf("whcl: label table size differs: %d vs %d", len(idx.L), len(o.L))
	}
	for v := range idx.L {
		if !idx.L[v].Equal(o.L[v]) {
			return fmt.Errorf("whcl: label of %d differs: %v vs %v", v, idx.L[v], o.L[v])
		}
	}
	if idx.k != o.k {
		return fmt.Errorf("whcl: landmark counts differ")
	}
	for i := range idx.hw {
		if idx.hw[i] != o.hw[i] {
			return fmt.Errorf("whcl: highway cell %d differs: %d vs %d", i, idx.hw[i], o.hw[i])
		}
	}
	return nil
}
