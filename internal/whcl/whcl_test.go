package whcl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/wgraph"
)

// randomWeighted returns a weighted graph with ~m random edges of weight
// 1..maxW.
func randomWeighted(n, m int, maxW graph.Dist, seed int64) *wgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := wgraph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v, 1+graph.Dist(rng.Intn(int(maxW))))
		}
	}
	return g
}

func topLandmarks(g *wgraph.Graph, k int) []uint32 {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := len(g.Neighbors(ids[i])), len(g.Neighbors(ids[j]))
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return append([]uint32(nil), ids[:k]...)
}

func nonEdges(g *wgraph.Graph, count int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	seen := map[[2]uint32]bool{}
	var out [][2]uint32
	for tries := 0; len(out) < count && tries < 500*count; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		key := [2]uint32{min(u, v), max(u, v)}
		if u == v || g.HasEdge(u, v) || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

func TestWgraphBasics(t *testing.T) {
	g := wgraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	if ok, err := g.AddEdge(0, 1, 5); !ok || err != nil {
		t.Fatalf("AddEdge: %v %v", ok, err)
	}
	if g.Weight(0, 1) != 5 || g.Weight(1, 0) != 5 {
		t.Error("weights must be symmetric")
	}
	if _, err := g.AddEdge(0, 2, 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if _, err := g.AddEdge(0, 2, graph.Inf); err == nil {
		t.Error("Inf weight must be rejected")
	}
	if _, err := g.AddEdge(1, 1, 2); err == nil {
		t.Error("self-loop must be rejected")
	}
	if ok, _ := g.AddEdge(0, 1, 9); ok {
		t.Error("duplicate must report false")
	}
	c := g.Clone()
	c.MustAddEdge(1, 2, 3)
	if g.HasEdge(1, 2) {
		t.Error("clone leaked")
	}
}

func TestDijkstraWeightedPath(t *testing.T) {
	// 0 -5- 1 -1- 2 and direct 0 -7- 2: shortest 0→2 is 6 via vertex 1.
	g := wgraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 7)
	if got := g.Dist(0, 2); got != 6 {
		t.Errorf("Dist(0,2): got %d, want 6", got)
	}
	dist := make([]graph.Dist, 3)
	order := g.Dijkstra(0, dist)
	if len(order) != 3 || order[0] != 0 {
		t.Errorf("settle order: %v", order)
	}
	for i := 1; i < len(order); i++ {
		if dist[order[i-1]] > dist[order[i]] {
			t.Error("settle order must be non-decreasing")
		}
	}
}

func TestSparsifiedWeightedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		g := randomWeighted(25, 45, 6, rng.Int63())
		av := uint32(rng.Intn(25))
		u := uint32(rng.Intn(25))
		v := uint32(rng.Intn(25))
		avoid := func(x uint32) bool { return x == av }
		pruned := wgraph.New(25)
		for i := 0; i < 25; i++ {
			pruned.AddVertex()
		}
		for x := uint32(0); x < 25; x++ {
			for _, a := range g.Neighbors(x) {
				if x >= a.To {
					continue
				}
				xBad := avoid(x) && x != u && x != v
				yBad := avoid(a.To) && a.To != u && a.To != v
				if !xBad && !yBad {
					pruned.MustAddEdge(x, a.To, a.W)
				}
			}
		}
		want := pruned.Dist(u, v)
		qs := &wgraph.QuerySpace{DistU: make([]graph.Dist, 25), DistV: make([]graph.Dist, 25)}
		for i := range qs.DistU {
			qs.DistU[i] = graph.Inf
			qs.DistV[i] = graph.Inf
		}
		if got := g.Sparsified(u, v, graph.Inf, avoid, qs); got != want {
			t.Fatalf("iter %d: Sparsified(%d,%d) avoiding %d: got %d, want %d", iter, u, v, av, got, want)
		}
	}
}

func TestBuildQueryMatchesDijkstraOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomWeighted(40, 90, 8, seed)
		idx, err := Build(g, topLandmarks(g, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dist := make([]graph.Dist, 40)
		for u := uint32(0); u < 40; u++ {
			g.Dijkstra(u, dist)
			for v := uint32(0); v < 40; v++ {
				if got := idx.Query(u, v); got != dist[v] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, u, v, got, dist[v])
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := randomWeighted(5, 8, 3, 1)
	if _, err := Build(g, nil); err == nil {
		t.Error("no landmarks must fail")
	}
	if _, err := Build(g, []uint32{2, 2}); err == nil {
		t.Error("duplicate landmarks must fail")
	}
	if _, err := Build(g, []uint32{50}); err == nil {
		t.Error("unknown landmark must fail")
	}
}

func TestInsertEdgeMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomWeighted(35, 70, 6, 40+seed)
		lm := topLandmarks(g, 3+int(seed%3))
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 3))
		for i, e := range nonEdges(g, 20, seed+9) {
			w := 1 + graph.Dist(rng.Intn(6))
			if _, err := idx.InsertEdge(e[0], e[1], w); err != nil {
				t.Fatalf("seed %d insert %d: %v", seed, i, err)
			}
			fresh, err := Build(g, lm)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.EqualLabels(fresh); err != nil {
				t.Fatalf("seed %d after insert %d (%d,%d,w=%d): %v", seed, i, e[0], e[1], w, err)
			}
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestInsertEdgeQueriesStayExact(t *testing.T) {
	g := randomWeighted(30, 55, 5, 17)
	idx, err := Build(g, topLandmarks(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, e := range nonEdges(g, 25, 6) {
		if _, err := idx.InsertEdge(e[0], e[1], 1+graph.Dist(rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	dist := make([]graph.Dist, 30)
	for u := uint32(0); u < 30; u++ {
		g.Dijkstra(u, dist)
		for v := uint32(0); v < 30; v++ {
			if got := idx.Query(u, v); got != dist[v] {
				t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, dist[v])
			}
		}
	}
}

func TestInsertHeavyEdgeIsNoOp(t *testing.T) {
	// A very heavy edge shortens nothing: the labelling must be unchanged
	// except for the graph itself, and most landmarks skipped.
	g := randomWeighted(25, 60, 2, 3)
	lm := topLandmarks(g, 4)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	before := idx.NumEntries()
	e := nonEdges(g, 1, 8)[0]
	st, err := idx.InsertEdge(e[0], e[1], 4000)
	if err != nil {
		t.Fatal(err)
	}
	if st.LandmarksSkipped != 4 {
		t.Errorf("heavy edge should skip all landmarks: %+v", st)
	}
	if idx.NumEntries() != before {
		t.Error("heavy edge must not change the labelling size")
	}
	fresh, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
}

func TestInsertVertexWeighted(t *testing.T) {
	g := randomWeighted(20, 40, 4, 5)
	lm := topLandmarks(g, 3)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := idx.InsertVertex([]wgraph.Arc{{To: 0, W: 2}, {To: 9, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
	if got, want := idx.Query(v, 9), g.Dist(v, 9); got != want {
		t.Errorf("Query(new,9): got %d, want %d", got, want)
	}
	if _, _, err := idx.InsertVertex([]wgraph.Arc{{To: 99, W: 1}}); err == nil {
		t.Error("unknown neighbour must be rejected")
	}
}

func TestInsertEdgeErrors(t *testing.T) {
	g := randomWeighted(8, 10, 3, 2)
	idx, err := Build(g, topLandmarks(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertEdge(0, 0, 1); err == nil {
		t.Error("self-loop must be rejected")
	}
	if _, err := idx.InsertEdge(0, 99, 1); err == nil {
		t.Error("unknown vertex must be rejected")
	}
	e := nonEdges(g, 1, 4)[0]
	if _, err := idx.InsertEdge(e[0], e[1], 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if _, err := idx.InsertEdge(e[0], e[1], 2); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertEdge(e[0], e[1], 2); err == nil {
		t.Error("duplicate must be rejected")
	}
}

func TestQuickInsertStreamMinimality(t *testing.T) {
	f := func(seed int64, kRaw, wRaw uint8) bool {
		g := randomWeighted(22, 45, 1+graph.Dist(wRaw%7), seed)
		lm := topLandmarks(g, 1+int(kRaw)%4)
		idx, err := Build(g, lm)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for _, e := range nonEdges(g, 8, seed+2) {
			if _, err := idx.InsertEdge(e[0], e[1], 1+graph.Dist(rng.Intn(7))); err != nil {
				return false
			}
		}
		fresh, err := Build(g, lm)
		if err != nil {
			return false
		}
		return idx.EqualLabels(fresh) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitWeightsMatchUnweighted(t *testing.T) {
	// With all weights 1, the weighted index must behave like BFS.
	g := randomWeighted(30, 60, 1, 13)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]graph.Dist, 30)
	for u := uint32(0); u < 30; u += 3 {
		g.Dijkstra(u, dist)
		for v := uint32(0); v < 30; v++ {
			if got := idx.Query(u, v); got != dist[v] {
				t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, dist[v])
			}
		}
	}
}
