package whcl

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wgraph"
)

// buildAt rebuilds the same weighted fixture from scratch (graphs are
// mutated by updates, so every worker-count run gets its own copy) and
// pins the index to the given repair fan-out.
func buildAt(t *testing.T, n, m int, maxW graph.Dist, seed int64, k, workers int) (*wgraph.Graph, *Index) {
	t.Helper()
	g := randomWeighted(n, m, maxW, seed)
	idx, err := BuildParallel(g, topLandmarks(g, k), workers)
	if err != nil {
		t.Fatal(err)
	}
	idx.Workers = workers
	return g, idx
}

// runMixedW drives the same weighted insert/delete stream through idx;
// every third inserted edge is deleted again so both repair paths
// (classify on insert, per-landmark rebuild on delete) execute.
func runMixedW(t *testing.T, idx *Index, edges [][2]uint32) []Stats {
	t.Helper()
	var log []Stats
	for i, e := range edges {
		w := graph.Dist(1 + (int(e[0])+int(e[1])+i)%7)
		st, err := idx.InsertEdge(e[0], e[1], w)
		if err != nil {
			t.Fatalf("insert %d (%d,%d,w=%d): %v", i, e[0], e[1], w, err)
		}
		log = append(log, st)
		if i%3 == 2 {
			st, err := idx.DeleteEdge(e[0], e[1])
			if err != nil {
				t.Fatalf("delete %d (%d,%d): %v", i, e[0], e[1], err)
			}
			log = append(log, st)
		}
	}
	return log
}

// TestBuildParallelMatchesSerial pins that the parallel weighted
// construction is byte-identical to the serial one for any worker count.
func TestBuildParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomWeighted(70, 240, 8, seed)
		serial, err := Build(g, topLandmarks(g, 5))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 0} {
			g2 := randomWeighted(70, 240, 8, seed)
			par, err := BuildParallel(g2, topLandmarks(g2, 5), w)
			if err != nil {
				t.Fatal(err)
			}
			if err := serial.EqualLabels(par); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestParallelRepairMatchesSerial pins the weighted repair engine's
// contract: per-op Stats and the final labelling (labels + highway) are
// identical to the serial path for any worker count.
func TestParallelRepairMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		gs, serial := buildAt(t, 60, 200, 8, seed, 4, 1)
		edges := nonEdges(gs, 15, seed*29+5)
		want := runMixedW(t, serial, edges)

		for _, w := range []int{2, 0} {
			_, par := buildAt(t, 60, 200, 8, seed, 4, w)
			got := runMixedW(t, par, edges)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: op %d stats diverged: got %+v, want %+v",
						seed, w, i, got[i], want[i])
				}
			}
			if err := serial.EqualLabels(par); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := par.VerifyCover(); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestPackParallelMatchesSerial pins that packing with a fan-out yields
// the same packed form as serial packing after a repaired update stream.
func TestPackParallelMatchesSerial(t *testing.T) {
	gs, serial := buildAt(t, 60, 200, 8, 5, 4, 1)
	edges := nonEdges(gs, 9, 42)
	runMixedW(t, serial, edges)
	serial.Pack()

	_, par := buildAt(t, 60, 200, 8, 5, 4, 4)
	runMixedW(t, par, edges)
	par.Pack()

	if s, p := serial.PackedLabels().NumEntries(), par.PackedLabels().NumEntries(); s != p {
		t.Fatalf("packed entries diverged: serial %d, parallel %d", s, p)
	}
	if err := serial.EqualLabels(par); err != nil {
		t.Fatal(err)
	}
}
