package whcl

import (
	"fmt"

	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/wgraph"
)

// Stats reports what one weighted insertion did.
type Stats struct {
	LandmarksTotal   int
	LandmarksSkipped int
	AffectedSum      int
	EntriesAdded     int
	EntriesRemoved   int
	HighwayUpdates   int
}

type findResult struct {
	rank     uint16
	skipped  bool                  // landmark eliminated: the edge shortens nothing
	affected []wgraph.Item         // settle order: non-decreasing new distance
	newDist  map[uint32]graph.Dist // affected vertex -> new distance
	oldDist  map[uint32]graph.Dist // scanned vertex -> old distance
}

// InsertEdge inserts the weighted edge (a,b,w) and repairs the labelling:
// per landmark a jumped Dijkstra from the far endpoint collects vertices
// whose shortest path to the landmark now runs through the new edge, then a
// settle-order pass applies the covered/uncovered classification. The
// per-landmark tasks fan across Workers cores — every find runs against the
// pre-update labelling (no repair has mutated anything yet: tasks only
// buffer deltas) — and the merge applies the deltas in rank order.
func (idx *Index) InsertEdge(a, b uint32, w graph.Dist) (Stats, error) {
	var st Stats
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("whcl: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if g.HasEdge(a, b) {
		return st, fmt.Errorf("whcl: insert (%d,%d): %w", a, b, graph.ErrEdgeExists)
	}
	if _, err := g.AddEdge(a, b, w); err != nil {
		return st, err
	}
	st.LandmarksTotal = idx.k

	idx.sizeFinds(idx.k)
	idx.sizeDeltas(idx.k)
	idx.fan(fanout.Resolve(idx.Workers), idx.k, func(_ *passScratch, t int) {
		r := uint16(t)
		d := &idx.deltas[t]
		d.reset()
		fr, ok := idx.findAffected(r, a, b, w)
		fr.skipped = !ok
		idx.finds[t] = fr
		if ok {
			idx.classifyAffected(&idx.finds[t], d)
		}
	})
	for t := 0; t < idx.k; t++ {
		fr := &idx.finds[t]
		if fr.skipped {
			st.LandmarksSkipped++
			continue
		}
		st.AffectedSum += len(fr.affected)
		idx.applyInsert(uint16(t), &idx.deltas[t], &st)
	}
	return st, nil
}

// InsertVertex adds a new vertex with the given initial weighted edges.
func (idx *Index) InsertVertex(arcs []wgraph.Arc) (uint32, Stats, error) {
	var agg Stats
	for _, a := range arcs {
		if !idx.G.HasVertex(a.To) {
			return 0, agg, fmt.Errorf("whcl: insert vertex: neighbour %d: %w", a.To, graph.ErrVertexUnknown)
		}
	}
	v := idx.G.AddVertex()
	idx.EnsureVertex(v)
	agg.LandmarksTotal = idx.k
	for _, a := range arcs {
		st, err := idx.InsertEdge(v, a.To, a.W)
		if err != nil {
			return v, agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return v, agg, nil
}

// findAffected runs the jumped Dijkstra of one landmark. The new candidate
// distance of the far endpoint is d(r, near) + w; a vertex is affected iff
// its old distance is at least its best new through-edge distance.
func (idx *Index) findAffected(r uint16, a, b uint32, w graph.Dist) (findResult, bool) {
	da := idx.LandmarkDist(r, a)
	db := idx.LandmarkDist(r, b)
	if db < da {
		a, b = b, a
		da, db = db, da
	}
	if da == graph.Inf {
		return findResult{}, false // the edge is unreachable from r
	}
	cand := graph.AddDist(da, w)
	if cand > db {
		return findResult{}, false // Λ_r = ∅: no shortest path can use (a,b)
	}
	fr := findResult{
		rank:    r,
		newDist: make(map[uint32]graph.Dist, 16),
		oldDist: make(map[uint32]graph.Dist, 32),
	}
	fr.oldDist[a] = da
	fr.oldDist[b] = db
	cache := func(v uint32) graph.Dist {
		if d, ok := fr.oldDist[v]; ok {
			return d
		}
		d := idx.LandmarkDist(r, v)
		fr.oldDist[v] = d
		return d
	}
	var pq wgraph.PQ
	fr.newDist[b] = cand
	pq.PushItem(wgraph.Item{V: b, D: cand})
	for pq.Len() > 0 {
		it := pq.PopItem()
		if fr.newDist[it.V] != it.D {
			continue // stale queue entry
		}
		fr.affected = append(fr.affected, it)
		for _, arc := range idx.G.Neighbors(it.V) {
			nd := graph.AddDist(it.D, arc.W)
			if cur, seen := fr.newDist[arc.To]; seen && cur <= nd {
				continue
			}
			if cache(arc.To) >= nd {
				fr.newDist[arc.To] = nd
				pq.PushItem(wgraph.Item{V: arc.To, D: nd})
			}
		}
	}
	return fr, true
}

// classifyAffected walks Λ_r in settle order and applies Lemma 4.6: a vertex
// is covered iff it is a landmark or some shortest-path parent (neighbour u
// with newdist(u) + w(u,v) = newdist(v)) is a landmark other than r or
// covered itself. Edits are buffered into the delta; entry checks read the
// frozen pre-repair labelling and are exact because only rank r ever touches
// r-entries, and insertion highway cells apply unconditionally.
func (idx *Index) classifyAffected(fr *findResult, d *repairDelta) {
	r := fr.rank
	root := idx.Landmarks[r]
	covered := make(map[uint32]bool, len(fr.affected))
	for _, it := range fr.affected {
		v, dd := it.V, it.D
		if s := idx.rankArr[v]; s != noRank {
			d.cell(s, dd)
			d.highway++
			covered[v] = true
			continue
		}
		cov := false
		for _, arc := range idx.G.Neighbors(v) {
			n := arc.To
			nd, affected := fr.newDist[n]
			if !affected {
				var ok bool
				nd, ok = fr.oldDist[n]
				if !ok {
					continue
				}
			}
			if graph.AddDist(nd, arc.W) != dd {
				continue // not a shortest-path parent
			}
			if affected {
				if covered[n] {
					cov = true
					break
				}
				continue
			}
			if idx.rankArr[n] != noRank {
				if n != root {
					cov = true
					break
				}
				continue
			}
			if _, has := idx.L[n].Get(r); !has {
				cov = true
				break
			}
		}
		covered[v] = cov
		if cov {
			if _, has := idx.L[v].Get(r); has {
				d.removeEntry(v)
				d.removed++
			}
		} else {
			d.setEntry(v, dd)
			d.added++
		}
	}
}
