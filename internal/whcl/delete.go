// Decremental repair (DecHL) for the weighted variant: an edge (a,b,w) lies
// on the shortest-path DAG of landmark r iff the pre-delete endpoint
// distances satisfy d(r,a) + w = d(r,b) or the mirror image, so the affected
// test costs two labelled lookups per landmark. Only affected landmarks are
// repaired, by re-running their covered-flag Dijkstra over the updated
// graph; the pass replaces every r-entry and the highway row r, dropping
// entries and resetting highway cells to Inf for vertices the deletion
// disconnected. Unaffected landmarks keep exact distances and an unchanged
// shortest-path DAG, so their entries are already the fresh-build ones.

package whcl

import (
	"fmt"

	"repro/internal/fanout"
	"repro/internal/graph"
	"repro/internal/wgraph"
)

// DeleteEdge removes the undirected weighted edge (a,b) and repairs the
// labelling. Deleting an edge that does not exist is an error
// (graph.ErrEdgeUnknown).
func (idx *Index) DeleteEdge(a, b uint32) (Stats, error) {
	var st Stats
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return st, fmt.Errorf("whcl: delete (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return st, fmt.Errorf("whcl: delete (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	w := g.Weight(a, b)
	if w == 0 {
		return st, fmt.Errorf("whcl: delete (%d,%d): %w", a, b, graph.ErrEdgeUnknown)
	}
	st.LandmarksTotal = idx.k

	var affected []uint16
	for r := 0; r < idx.k; r++ {
		da := idx.LandmarkDist(uint16(r), a)
		db := idx.LandmarkDist(uint16(r), b)
		onDAG := (da != graph.Inf && graph.AddDist(da, w) == db) ||
			(db != graph.Inf && graph.AddDist(db, w) == da)
		if onDAG {
			affected = append(affected, uint16(r))
		} else {
			st.LandmarksSkipped++
		}
	}

	if _, err := g.RemoveEdge(a, b); err != nil {
		return st, fmt.Errorf("whcl: delete (%d,%d): %w", a, b, err)
	}
	idx.rebuildLandmarks(fanout.Resolve(idx.Workers), affected, &st)
	return st, nil
}

// rebuildLandmarkDelta re-runs landmark r's covered-flag Dijkstra over the
// current graph and buffers the replacement of its entries and highway row,
// including Inf resets for disconnected vertices. Label edits are
// pre-checked against the frozen labelling and exact (only rank r touches
// r-entries); highway cells are candidates the merge re-checks.
func (idx *Index) rebuildLandmarkDelta(r uint16, ws *passScratch, d *repairDelta) {
	g := idx.G
	root := idx.Landmarks[r]
	n := g.NumVertices()
	dist, covered := ws.dist[:n], ws.cover[:n]
	order := g.Dijkstra(root, dist)
	// Covered pass in settle order: weights ≥ 1 settle every shortest-path
	// parent strictly earlier.
	for _, v := range order {
		covered[v] = idx.rankArr[v] != noRank && v != root
		if covered[v] {
			continue
		}
		for _, a := range g.Neighbors(v) {
			if graph.AddDist(dist[a.To], a.W) == dist[v] && covered[a.To] {
				covered[v] = true
				break
			}
		}
	}
	for v := 0; v < n; v++ {
		vv := uint32(v)
		if vv == root {
			continue
		}
		if s := idx.rankArr[vv]; s != noRank {
			if idx.Highway(r, s) != dist[v] {
				d.cell(s, dist[v]) // Inf when disconnected
			}
			continue
		}
		if dist[v] != graph.Inf && !covered[v] {
			if old, had := idx.L[vv].Get(r); !had || old != dist[v] {
				d.setEntry(vv, dist[v])
			}
		} else if _, had := idx.L[vv].Get(r); had {
			d.removeEntry(vv)
		}
	}
}

// DeleteVertex disconnects vertex v by deleting all of its incident edges.
// The id survives as an isolated vertex; deleting a landmark is rejected.
func (idx *Index) DeleteVertex(v uint32) (Stats, error) {
	var agg Stats
	g := idx.G
	if !g.HasVertex(v) {
		return agg, fmt.Errorf("whcl: delete vertex %d: %w", v, graph.ErrVertexUnknown)
	}
	if idx.rankArr[v] != noRank {
		return agg, fmt.Errorf("whcl: delete vertex %d: cannot delete a landmark", v)
	}
	agg.LandmarksTotal = idx.k
	arcs := append([]wgraph.Arc(nil), g.Neighbors(v)...)
	for _, a := range arcs {
		st, err := idx.DeleteEdge(v, a.To)
		if err != nil {
			return agg, err
		}
		agg.LandmarksSkipped += st.LandmarksSkipped
		agg.AffectedSum += st.AffectedSum
		agg.EntriesAdded += st.EntriesAdded
		agg.EntriesRemoved += st.EntriesRemoved
		agg.HighwayUpdates += st.HighwayUpdates
	}
	return agg, nil
}
