package whcl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arena"
	"repro/internal/hcl"
)

// TestCodecV2RoundTrip pins WriteTo's format pick and the WHL2 copy-in
// load: above the threshold the stream is WHL2 and ReadIndex reproduces
// the labelling exactly.
func TestCodecV2RoundTrip(t *testing.T) {
	old := hcl.V2SaveThreshold
	hcl.V2SaveThreshold = 0
	t.Cleanup(func() { hcl.V2SaveThreshold = old })

	g := randomWeighted(150, 500, 9, 53)
	idx, err := Build(g, topLandmarks(g, 6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:4]); got != codecMagicV2 {
		t.Fatalf("WriteTo above threshold wrote %q, want %q", got, codecMagicV2)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.EqualLabels(idx); err != nil {
		t.Fatal(err)
	}
	if loaded.PackedLabels() == nil {
		t.Fatal("loaded index must arrive packed")
	}
	for u := uint32(0); u < 150; u += 7 {
		for v := uint32(0); v < 150; v += 11 {
			if got, want := loaded.Query(u, v), idx.Query(u, v); got != want {
				t.Fatalf("loaded Query(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

// TestReadIndexMapped pins the zero-copy load: a WHL2 file served out of
// an mmap answers exactly like the index it was saved from.
func TestReadIndexMapped(t *testing.T) {
	if !arena.Supported() {
		t.Skip("mmap not supported")
	}
	g := randomWeighted(200, 700, 9, 59)
	idx, err := Build(g, topLandmarks(g, 7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := idx.WriteToMappable(&buf, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.whl2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := arena.MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := ReadIndexMapped(m, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.EqualLabels(idx); err != nil {
		t.Fatal(err)
	}
	if got := mapped.MappedBytes(); got != m.Len() {
		t.Fatalf("MappedBytes = %d, want %d", got, m.Len())
	}
	for u := uint32(0); u < 200; u += 13 {
		for v := uint32(0); v < 200; v += 17 {
			if got, want := mapped.Query(u, v), idx.Query(u, v); got != want {
				t.Fatalf("mapped Query(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	// A WHL1 stream refuses the mapped path (callers fall back).
	var v1 bytes.Buffer
	if _, err := idx.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(t.TempDir(), "labels.whl1")
	if err := os.WriteFile(p1, v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m1, err := arena.MapFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	if _, err := ReadIndexMapped(m1, 0, g); err != hcl.ErrNotMappable {
		t.Fatalf("WHL1 mapped load: got %v, want ErrNotMappable", err)
	}
}
