package whcl

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/wgraph"
)

// edgesOf snapshots the current undirected edge set with weights.
func edgesOf(g *wgraph.Graph) [][3]uint32 {
	var out [][3]uint32
	for u := 0; u < g.NumVertices(); u++ {
		for _, a := range g.Neighbors(uint32(u)) {
			if uint32(u) < a.To {
				out = append(out, [3]uint32{uint32(u), a.To, a.W})
			}
		}
	}
	return out
}

func TestDeleteEdgeMatchesRebuildWeighted(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomWeighted(35, 80, 6, 70+seed)
		lm := topLandmarks(g, 3+int(seed%3))
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 7))
		for i := 0; i < 20; i++ {
			edges := edgesOf(g)
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d delete %d (%d,%d): %v", seed, i, e[0], e[1], err)
			}
			fresh, err := Build(g, lm)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.EqualLabels(fresh); err != nil {
				t.Fatalf("seed %d after delete %d (%d,%d): %v", seed, i, e[0], e[1], err)
			}
		}
		if err := idx.VerifyCover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDeleteThenReinsertWeighted(t *testing.T) {
	g := randomWeighted(30, 60, 5, 11)
	lm := topLandmarks(g, 4)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		edges := edgesOf(g)
		e := edges[rng.Intn(len(edges))]
		if _, err := idx.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertEdge(e[0], e[1], graph.Dist(e[2])); err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.EqualLabels(fresh); err != nil {
			t.Fatalf("round trip %d diverged: %v", i, err)
		}
	}
}

func TestDeleteEdgeErrorsWeighted(t *testing.T) {
	g := randomWeighted(20, 40, 4, 5)
	idx, err := Build(g, topLandmarks(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.DeleteEdge(0, 0); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v", err)
	}
	if _, err := idx.DeleteEdge(0, 99); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v", err)
	}
	for _, e := range nonEdges(g, 1, 3) {
		if _, err := idx.DeleteEdge(e[0], e[1]); !errors.Is(err, graph.ErrEdgeUnknown) {
			t.Errorf("missing edge: got %v", err)
		}
	}
	if _, err := idx.DeleteVertex(idx.Landmarks[0]); err == nil {
		t.Error("deleting a landmark must fail")
	}
}

func TestDeleteVertexWeighted(t *testing.T) {
	g := randomWeighted(25, 50, 4, 8)
	lm := topLandmarks(g, 3)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	var v uint32
	for v = 0; ; v++ {
		if _, isL := idx.Rank(v); !isL && len(g.Neighbors(v)) > 0 {
			break
		}
	}
	if _, err := idx.DeleteVertex(v); err != nil {
		t.Fatal(err)
	}
	if len(g.Neighbors(v)) != 0 {
		t.Errorf("vertex %d still has edges", v)
	}
	if len(idx.L[v]) != 0 {
		t.Errorf("isolated vertex kept entries: %v", idx.L[v])
	}
	fresh, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.EqualLabels(fresh); err != nil {
		t.Fatal(err)
	}
}
