// The parallel repair engine for the weighted variant — the per-landmark
// fan-out of internal/inchl with Dijkstra searches in place of BFS. Landmark
// r's repair writes only rank-r label entries and highway row r (mirrored),
// and its classification reads only rank-r entries of other vertices, so
// per-landmark tasks are independent: each computes a delta against the
// frozen pre-repair labelling, a barrier separates the fan from the merge,
// and the merge applies deltas in rank order — byte-identical to serial for
// every worker count.
//
// Insertion highway cells apply unconditionally (the serial repair never
// reads the matrix before writing) with exact worker-side counters. Rebuild
// passes compare against the live matrix, so their tasks emit candidate
// cells wherever the pre-merge value differs — a superset of the serial
// writes, because any two landmarks that write the same (mirrored) cell in
// one update write the same new distance — and the merge re-checks each
// candidate, reproducing serial's writes and counters exactly.

package whcl

import (
	"sync"
	"time"

	"repro/internal/fanout"
	"repro/internal/graph"
)

// labelOp is one label edit of a delta: set (v,r) to d, or remove the
// r-entry of v. The rank is implicit — a delta belongs to one landmark.
type labelOp struct {
	v   uint32
	d   graph.Dist
	set bool
}

// hwOp is one highway cell H(r,s) = d with the task's rank r implicit.
type hwOp struct {
	s uint16
	d graph.Dist
}

// repairDelta is the buffered outcome of one landmark's task.
// added/removed/highway are worker-side counters, exact for insertion
// deltas; rebuild deltas leave them zero and let the merge count.
type repairDelta struct {
	ops     []labelOp
	hw      []hwOp
	added   int
	removed int
	highway int
}

func (d *repairDelta) reset() {
	d.ops = d.ops[:0]
	d.hw = d.hw[:0]
	d.added, d.removed, d.highway = 0, 0, 0
}

func (d *repairDelta) setEntry(v uint32, dist graph.Dist) {
	d.ops = append(d.ops, labelOp{v: v, d: dist, set: true})
}

func (d *repairDelta) removeEntry(v uint32) {
	d.ops = append(d.ops, labelOp{v: v})
}

func (d *repairDelta) cell(s uint16, dist graph.Dist) {
	d.hw = append(d.hw, hwOp{s: s, d: dist})
}

// passScratch is the per-worker Dijkstra state of rebuild passes.
type passScratch struct {
	dist  []graph.Dist
	cover []bool
}

func (s *passScratch) ensure(n int) {
	if len(s.dist) < n {
		s.dist = make([]graph.Dist, n)
		s.cover = make([]bool, n)
	}
}

var passPool = sync.Pool{New: func() any { return new(passScratch) }}

// sizeFinds and sizeDeltas resize the per-task result tables.
func (idx *Index) sizeFinds(n int) {
	if cap(idx.finds) < n {
		idx.finds = append(idx.finds[:cap(idx.finds)], make([]findResult, n-cap(idx.finds))...)
	}
	idx.finds = idx.finds[:n]
}

func (idx *Index) sizeDeltas(n int) {
	if cap(idx.deltas) < n {
		idx.deltas = append(idx.deltas[:cap(idx.deltas)], make([]repairDelta, n-cap(idx.deltas))...)
	}
	idx.deltas = idx.deltas[:n]
}

// fan runs fn for every task in [0,n) across workers (pre-resolved), giving
// each worker pooled Dijkstra scratch sized for the current graph; worker 0
// uses the index's own rebuild scratch. fn must not mutate the index — it
// reads the frozen labelling and fills per-task deltas. Tasks are timed
// through RepairTimer when set.
func (idx *Index) fan(workers, n int, fn func(ws *passScratch, task int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	nv := idx.G.NumVertices()
	scs := make([]*passScratch, workers)
	scs[0] = &idx.del
	scs[0].ensure(nv)
	for i := 1; i < workers; i++ {
		ws := passPool.Get().(*passScratch)
		ws.ensure(nv)
		scs[i] = ws
	}
	timer := idx.RepairTimer
	fanout.Run(workers, n, func(worker, task int) {
		if timer == nil {
			fn(scs[worker], task)
			return
		}
		start := time.Now()
		fn(scs[worker], task)
		timer(time.Since(start))
	})
	for _, ws := range scs[1:] {
		passPool.Put(ws)
	}
}

// applyInsert applies one insertion delta: highway cells and label ops are
// definitive, so the merge writes them through and trusts the worker
// counters.
func (idx *Index) applyInsert(r uint16, d *repairDelta, st *Stats) {
	for _, h := range d.hw {
		idx.setHighway(r, h.s, h.d)
	}
	for _, op := range d.ops {
		idx.applyLabelOp(r, op)
	}
	st.EntriesAdded += d.added
	st.EntriesRemoved += d.removed
	st.HighwayUpdates += d.highway
}

// applyRebuild applies one rebuild delta (construction or decremental),
// re-checking each highway candidate against the live matrix — an
// earlier-merged landmark may have already mirror-written the cell to the
// same new distance, in which case serial would not have counted it either —
// and counting everything here, single-threaded, exactly as the serial
// rebuild interleaved it.
func (idx *Index) applyRebuild(r uint16, d *repairDelta, st *Stats) {
	for _, h := range d.hw {
		if idx.Highway(r, h.s) != h.d {
			idx.setHighway(r, h.s, h.d)
			st.HighwayUpdates++
			st.AffectedSum++
		}
	}
	for _, op := range d.ops {
		idx.applyLabelOp(r, op)
		if op.set {
			st.EntriesAdded++
		} else {
			st.EntriesRemoved++
		}
		st.AffectedSum++
	}
}

func (idx *Index) applyLabelOp(r uint16, op labelOp) {
	idx.ownLabel(op.v)
	if op.set {
		idx.L[op.v] = idx.L[op.v].Set(r, op.d)
	} else {
		idx.L[op.v], _ = idx.L[op.v].Remove(r)
	}
}
