package arena

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func skipUnsupported(t *testing.T) {
	t.Helper()
	if !Supported() {
		t.Skip("mmap not supported on this platform")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	skipUnsupported(t)
	data := make([]byte, 3*PageSize()+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != int64(len(data)) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(data))
	}
	if !bytes.Equal(m.Data(), data) {
		t.Fatal("mapped bytes differ from file contents")
	}
	if TotalMapped() < int64(len(data)) || Mappings() < 1 {
		t.Fatalf("registry: TotalMapped=%d Mappings=%d", TotalMapped(), Mappings())
	}
}

func TestPrivateWritesDoNotReachFile(t *testing.T) {
	skipUnsupported(t)
	data := bytes.Repeat([]byte{0xAA}, PageSize())
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Data()[0] = 0x55 // private page: must not write through
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk[0] != 0xAA {
		t.Fatal("private mapping wrote through to the file")
	}
	if m.Data()[0] != 0x55 {
		t.Fatal("private write not visible through the mapping")
	}
}

func TestMappingSurvivesUnlink(t *testing.T) {
	skipUnsupported(t)
	data := bytes.Repeat([]byte{0x42}, 2*PageSize())
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// Checkpoint pruning unlinks files out from under live mappings; the
	// pages must stay valid.
	if !bytes.Equal(m.Data(), data) {
		t.Fatal("mapping invalid after unlink")
	}
}

func TestMapBytes(t *testing.T) {
	skipUnsupported(t)
	data := []byte("follower bootstrap image, shipped over the wire")
	m, err := MapBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Data(), data) {
		t.Fatal("MapBytes contents differ")
	}
	// The spill file is unlinked immediately after mapping.
	if _, err := os.Stat(m.Path()); !os.IsNotExist(err) {
		t.Fatalf("spill file %s still exists (err=%v)", m.Path(), err)
	}
	if _, err := MapBytes(nil); err == nil {
		t.Fatal("MapBytes(nil) should fail")
	}
}

func TestMapFileEmpty(t *testing.T) {
	skipUnsupported(t)
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(path); err == nil {
		t.Fatal("mapping an empty file should fail")
	}
}

func TestCloseIdempotentAndRegistry(t *testing.T) {
	skipUnsupported(t)
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, bytes.Repeat([]byte{1}, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	before, beforeN := TotalMapped(), Mappings()
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if TotalMapped() != before || Mappings() != beforeN {
		t.Fatalf("registry leaked: TotalMapped %d→%d, Mappings %d→%d",
			before, TotalMapped(), beforeN, Mappings())
	}
}

func TestFinalizerUnmaps(t *testing.T) {
	skipUnsupported(t)
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, bytes.Repeat([]byte{1}, PageSize()), 0o644); err != nil {
		t.Fatal(err)
	}
	before := Mappings()
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data()[0] != 1 {
		t.Fatal("bad mapping")
	}
	m = nil
	_ = m
	// The last reference is gone: the collector must eventually run the
	// finalizer and return the registry to its prior state.
	deadline := time.Now().Add(10 * time.Second)
	for Mappings() != before {
		if time.Now().After(deadline) {
			t.Fatalf("mapping not finalized: Mappings=%d want %d", Mappings(), before)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
