//go:build !linux && !darwin

package arena

import "os"

const mmapSupported = false

func mmapFile(f *os.File, length int) ([]byte, error) {
	return nil, ErrUnsupported
}

func munmap(data []byte) error { return nil }
