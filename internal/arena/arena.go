// Package arena provides file-backed, mmap'd byte regions that the packed
// label codecs serve zero-copy: a checkpoint's entry block is mapped into
// the address space and sliced in place instead of being decoded onto the
// Go heap, so boot cost is (nearly) independent of index size and cold
// label pages are faulted from the page cache on demand.
//
// Mappings are private (copy-on-write): the kernel gives writers a private
// page on first store, so recovery replay and copy-on-write forks may
// mutate label slices that alias a mapping without ever touching the
// checkpoint file. Files are therefore opened read-only.
//
// # Lifecycle
//
// A Mapping's lifetime is its reachability. Every structure that aliases
// the mapped bytes — the packed arena chunks, the per-vertex label slices,
// the index and every fork and snapshot View descending from it — holds
// (directly or through those slices) a reference to the *Mapping, and a
// finalizer unmaps the region when the collector proves the last reference
// dropped. Checkpoint files are only ever unlinked, never truncated in
// place, so a pinned View keeps answering out of its mapping even after
// the checkpoint that backs it was pruned from disk. Close exists for
// callers (tests, short-lived tools) that can prove no aliases remain and
// want the address space back deterministically.
//
// On platforms without mmap support (see Supported) the package degrades
// to errors and callers fall back to the copy-in decode path.
package arena

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
)

// ErrUnsupported is returned by the Map functions on platforms without an
// mmap implementation; callers fall back to copy-in loading.
var ErrUnsupported = errors.New("arena: mmap not supported on this platform")

// Mapping is one mmap'd file region. The bytes are valid until the Mapping
// is garbage-collected (all aliasing structures dropped) or explicitly
// Closed. Safe for concurrent readers; writers rely on the private
// (copy-on-write) protection and must coordinate among themselves exactly
// as they would for any shared slice.
type Mapping struct {
	data   []byte
	path   string
	closed atomic.Bool
}

// Package-wide registry: total bytes and count of live mappings, surfaced
// through Stats.MappedBytes and the /healthz and /stats endpoints.
var (
	totalMapped  atomic.Int64
	liveMappings atomic.Int64
	mapsEver     atomic.Uint64
	unmapsEver   atomic.Uint64
	bytesEver    atomic.Uint64
)

// TotalMapped returns the total bytes of all live mappings in the process.
func TotalMapped() int64 { return totalMapped.Load() }

// Mappings returns the number of live mappings in the process.
func Mappings() int64 { return liveMappings.Load() }

// MapsTotal returns the cumulative number of mappings ever created —
// paired with UnmapsTotal it turns the live gauges into rates.
func MapsTotal() uint64 { return mapsEver.Load() }

// UnmapsTotal returns the cumulative number of mappings ever released
// (explicit Close or finalizer).
func UnmapsTotal() uint64 { return unmapsEver.Load() }

// MappedBytesTotal returns the cumulative bytes ever mapped.
func MappedBytesTotal() uint64 { return bytesEver.Load() }

// Supported reports whether this platform can serve mapped arenas. When
// false every Map call returns ErrUnsupported and loads stay on copy-in.
func Supported() bool { return mmapSupported }

// PageSize returns the system page size, the alignment target for mapped
// entry blocks.
func PageSize() int { return os.Getpagesize() }

// MapFile maps the whole of the file at path, read-only on disk but
// writable in memory through private copy-on-write pages. Empty files are
// an error (mmap of length zero is invalid); callers treat it like any
// other fallback-to-copy-in condition.
func MapFile(path string) (*Mapping, error) {
	if !mmapSupported {
		return nil, ErrUnsupported
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mapFrom(f, path)
}

// MapBytes spills data into an unlinked temporary file and maps that: the
// bytes come back as a file-backed private mapping the page cache can
// evict, which is how a follower bootstraps zero-copy from a shipped
// checkpoint image it only ever held in memory. The temporary file is
// removed immediately after mapping; the kernel keeps its pages alive
// until the mapping drops.
func MapBytes(data []byte) (*Mapping, error) {
	if !mmapSupported {
		return nil, ErrUnsupported
	}
	if len(data) == 0 {
		return nil, errors.New("arena: cannot map empty image")
	}
	f, err := os.CreateTemp("", "arena-*.img")
	if err != nil {
		return nil, err
	}
	name := f.Name()
	defer f.Close()
	defer os.Remove(name)
	if _, err := f.Write(data); err != nil {
		return nil, fmt.Errorf("arena: spilling image: %w", err)
	}
	return mapFrom(f, name)
}

// mapFrom maps the whole of the open file f.
func mapFrom(f *os.File, path string) (*Mapping, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("arena: %s is empty", path)
	}
	const maxInt = int64(^uint(0) >> 1)
	if size > maxInt {
		return nil, fmt.Errorf("arena: %s is too large to map (%d bytes)", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("arena: mapping %s: %w", path, err)
	}
	m := &Mapping{data: data, path: path}
	totalMapped.Add(int64(len(data)))
	liveMappings.Add(1)
	mapsEver.Add(1)
	bytesEver.Add(uint64(len(data)))
	// Reachability is the refcount: when the last label slice, packed chunk,
	// fork or View aliasing the mapping is collected, so is m, and the
	// finalizer gives the address space back.
	runtime.SetFinalizer(m, (*Mapping).finalize)
	return m, nil
}

// Data returns the mapped bytes. The slice aliases the mapping directly;
// it must not be used after Close.
func (m *Mapping) Data() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int64 { return int64(len(m.data)) }

// Path returns the file the mapping was created from (possibly since
// unlinked).
func (m *Mapping) Path() string { return m.path }

// Close unmaps the region now instead of waiting for the collector. The
// caller asserts no live structure aliases the mapped bytes any more —
// after Close every such slice is poison. Idempotent.
func (m *Mapping) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	totalMapped.Add(-int64(len(m.data)))
	liveMappings.Add(-1)
	unmapsEver.Add(1)
	err := munmap(m.data)
	m.data = nil
	return err
}

func (m *Mapping) finalize() { _ = m.Close() }
