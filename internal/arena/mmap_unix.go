//go:build linux || darwin

package arena

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps length bytes of f privately: PROT_READ|PROT_WRITE with
// MAP_PRIVATE gives readers the file's pages out of the page cache and
// writers a copy-on-write private page on first store, which is what lets
// recovery replay patch label slices in place without a writable fd.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
