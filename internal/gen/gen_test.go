package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(500, 4, 1)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices: got %d", g.NumVertices())
	}
	// ~ (n - m) * m edges.
	if e := g.NumEdges(); e < 1800 || e > 2000 {
		t.Errorf("edges: got %d, want ≈1984", e)
	}
	if graph.LargestComponentSize(g) != 500 {
		t.Error("BA graph must be connected")
	}
	// Preferential attachment must produce a hub well above the mean degree.
	hub := g.MaxDegreeVertex()
	if g.Degree(hub) < 3*int(graph.AvgDegree(g)) {
		t.Errorf("max degree %d not hub-like (avg %.1f)", g.Degree(hub), graph.AvgDegree(g))
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(200, 3, 42)
	b := BarabasiAlbert(200, 3, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	same := true
	a.Edges(func(u, v uint32) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Fatal("edge sets differ for identical seeds")
	}
	c := BarabasiAlbert(200, 3, 43)
	diff := false
	a.Edges(func(u, v uint32) {
		if !c.HasEdge(u, v) {
			diff = true
		}
	})
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(300, 600, 7)
	if g.NumVertices() != 300 {
		t.Fatalf("vertices: got %d", g.NumVertices())
	}
	if e := g.NumEdges(); e != 600 {
		t.Errorf("edges: got %d, want 600", e)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.1, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("vertices: got %d", g.NumVertices())
	}
	// Ring lattice has exactly n*k/2 edges; rewiring preserves the count
	// except for rare dead rewires.
	if e := g.NumEdges(); e < 560 || e > 600 {
		t.Errorf("edges: got %d, want ≈600", e)
	}
	// beta=0 must be the pure lattice.
	lat := WattsStrogatz(50, 4, 0, 1)
	if !lat.HasEdge(0, 1) || !lat.HasEdge(0, 2) || lat.HasEdge(0, 3) {
		t.Error("beta=0 lattice edges wrong")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(9, 2000, 0.57, 0.19, 0.19, 5)
	if g.NumVertices() != 512 {
		t.Fatalf("vertices: got %d", g.NumVertices())
	}
	if e := g.NumEdges(); e < 1500 {
		t.Errorf("edges: got %d, want ≈2000", e)
	}
	hub := g.MaxDegreeVertex()
	if g.Degree(hub) < 2*int(graph.AvgDegree(g)) {
		t.Errorf("R-MAT should be skewed: max %d avg %.1f", g.Degree(hub), graph.AvgDegree(g))
	}
}

func TestWebLocalityLongGraph(t *testing.T) {
	web := WebLocality(4000, 10, 60, 0.02, 9)
	social := BarabasiAlbert(4000, 5, 9)
	if graph.LargestComponentSize(web) != 4000 {
		t.Fatal("web graph must be connected")
	}
	dWeb := graph.AvgDistance(web, 30, 1)
	dSoc := graph.AvgDistance(social, 30, 1)
	if dWeb < 2*dSoc {
		t.Errorf("web proxy should be much longer than social: web %.2f vs social %.2f", dWeb, dSoc)
	}
}

func TestGeneratorsNoSelfLoopsOrDuplicates(t *testing.T) {
	// The graph type enforces both; reaching here without panic plus a
	// consistent edge count is the check.
	for name, g := range map[string]*graph.Graph{
		"ba":   BarabasiAlbert(100, 3, 2),
		"er":   ErdosRenyi(100, 200, 2),
		"ws":   WattsStrogatz(100, 4, 0.2, 2),
		"rmat": RMAT(7, 300, 0.57, 0.19, 0.19, 2),
		"web":  WebLocality(100, 6, 10, 0.05, 2),
	} {
		count := uint64(0)
		g.Edges(func(u, v uint32) {
			if u == v {
				t.Errorf("%s: self-loop at %d", name, u)
			}
			count++
		})
		if count != g.NumEdges() {
			t.Errorf("%s: edge iteration count %d != NumEdges %d", name, count, g.NumEdges())
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if g := BarabasiAlbert(0, 3, 1); g.NumVertices() != 0 {
		t.Error("empty BA")
	}
	if g := BarabasiAlbert(1, 3, 1); g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Error("singleton BA")
	}
	if g := WebLocality(1, 4, 5, 0, 1); g.NumEdges() != 0 {
		t.Error("singleton web")
	}
	if g := WattsStrogatz(5, 10, 0.5, 1); g.NumVertices() != 5 {
		t.Error("WS with k>n must clamp")
	}
}
