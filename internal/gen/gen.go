// Package gen provides deterministic synthetic graph generators used to
// build scaled-down proxies of the paper's 12 evaluation networks:
// preferential attachment and R-MAT for social/communication graphs (small
// average distance, heavy-tailed degrees) and a locality-based web model for
// the high-average-distance web crawls (Indochina, IT, UK, Clueweb09).
package gen

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// BarabasiAlbert generates a preferential-attachment graph: n vertices, each
// new vertex attaching m edges to existing vertices with probability
// proportional to degree. Classic small-world scale-free model for social
// and communication networks.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// Repeated-endpoints list: picking a uniform element is degree-biased.
	targets := make([]uint32, 0, 2*n*m)
	g.AddVertex()
	for v := 1; v < n; v++ {
		id := g.AddVertex()
		links := m
		if v < m {
			links = v
		}
		attached := make([]uint32, 0, links)
		contains := func(t uint32) bool {
			for _, x := range attached {
				if x == t {
					return true
				}
			}
			return false
		}
		for len(attached) < links {
			var t uint32
			if len(targets) == 0 {
				t = uint32(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == id || contains(t) {
				// Fall back to uniform choice to guarantee progress on
				// saturated neighbourhoods.
				t = uint32(rng.Intn(v))
				if t == id || contains(t) {
					continue
				}
			}
			attached = append(attached, t)
		}
		for _, t := range attached {
			if ok, _ := g.AddEdge(id, t); ok {
				targets = append(targets, id, t)
			}
		}
	}
	return g
}

// ErdosRenyi generates G(n, M): n vertices and up to M distinct uniform
// random edges.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	added := 0
	for tries := 0; added < m && tries < 50*m+1000; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if ok, _ := g.AddEdge(u, v); ok {
			added++
		}
	}
	return g
}

// WattsStrogatz generates a small-world ring lattice: n vertices each joined
// to their k nearest neighbours, with each edge rewired to a random endpoint
// with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if k >= n {
		k = n - 1
	}
	edges := make(map[edge]bool)
	norm := func(u, v uint32) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			edges[norm(uint32(i), uint32((i+j)%n))] = true
		}
	}
	// Rewire.
	out := make([]edge, 0, len(edges))
	for e := range edges {
		out = append(out, e)
	}
	// Deterministic iteration order for reproducibility.
	sortEdges(out)
	final := make(map[edge]bool, len(out))
	for _, e := range out {
		if rng.Float64() < beta {
			for tries := 0; tries < 32; tries++ {
				w := uint32(rng.Intn(n))
				ne := norm(e.u, w)
				if w != e.u && !final[ne] && !edges[ne] {
					e = ne
					break
				}
			}
		}
		final[e] = true
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	fin := make([]edge, 0, len(final))
	for e := range final {
		fin = append(fin, e)
	}
	sortEdges(fin)
	for _, e := range fin {
		if e.u != e.v {
			_, _ = g.AddEdge(e.u, e.v)
		}
	}
	return g
}

// RMAT generates a recursive-matrix graph with 2^scale vertices and up to
// edges distinct edges, quadrant probabilities (a,b,c,d). The standard
// heavy-tailed model for social networks (Graph500 uses a=0.57, b=c=0.19).
func RMAT(scale, edges int, a, b, c float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	added := 0
	for tries := 0; added < edges && tries < 20*edges+1000; tries++ {
		var u, v int
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				v |= 1 << level
			case r < a+b+c:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		if u == v {
			continue
		}
		if ok, _ := g.AddEdge(uint32(u), uint32(v)); ok {
			added++
		}
	}
	return g
}

// WebLocality generates a web-crawl-like graph with high average distance:
// vertices are laid out on a line (crawl order); each vertex links to deg/2
// predecessors chosen within a window of span positions (hierarchical
// locality), and a fraction hubFrac of vertices become regional hubs that
// attract extra links from their neighbourhood, giving the skewed degrees of
// host-level web graphs while keeping the graph "long".
func WebLocality(n, deg, span int, hubFrac float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	if n < 2 {
		return g
	}
	if span < 1 {
		span = 1
	}
	half := deg / 2
	if half < 1 {
		half = 1
	}
	// Regional hubs, one every hubEvery positions.
	hubEvery := n
	if hubFrac > 0 {
		hubEvery = int(1 / hubFrac)
		if hubEvery < 1 {
			hubEvery = 1
		}
	}
	isHub := func(v int) bool { return v%hubEvery == 0 }
	for v := 1; v < n; v++ {
		links := half
		if isHub(v) {
			links += half // hubs link more themselves
		}
		for i := 0; i < links; i++ {
			w := v - 1 - rng.Intn(min(v, span))
			// With some probability snap to the nearest earlier hub,
			// concentrating degree like host-level home pages do.
			if hubFrac > 0 && rng.Float64() < 0.35 {
				w = (w / hubEvery) * hubEvery
			}
			if w < 0 || w == v {
				continue
			}
			_, _ = g.AddEdge(uint32(v), uint32(w))
		}
		// Guarantee connectivity along the crawl frontier.
		if g.Degree(uint32(v)) == 0 {
			g.MustAddEdge(uint32(v), uint32(v-1))
		}
	}
	return g
}

type edge struct{ u, v uint32 }

func sortEdges(es []edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
}
