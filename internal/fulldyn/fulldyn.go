// Package fulldyn implements the IncFD baseline (Hayashi, Akiba,
// Kawarabayashi; CIKM 2016): a small set of landmarks, one complete
// shortest-path tree per landmark, queries answered by a landmark upper
// bound plus a bounded bidirectional search on the landmark-sparsified
// graph, and incremental updates that propagate distance decreases through
// each tree.
//
// Faithful to the original fully dynamic system, each tree stores not only
// distances but the shortest-path DAG parent lists of every vertex — the
// structure its deletion support requires — and the insertion path keeps
// those parent lists consistent (Ramalingam–Reps-style structural
// maintenance). Storing and maintaining complete trees is what makes the
// IncFD labelling several times larger than highway cover labelling and its
// updates slower (Section 6.1 of Farhan & Wang, EDBT 2021).
package fulldyn

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/queue"
)

// Index is the IncFD structure. It is not safe for concurrent use.
type Index struct {
	G         *graph.Graph
	Landmarks []uint32
	Dist      [][]graph.Dist // Dist[r][v] = d_G(landmark r, v)
	Parents   [][][]uint32   // Parents[r][v] = shortest-path DAG parents of v in tree r

	isLandmark map[uint32]bool

	// query scratch
	qs       bfs.QuerySpace
	q        queue.PairQueue
	improved []uint32
}

// Build computes the shortest-path tree of every landmark.
func Build(g *graph.Graph, landmarks []uint32) (*Index, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("fulldyn: need at least one landmark")
	}
	idx := &Index{
		G:          g,
		Landmarks:  append([]uint32(nil), landmarks...),
		Dist:       make([][]graph.Dist, len(landmarks)),
		Parents:    make([][][]uint32, len(landmarks)),
		isLandmark: make(map[uint32]bool, len(landmarks)),
	}
	for r, v := range idx.Landmarks {
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("fulldyn: landmark %d is not a vertex of the graph", v)
		}
		idx.isLandmark[v] = true
		idx.Dist[r] = bfs.Distances(g, v)
		idx.Parents[r] = make([][]uint32, g.NumVertices())
		for w := 0; w < g.NumVertices(); w++ {
			idx.rebuildParents(r, uint32(w))
		}
	}
	return idx, nil
}

// rebuildParents recomputes the parent list of w in tree r from current
// distances.
func (idx *Index) rebuildParents(r int, w uint32) {
	dw := idx.Dist[r][w]
	ps := idx.Parents[r][w][:0]
	if dw != graph.Inf && dw != 0 {
		for _, u := range idx.G.Neighbors(w) {
			if graph.AddDist(idx.Dist[r][u], 1) == dw {
				ps = append(ps, u)
			}
		}
	}
	idx.Parents[r][w] = ps
}

// UpperBound returns min over landmarks of d(r,u) + d(r,v).
func (idx *Index) UpperBound(u, v uint32) graph.Dist {
	best := graph.Inf
	for r := range idx.Landmarks {
		if t := graph.AddDist(idx.Dist[r][u], idx.Dist[r][v]); t < best {
			best = t
		}
	}
	return best
}

// Query answers an exact distance query: the landmark upper bound, refined
// by a bounded bidirectional BFS over the sparsified graph.
func (idx *Index) Query(u, v uint32) graph.Dist {
	if u == v {
		return 0
	}
	top := idx.UpperBound(u, v)
	if idx.isLandmark[u] || idx.isLandmark[v] {
		return top // the landmark's own tree answers exactly
	}
	if top <= 1 {
		return top
	}
	idx.ensureScratch()
	avoid := func(x uint32) bool { return idx.isLandmark[x] }
	sp := bfs.Sparsified(idx.G, u, v, top, avoid, &idx.qs)
	if sp < top {
		return sp
	}
	return top
}

// InsertEdge inserts (a,b) and maintains every landmark tree: distances are
// decreased with a partial BFS and the shortest-path DAG parent lists of
// every touched vertex (and of the unchanged children on the repair
// frontier) are rebuilt.
func (idx *Index) InsertEdge(a, b uint32) error {
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return fmt.Errorf("fulldyn: insert (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return fmt.Errorf("fulldyn: insert (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("fulldyn: insert (%d,%d): %w", a, b, graph.ErrEdgeExists)
	}
	if _, err := g.AddEdge(a, b); err != nil {
		return err
	}
	for r := range idx.Landmarks {
		idx.updateTree(r, a, b)
	}
	return nil
}

// updateTree repairs tree r after inserting (a,b).
func (idx *Index) updateTree(r int, a, b uint32) {
	dist := idx.Dist[r]
	x, y := a, b
	if dist[y] < dist[x] {
		x, y = y, x
	}
	nd := graph.AddDist(dist[x], 1)
	switch {
	case nd == graph.Inf && dist[y] == graph.Inf:
		return // both endpoints unreachable from the landmark
	case nd > dist[y]:
		return // tree unchanged (equal endpoint distances)
	case nd == dist[y]:
		// y gains x as an additional shortest-path parent.
		idx.Parents[r][y] = append(idx.Parents[r][y], x)
		return
	}
	// Strict improvement: decrease distances below y with a partial BFS.
	idx.improved = idx.improved[:0]
	idx.q.Reset()
	dist[y] = nd
	idx.q.Push(queue.Pair{V: y, D: nd})
	idx.improved = append(idx.improved, y)
	for !idx.q.Empty() {
		p := idx.q.Pop()
		next := p.D + 1
		for _, w := range idx.G.Neighbors(p.V) {
			if next < dist[w] {
				dist[w] = next
				idx.q.Push(queue.Pair{V: w, D: next})
				idx.improved = append(idx.improved, w)
			}
		}
	}
	// Structural repair: improved vertices get fresh parent lists, and so
	// do their unchanged children on the frontier (an improved parent may
	// have entered or left their parent sets).
	for _, w := range idx.improved {
		idx.rebuildParents(r, w)
	}
	for _, w := range idx.improved {
		dw := dist[w]
		for _, z := range idx.G.Neighbors(w) {
			if dist[z] == dw+1 {
				idx.rebuildParents(r, z)
			}
		}
	}
}

// DeleteEdge removes (a,b) and maintains every landmark tree — the
// deletion support the parent-DAG machinery exists for. Per tree: an edge
// whose endpoints sit at equal depth is not in the shortest-path DAG and
// changes nothing; otherwise the deeper endpoint loses the shallower one
// from its parent list, and only when that list empties (the vertex lost
// its last shortest path) do distances actually change, in which case the
// tree below is recomputed from the landmark.
func (idx *Index) DeleteEdge(a, b uint32) error {
	g := idx.G
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return fmt.Errorf("fulldyn: delete (%d,%d): %w", a, b, graph.ErrVertexUnknown)
	}
	if a == b {
		return fmt.Errorf("fulldyn: delete (%d,%d): %w", a, b, graph.ErrSelfLoop)
	}
	if !g.HasEdge(a, b) {
		return fmt.Errorf("fulldyn: delete (%d,%d): %w", a, b, graph.ErrEdgeUnknown)
	}
	if err := g.RemoveEdge(a, b); err != nil {
		return err
	}
	for r := range idx.Landmarks {
		idx.deleteFromTree(r, a, b)
	}
	return nil
}

// deleteFromTree repairs tree r after the edge (a,b) was already removed
// from the graph; distances in idx.Dist[r] are still the pre-delete ones.
func (idx *Index) deleteFromTree(r int, a, b uint32) {
	dist := idx.Dist[r]
	x, y := a, b // x the shallower endpoint, y the deeper
	if dist[y] < dist[x] {
		x, y = y, x
	}
	if dist[x] == graph.Inf || dist[x] == dist[y] {
		return // unreachable edge, or not on the shortest-path DAG
	}
	// y loses x as a shortest-path parent.
	ps := idx.Parents[r][y]
	for i, p := range ps {
		if p == x {
			ps[i] = ps[len(ps)-1]
			idx.Parents[r][y] = ps[:len(ps)-1]
			break
		}
	}
	if len(idx.Parents[r][y]) > 0 {
		return // another shortest path survives; no distance changed
	}
	// y lost its last shortest path: recompute the tree. (Distance increases
	// cascade arbitrarily far and can disconnect whole regions, so the
	// decremental repair is a fresh BFS from the landmark.)
	idx.Dist[r] = bfs.Distances(idx.G, idx.Landmarks[r])
	for w := 0; w < idx.G.NumVertices(); w++ {
		idx.rebuildParents(r, uint32(w))
	}
}

// InsertVertex adds a vertex with the given neighbours, growing every tree.
func (idx *Index) InsertVertex(neighbors []uint32) (uint32, error) {
	v := idx.G.AddVertex()
	for r := range idx.Dist {
		idx.Dist[r] = append(idx.Dist[r], graph.Inf)
		idx.Parents[r] = append(idx.Parents[r], nil)
	}
	for _, w := range neighbors {
		if err := idx.InsertEdge(v, w); err != nil {
			return v, err
		}
	}
	return v, nil
}

// Bytes returns the storage charged for the complete shortest-path trees: a
// 4-byte distance per landmark per vertex plus 4 bytes per stored parent
// edge.
func (idx *Index) Bytes() int64 {
	total := int64(len(idx.Landmarks)) * int64(idx.G.NumVertices()) * 4
	for r := range idx.Parents {
		for _, ps := range idx.Parents[r] {
			total += int64(len(ps)) * 4
		}
	}
	return total
}

// VerifyTrees checks distances and parent lists against ground truth BFS;
// it is O(|R|·|E|) and intended for tests.
func (idx *Index) VerifyTrees() error {
	for r, lv := range idx.Landmarks {
		want := bfs.Distances(idx.G, lv)
		for v := 0; v < idx.G.NumVertices(); v++ {
			if idx.Dist[r][v] != want[v] {
				return fmt.Errorf("fulldyn: tree %d: dist[%d] = %d, want %d", r, v, idx.Dist[r][v], want[v])
			}
		}
		for v := 0; v < idx.G.NumVertices(); v++ {
			wantPs := map[uint32]bool{}
			if want[v] != 0 && want[v] != graph.Inf {
				for _, u := range idx.G.Neighbors(uint32(v)) {
					if graph.AddDist(want[u], 1) == want[v] {
						wantPs[u] = true
					}
				}
			}
			if len(wantPs) != len(idx.Parents[r][v]) {
				return fmt.Errorf("fulldyn: tree %d: vertex %d has %d parents, want %d",
					r, v, len(idx.Parents[r][v]), len(wantPs))
			}
			for _, u := range idx.Parents[r][v] {
				if !wantPs[u] {
					return fmt.Errorf("fulldyn: tree %d: vertex %d has wrong parent %d", r, v, u)
				}
			}
		}
	}
	return nil
}

func (idx *Index) ensureScratch() {
	n := idx.G.NumVertices()
	if len(idx.qs.DistU) >= n {
		return
	}
	idx.qs.DistU = make([]graph.Dist, n)
	idx.qs.DistV = make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		idx.qs.DistU[i] = graph.Inf
		idx.qs.DistV[i] = graph.Inf
	}
}
