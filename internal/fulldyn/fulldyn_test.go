package fulldyn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/testutil"
)

func TestBuildQueryMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := testutil.RandomGraph(50, 90, seed)
		idx, err := Build(g, landmark.ByDegree(g, 4))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		oracle := testutil.AllPairsOracle(g)
		for u := 0; u < 50; u++ {
			for v := 0; v < 50; v++ {
				if got := idx.Query(uint32(u), uint32(v)); got != oracle[u][v] {
					t.Fatalf("seed %d: Query(%d,%d): got %d, want %d", seed, u, v, got, oracle[u][v])
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := testutil.RandomConnectedGraph(5, 3, 1)
	if _, err := Build(g, nil); err == nil {
		t.Error("no landmarks must fail")
	}
	if _, err := Build(g, []uint32{77}); err == nil {
		t.Error("unknown landmark must fail")
	}
}

func TestInsertEdgeTreesStayExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomGraph(40, 60, 20+seed)
		lm := landmark.ByDegree(g, 4)
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range testutil.NonEdges(g, 25, seed) {
			if err := idx.InsertEdge(e[0], e[1]); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
			if err := idx.VerifyTrees(); err != nil {
				t.Fatalf("seed %d insert %d: %v", seed, i, err)
			}
		}
	}
}

func TestQueriesExactAfterInsertStream(t *testing.T) {
	g := testutil.RandomGraph(45, 70, 77)
	idx, err := Build(g, landmark.ByDegree(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testutil.NonEdges(g, 30, 11) {
		if err := idx.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	oracle := testutil.AllPairsOracle(g)
	for u := 0; u < 45; u++ {
		for v := 0; v < 45; v++ {
			if got := idx.Query(uint32(u), uint32(v)); got != oracle[u][v] {
				t.Fatalf("Query(%d,%d): got %d, want %d", u, v, got, oracle[u][v])
			}
		}
	}
}

func TestInsertVertex(t *testing.T) {
	g := testutil.RandomConnectedGraph(20, 25, 6)
	lm := landmark.ByDegree(g, 3)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	v, err := idx.InsertVertex([]uint32{0, 5})
	if err != nil {
		t.Fatalf("InsertVertex: %v", err)
	}
	for r, lv := range lm {
		want := bfs.Dist(g, lv, v)
		if idx.Dist[r][v] != want {
			t.Fatalf("tree %d at new vertex: got %d, want %d", r, idx.Dist[r][v], want)
		}
	}
}

func TestInsertEdgeErrors(t *testing.T) {
	g := testutil.RandomConnectedGraph(10, 5, 3)
	idx, err := Build(g, landmark.ByDegree(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(1, 1); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := idx.InsertEdge(0, 42); err == nil {
		t.Error("unknown vertex must be rejected")
	}
	e := testutil.NonEdges(g, 1, 9)[0]
	if err := idx.InsertEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(e[0], e[1]); err == nil {
		t.Error("duplicate must be rejected")
	}
}

func TestBytes(t *testing.T) {
	g := testutil.RandomConnectedGraph(30, 40, 2)
	idx, err := Build(g, landmark.ByDegree(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Bytes(); got < 4*30*4 {
		t.Errorf("Bytes: got %d, want at least %d (distances) plus parent storage", got, 4*30*4)
	}
}

func TestQuickComponentMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Two random components, then a bridging insertion.
		g := graph.New(30)
		for i := 0; i < 30; i++ {
			g.AddVertex()
		}
		for i := 0; i < 25; i++ {
			u, v := uint32(rng.Intn(15)), uint32(rng.Intn(15))
			if u != v {
				_, _ = g.AddEdge(u, v)
			}
			u, v = uint32(15+rng.Intn(15)), uint32(15+rng.Intn(15))
			if u != v {
				_, _ = g.AddEdge(u, v)
			}
		}
		idx, err := Build(g, landmark.ByDegree(g, 3))
		if err != nil {
			return false
		}
		if err := idx.InsertEdge(3, 20); err != nil {
			return false
		}
		for r, lv := range idx.Landmarks {
			want := bfs.Distances(g, lv)
			for v := 0; v < 30; v++ {
				if idx.Dist[r][v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteEdgeTreesStayExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(40, 80, 60+seed)
		lm := landmark.ByDegree(g, 4)
		idx, err := Build(g, lm)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			var edges [][2]uint32
			g.Edges(func(a, b uint32) { edges = append(edges, [2]uint32{a, b}) })
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			if err := idx.DeleteEdge(e[0], e[1]); err != nil {
				t.Fatalf("seed %d delete %d (%d,%d): %v", seed, i, e[0], e[1], err)
			}
			if err := idx.VerifyTrees(); err != nil {
				t.Fatalf("seed %d after delete %d (%d,%d): %v", seed, i, e[0], e[1], err)
			}
		}
	}
}

func TestDeleteEdgeErrors(t *testing.T) {
	g := testutil.RandomConnectedGraph(15, 25, 2)
	idx, err := Build(g, landmark.ByDegree(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteEdge(0, 0); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self-loop: got %v", err)
	}
	if err := idx.DeleteEdge(0, 99); !errors.Is(err, graph.ErrVertexUnknown) {
		t.Errorf("unknown vertex: got %v", err)
	}
	var a, b uint32
	rng := rand.New(rand.NewSource(1))
	for {
		a, b = uint32(rng.Intn(15)), uint32(rng.Intn(15))
		if a != b && !g.HasEdge(a, b) {
			break
		}
	}
	if err := idx.DeleteEdge(a, b); !errors.Is(err, graph.ErrEdgeUnknown) {
		t.Errorf("missing edge: got %v", err)
	}
}

func TestMixedInsertDeleteQueriesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testutil.RandomGraph(40, 70, 90)
	lm := landmark.ByDegree(g, 4)
	idx, err := Build(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		u := uint32(rng.Intn(40))
		v := uint32(rng.Intn(40))
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if err := idx.DeleteEdge(u, v); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		} else {
			if err := idx.InsertEdge(u, v); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		}
		a, b := uint32(rng.Intn(40)), uint32(rng.Intn(40))
		if got, want := idx.Query(a, b), bfs.Dist(g, a, b); got != want {
			t.Fatalf("step %d: Query(%d,%d)=%d want %d", step, a, b, got, want)
		}
	}
	if err := idx.VerifyTrees(); err != nil {
		t.Fatal(err)
	}
}
