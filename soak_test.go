package dynhl

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bfs"
	"repro/internal/hcl"
	"repro/internal/testutil"
)

// TestSoakMixedUpdateStream drives a long interleaved stream of edge
// insertions, edge deletions (including delete-then-reinsert round trips
// and bridge cuts that disconnect components) and vertex insertions through
// the public API, auditing the full labelling periodically and
// spot-checking queries against BFS throughout — unreachable pairs must
// answer Inf.
func TestSoakMixedUpdateStream(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	g := testutil.RandomGraph(150, 300, 1)
	idx, err := Build(g, Options{Landmarks: 8})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 400; step++ {
		n := idx.Graph().NumVertices()
		switch p := rng.Float64(); {
		case p < 0.15:
			k := 1 + rng.Intn(3)
			ns := map[uint32]bool{}
			for len(ns) < k {
				ns[uint32(rng.Intn(n))] = true
			}
			var list []uint32
			for v := range ns {
				list = append(list, v)
			}
			if _, _, err := idx.InsertVertex(Arcs(list...)); err != nil {
				t.Fatalf("step %d: InsertVertex: %v", step, err)
			}
		case p < 0.40:
			// Delete a random existing edge; a third of the time put it
			// straight back (churny workloads flap).
			u := uint32(rng.Intn(n))
			if idx.Graph().Degree(u) == 0 {
				continue
			}
			ns := idx.Graph().Neighbors(u)
			v := ns[rng.Intn(len(ns))]
			if _, err := idx.DeleteEdge(u, v); err != nil {
				t.Fatalf("step %d: DeleteEdge(%d,%d): %v", step, u, v, err)
			}
			if rng.Float64() < 0.33 {
				if _, err := idx.InsertEdge(u, v, 0); err != nil {
					t.Fatalf("step %d: reinsert (%d,%d): %v", step, u, v, err)
				}
			}
		default:
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u == v || idx.Graph().HasEdge(u, v) {
				continue
			}
			if _, err := idx.InsertEdge(u, v, 0); err != nil {
				t.Fatalf("step %d: InsertEdge(%d,%d): %v", step, u, v, err)
			}
		}
		// Spot-check a random query every step.
		n = idx.Graph().NumVertices()
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if got, want := idx.Query(a, b), bfs.Dist(idx.Graph(), a, b); got != want {
			t.Fatalf("step %d: Query(%d,%d): got %d, want %d", step, a, b, got, want)
		}
		if step%100 == 99 {
			if err := idx.Verify(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := idx.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadThenUpdate pins that a restored index is fully operational:
// insertions after LoadIndex must keep it identical to a fresh rebuild.
func TestSaveLoadThenUpdate(t *testing.T) {
	g := testutil.RandomConnectedGraph(80, 140, 7)
	idx, err := Build(g, Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	var graphBuf, idxBuf bytes.Buffer
	if err := WriteGraph(&graphBuf, idx.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(&idxBuf); err != nil {
		t.Fatal(err)
	}

	g2, err := ReadGraph(&graphBuf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndex(&idxBuf, g2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testutil.NonEdges(g2, 15, 3) {
		if _, err := restored.InsertEdge(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := hcl.Build(g2, restored.idx.Landmarks)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.idx.EqualLabels(fresh); err != nil {
		t.Fatalf("restored index diverged after updates: %v", err)
	}
	if err := restored.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadIndexRejectsMismatch guards the public loader against the wrong
// graph.
func TestLoadIndexRejectsMismatch(t *testing.T) {
	g := testutil.RandomConnectedGraph(30, 50, 2)
	idx, err := Build(g, Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := testutil.RandomConnectedGraph(31, 50, 3)
	if _, err := LoadIndex(&buf, other); err == nil {
		t.Error("graph mismatch must be rejected")
	}
}
