package dynhl

// ConcurrentOracle is the pre-snapshot name of the concurrency wrapper,
// kept as a thin compatibility shim over Store. It no longer holds a
// readers-writer lock: queries load the current published snapshot with one
// atomic pointer load and run lock-free, while mutations fork, repair and
// publish the next epoch (see Store). All methods — including Snapshot,
// Apply, Epoch, QueryBatchCtx, Save and Load — come from the embedded
// Store.
//
// New code should use NewStore directly.
type ConcurrentOracle struct {
	*Store
}

// Concurrent wraps o for concurrent use. Wrapping an oracle that is already
// a ConcurrentOracle returns it unchanged; wrapping a Store shares it.
func Concurrent(o Oracle) *ConcurrentOracle {
	if c, ok := o.(*ConcurrentOracle); ok {
		return c
	}
	return &ConcurrentOracle{Store: NewStore(o)}
}
