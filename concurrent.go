package dynhl

// ConcurrentOracle is the pre-snapshot name of the concurrency wrapper,
// kept only as a thin compatibility shim over Store — it is deprecated and
// will not grow new capabilities. It no longer holds a readers-writer
// lock: queries load the current published snapshot with one atomic
// pointer load and run lock-free, while mutations ride the store's
// group-commit pipeline (see Store and ApplyCtx). All methods — including
// Snapshot, Apply, Epoch, QueryBatchCtx, Save and Load — come from the
// embedded Store.
//
// New code should use NewStore and write through ApplyCtx.
type ConcurrentOracle struct {
	*Store
}

// Concurrent wraps o for concurrent use — deprecated alongside
// ConcurrentOracle; call NewStore instead. Wrapping an oracle that is
// already a ConcurrentOracle returns it unchanged; wrapping a Store shares
// it.
func Concurrent(o Oracle) *ConcurrentOracle {
	if c, ok := o.(*ConcurrentOracle); ok {
		return c
	}
	return &ConcurrentOracle{Store: NewStore(o)}
}
