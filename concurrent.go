package dynhl

import (
	"errors"
	"io"
	"runtime"
	"sync"
)

// batchChunk is the smallest per-worker share of a fanned QueryBatch; below
// it the goroutine hand-off costs more than the queries save.
const batchChunk = 32

// ConcurrentOracle coordinates concurrent access to an Oracle with a
// readers-writer lock, matching the workload shape of the paper's target
// applications: queries are microsecond read-only lookups and run in
// parallel on all cores, while the rare IncHL+ repairs take the write lock
// and are serialised. QueryBatch additionally fans one batch across
// worker goroutines, amortising many-pair lookups.
//
// A ConcurrentOracle is safe for concurrent use by any number of
// goroutines. It relies on the wrapped variant's queries being safe for
// parallel readers, which holds for all oracles in this package.
type ConcurrentOracle struct {
	mu sync.RWMutex
	o  Oracle
}

// Concurrent wraps o for concurrent use. Wrapping an oracle that is already
// a ConcurrentOracle returns it unchanged.
func Concurrent(o Oracle) *ConcurrentOracle {
	if c, ok := o.(*ConcurrentOracle); ok {
		return c
	}
	return &ConcurrentOracle{o: o}
}

// Unwrap returns the wrapped oracle. Callers touching it directly take over
// responsibility for excluding writers.
func (c *ConcurrentOracle) Unwrap() Oracle { return c.o }

// Query answers one exact distance query under the read lock.
func (c *ConcurrentOracle) Query(u, v uint32) Dist {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.o.Query(u, v)
}

// QueryBatch answers many pairs at once, fanning the batch across up to
// GOMAXPROCS workers under a single read-lock acquisition.
func (c *ConcurrentOracle) QueryBatch(pairs []Pair) []Dist {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Dist, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if max := (len(pairs) + batchChunk - 1) / batchChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		for i, p := range pairs {
			out[i] = c.o.Query(p.U, p.V)
		}
		return out
	}
	var wg sync.WaitGroup
	stride := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stride
		hi := min(lo+stride, len(pairs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.o.Query(pairs[i].U, pairs[i].V)
			}
		}()
	}
	wg.Wait()
	return out
}

// InsertEdge inserts an edge under the write lock.
func (c *ConcurrentOracle) InsertEdge(u, v uint32, w Dist) (UpdateSummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.o.InsertEdge(u, v, w)
}

// InsertVertex inserts a vertex under the write lock.
func (c *ConcurrentOracle) InsertVertex(arcs []Arc) (uint32, UpdateSummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.o.InsertVertex(arcs)
}

// DeleteEdge removes an edge under the write lock: the DecHL repair is
// serialised with all other mutations while in-flight readers drain first.
func (c *ConcurrentOracle) DeleteEdge(u, v uint32) (UpdateSummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.o.DeleteEdge(u, v)
}

// DeleteVertex disconnects a vertex under the write lock.
func (c *ConcurrentOracle) DeleteVertex(v uint32) (UpdateSummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.o.DeleteVertex(v)
}

// NumVertices returns the current vertex count under the read lock.
func (c *ConcurrentOracle) NumVertices() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.o.NumVertices()
}

// Stats reports index statistics under the read lock.
func (c *ConcurrentOracle) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.o.Stats()
}

// Verify audits the labelling under the read lock.
func (c *ConcurrentOracle) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.o.Verify()
}

// Save forwards to the wrapped oracle's Saver under the read lock;
// errors.ErrUnsupported when the variant cannot serialise its labelling.
func (c *ConcurrentOracle) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if s, ok := c.o.(Saver); ok {
		return s.Save(w)
	}
	return errors.ErrUnsupported
}

// Load forwards to the wrapped oracle's Loader under the write lock;
// errors.ErrUnsupported when the variant cannot load a labelling.
func (c *ConcurrentOracle) Load(r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.o.(Loader); ok {
		return l.Load(r)
	}
	return errors.ErrUnsupported
}
