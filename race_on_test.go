//go:build race

package dynhl

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation allocates on paths that are allocation-free in
// normal builds; the AllocsPerRun gates skip themselves under it.
const raceEnabled = true
