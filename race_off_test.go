//go:build !race

package dynhl

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
