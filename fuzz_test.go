package dynhl

import (
	"testing"

	"repro/internal/testutil"
)

// FuzzPackedDifferential drives a fuzz-derived op stream through two
// independent read paths and a ground-truth oracle at every epoch:
//
//   - a Store, whose published snapshots answer from the packed CSR arena
//     (pack-on-publish),
//   - a plain Index fed the same batches, which stays on the mutable
//     per-vertex slice form (plain Apply never packs),
//   - all-pairs BFS over a mirror of the graph.
//
// The store runs its repairs under a fuzz-derived worker count while the
// plain index stays serial, so the differential also covers the parallel
// repair engine: any schedule-dependent divergence from the serial result
// shows up as a labelling mismatch.
//
// Any divergence means the two label representations disagree or the
// labelling itself is wrong. The seed corpus runs on every plain `go test`;
// `go test -fuzz=FuzzPackedDifferential` explores further.
func FuzzPackedDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0x10, 0x80, 0x33, 0x01, 0xfe, 0x44, 0x12, 0x90, 0x07, 0x65, 0xab, 0xcd, 0x21, 0x43})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := testutil.RandomConnectedGraph(24, 40, 97)
		mirror := base.Clone()

		// The first byte picks the store's repair fan-out (it is reused as
		// the first op byte — that correlation is harmless for coverage):
		// 0 resolves to GOMAXPROCS, 1..3 are literal widths.
		workers := 0
		if len(data) > 0 {
			workers = int(data[0]) % 4
		}
		packed, err := Build(base, Options{Landmarks: 4, RepairWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		landmark := make(map[uint32]bool)
		for _, l := range packed.Landmarks() {
			landmark[l] = true
		}
		st := NewStore(packed)

		plain, err := Build(mirror.Clone(), Options{Landmarks: 4, RepairWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}

		// Decode data into batches of pre-validated ops: each op consumes
		// three bytes and is kept only if it will succeed, so the Store's
		// all-or-nothing Apply and the plain Index's stop-at-first-failure
		// Apply stay byte-for-byte in lockstep.
		var ops []Op
		apply := func() {
			if len(ops) == 0 {
				return
			}
			if _, err := st.Apply(ops); err != nil {
				t.Fatalf("store apply: %v", err)
			}
			if _, err := plain.Apply(ops); err != nil {
				t.Fatalf("plain apply: %v", err)
			}
			ops = ops[:0]

			v := st.Snapshot()
			if v.Stats().PackedBytes == 0 {
				t.Fatalf("epoch %d published unpacked", v.Epoch())
			}
			n := uint32(mirror.NumVertices())
			if int(n) != v.NumVertices() || int(n) != plain.NumVertices() {
				t.Fatalf("vertex counts diverged: mirror %d, packed %d, plain %d",
					n, v.NumVertices(), plain.NumVertices())
			}
			oracle := testutil.AllPairsOracle(mirror)
			for u := uint32(0); u < n; u++ {
				for w := uint32(0); w < n; w++ {
					want := oracle[u][w]
					if got := v.Query(u, w); got != want {
						t.Fatalf("epoch %d: packed Query(%d,%d) = %d, BFS %d", v.Epoch(), u, w, got, want)
					}
					if got := plain.Query(u, w); got != want {
						t.Fatalf("epoch %d: slice Query(%d,%d) = %d, BFS %d", v.Epoch(), u, w, got, want)
					}
				}
			}
		}

		for i := 0; i+2 < len(data) && mirror.NumVertices() < 48; i += 3 {
			n := uint32(mirror.NumVertices())
			a := uint32(data[i+1]) % n
			b := uint32(data[i+2]) % n
			switch data[i] % 8 {
			case 0, 1, 2: // insert edge
				if a != b && !mirror.HasEdge(a, b) {
					mirror.MustAddEdge(a, b)
					ops = append(ops, InsertEdgeOp(a, b, 0))
				}
			case 3, 4: // delete edge
				if a != b && mirror.HasEdge(a, b) {
					if err := mirror.RemoveEdge(a, b); err != nil {
						t.Fatal(err)
					}
					ops = append(ops, DeleteEdgeOp(a, b))
				}
			case 5: // insert vertex joined to a (and b when distinct)
				neighbors := []uint32{a}
				if b != a {
					neighbors = append(neighbors, b)
				}
				id := mirror.AddVertex()
				for _, w := range neighbors {
					mirror.MustAddEdge(id, w)
				}
				ops = append(ops, InsertVertexOp(Arcs(neighbors...)...))
			case 6: // isolate a non-landmark vertex
				if !landmark[a] && mirror.Degree(a) > 0 {
					for _, w := range append([]uint32(nil), mirror.Neighbors(a)...) {
						if err := mirror.RemoveEdge(a, w); err != nil {
							t.Fatal(err)
						}
					}
					ops = append(ops, DeleteVertexOp(a))
				}
			case 7: // epoch boundary
				apply()
			}
		}
		apply()

		// The final packed and slice labellings must agree entry for entry,
		// not just on sampled answers.
		final := st.Unwrap().(*Index)
		if err := final.idx.EqualLabels(plain.idx); err != nil {
			t.Fatalf("packed store and slice index labellings diverged: %v", err)
		}
	})
}
