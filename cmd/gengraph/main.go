// Command gengraph generates synthetic graphs (the models backing the
// dataset proxies) and writes them as edge lists.
//
//	gengraph -model ba -n 10000 -deg 8 -out social.txt
//	gengraph -model web -n 20000 -deg 40 -span 900 -out crawl.txt
//	gengraph -dataset Indochina -scale 0.5 -out indochina.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		model   = flag.String("model", "ba", "generator: ba|er|ws|rmat|web")
		ds      = flag.String("dataset", "", "generate a named dataset proxy instead")
		scale   = flag.Float64("scale", 1.0, "proxy scale with -dataset")
		n       = flag.Int("n", 10000, "vertices (ba/er/ws/web); rmat uses -rmatscale")
		deg     = flag.Int("deg", 8, "attachment edges (ba), ring degree (ws), total degree (web)")
		edges   = flag.Int("edges", 0, "edge count for er/rmat (default 4n)")
		span    = flag.Int("span", 500, "locality window (web)")
		hubs    = flag.Float64("hubs", 0.01, "hub fraction (web)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		rmScale = flag.Int("rmatscale", 14, "log2 vertices (rmat)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	g, err := generate(*model, *ds, *scale, *n, *deg, *edges, *span, *hubs, *beta, *rmScale, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d vertices, %d edges (avg deg %.2f)\n",
		g.NumVertices(), g.NumEdges(), graph.AvgDegree(g))
}

func generate(model, ds string, scale float64, n, deg, edges, span int, hubs, beta float64, rmScale int, seed int64) (*graph.Graph, error) {
	if ds != "" {
		spec, err := dataset.Lookup(ds)
		if err != nil {
			return nil, err
		}
		return dataset.Generate(spec, scale, seed), nil
	}
	if edges == 0 {
		edges = 4 * n
	}
	switch model {
	case "ba":
		return gen.BarabasiAlbert(n, deg, seed), nil
	case "er":
		return gen.ErdosRenyi(n, edges, seed), nil
	case "ws":
		return gen.WattsStrogatz(n, deg, beta, seed), nil
	case "rmat":
		return gen.RMAT(rmScale, edges, 0.57, 0.19, 0.19, seed), nil
	case "web":
		return gen.WebLocality(n, deg, span, hubs, seed), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
