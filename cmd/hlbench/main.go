// Command hlbench regenerates the tables and figures of the paper's
// evaluation on the synthetic dataset proxies.
//
// Usage:
//
//	hlbench -exp all                         # every experiment, defaults
//	hlbench -exp table1 -scale 0.5           # half-size proxies
//	hlbench -exp fig3 -datasets Skitter,UK   # subset of datasets
//	hlbench -exp fig4 -updates 500           # 500×10 insertions in Fig 4
//	hlbench -exp repair -workers 1,4,16      # repair-engine scaling sweep
//
// Experiments: table1, table2, fig1, fig3, fig4, ablation, packed, mmap,
// repair, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exper"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table2|fig1|fig3|fig4|ablation|packed|mmap|repair|all")
		scale     = flag.Float64("scale", 1.0, "proxy size multiplier")
		updates   = flag.Int("updates", 1000, "edge insertions per dataset")
		queries   = flag.Int("queries", 10000, "distance queries per dataset")
		landmarks = flag.Int("landmarks", 0, "override |R| (0 = per-dataset default)")
		seed      = flag.Int64("seed", 1, "workload seed")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default all)")
		workers   = flag.String("workers", "", "comma-separated repair fan-out sweep for -exp repair (default 1,2,4,8)")
		out       = flag.String("out", "", "write output to file instead of stdout")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cfg := exper.Config{
		Scale:     *scale,
		Updates:   *updates,
		Queries:   *queries,
		Landmarks: *landmarks,
		Seed:      *seed,
		Out:       w,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *workers != "" {
		for _, s := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				fatal(fmt.Errorf("bad -workers entry %q (want positive integers)", s))
			}
			cfg.Workers = append(cfg.Workers, w)
		}
	}

	runners := map[string]func(exper.Config) error{
		"table2":   func(c exper.Config) error { _, err := exper.Table2(c); return err },
		"packed":   func(c exper.Config) error { _, err := exper.Packed(c); return err },
		"fig1":     func(c exper.Config) error { _, err := exper.Fig1(c); return err },
		"table1":   func(c exper.Config) error { _, err := exper.Table1(c); return err },
		"fig3":     func(c exper.Config) error { _, err := exper.Fig3(c); return err },
		"fig4":     func(c exper.Config) error { _, err := exper.Fig4(c); return err },
		"ablation": func(c exper.Config) error { _, err := exper.Ablation(c); return err },
		"mmap":     func(c exper.Config) error { _, err := exper.Mmap(c); return err },
		"repair":   func(c exper.Config) error { _, err := exper.Repair(c); return err },
	}
	order := []string{"table2", "fig1", "table1", "fig3", "fig4", "ablation", "packed", "mmap", "repair"}

	var names []string
	if *exp == "all" {
		names = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s, all)", *exp, strings.Join(order, ", ")))
		}
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (scale=%.2f, updates=%d)...\n", name, cfg.Scale, cfg.Updates)
		if err := runners[name](cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlbench:", err)
	os.Exit(1)
}
