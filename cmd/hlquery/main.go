// Command hlquery builds a dynamic distance oracle over a graph and serves
// interactive queries and updates on stdin — a minimal operational shell
// around the library. The REPL works through the dynhl.Oracle interface, so
// it drives all three index variants (-mode).
//
// Load a graph from an edge-list file or generate a dataset proxy:
//
//	hlquery -graph web.txt -landmarks 20
//	hlquery -graph roads.txt -mode weighted
//	hlquery -dataset Skitter -scale 0.2
//
// The oracle sits behind a versioned snapshot store: queries read the
// current published epoch lock-free, single updates publish one epoch each,
// and apply batches any number of updates into ONE atomic publish — all ops
// land together or (if any fails) not at all.
//
// Commands on stdin:
//
//	q <u> <v>          exact distance query
//	qb <u> <v> [...]   batch query over any number of pairs
//	add <u> <v> [w]    insert edge (graph + index updated; weight on -mode weighted)
//	addv <n1,n2,..>    insert vertex connected to existing vertices
//	de <u> <v>         delete edge (DecHL repair; disconnections answer inf)
//	dv <v>             delete vertex (all incident edges; id stays, isolated)
//	apply <op> ; <op>  batch of add/addv/de/dv ops, one atomic epoch, e.g.
//	                   apply add 1 2 ; de 3 4 ; dv 9
//	epoch              current published epoch
//	stats              index size statistics (and WAL counters when durable)
//	checkpoint         write a durability checkpoint (-data-dir only)
//	verify             O(|R|·|E|) correctness audit of the labelling
//	help, quit
//
// With -data-dir the session is durable: updates are logged to a WAL
// before publishing, recovery on start restores the last durable epoch
// (no -graph needed on later runs), and quit takes a final checkpoint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dynhl "repro"
	"repro/internal/cli"
	"repro/internal/wal"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		mode      = flag.String("mode", "undirected", "graph type of -graph: undirected, directed or weighted")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead (e.g. Skitter)")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy  = flag.String("strategy", "", "landmark selection strategy (topdegree, random, weighted)")
		seed      = flag.Int64("seed", 1, "generator and selection seed")
		parallel  = flag.Bool("parallel", false, "parallel index construction")
		dataDir   = flag.String("data-dir", "", "durability directory: recover on start, WAL every update, checkpoint on quit")
	)
	flag.Parse()

	opt := dynhl.Options{Landmarks: *landmarks, Strategy: *strategy, Seed: *seed, Parallel: *parallel}
	start := time.Now()
	var store *dynhl.Store
	var durable *wal.Durable
	if *dataDir != "" {
		recovering := wal.HasState(*dataDir)
		var err error
		durable, err = wal.Open(*dataDir, func() (dynhl.Oracle, error) {
			return cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
		}, wal.Options{Logf: replWarnf})
		if err != nil {
			fatal(err)
		}
		store = durable.Store()
		if recovering {
			fmt.Printf("recovered epoch %d from %s in %v (replayed %d log records)\n",
				store.Epoch(), *dataDir, time.Since(start).Round(time.Millisecond), durable.Replayed())
		}
	} else {
		oracle, err := cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
		if err != nil {
			fatal(err)
		}
		store = dynhl.NewStore(oracle)
	}
	st := store.Stats()
	fmt.Printf("graph: %d vertices, %d edges (%s)\n", st.Vertices, st.Edges, *mode)
	fmt.Printf("index ready in %v: %d landmarks, %d entries (avg %.2f/vertex)\n",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize)

	repl(store, durable)
	if durable != nil {
		if err := durable.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpointed epoch %d\n", store.Epoch())
	}
}

// replWarnf surfaces WAL warnings without tearing the prompt apart.
func replWarnf(format string, args ...any) {
	fmt.Printf("wal: "+format+"\n", args...)
}

func repl(o *dynhl.Store, durable *wal.Durable) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if quit := execute(o, durable, fields); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// execute runs one command, reporting whether the REPL should exit.
func execute(o *dynhl.Store, durable *wal.Durable, fields []string) bool {
	switch fields[0] {
	case "q", "query":
		u, v, err := twoVertices(fields[1:])
		if err == nil {
			err = checkVertices(o, u, v)
		}
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		d := o.Query(u, v)
		el := time.Since(start)
		if d == dynhl.Inf {
			fmt.Printf("d(%d,%d) = inf (unreachable)  [%v]\n", u, v, el)
		} else {
			fmt.Printf("d(%d,%d) = %d  [%v]\n", u, v, d, el)
		}
	case "qb":
		pairs, err := parsePairs(fields[1:])
		for _, p := range pairs {
			if err != nil {
				break
			}
			err = checkVertices(o, p.U, p.V)
		}
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		ds := o.QueryBatch(pairs)
		el := time.Since(start)
		for i, d := range ds {
			if d == dynhl.Inf {
				fmt.Printf("d(%d,%d) = inf\n", pairs[i].U, pairs[i].V)
			} else {
				fmt.Printf("d(%d,%d) = %d\n", pairs[i].U, pairs[i].V, d)
			}
		}
		fmt.Printf("%d pairs  [%v]\n", len(pairs), el)
	case "add":
		if len(fields) < 3 || len(fields) > 4 {
			fmt.Println("error: usage add <u> <v> [w]")
			return false
		}
		u, v, err := twoVertices(fields[1:3])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		var w dynhl.Dist
		if len(fields) == 4 {
			parsed, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			w = dynhl.Dist(parsed)
		}
		start := time.Now()
		st, err := o.InsertEdge(u, v, w)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted (%d,%d): %d affected, +%d/-%d entries  [%v]\n",
			u, v, st.Affected, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "addv":
		if len(fields) != 2 {
			fmt.Println("error: usage addv n1,n2,...")
			return false
		}
		var ns []uint32
		for _, s := range strings.Split(fields[1], ",") {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			ns = append(ns, uint32(n))
		}
		v, st, err := o.InsertVertex(dynhl.Arcs(ns...))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted vertex %d (%d neighbours, %d affected)\n", v, len(ns), st.Affected)
	case "de", "del":
		if len(fields) != 3 {
			fmt.Println("error: usage de <u> <v>")
			return false
		}
		u, v, err := twoVertices(fields[1:3])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		st, err := o.DeleteEdge(u, v)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("deleted (%d,%d): %d affected, +%d/-%d entries  [%v]\n",
			u, v, st.Affected, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "dv", "delv":
		if len(fields) != 2 {
			fmt.Println("error: usage dv <v>")
			return false
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		st, err := o.DeleteVertex(uint32(v))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("isolated vertex %d: +%d/-%d entries  [%v]\n",
			v, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "apply":
		ops, err := parseOps(fields[1:])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		sums, err := o.Apply(ops)
		if err != nil {
			fmt.Println("error (batch discarded, epoch unchanged):", err)
			return false
		}
		added, removed := 0, 0
		for _, s := range sums {
			added += s.EntriesAdded
			removed += s.EntriesRemoved
		}
		fmt.Printf("applied %d ops as epoch %d: +%d/-%d entries  [%v]\n",
			len(sums), o.Epoch(), added, removed, time.Since(start))
		for i, s := range sums {
			if s.NewVertex != nil {
				fmt.Printf("  op %d inserted vertex %d\n", i, *s.NewVertex)
			}
		}
	case "epoch":
		fmt.Printf("epoch %d\n", o.Epoch())
	case "stats":
		st := o.Stats()
		fmt.Printf("vertices=%d edges=%d landmarks=%d entries=%d avg=%.2f bytes=%d epoch=%d\n",
			st.Vertices, st.Edges, st.Landmarks, st.LabelEntries, st.AvgLabelSize, st.Bytes, st.Epoch)
		if d := st.Durability; d != nil {
			fmt.Printf("wal: records=%d bytes=%d syncs=%d durable_epoch=%d checkpoint_epoch=%d segments=%d replayed=%d\n",
				d.Records, d.Bytes, d.Syncs, d.DurableEpoch, d.CheckpointEpoch, d.Segments, d.Replayed)
		}
	case "checkpoint":
		if durable == nil {
			fmt.Println("error: not a durable session (start with -data-dir)")
			return false
		}
		start := time.Now()
		epoch, err := durable.Checkpoint()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("checkpointed epoch %d  [%v]\n", epoch, time.Since(start))
	case "verify":
		start := time.Now()
		if err := o.Verify(); err != nil {
			fmt.Println("VERIFY FAILED:", err)
		} else {
			fmt.Printf("labelling verified exact [%v]\n", time.Since(start))
		}
	case "help":
		fmt.Println("commands: q <u> <v> | qb <u> <v> [<u> <v> ...] | add <u> <v> [w] | addv n1,n2,... | de <u> <v> | dv <v> | apply <op> ; <op> ... | epoch | stats | checkpoint | verify | quit")
	case "quit", "exit":
		return true
	default:
		fmt.Printf("unknown command %q (try help)\n", fields[0])
	}
	return false
}

// parseOps parses an apply command's tail: semicolon-separated
// add/addv/de/dv sub-commands sharing the single-update syntax.
func parseOps(args []string) ([]dynhl.Op, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: apply <op> [; <op> ...] with ops add <u> <v> [w] | addv n1,n2,... | de <u> <v> | dv <v>")
	}
	var ops []dynhl.Op
	for _, clause := range strings.Split(strings.Join(args, " "), ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "add":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("add: usage add <u> <v> [w]")
			}
			u, v, err := twoVertices(fields[1:3])
			if err != nil {
				return nil, err
			}
			var w dynhl.Dist
			if len(fields) == 4 {
				parsed, err := strconv.ParseUint(fields[3], 10, 32)
				if err != nil {
					return nil, err
				}
				w = dynhl.Dist(parsed)
			}
			ops = append(ops, dynhl.InsertEdgeOp(u, v, w))
		case "addv":
			if len(fields) != 2 {
				return nil, fmt.Errorf("addv: usage addv n1,n2,...")
			}
			var arcs []dynhl.Arc
			for _, s := range strings.Split(fields[1], ",") {
				n, err := strconv.ParseUint(s, 10, 32)
				if err != nil {
					return nil, err
				}
				arcs = append(arcs, dynhl.Arc{To: uint32(n)})
			}
			ops = append(ops, dynhl.InsertVertexOp(arcs...))
		case "de", "del":
			u, v, err := twoVertices(fields[1:])
			if err != nil {
				return nil, err
			}
			ops = append(ops, dynhl.DeleteEdgeOp(u, v))
		case "dv", "delv":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dv: usage dv <v>")
			}
			n, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, err
			}
			ops = append(ops, dynhl.DeleteVertexOp(uint32(n)))
		default:
			return nil, fmt.Errorf("unknown op %q (want add, addv, de or dv)", fields[0])
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty op batch")
	}
	return ops, nil
}

// checkVertices guards the query paths: Oracle.Query panics on ids the
// graph has never seen, so the REPL refuses them with an error instead.
func checkVertices(o dynhl.Oracle, vs ...uint32) error {
	n := o.NumVertices()
	for _, v := range vs {
		if int(v) >= n {
			return fmt.Errorf("vertex %d out of range (have %d vertices)", v, n)
		}
	}
	return nil
}

func parsePairs(args []string) ([]dynhl.Pair, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("want an even number of vertex ids")
	}
	pairs := make([]dynhl.Pair, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		u, v, err := twoVertices(args[i : i+2])
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, dynhl.Pair{U: u, V: v})
	}
	return pairs, nil
}

func twoVertices(args []string) (uint32, uint32, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want two vertex ids")
	}
	u, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	return uint32(u), uint32(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlquery:", err)
	os.Exit(1)
}
