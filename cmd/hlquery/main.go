// Command hlquery builds a dynamic distance oracle over a graph and serves
// interactive queries and updates on stdin — a minimal operational shell
// around the library. The REPL works through the dynhl.Oracle interface, so
// it drives all three index variants (-mode).
//
// Load a graph from an edge-list file or generate a dataset proxy:
//
//	hlquery -graph web.txt -landmarks 20
//	hlquery -graph roads.txt -mode weighted
//	hlquery -dataset Skitter -scale 0.2
//
// The oracle sits behind a versioned snapshot store: queries read the
// current published epoch lock-free, single updates publish one epoch each,
// and apply batches any number of updates into ONE atomic publish — all ops
// land together or (if any fails) not at all.
//
// Commands on stdin:
//
//	q <u> <v>          exact distance query
//	qb <u> <v> [...]   batch query over any number of pairs
//	add <u> <v> [w]    insert edge (graph + index updated; weight on -mode weighted)
//	addv <n1,n2,..>    insert vertex connected to existing vertices
//	de <u> <v>         delete edge (DecHL repair; disconnections answer inf)
//	dv <v>             delete vertex (all incident edges; id stays, isolated)
//	apply <op> ; <op>  batch of add/addv/de/dv ops, one atomic epoch, e.g.
//	                   apply add 1 2 ; de 3 4 ; dv 9
//	epoch              current published epoch
//	stats              index size statistics (and WAL / replication counters)
//	role               replication role and link state
//	lag                replication lag in epochs and unapplied bytes
//	metrics            nonzero metric series (locally, or the server's /metrics)
//	checkpoint         write a durability checkpoint (-data-dir only)
//	verify             O(|R|·|E|) correctness audit of the labelling
//	help, quit
//
// With -data-dir the session is durable: updates are logged to a WAL
// before publishing, recovery on start restores the last durable epoch
// (no -graph needed on later runs), and quit takes a final checkpoint.
//
// With -server the shell attaches to a running hlserver instead of
// building anything locally: q, epoch, stats, role and lag run against its
// HTTP API — the way to watch a replica's lag or confirm a leader's
// follower count from a terminal.
//
//	hlquery -server http://localhost:8081
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	dynhl "repro"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/wal"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		mode      = flag.String("mode", "undirected", "graph type of -graph: undirected, directed or weighted")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead (e.g. Skitter)")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy  = flag.String("strategy", "", "landmark selection strategy (topdegree, random, weighted)")
		seed      = flag.Int64("seed", 1, "generator and selection seed")
		parallel  = flag.Bool("parallel", false, "parallel index construction")
		dataDir   = flag.String("data-dir", "", "durability directory: recover on start, WAL every update, checkpoint on quit")
		server    = flag.String("server", "", "base URL of a running hlserver: query it remotely instead of building locally")
	)
	flag.Parse()

	if *server != "" {
		if *graphPath != "" || *ds != "" || *dataDir != "" {
			fatal(fmt.Errorf("-server attaches to a running hlserver; drop -graph/-dataset/-data-dir"))
		}
		remoteRepl(strings.TrimRight(*server, "/"))
		return
	}

	opt := dynhl.Options{Landmarks: *landmarks, Strategy: *strategy, Seed: *seed, Parallel: *parallel}
	start := time.Now()
	var store *dynhl.Store
	var durable *wal.Durable
	if *dataDir != "" {
		recovering := wal.HasState(*dataDir)
		var err error
		durable, err = wal.Open(*dataDir, func() (dynhl.Oracle, error) {
			return cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
		}, wal.Options{Logf: replWarnf})
		if err != nil {
			fatal(err)
		}
		store = durable.Store()
		if recovering {
			fmt.Printf("recovered epoch %d from %s in %v (replayed %d log records)\n",
				store.Epoch(), *dataDir, time.Since(start).Round(time.Millisecond), durable.Replayed())
		}
	} else {
		oracle, err := cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
		if err != nil {
			fatal(err)
		}
		store = dynhl.NewStore(oracle)
	}
	st := store.Stats()
	fmt.Printf("graph: %d vertices, %d edges (%s)\n", st.Vertices, st.Edges, *mode)
	fmt.Printf("index ready in %v: %d landmarks, %d entries (avg %.2f/vertex)\n",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize)

	repl(store, durable)
	if durable != nil {
		if err := durable.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpointed epoch %d\n", store.Epoch())
	}
}

// replWarnf surfaces WAL warnings without tearing the prompt apart.
func replWarnf(format string, args ...any) {
	fmt.Printf("wal: "+format+"\n", args...)
}

func repl(o *dynhl.Store, durable *wal.Durable) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if quit := execute(o, durable, fields); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// execute runs one command, reporting whether the REPL should exit.
func execute(o *dynhl.Store, durable *wal.Durable, fields []string) bool {
	switch fields[0] {
	case "q", "query":
		u, v, err := twoVertices(fields[1:])
		if err == nil {
			err = checkVertices(o, u, v)
		}
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		d := o.Query(u, v)
		el := time.Since(start)
		if d == dynhl.Inf {
			fmt.Printf("d(%d,%d) = inf (unreachable)  [%v]\n", u, v, el)
		} else {
			fmt.Printf("d(%d,%d) = %d  [%v]\n", u, v, d, el)
		}
	case "qb":
		pairs, err := parsePairs(fields[1:])
		for _, p := range pairs {
			if err != nil {
				break
			}
			err = checkVertices(o, p.U, p.V)
		}
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		ds := o.QueryBatch(pairs)
		el := time.Since(start)
		for i, d := range ds {
			if d == dynhl.Inf {
				fmt.Printf("d(%d,%d) = inf\n", pairs[i].U, pairs[i].V)
			} else {
				fmt.Printf("d(%d,%d) = %d\n", pairs[i].U, pairs[i].V, d)
			}
		}
		fmt.Printf("%d pairs  [%v]\n", len(pairs), el)
	case "add":
		if len(fields) < 3 || len(fields) > 4 {
			fmt.Println("error: usage add <u> <v> [w]")
			return false
		}
		u, v, err := twoVertices(fields[1:3])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		var w dynhl.Dist
		if len(fields) == 4 {
			parsed, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			w = dynhl.Dist(parsed)
		}
		start := time.Now()
		st, err := o.InsertEdge(u, v, w)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted (%d,%d): %d affected, +%d/-%d entries  [%v]\n",
			u, v, st.Affected, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "addv":
		if len(fields) != 2 {
			fmt.Println("error: usage addv n1,n2,...")
			return false
		}
		var ns []uint32
		for _, s := range strings.Split(fields[1], ",") {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			ns = append(ns, uint32(n))
		}
		v, st, err := o.InsertVertex(dynhl.Arcs(ns...))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted vertex %d (%d neighbours, %d affected)\n", v, len(ns), st.Affected)
	case "de", "del":
		if len(fields) != 3 {
			fmt.Println("error: usage de <u> <v>")
			return false
		}
		u, v, err := twoVertices(fields[1:3])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		st, err := o.DeleteEdge(u, v)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("deleted (%d,%d): %d affected, +%d/-%d entries  [%v]\n",
			u, v, st.Affected, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "dv", "delv":
		if len(fields) != 2 {
			fmt.Println("error: usage dv <v>")
			return false
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		st, err := o.DeleteVertex(uint32(v))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("isolated vertex %d: +%d/-%d entries  [%v]\n",
			v, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "apply":
		ops, err := parseOps(fields[1:])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		res, err := o.ApplyCtx(context.Background(), ops)
		if err != nil {
			fmt.Println("error (batch discarded, epoch unchanged):", err)
			return false
		}
		sums := res.Summaries
		added, removed := 0, 0
		for _, s := range sums {
			added += s.EntriesAdded
			removed += s.EntriesRemoved
		}
		note := ""
		if res.Coalesced {
			note = " (group commit, epoch shared with concurrent writers)"
		}
		fmt.Printf("applied %d ops as epoch %d%s: +%d/-%d entries  [%v]\n",
			len(sums), res.Epoch, note, added, removed, time.Since(start))
		for i, s := range sums {
			if s.NewVertex != nil {
				fmt.Printf("  op %d inserted vertex %d\n", i, *s.NewVertex)
			}
		}
	case "epoch":
		fmt.Printf("epoch %d\n", o.Epoch())
	case "stats":
		printStats(o.Stats())
	case "role":
		printRole(o.Stats())
	case "lag":
		printLag(o.Stats())
	case "checkpoint":
		if durable == nil {
			fmt.Println("error: not a durable session (start with -data-dir)")
			return false
		}
		start := time.Now()
		epoch, err := durable.Checkpoint()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("checkpointed epoch %d  [%v]\n", epoch, time.Since(start))
	case "verify":
		start := time.Now()
		if err := o.Verify(); err != nil {
			fmt.Println("VERIFY FAILED:", err)
		} else {
			fmt.Printf("labelling verified exact [%v]\n", time.Since(start))
		}
	case "metrics":
		var b strings.Builder
		regs := append(o.MetricsRegistries(), obs.Runtime())
		if err := obs.WriteAll(&b, regs...); err != nil {
			fmt.Println("error:", err)
			return false
		}
		printMetrics(b.String())
	case "help":
		fmt.Println("commands: q <u> <v> | qb <u> <v> [<u> <v> ...] | add <u> <v> [w] | addv n1,n2,... | de <u> <v> | dv <v> | apply <op> ; <op> ... | epoch | stats | role | lag | metrics | checkpoint | verify | quit")
	case "quit", "exit":
		return true
	default:
		fmt.Printf("unknown command %q (try help)\n", fields[0])
	}
	return false
}

// printStats renders one Stats the same way for every variant and for both
// local and remote sessions: the index line always carries the packed CSR
// bytes and the published epoch, with WAL and replication counters on their
// own lines when present.
func printStats(st dynhl.Stats) {
	fmt.Printf("vertices=%d edges=%d landmarks=%d entries=%d avg=%.2f bytes=%d packed=%d mapped=%d epoch=%d\n",
		st.Vertices, st.Edges, st.Landmarks, st.LabelEntries, st.AvgLabelSize, st.Bytes, st.PackedBytes, st.MappedBytes, st.Epoch)
	if d := st.Durability; d != nil {
		fmt.Printf("wal: records=%d bytes=%d syncs=%d durable_epoch=%d checkpoint_epoch=%d segments=%d replayed=%d\n",
			d.Records, d.Bytes, d.Syncs, d.DurableEpoch, d.CheckpointEpoch, d.Segments, d.Replayed)
	}
	if r := st.Replication; r != nil {
		fmt.Printf("repl: role=%s ready=%v connected=%v leader_epoch=%d lag_epochs=%d lag_bytes=%d followers=%d\n",
			r.Role, r.Ready, r.Connected, r.LeaderEpoch, r.LagEpochs, r.LagBytes, r.Followers)
	}
}

// printRole renders the replication role and link state.
func printRole(st dynhl.Stats) {
	r := st.Replication
	if r == nil {
		fmt.Println("role standalone (no replication link)")
		return
	}
	switch r.Role {
	case "leader":
		fmt.Printf("role leader: epoch %d, %d followers, shipped %d records / %d bytes (%d bootstraps, %d resumes)\n",
			st.Epoch, r.Followers, r.ShippedRecords, r.ShippedBytes, r.Bootstraps, r.Resumes)
	default:
		state := "bootstrapping"
		if r.Ready {
			state = "serving"
		}
		link := "disconnected"
		if r.Connected {
			link = "connected"
		}
		fmt.Printf("role follower of %s: %s, link %s, epoch %d (leader at %d)\n",
			r.Leader, state, link, st.Epoch, r.LeaderEpoch)
	}
}

// printLag renders how far the store trails (or leads) its replication peer.
func printLag(st dynhl.Stats) {
	r := st.Replication
	if r == nil {
		fmt.Println("lag: standalone store, no replication link")
		return
	}
	line := fmt.Sprintf("lag: %d epochs, %d bytes unapplied (epoch %d, leader at %d)",
		r.LagEpochs, r.LagBytes, st.Epoch, r.LeaderEpoch)
	if !r.LastContact.IsZero() {
		line += fmt.Sprintf(", last contact %v ago", time.Since(r.LastContact).Round(time.Millisecond))
	}
	fmt.Println(line)
}

// remoteRepl attaches the shell to a running hlserver: the observability
// commands run against its HTTP API, nothing is built locally.
func remoteRepl(base string) {
	st, err := fetchStats(base)
	if err != nil {
		fatal(fmt.Errorf("cannot reach %s: %w", base, err))
	}
	fmt.Printf("attached to %s (epoch %d, %d vertices)\n", base, st.Epoch, st.Vertices)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if quit := remoteExecute(base, fields); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// remoteExecute runs one remote command, reporting whether to exit.
func remoteExecute(base string, fields []string) bool {
	switch fields[0] {
	case "q", "query":
		u, v, err := twoVertices(fields[1:])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		var dr struct {
			Distance *uint32 `json:"distance"`
		}
		start := time.Now()
		if err := getJSON(fmt.Sprintf("%s/distance?u=%d&v=%d", base, u, v), &dr); err != nil {
			fmt.Println("error:", err)
			return false
		}
		el := time.Since(start)
		if dr.Distance == nil {
			fmt.Printf("d(%d,%d) = inf (unreachable)  [%v]\n", u, v, el)
		} else {
			fmt.Printf("d(%d,%d) = %d  [%v]\n", u, v, *dr.Distance, el)
		}
	case "epoch", "stats", "role", "lag":
		st, err := fetchStats(base)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		switch fields[0] {
		case "epoch":
			fmt.Printf("epoch %d\n", st.Epoch)
		case "stats":
			printStats(st)
		case "role":
			printRole(st)
		case "lag":
			printLag(st)
		}
	case "metrics":
		text, err := getText(base + "/metrics")
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printMetrics(text)
	case "help":
		fmt.Println("remote commands: q <u> <v> | epoch | stats | role | lag | metrics | quit (updates go through the server's own API)")
	case "quit", "exit":
		return true
	default:
		fmt.Printf("unknown or local-only command %q (try help)\n", fields[0])
	}
	return false
}

// fetchStats retrieves a running hlserver's /stats.
func fetchStats(base string) (dynhl.Stats, error) {
	var st dynhl.Stats
	return st, getJSON(base+"/stats", &st)
}

// printMetrics renders a Prometheus text exposition for a terminal: the
// nonzero series, minus the per-bucket histogram lines (the _sum/_count
// pairs tell the latency story at a glance; scrape /metrics for buckets).
func printMetrics(text string) {
	shown := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "_bucket") {
			continue
		}
		if v, err := strconv.ParseFloat(value, 64); err == nil && v == 0 {
			continue
		}
		fmt.Println(line)
		shown++
	}
	if shown == 0 {
		fmt.Println("no nonzero series yet (run some queries or updates first)")
	}
}

// getText retrieves one GET endpoint's body verbatim.
func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// getJSON decodes one GET endpoint into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseOps parses an apply command's tail: semicolon-separated
// add/addv/de/dv sub-commands sharing the single-update syntax.
func parseOps(args []string) ([]dynhl.Op, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: apply <op> [; <op> ...] with ops add <u> <v> [w] | addv n1,n2,... | de <u> <v> | dv <v>")
	}
	var ops []dynhl.Op
	for _, clause := range strings.Split(strings.Join(args, " "), ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "add":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("add: usage add <u> <v> [w]")
			}
			u, v, err := twoVertices(fields[1:3])
			if err != nil {
				return nil, err
			}
			var w dynhl.Dist
			if len(fields) == 4 {
				parsed, err := strconv.ParseUint(fields[3], 10, 32)
				if err != nil {
					return nil, err
				}
				w = dynhl.Dist(parsed)
			}
			ops = append(ops, dynhl.InsertEdgeOp(u, v, w))
		case "addv":
			if len(fields) != 2 {
				return nil, fmt.Errorf("addv: usage addv n1,n2,...")
			}
			var arcs []dynhl.Arc
			for _, s := range strings.Split(fields[1], ",") {
				n, err := strconv.ParseUint(s, 10, 32)
				if err != nil {
					return nil, err
				}
				arcs = append(arcs, dynhl.Arc{To: uint32(n)})
			}
			ops = append(ops, dynhl.InsertVertexOp(arcs...))
		case "de", "del":
			u, v, err := twoVertices(fields[1:])
			if err != nil {
				return nil, err
			}
			ops = append(ops, dynhl.DeleteEdgeOp(u, v))
		case "dv", "delv":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dv: usage dv <v>")
			}
			n, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, err
			}
			ops = append(ops, dynhl.DeleteVertexOp(uint32(n)))
		default:
			return nil, fmt.Errorf("unknown op %q (want add, addv, de or dv)", fields[0])
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty op batch")
	}
	return ops, nil
}

// checkVertices guards the query paths: Oracle.Query panics on ids the
// graph has never seen, so the REPL refuses them with an error instead.
func checkVertices(o dynhl.Oracle, vs ...uint32) error {
	n := o.NumVertices()
	for _, v := range vs {
		if int(v) >= n {
			return fmt.Errorf("vertex %d out of range (have %d vertices)", v, n)
		}
	}
	return nil
}

func parsePairs(args []string) ([]dynhl.Pair, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("want an even number of vertex ids")
	}
	pairs := make([]dynhl.Pair, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		u, v, err := twoVertices(args[i : i+2])
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, dynhl.Pair{U: u, V: v})
	}
	return pairs, nil
}

func twoVertices(args []string) (uint32, uint32, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want two vertex ids")
	}
	u, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	return uint32(u), uint32(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlquery:", err)
	os.Exit(1)
}
