// Command hlquery builds a dynamic distance index over a graph and serves
// interactive queries and updates on stdin — a minimal operational shell
// around the library.
//
// Load a graph from an edge-list file or generate a dataset proxy:
//
//	hlquery -graph web.txt -landmarks 20
//	hlquery -dataset Skitter -scale 0.2
//
// Commands on stdin:
//
//	q <u> <v>        exact distance query
//	add <u> <v>      insert edge (graph + index updated)
//	addv <n1,n2,..>  insert vertex connected to existing vertices
//	stats            index size statistics
//	verify           O(|R|·|E|) correctness audit of the labelling
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dynhl "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead (e.g. Skitter)")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		seed      = flag.Int64("seed", 1, "generator seed")
		parallel  = flag.Bool("parallel", false, "parallel index construction")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *ds, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: *landmarks, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index built in %v: %d landmarks, %d entries (avg %.2f/vertex)\n",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize)

	repl(idx)
}

func loadGraph(path, ds string, scale float64, seed int64) (*dynhl.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dynhl.ReadGraph(f)
	case ds != "":
		spec, err := dataset.Lookup(ds)
		if err != nil {
			return nil, err
		}
		return dataset.Generate(spec, scale, seed), nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}

func repl(idx *dynhl.Index) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 {
			if quit := execute(idx, fields); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

// execute runs one command, reporting whether the REPL should exit.
func execute(idx *dynhl.Index, fields []string) bool {
	switch fields[0] {
	case "q", "query":
		u, v, err := twoVertices(fields[1:])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		d := idx.Query(u, v)
		el := time.Since(start)
		if d == dynhl.Inf {
			fmt.Printf("d(%d,%d) = inf (disconnected)  [%v]\n", u, v, el)
		} else {
			fmt.Printf("d(%d,%d) = %d  [%v]\n", u, v, d, el)
		}
	case "add":
		u, v, err := twoVertices(fields[1:])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		start := time.Now()
		st, err := idx.InsertEdge(u, v)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted (%d,%d): %d affected, +%d/-%d entries  [%v]\n",
			u, v, st.AffectedUnion, st.EntriesAdded, st.EntriesRemoved, time.Since(start))
	case "addv":
		if len(fields) != 2 {
			fmt.Println("error: usage addv n1,n2,...")
			return false
		}
		var ns []uint32
		for _, s := range strings.Split(fields[1], ",") {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			ns = append(ns, uint32(n))
		}
		v, st, err := idx.InsertVertex(ns)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("inserted vertex %d (%d neighbours, %d affected)\n", v, len(ns), st.AffectedUnion)
	case "stats":
		st := idx.Stats()
		fmt.Printf("vertices=%d edges=%d landmarks=%d entries=%d avg=%.2f bytes=%d\n",
			st.Vertices, st.Edges, st.Landmarks, st.LabelEntries, st.AvgLabelSize, st.Bytes)
	case "verify":
		start := time.Now()
		if err := idx.Verify(); err != nil {
			fmt.Println("VERIFY FAILED:", err)
		} else {
			fmt.Printf("labelling verified exact [%v]\n", time.Since(start))
		}
	case "help":
		fmt.Println("commands: q <u> <v> | add <u> <v> | addv n1,n2,... | stats | verify | quit")
	case "quit", "exit":
		return true
	default:
		fmt.Printf("unknown command %q (try help)\n", fields[0])
	}
	return false
}

func twoVertices(args []string) (uint32, uint32, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want two vertex ids")
	}
	u, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return 0, 0, err
	}
	return uint32(u), uint32(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlquery:", err)
	os.Exit(1)
}
