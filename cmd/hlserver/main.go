// Command hlserver serves exact distance queries and online updates over
// HTTP (see internal/httpapi for the JSON API). The graph comes from an
// edge-list file or a generated dataset proxy.
//
//	hlserver -graph web.txt -addr :8080
//	hlserver -dataset Flickr -scale 0.2 -landmarks 20
//
//	curl 'localhost:8080/distance?u=3&v=97'
//	curl -X POST localhost:8080/edges -d '{"u":3,"v":97}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	dynhl "repro"
	"repro/internal/dataset"
	"repro/internal/httpapi"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file to load")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *ds, *scale, *seed)
	if err != nil {
		log.Fatal("hlserver: ", err)
	}
	log.Printf("graph: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	start := time.Now()
	idx, err := dynhl.Build(g, dynhl.Options{Landmarks: *landmarks, Parallel: true})
	if err != nil {
		log.Fatal("hlserver: ", err)
	}
	st := idx.Stats()
	log.Printf("index built in %v: %d landmarks, %d entries (%.2f per vertex)",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(idx).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal("hlserver: ", err)
	}
}

func loadGraph(path, ds string, scale float64, seed int64) (*dynhl.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dynhl.ReadGraph(f)
	case ds != "":
		spec, err := dataset.Lookup(ds)
		if err != nil {
			return nil, err
		}
		return dataset.Generate(spec, scale, seed), nil
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}
