// Command hlserver serves exact distance queries and online updates over
// HTTP (see internal/httpapi for the JSON API). One binary serves all three
// index variants through the dynhl.Oracle interface: the graph comes from
// an edge-list file (undirected, directed, or weighted by -mode) or a
// generated dataset proxy.
//
//	hlserver -graph web.txt -addr :8080
//	hlserver -graph roads.txt -mode weighted
//	hlserver -dataset Flickr -scale 0.2 -landmarks 20
//
//	curl 'localhost:8080/distance?u=3&v=97'
//	curl -X POST localhost:8080/distances -d '{"pairs":[{"u":3,"v":97},{"u":0,"v":5}]}'
//	curl -X POST localhost:8080/edges -d '{"u":3,"v":97}'
//	curl -X DELETE 'localhost:8080/edges?u=3&v=97'
//	curl -X POST localhost:8080/updates -d '{"ops":[{"op":"insert_edge","u":3,"v":97},{"op":"delete_edge","u":0,"v":5}]}'
//
// The oracle is served through a versioned snapshot store: reads run
// lock-free against the current published snapshot (tagged with an
// X-Oracle-Epoch response header) and update batches posted to /updates
// publish atomically as one new epoch. Concurrent update requests ride the
// store's group-commit pipeline — batches waiting together coalesce into
// one fork, one WAL record (one fsync) and one published epoch, which the
// /updates response reports via its coalesced field — and a request whose
// client gives up before its batch commits is excised from the queue and
// answered 499. The server shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests.
//
// With -data-dir the server is durable (undirected oracles): every update
// batch is appended to a write-ahead log before its epoch is published, a
// checkpoint of graph plus labelling is written every -checkpoint-every
// records (and on graceful shutdown), and a restart recovers the exact
// last durable epoch from checkpoint plus log tail instead of rebuilding
// the index from scratch — on an initialised data directory -graph is not
// needed. -fsync trades append latency for crash durability. The admin
// endpoints POST /checkpoint and GET /wal/stats come alive, and /stats
// carries the WAL counters.
//
//	hlserver -graph web.txt -data-dir /var/lib/hlserver   # first boot
//	hlserver -data-dir /var/lib/hlserver                  # every later boot
//
// Read scaling comes from replication (-role): a durable server started
// with -role leader additionally listens on -replicate-addr and streams its
// newest checkpoint plus WAL tail to followers; a server started with
// -role follower -leader-addr host:port needs no graph, labels or data
// directory at all — it bootstraps from the shipped checkpoint, replays
// every update batch under the leader's own epoch numbers, and serves the
// full read API. Followers answer writes with 503 plus an X-Oracle-Leader
// header pointing at the leader, report replication lag in /stats, and
// GET /healthz turns 200 once the first bootstrap lands.
//
//	hlserver -graph web.txt -data-dir /var/lib/hl -role leader -replicate-addr :7601
//	hlserver -role follower -leader-addr leader:7601 -addr :8081
//
// Without -data-dir, -load-labels seeds the server from a prebuilt
// labelling file (the Save/GET /labels format, written over the same
// graph) instead of constructing labels at boot, and -save-labels writes
// the final labelling on graceful shutdown for the next boot to load.
//
// -mmap (default auto) serves v2 checkpoint and label files straight out
// of an mmap instead of decoding a heap copy, so boot cost stops scaling
// with labelling size — entries page in on first touch. MappedBytes in
// /stats and mapped_bytes in /healthz report the mapped region; -mmap off
// forces the copy-in loads everywhere.
//
// Observability: GET /metrics exposes Prometheus text metrics (query
// latency histograms, write-pipeline stage timings, WAL and replication
// counters, Go runtime basics) on the API port. -debug-addr adds a second
// listener carrying /debug/pprof and /metrics, keeping profilers off the
// public port; -access-log logs one structured line per request; and
// -slow-query 50ms logs queries over the threshold, rate-bounded.
//
//	hlserver -graph web.txt -debug-addr localhost:6060 -slow-query 50ms
//	curl localhost:8080/metrics
//	go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	dynhl "repro"
	"repro/internal/cli"
	"repro/internal/httpapi"
	"repro/internal/repl"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file to load")
		mode      = flag.String("mode", "undirected", "graph type of -graph: undirected, directed or weighted")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead (undirected)")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy  = flag.String("strategy", "", "landmark selection strategy (topdegree, random, weighted)")
		seed      = flag.Int64("seed", 1, "generator and selection seed")

		dataDir    = flag.String("data-dir", "", "durability directory (WAL + checkpoints): recover on boot, log every update, checkpoint on shutdown")
		fsyncMode  = flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval or off")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync cadence with -fsync interval")
		ckptEvery  = flag.Int("checkpoint-every", 10000, "WAL records between automatic checkpoints with -data-dir (0 = manual and shutdown only)")
		loadLabels = flag.String("load-labels", "", "labelling file to load at boot instead of constructing labels (undirected; saved over the same -graph)")
		saveLabels = flag.String("save-labels", "", "labelling file to write on graceful shutdown")

		role       = flag.String("role", "standalone", "serving role: standalone, leader (stream checkpoints + WAL to followers) or follower (replicate from -leader-addr)")
		replAddr   = flag.String("replicate-addr", ":7601", "replication listen address with -role leader")
		leaderAddr = flag.String("leader-addr", "", "leader replication address with -role follower")

		mmapFlag = flag.String("mmap", "auto", "serve checkpoint and label files out of an mmap instead of decoding a heap copy: auto, on or off")

		repairWorkers = flag.Int("repair-workers", 0, "per-landmark fan-out of update repairs and the delta repack (0 = GOMAXPROCS, 1 = serial; results are identical for every value)")

		debugAddr = flag.String("debug-addr", "", "extra listen address serving /debug/pprof and /metrics (empty = off)")
		accessLog = flag.Bool("access-log", false, "log one structured line per HTTP request")
		slowQuery = flag.Duration("slow-query", 0, "log queries slower than this threshold, rate-bounded (0 = off)")
	)
	flag.Parse()

	mmapMode, err := parseMapMode(*mmapFlag)
	if err != nil {
		log.Fatal("hlserver: ", err)
	}

	switch *role {
	case "follower":
		if *leaderAddr == "" {
			log.Fatal("hlserver: -role follower requires -leader-addr")
		}
		runFollower(*addr, *leaderAddr, mmapMode, *repairWorkers, *debugAddr, *accessLog, *slowQuery)
		return
	case "standalone", "leader", "":
		if *role == "leader" && *dataDir == "" {
			log.Fatal("hlserver: -role leader requires -data-dir (followers replicate the WAL)")
		}
	default:
		log.Fatalf("hlserver: unknown -role %q (want standalone, leader or follower)", *role)
	}

	opt := dynhl.Options{Landmarks: *landmarks, Strategy: *strategy, Seed: *seed, Parallel: true, RepairWorkers: *repairWorkers}
	build := func() (dynhl.Oracle, error) {
		return cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
	}

	start := time.Now()
	var store *dynhl.Store
	var durable *wal.Durable
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsyncMode)
		if err != nil {
			log.Fatal("hlserver: ", err)
		}
		recovering := wal.HasState(*dataDir)
		durable, err = wal.Open(*dataDir, build, wal.Options{
			Fsync:           policy,
			FsyncInterval:   *fsyncEvery,
			CheckpointEvery: *ckptEvery,
			Logf:            log.Printf,
			Mmap:            mmapMode,
		})
		if err != nil {
			log.Fatal("hlserver: ", err)
		}
		store = durable.Store()
		if recovering {
			if *graphPath != "" || *ds != "" {
				log.Printf("note: %s already holds state; -graph/-dataset ignored in favour of recovery", *dataDir)
			}
			log.Printf("recovered epoch %d from %s in %v (replayed %d log records)",
				store.Epoch(), *dataDir, time.Since(start).Round(time.Millisecond), durable.Replayed())
			if mapped := store.Stats().MappedBytes; mapped > 0 {
				log.Printf("labels mmap-served from the checkpoint (%d bytes page in on demand)", mapped)
			}
		} else {
			log.Printf("initialised durable state in %s (fsync %s)", *dataDir, policy)
		}
	} else {
		oracle, err := build()
		if err != nil {
			log.Fatal("hlserver: ", err)
		}
		store = dynhl.NewStore(oracle)
	}
	// Recovery rebuilds the oracle from checkpoint bytes, which does not
	// carry the fan-out; (re)apply it store-wide so every path agrees.
	store.SetRepairWorkers(*repairWorkers)
	log.Printf("repair engine: %d workers", store.RepairWorkers())
	if *loadLabels != "" {
		if err := loadLabelFile(store, *loadLabels, mmapMode); err != nil {
			log.Fatal("hlserver: ", err)
		}
		if mapped := store.Stats().MappedBytes; mapped > 0 {
			log.Printf("loaded labelling from %s mmap-served (epoch %d, %d bytes)", *loadLabels, store.Epoch(), mapped)
		} else {
			log.Printf("loaded labelling from %s (epoch %d)", *loadLabels, store.Epoch())
		}
	}
	st := store.Stats()
	log.Printf("graph: %d vertices, %d edges (%s)", st.Vertices, st.Edges, *mode)
	log.Printf("index ready in %v: %d landmarks, %d entries (%.2f per vertex), serving epoch %d",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize,
		store.Epoch())

	var leader *repl.Leader
	if *role == "leader" {
		var err error
		leader, err = repl.StartLeader(*replAddr, durable, repl.Options{Logf: log.Printf})
		if err != nil {
			log.Fatal("hlserver: ", err)
		}
		log.Printf("replicating to followers on %s", leader.Addr())
	}

	if *slowQuery > 0 {
		store.SetSlowQueryLog(*slowQuery, nil)
		log.Printf("logging queries slower than %v", *slowQuery)
	}
	opts := []httpapi.Option{}
	if durable != nil {
		opts = append(opts, httpapi.WithDurability(durable))
	}
	api := httpapi.New(store, opts...)
	startDebug(*debugAddr, api)
	serve(*addr, maybeAccessLog(*accessLog, api.Handler()), func() {
		if leader != nil {
			// Drop follower links first: they reconnect against the next boot.
			if err := leader.Close(); err != nil {
				log.Print("hlserver: closing replication listener: ", err)
			}
		}
		if durable != nil {
			// The final checkpoint: the next boot recovers instantly.
			if err := durable.Close(); err != nil {
				log.Fatal("hlserver: closing durable store: ", err)
			}
			log.Printf("checkpointed epoch %d", store.Epoch())
		}
		if *saveLabels != "" {
			if err := saveLabelFile(store, *saveLabels, mmapMode); err != nil {
				log.Fatal("hlserver: ", err)
			}
			log.Printf("saved labelling to %s (epoch %d)", *saveLabels, store.Epoch())
		}
	})
}

// runFollower serves a read replica: no local graph, labels or WAL — the
// whole state is bootstrapped and then replayed from the leader.
func runFollower(addr, leaderAddr string, mmapMode wal.MapMode, repairWorkers int, debugAddr string, accessLog bool, slowQuery time.Duration) {
	f := repl.StartFollower(leaderAddr, repl.Options{Logf: log.Printf, Mmap: mmapMode, RepairWorkers: repairWorkers})
	log.Printf("replicating from %s (reads 503 until the first bootstrap lands)", leaderAddr)
	go func() {
		if err := f.WaitReady(context.Background()); err != nil {
			return
		}
		st := f.Store().Stats()
		log.Printf("bootstrapped at epoch %d: %d vertices, %d edges", st.Epoch, st.Vertices, st.Edges)
		if slowQuery > 0 {
			// The replica store exists only once the bootstrap lands.
			f.Store().SetSlowQueryLog(slowQuery, nil)
			log.Printf("logging queries slower than %v", slowQuery)
		}
	}()
	api := httpapi.NewReplica(f)
	startDebug(debugAddr, api)
	serve(addr, maybeAccessLog(accessLog, api.Handler()), func() {
		if err := f.Close(); err != nil {
			log.Fatal("hlserver: closing follower: ", err)
		}
		if s := f.Store(); s != nil {
			log.Printf("stopped replicating at epoch %d", s.Epoch())
		}
	})
}

// maybeAccessLog wraps next with the structured access log when enabled.
func maybeAccessLog(on bool, next http.Handler) http.Handler {
	if !on {
		return next
	}
	return httpapi.AccessLog(log.Printf, next)
}

// startDebug serves pprof and /metrics on their own listener when
// -debug-addr is set — the profiling surface stays off the public port.
func startDebug(addr string, api *httpapi.Server) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", api.MetricsHandler())
	go func() {
		log.Printf("debug listener (pprof + /metrics) on %s", addr)
		srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print("hlserver: debug listener: ", err)
		}
	}()
}

// serve runs the HTTP server until SIGINT/SIGTERM, drains in-flight
// requests, then runs shutdown hooks (replication, checkpoints, labels).
func serve(addr string, handler http.Handler, shutdown func()) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal("hlserver: ", err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal("hlserver: shutdown: ", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("hlserver: ", err)
		}
		shutdown()
		log.Print("bye")
	}
}

// parseMapMode resolves the -mmap flag.
func parseMapMode(s string) (wal.MapMode, error) {
	switch s {
	case "auto", "":
		return wal.MapAuto, nil
	case "on":
		return wal.MapOn, nil
	case "off":
		return wal.MapOff, nil
	}
	return 0, fmt.Errorf("unknown -mmap mode %q (want auto, on or off)", s)
}

// loadLabelFile publishes the labelling stored in path (Save format over
// the server's current graph) as a new epoch. When the mmap mode allows
// it and the file is the mappable v2 layout, the labels are served
// straight out of an mmap of the file instead of a heap copy.
func loadLabelFile(store *dynhl.Store, path string, mode wal.MapMode) error {
	if mode.Enabled() {
		if _, err := store.LoadMappedFile(path); err == nil {
			return nil
		} else if !errors.Is(err, dynhl.ErrNotMappable) && !errors.Is(err, errors.ErrUnsupported) {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return store.Load(f)
}

// saveLabelFile writes the current snapshot's labelling to path — in the
// mappable v2 layout when the mmap mode allows it, so the next boot's
// -load-labels can serve the file zero-copy (v2 files remain loadable by
// the copy-in reader everywhere).
func saveLabelFile(store *dynhl.Store, path string, mode wal.MapMode) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	save := store.Save
	if mode.Enabled() {
		save = store.SaveMappable
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
