// Command hlserver serves exact distance queries and online updates over
// HTTP (see internal/httpapi for the JSON API). One binary serves all three
// index variants through the dynhl.Oracle interface: the graph comes from
// an edge-list file (undirected, directed, or weighted by -mode) or a
// generated dataset proxy.
//
//	hlserver -graph web.txt -addr :8080
//	hlserver -graph roads.txt -mode weighted
//	hlserver -dataset Flickr -scale 0.2 -landmarks 20
//
//	curl 'localhost:8080/distance?u=3&v=97'
//	curl -X POST localhost:8080/distances -d '{"pairs":[{"u":3,"v":97},{"u":0,"v":5}]}'
//	curl -X POST localhost:8080/edges -d '{"u":3,"v":97}'
//	curl -X DELETE 'localhost:8080/edges?u=3&v=97'
//	curl -X POST localhost:8080/updates -d '{"ops":[{"op":"insert_edge","u":3,"v":97},{"op":"delete_edge","u":0,"v":5}]}'
//
// The oracle is served through a versioned snapshot store: reads run
// lock-free against the current published snapshot (tagged with an
// X-Oracle-Epoch response header) and update batches posted to /updates
// publish atomically as one new epoch. The server shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	dynhl "repro"
	"repro/internal/cli"
	"repro/internal/httpapi"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "edge-list file to load")
		mode      = flag.String("mode", "undirected", "graph type of -graph: undirected, directed or weighted")
		ds        = flag.String("dataset", "", "generate a dataset proxy instead (undirected)")
		scale     = flag.Float64("scale", 0.2, "proxy scale when -dataset is used")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy  = flag.String("strategy", "", "landmark selection strategy (topdegree, random, weighted)")
		seed      = flag.Int64("seed", 1, "generator and selection seed")
	)
	flag.Parse()

	opt := dynhl.Options{Landmarks: *landmarks, Strategy: *strategy, Seed: *seed, Parallel: true}
	start := time.Now()
	oracle, err := cli.BuildOracle(*graphPath, *mode, *ds, *scale, opt)
	if err != nil {
		log.Fatal("hlserver: ", err)
	}
	store := dynhl.NewStore(oracle)
	st := store.Stats()
	log.Printf("graph: %d vertices, %d edges (%s)", st.Vertices, st.Edges, *mode)
	log.Printf("index built in %v: %d landmarks, %d entries (%.2f per vertex), serving epoch %d",
		time.Since(start).Round(time.Millisecond), st.Landmarks, st.LabelEntries, st.AvgLabelSize,
		store.Epoch())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(store).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal("hlserver: ", err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal("hlserver: shutdown: ", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("hlserver: ", err)
		}
		log.Print("bye")
	}
}
