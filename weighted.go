package dynhl

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fanout"
	"repro/internal/landmark"
	"repro/internal/wgraph"
	"repro/internal/whcl"
)

// WeightedGraph is an undirected graph with positive integral edge weights
// (Section 5 of the paper: Dijkstra replaces BFS throughout).
type WeightedGraph = wgraph.Graph

// WeightedArc is one weighted adjacency entry (neighbour, weight ≥ 1).
type WeightedArc = wgraph.Arc

// NewWeightedGraph returns an empty weighted graph with capacity hints for
// n vertices.
func NewWeightedGraph(n int) *WeightedGraph { return wgraph.New(n) }

// ReadWeightedGraph parses a whitespace-separated weighted edge list
// ("u v w" per line with w ≥ 1, '#' and '%' comments allowed).
func ReadWeightedGraph(r io.Reader) (*WeightedGraph, error) { return wgraph.ReadEdgeList(r) }

// WeightedIndex is a dynamic exact distance oracle over a weighted graph,
// maintained incrementally by the Dijkstra variant of IncHL+.
//
// A WeightedIndex implements Oracle. Queries are safe for any number of
// concurrent readers; readers must not race the Insert methods — wrap with
// Concurrent for that.
type WeightedIndex struct {
	idx *whcl.Index
}

// BuildWeighted constructs the weighted labelling of g. Options drives it
// exactly as Build does the unweighted one — landmark count, selection
// strategy and seed (degree-based strategies count neighbours, not
// weights), Parallel/Workers fan the per-landmark construction Dijkstras
// across cores, and RepairWorkers sets the repair engine's fan-out. The
// result is identical for every worker count.
func BuildWeighted(g *WeightedGraph, opt Options) (*WeightedIndex, error) {
	if opt.Landmarks <= 0 {
		opt.Landmarks = 20
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("dynhl: cannot index an empty graph")
	}
	degree := func(v uint32) int { return len(g.Neighbors(v)) }
	lms, err := landmark.SelectBy(n, degree, g.NumEdges(), opt.Landmarks, opt.Strategy, opt.Seed)
	if err != nil {
		return nil, err
	}
	return BuildWeightedWithLandmarks(g, lms, opt)
}

// BuildWeightedWithLandmarks constructs the labelling with an explicit
// landmark set (Options strategy fields are ignored).
func BuildWeightedWithLandmarks(g *WeightedGraph, landmarks []uint32, opt Options) (*WeightedIndex, error) {
	var idx *whcl.Index
	var err error
	if opt.Parallel {
		idx, err = whcl.BuildParallel(g, landmarks, opt.Workers)
	} else {
		idx, err = whcl.Build(g, landmarks)
	}
	if err != nil {
		return nil, err
	}
	x := &WeightedIndex{idx: idx}
	x.setRepairWorkers(opt.RepairWorkers)
	return x, nil
}

// Graph returns the underlying weighted graph. Treat it as read-only;
// mutate through the WeightedIndex methods.
func (x *WeightedIndex) Graph() *WeightedGraph { return x.idx.G }

// Query returns the exact weighted distance between u and v, Inf when
// disconnected.
func (x *WeightedIndex) Query(u, v uint32) Dist { return x.idx.Query(u, v) }

// QueryBatch answers many pairs serially; Concurrent fans batches out.
func (x *WeightedIndex) QueryBatch(pairs []Pair) []Dist { return queryBatch(x, pairs) }

// NumVertices returns the current vertex count.
func (x *WeightedIndex) NumVertices() int { return x.idx.G.NumVertices() }

// InsertEdge inserts the undirected edge (u,v) with weight w (0 means 1)
// and repairs the labelling.
func (x *WeightedIndex) InsertEdge(u, v uint32, w Dist) (UpdateSummary, error) {
	if w == 0 {
		w = 1
	}
	st, err := x.idx.InsertEdge(u, v, w)
	if err != nil {
		return UpdateSummary{}, err
	}
	return weightedSummary(st), nil
}

// InsertVertex adds a vertex with initial weighted edges (Arc.W of 0 means
// 1; Arc.In is rejected — the graph is undirected).
func (x *WeightedIndex) InsertVertex(arcs []Arc) (uint32, UpdateSummary, error) {
	ws := make([]WeightedArc, len(arcs))
	for i, a := range arcs {
		if a.In {
			return 0, UpdateSummary{}, fmt.Errorf("dynhl: weighted oracle has no incoming arcs")
		}
		w := a.W
		if w == 0 {
			w = 1
		}
		ws[i] = WeightedArc{To: a.To, W: w}
	}
	id, st, err := x.idx.InsertVertex(ws)
	if err != nil {
		return 0, UpdateSummary{}, err
	}
	return id, weightedSummary(st), nil
}

// Apply applies ops in order, stopping at the first failure (see
// Oracle.Apply); wrap with NewStore for all-or-nothing batches.
func (x *WeightedIndex) Apply(ops []Op) ([]UpdateSummary, error) { return applyOps(x, ops) }

// packLabels freezes the labelling into the packed CSR read form the Store
// serves published snapshots from (see hcl.Packed); delta-aware on forks.
func (x *WeightedIndex) packLabels() { x.idx.Pack() }

// fork returns the copy-on-write working copy backing Store publishes.
func (x *WeightedIndex) fork() Oracle {
	return &WeightedIndex{idx: x.idx.Fork(x.idx.G.Fork())}
}

// setRepairWorkers tunes the per-landmark repair fan-out and the delta
// repack (0 = GOMAXPROCS, 1 = serial); see Options.RepairWorkers.
func (x *WeightedIndex) setRepairWorkers(n int) { x.idx.Workers = n }

// repairWorkers returns the configured (unresolved) repair fan-out.
func (x *WeightedIndex) repairWorkers() int { return x.idx.Workers }

// setRepairTimer installs f as the per-landmark repair task timer; it is
// called from worker goroutines and must be safe for concurrent use.
func (x *WeightedIndex) setRepairTimer(f func(time.Duration)) { x.idx.RepairTimer = f }

// DeleteEdge removes the undirected weighted edge (u,v) and repairs the
// labelling with DecHL (see Oracle.DeleteEdge).
func (x *WeightedIndex) DeleteEdge(u, v uint32) (UpdateSummary, error) {
	st, err := x.idx.DeleteEdge(u, v)
	if err != nil {
		return UpdateSummary{}, err
	}
	return weightedSummary(st), nil
}

// DeleteVertex disconnects vertex v by deleting all of its incident edges;
// the id survives as an isolated vertex. Deleting a landmark is an error.
func (x *WeightedIndex) DeleteVertex(v uint32) (UpdateSummary, error) {
	st, err := x.idx.DeleteVertex(v)
	if err != nil {
		return UpdateSummary{}, err
	}
	return weightedSummary(st), nil
}

func weightedSummary(st whcl.Stats) UpdateSummary {
	return UpdateSummary{
		Landmarks:      st.LandmarksTotal,
		Skipped:        st.LandmarksSkipped,
		Affected:       st.AffectedSum,
		EntriesAdded:   st.EntriesAdded,
		EntriesRemoved: st.EntriesRemoved,
		HighwayUpdates: st.HighwayUpdates,
	}
}

// Stats returns current size statistics.
func (x *WeightedIndex) Stats() Stats {
	entries, bytes := x.idx.Sizes()
	st := Stats{
		Vertices:     x.idx.G.NumVertices(),
		Edges:        x.idx.G.NumEdges(),
		Landmarks:    len(x.idx.Landmarks),
		LabelEntries: entries,
		Bytes:        bytes,
		AvgLabelSize: avgLabelSize(entries, x.idx.G.NumVertices()),
	}
	if p := x.idx.PackedLabels(); p != nil {
		st.PackedBytes = p.ArenaBytes()
	}
	st.MappedBytes = x.idx.MappedBytes()
	st.RepairWorkers = fanout.Resolve(x.idx.Workers)
	return st
}

// Verify audits the labelling against Dijkstra ground truth.
func (x *WeightedIndex) Verify() error { return x.idx.VerifyCover() }

// Save serialises the weighted labelling to w in a compact binary format
// (labels stored as one contiguous CSR arena). The graph is not included —
// persist it separately.
func (x *WeightedIndex) Save(w io.Writer) error {
	_, err := x.idx.WriteTo(w)
	return err
}

// Load swaps in a labelling saved with Save, replacing the current one. The
// stream must have been saved over the index's current graph; the loaded
// labelling arrives packed. Use Verify for a full consistency audit after
// loading from untrusted storage.
func (x *WeightedIndex) Load(r io.Reader) error {
	idx, err := whcl.ReadIndex(r, x.idx.G)
	if err != nil {
		return err
	}
	idx.Workers = x.idx.Workers
	idx.RepairTimer = x.idx.RepairTimer
	x.idx = idx
	return nil
}

// LoadWeightedIndex restores a labelling saved with Save and attaches it to
// g, which must be the graph it was built over.
func LoadWeightedIndex(r io.Reader, g *WeightedGraph) (*WeightedIndex, error) {
	idx, err := whcl.ReadIndex(r, g)
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{idx: idx}, nil
}

// Landmarks returns the landmark vertices in rank order.
func (x *WeightedIndex) Landmarks() []uint32 {
	return append([]uint32(nil), x.idx.Landmarks...)
}
