package dynhl

import (
	"fmt"
	"sort"

	"repro/internal/wgraph"
	"repro/internal/whcl"
)

// WeightedGraph is an undirected graph with positive integral edge weights
// (Section 5 of the paper: Dijkstra replaces BFS throughout).
type WeightedGraph = wgraph.Graph

// WeightedArc is one weighted adjacency entry (neighbour, weight ≥ 1).
type WeightedArc = wgraph.Arc

// NewWeightedGraph returns an empty weighted graph with capacity hints for
// n vertices.
func NewWeightedGraph(n int) *WeightedGraph { return wgraph.New(n) }

// WeightedStats reports what one weighted insertion did.
type WeightedStats = whcl.Stats

// WeightedIndex is a dynamic exact distance oracle over a weighted graph,
// maintained incrementally by the Dijkstra variant of IncHL+. Not safe for
// concurrent use.
type WeightedIndex struct {
	idx *whcl.Index
}

// BuildWeighted constructs the weighted labelling of g, selecting the
// highest-degree vertices as landmarks.
func BuildWeighted(g *WeightedGraph, landmarks int) (*WeightedIndex, error) {
	if landmarks <= 0 {
		landmarks = 20
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("dynhl: cannot index an empty graph")
	}
	if landmarks > n {
		landmarks = n
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := len(g.Neighbors(ids[i])), len(g.Neighbors(ids[j]))
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	idx, err := whcl.Build(g, ids[:landmarks])
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{idx: idx}, nil
}

// BuildWeightedWithLandmarks constructs the labelling with an explicit
// landmark set.
func BuildWeightedWithLandmarks(g *WeightedGraph, landmarks []uint32) (*WeightedIndex, error) {
	idx, err := whcl.Build(g, landmarks)
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{idx: idx}, nil
}

// Query returns the exact weighted distance between u and v, Inf when
// disconnected.
func (x *WeightedIndex) Query(u, v uint32) Dist { return x.idx.Query(u, v) }

// InsertEdge inserts the undirected edge (a,b) with weight w ≥ 1 and
// repairs the labelling.
func (x *WeightedIndex) InsertEdge(a, b uint32, w Dist) (WeightedStats, error) {
	return x.idx.InsertEdge(a, b, w)
}

// InsertVertex adds a vertex with initial weighted edges.
func (x *WeightedIndex) InsertVertex(arcs []WeightedArc) (uint32, WeightedStats, error) {
	return x.idx.InsertVertex(arcs)
}

// Verify audits the labelling against Dijkstra ground truth.
func (x *WeightedIndex) Verify() error { return x.idx.VerifyCover() }

// Landmarks returns the landmark vertices in rank order.
func (x *WeightedIndex) Landmarks() []uint32 {
	return append([]uint32(nil), x.idx.Landmarks...)
}

// LabelEntries returns size(L).
func (x *WeightedIndex) LabelEntries() int64 { return x.idx.NumEntries() }
