package dynhl

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// exposition renders every registry a store speaks for as one Prometheus
// text document.
func exposition(t *testing.T, st *Store) string {
	t.Helper()
	var b strings.Builder
	if err := obs.WriteAll(&b, st.MetricsRegistries()...); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// sampleValue extracts one series' value from an exposition, failing when
// the series is missing.
func sampleValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		name, raw, ok := strings.Cut(line, " ")
		if ok && name == series {
			var v float64
			if _, err := fmt.Sscanf(raw, "%g", &v); err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, raw, err)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from exposition:\n%s", series, text)
	return 0
}

// TestPipelineStageMetrics drives applies through the group-commit
// pipeline and checks every stage histogram, the group distributions and
// the outcome counters moved.
func TestPipelineStageMetrics(t *testing.T) {
	idx, err := Build(testutil.RandomConnectedGraph(80, 160, 3), Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(idx)
	for i := 0; i < 4; i++ {
		u, v := uint32(i), uint32(40+i)
		if _, err := st.Apply([]Op{InsertEdgeOp(u, v, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	text := exposition(t, st)
	for _, stage := range []string{"coalesce_wait", "repair", "pack", "wal_commit", "publish"} {
		series := fmt.Sprintf(`dynhl_apply_stage_seconds_count{stage=%q}`, stage)
		if got := sampleValue(t, text, series); got < 4 {
			t.Errorf("stage %s recorded %g groups, want >= 4", stage, got)
		}
	}
	if got := sampleValue(t, text, "dynhl_apply_groups_total"); got < 4 {
		t.Errorf("groups_total %g, want >= 4", got)
	}
	if got := sampleValue(t, text, "dynhl_apply_ops_total"); got < 4 {
		t.Errorf("ops_total %g, want >= 4", got)
	}
	if got := sampleValue(t, text, "dynhl_apply_group_callers_count"); got < 4 {
		t.Errorf("group size histogram count %g, want >= 4", got)
	}
	if got := sampleValue(t, text, "dynhl_epoch"); got != 4 {
		t.Errorf("dynhl_epoch %g, want 4", got)
	}

	// A rejected batch counts once, even though the survivors republish.
	if _, err := st.Apply([]Op{InsertEdgeOp(0, 40, 0)}); err == nil {
		t.Fatal("duplicate edge insert must fail")
	}
	text = exposition(t, st)
	if got := sampleValue(t, text, "dynhl_apply_rejected_total"); got != 1 {
		t.Errorf("rejected_total %g, want 1", got)
	}
}

// TestSlowQueryLog checks the threshold gate and the rate bound: every
// slow query counts, at most one line logs per interval, and the rest
// count as suppressed.
func TestSlowQueryLog(t *testing.T) {
	idx, err := Build(testutil.RandomConnectedGraph(40, 80, 3), Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(idx)

	var mu sync.Mutex
	var lines []string
	st.SetSlowQueryLog(time.Nanosecond, func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})

	v := st.Snapshot()
	const queries = 50
	for i := 0; i < queries; i++ {
		v.Query(0, uint32(1+i%20)) // every query exceeds a 1ns threshold
	}

	mu.Lock()
	logged := len(lines)
	first := ""
	if logged > 0 {
		first = lines[0]
	}
	mu.Unlock()
	if logged < 1 {
		t.Fatal("no slow-query line logged")
	}
	// 50 back-to-back queries run well inside one 100ms interval: the
	// bound allows the first line and suppresses the rest (a second line
	// only if the loop straddled an interval boundary).
	if logged > 2 {
		t.Fatalf("slow-query log not rate-bounded: %d lines for %d queries", logged, queries)
	}
	for _, want := range []string{"slow query:", "variant=undirected", "epoch=0", "latency="} {
		if !strings.Contains(first, want) {
			t.Errorf("slow-query line %q missing %q", first, want)
		}
	}
	if st.metrics.slowTotal.Value() != queries {
		t.Errorf("slow_queries_total %d, want %d", st.metrics.slowTotal.Value(), queries)
	}
	if got := st.metrics.slowSuppressed.Value(); got != queries-uint64(logged) {
		t.Errorf("suppressed %d, logged %d, want their sum to be %d", got, logged, queries)
	}

	// Threshold off again: nothing further counts.
	st.SetSlowQueryLog(0, nil)
	v.Query(0, 1)
	if st.metrics.slowTotal.Value() != queries {
		t.Error("slow query counted with the threshold off")
	}
}

// TestSnapshotPinsCounter checks epoch pins count Snapshot handouts.
func TestSnapshotPinsCounter(t *testing.T) {
	idx, err := Build(testutil.RandomConnectedGraph(30, 60, 3), Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(idx)
	before := st.metrics.pins.Value()
	st.Snapshot()
	st.Snapshot()
	if got := st.metrics.pins.Value() - before; got != 2 {
		t.Errorf("pins advanced by %d, want 2", got)
	}
}
