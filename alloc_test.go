package dynhl

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// The packed read path must be allocation-free: a published View answers
// Query with zero heap allocations and QueryBatch with nothing beyond the
// result slice. These are regression gates (run in CI under GOGC=off) for
// the CSR arena layout — a stray closure, boxed heap item or per-level
// frontier slice on any variant's query path trips them.

// allocPairs returns query endpoints spread over the vertex range so the
// measured loop exercises label-pair scans and the bounded sparsified
// search, not one cached pair.
func allocPairs(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 64)
	for i := range pairs {
		pairs[i] = Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	return pairs
}

// measureView asserts v.Query allocates nothing and v.QueryBatch allocates
// only its result slice, for a snapshot serving n vertices.
func measureView(t *testing.T, variant string, v View, n int) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate runs in normal builds")
	}
	pairs := allocPairs(n, 7)
	// Warm the scratch pools: the first query on a cold pool allocates its
	// QuerySpace; steady state must not.
	for _, p := range pairs {
		v.Query(p.U, p.V)
	}
	i := 0
	if got := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		v.Query(p.U, p.V)
	}); got != 0 {
		t.Errorf("%s: View.Query allocates %.1f times per call, want 0", variant, got)
	}
	// len(pairs) = 64 = serialBatchMax keeps the batch on the serial path:
	// goroutine fan-out is measured by the benchmarks, not this gate.
	if got := testing.AllocsPerRun(50, func() {
		v.QueryBatch(pairs)
	}); got > 1 {
		t.Errorf("%s: View.QueryBatch allocates %.1f times per batch, want only the result slice", variant, got)
	}
}

func TestPackedQueryZeroAllocs(t *testing.T) {
	const n = 400
	t.Run("undirected", func(t *testing.T) {
		idx, err := Build(testutil.RandomConnectedGraph(n, 2*n, 11), Options{Landmarks: 8})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStore(idx)
		if st.Snapshot().Stats().PackedBytes == 0 {
			t.Fatal("published snapshot is not packed")
		}
		measureView(t, "undirected", st.Snapshot(), n)
		// The gate measures instrumented views (Snapshot wires the store's
		// metrics in): zero allocations AND the latency histogram must both
		// hold — recording is a pair of atomic adds, not an allocation.
		if st.metrics.query.Count() == 0 {
			t.Fatal("instrumentation: query histogram recorded nothing during the gate")
		}
	})
	t.Run("directed", func(t *testing.T) {
		g := NewDigraph(n)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for e := 0; e < 2*n; e++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n/2)+1)
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		idx, err := BuildDirected(g, Options{Landmarks: 8})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStore(idx)
		if st.Snapshot().Stats().PackedBytes == 0 {
			t.Fatal("published snapshot is not packed")
		}
		measureView(t, "directed", st.Snapshot(), n)
	})
	t.Run("weighted", func(t *testing.T) {
		g := NewWeightedGraph(n)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for e := 0; e < 2*n; e++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n/2)+1)
			if u != v {
				g.MustAddEdge(u, v, Dist(rng.Intn(8)+1))
			}
		}
		idx, err := BuildWeighted(g, Options{Landmarks: 8})
		if err != nil {
			t.Fatal(err)
		}
		st := NewStore(idx)
		if st.Snapshot().Stats().PackedBytes == 0 {
			t.Fatal("published snapshot is not packed")
		}
		measureView(t, "weighted", st.Snapshot(), n)
	})
}

// TestPackedSurvivesPublish pins the pack-on-publish cycle: every epoch a
// Store publishes — fresh wrap, batch applies, loads — serves from a packed
// labelling, and a mutated fork never leaks an unpacked snapshot.
func TestPackedSurvivesPublish(t *testing.T) {
	idx, err := Build(testutil.RandomConnectedGraph(200, 400, 23), Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(idx)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 10; i++ {
		var ops []Op
		for len(ops) < 3 {
			u, v := uint32(rng.Intn(200)), uint32(rng.Intn(200))
			if u != v && !st.Unwrap().(*Index).Graph().HasEdge(u, v) {
				ops = append(ops, InsertEdgeOp(u, v, 0))
			}
		}
		if _, err := st.Apply(ops); err != nil {
			t.Fatal(err)
		}
		if st.Snapshot().Stats().PackedBytes == 0 {
			t.Fatalf("epoch %d published unpacked", st.Epoch())
		}
	}
}
